//! ROI storm: many concurrent viewer clients hammering one serving layer.
//!
//! ```text
//! cargo run --release --example roi_storm
//! ```
//!
//! The scenario behind `hqmr-serve`: a compressed multi-resolution store is
//! published once, and a fleet of clients pans overlapping regions of
//! interest across it — the access pattern of an interactive viewer with
//! many simultaneous users. Each client issues randomized ROI reads plus the
//! occasional isovalue skim against one shared `StoreServer`. The cache
//! means a chunk decodes once for the whole fleet (single-flight dedupes
//! even simultaneous cold requests), and the stats ledger proves it.

use hqmr::serve::Query;
use hqmr::workflow::{run_uniform_workflow_serve, WorkflowConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const CLIENTS: usize = 16;
const OPS_PER_CLIENT: usize = 32;

fn main() {
    let n = 64;
    let field = hqmr::grid::synth::nyx_like(n, 7);
    let mut cfg = WorkflowConfig::new(1e-3);
    cfg.post_process = false;

    // Compress into a block-indexed store and wrap it in a serving layer
    // with a 64 MiB decoded-chunk budget.
    let served =
        run_uniform_workflow_serve(&field, &cfg, 4, 64 << 20).expect("fresh store must round-trip");
    let server = &served.server;
    println!(
        "store: {} levels, {} chunks, ratio {:.1}x, eb {:.3e}",
        served.meta.levels.len(),
        served.meta.chunk_count(),
        served.end_to_end_ratio,
        served.eb
    );

    // The storm: every client pans its own random brick trajectory over the
    // fine level, with a 25% chance per step of an isovalue skim instead.
    let fine = served.meta.levels[0].dims;
    let (mn, mx) = field.min_max();
    let iso = mn + 0.6 * (mx - mn);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x0057_0911 + client as u64);
                for _ in 0..OPS_PER_CLIENT {
                    if rng.gen_range(0u32..4) == 0 {
                        server.read_level_iso(0, iso).expect("iso read");
                        continue;
                    }
                    let brick = [fine.nx / 4, fine.ny / 4, fine.nz / 4];
                    let lo = [
                        rng.gen_range(0..=fine.nx - brick[0]),
                        rng.gen_range(0..=fine.ny - brick[1]),
                        rng.gen_range(0..=fine.nz - brick[2]),
                    ];
                    let hi = [lo[0] + brick[0], lo[1] + brick[1], lo[2] + brick[2]];
                    server.read_roi(0, lo, hi, mn).expect("roi read");
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let stats = server.stats();
    let total_ops = (CLIENTS * OPS_PER_CLIENT) as f64;
    println!(
        "\n{CLIENTS} clients x {OPS_PER_CLIENT} queries in {elapsed:.3}s  \
         ({:.0} queries/s aggregate)",
        total_ops / elapsed
    );
    println!(
        "cache: {} requests = {} hits + {} misses ({} shared in-flight waits)",
        stats.requests, stats.hits, stats.misses, stats.shared
    );
    println!(
        "       {:.1} KiB resident (peak {:.1} KiB), {} evictions",
        stats.resident_bytes as f64 / 1024.0,
        stats.peak_resident_bytes as f64 / 1024.0,
        stats.evictions
    );
    println!(
        "codec ran {} times for {} chunk requests — {:.1}% of the fleet's \
         decode work served from the shared cache",
        stats.misses,
        stats.requests,
        100.0 * stats.hits as f64 / stats.requests as f64
    );

    // One batched client for comparison: the planner unions overlapping
    // requests before decoding.
    let batch: Vec<Query> = (0..6)
        .map(|k| Query::Roi {
            level: 0,
            lo: [k * fine.nx / 8, 0, 0],
            hi: [k * fine.nx / 8 + fine.nx / 4, fine.ny, fine.nz],
            fill: mn,
        })
        .collect();
    let planned = server.plan(&batch).expect("plan").len();
    let t0 = Instant::now();
    let responses = server.serve_batch(&batch).expect("batch");
    println!(
        "\nbatch of {} overlapping ROIs -> {} unique chunks planned, {} responses in {:.4}s",
        batch.len(),
        planned,
        responses.len(),
        t0.elapsed().as_secs_f64()
    );
}
