//! In-situ scenario: a WarpX-like simulation loop writing compressed
//! snapshots with the backend-generic MRC engine (the Table IV pipeline).
//!
//! ```text
//! cargo run --release --example insitu_warpx
//! ```
//!
//! Each "timestep" produces an Ez field, converts it to adaptive
//! multi-resolution data (WarpX does not support AMR, §I), and writes a
//! compressed snapshot, reporting the pre-process vs compress+write split for
//! our linear merge versus AMRIC's stacking. Snapshots are block-indexed
//! `hqmr-store` containers: the verification pass opens each file from disk
//! (codec routing comes from the directory, no configuration needed), reads
//! it back fully, and then demonstrates random access by pulling a coarse
//! first refinement and a small fine-level ROI out of the same file while
//! counting how few of the compressed bytes those touch.

use hqmr::grid::{synth, Dims3};
use hqmr::metrics::psnr;
use hqmr::mr::{to_adaptive, RoiConfig, Upsample};
use hqmr::store::StoreReader;
use hqmr::workflow::{write_snapshot, Backend, MrcConfig};

fn main() {
    let dims = Dims3::new(32, 32, 256);
    let steps = 3;
    let out_dir = std::env::temp_dir().join("hqmr_insitu_demo");
    std::fs::create_dir_all(&out_dir).unwrap();

    println!("simulating {steps} WarpX-like timesteps at {dims}...");
    println!();
    println!("step  method  preproc(s)  comp+write(s)  total(s)   bytes      CR     PSNR");
    let mut last_path = None;
    for step in 0..steps {
        let field = synth::warpx_like(dims, 100 + step as u64);
        let mr = to_adaptive(&field, &RoiConfig::new(16, 0.5));
        let eb = field.range() as f64 * 2e-3;
        let methods = [
            ("AMRIC", MrcConfig::amric(eb)),
            ("Ours", MrcConfig::ours(eb)),
            ("O-zfp", MrcConfig::ours_pad(eb).with_backend(Backend::ZFP)),
        ];
        for (name, cfg) in methods {
            let path = out_dir.join(format!("snap_{step}_{name}.hqst"));
            let (t, bytes) = write_snapshot(&mr, &cfg, &path).unwrap();
            // Verify by reading the snapshot back: the store directory
            // records the codec, so no configuration is needed to decode it.
            let reader = StoreReader::open(&path).unwrap();
            let back = reader.read_all().unwrap();
            let recon = back.reconstruct(Upsample::Trilinear);
            let cr = (mr.total_cells() * 4) as f64 / bytes as f64;
            println!(
                "{step:4}  {name:6} {:10.4} {:14.4} {:9.4} {bytes:9}  {cr:6.1}  {:6.2}",
                t.preprocess,
                t.compress_write,
                t.total(),
                psnr(&field, &recon)
            );
            last_path = Some(path);
        }
    }

    // Random access on the last snapshot: the point of the store format.
    let reader = StoreReader::open(last_path.unwrap()).unwrap();
    let total = reader.meta().compressed_bytes();
    let first = reader
        .progressive(Upsample::Nearest)
        .next()
        .unwrap()
        .unwrap();
    let coarse_bytes = reader.bytes_decoded();
    reader.reset_counters();
    let fine = &reader.meta().levels[0];
    // Anchor the ROI on an occupied fine block (the adaptive conversion only
    // keeps the high-energy half of the domain at full resolution).
    let (_, origin) = fine.chunks[0].slots[0];
    let hi = [
        origin[0] + fine.unit,
        origin[1] + fine.unit,
        origin[2] + fine.unit,
    ];
    let roi = reader.read_roi(0, origin, hi, 0.0).unwrap();
    println!(
        "\nrandom access: first refinement (L{}, {} of {total} compressed bytes), \
         {} ROI ({} bytes) — no full decode required",
        first.level,
        coarse_bytes,
        roi.dims(),
        reader.bytes_decoded()
    );
    std::fs::remove_dir_all(&out_dir).ok();
    println!("(our linear merge pre-processes with less data movement than stacking)");
}
