//! In-situ scenario: a WarpX-like simulation loop writing compressed
//! snapshots with the backend-generic MRC engine (the Table IV pipeline).
//!
//! ```text
//! cargo run --release --example insitu_warpx
//! ```
//!
//! Each "timestep" produces an Ez field, converts it to adaptive
//! multi-resolution data (WarpX does not support AMR, §I), and writes a
//! compressed snapshot, reporting the pre-process vs compress+write split for
//! our linear merge versus AMRIC's stacking. Snapshots are complete MRC
//! streams: the verification pass reads each file back from disk and
//! decompresses it via the codec id recorded in the stream.

use hqmr::grid::{synth, Dims3};
use hqmr::metrics::psnr;
use hqmr::mr::{to_adaptive, RoiConfig, Upsample};
use hqmr::workflow::{decompress_mr, write_snapshot, Backend, MrcConfig};

fn main() {
    let dims = Dims3::new(32, 32, 256);
    let steps = 3;
    let out_dir = std::env::temp_dir().join("hqmr_insitu_demo");
    std::fs::create_dir_all(&out_dir).unwrap();

    println!("simulating {steps} WarpX-like timesteps at {dims}...");
    println!();
    println!("step  method  preproc(s)  comp+write(s)  total(s)   bytes      CR     PSNR");
    for step in 0..steps {
        let field = synth::warpx_like(dims, 100 + step as u64);
        let mr = to_adaptive(&field, &RoiConfig::new(16, 0.5));
        let eb = field.range() as f64 * 2e-3;
        let methods = [
            ("AMRIC", MrcConfig::amric(eb)),
            ("Ours", MrcConfig::ours(eb)),
            ("O-zfp", MrcConfig::ours_pad(eb).with_backend(Backend::ZFP)),
        ];
        for (name, cfg) in methods {
            let path = out_dir.join(format!("snap_{step}_{name}.hqmr"));
            let (t, bytes) = write_snapshot(&mr, &cfg, &path).unwrap();
            // Verify by reading the snapshot back: the stream is
            // self-describing, so no configuration is needed to decode it.
            let stored = std::fs::read(&path).unwrap();
            let back = decompress_mr(&stored).unwrap();
            let recon = back.reconstruct(Upsample::Trilinear);
            let cr = (mr.total_cells() * 4) as f64 / bytes as f64;
            println!(
                "{step:4}  {name:6} {:10.4} {:14.4} {:9.4} {bytes:9}  {cr:6.1}  {:6.2}",
                t.preprocess,
                t.compress_write,
                t.total(),
                psnr(&field, &recon)
            );
        }
    }
    std::fs::remove_dir_all(&out_dir).ok();
    println!("\n(our linear merge pre-processes with less data movement than stacking)");
}
