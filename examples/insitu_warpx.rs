//! In-situ scenario: a WarpX-like simulation loop streaming timesteps into a
//! temporal (`HQTM`) store with inter-frame prediction.
//!
//! ```text
//! cargo run --release --example insitu_warpx
//! ```
//!
//! Each "timestep" advances a laser pulse along `z`, pours the field into
//! the block layout chosen at step 0 (frame-stable layouts are what make
//! temporal deltas line up), and appends it to a [`TemporalWriter`]: every
//! frame lands as its own crash-safe `HQST` file, the manifest is rewritten
//! atomically after it, and chunks that changed little since the previous
//! step are stored as residuals against it. The analysis pass then reopens
//! the directory cold and demonstrates the reader side: a time-windowed ROI
//! query following the pulse, and coarse→fine progressive refinement of the
//! final frame — both resolving delta chains transparently.

use hqmr::grid::{synth, Dims3};
use hqmr::metrics::psnr;
use hqmr::mr::{resample_like, to_adaptive, RoiConfig, Upsample};
use hqmr::store::temporal::{Prediction, TemporalReader};
use hqmr::workflow::{MrcConfig, TemporalWriter};

fn main() {
    let dims = Dims3::new(32, 32, 256);
    let steps = 6usize;
    let out_dir = std::env::temp_dir().join("hqmr_insitu_demo");
    std::fs::remove_dir_all(&out_dir).ok();

    // The simulation: a wakefield pulse propagating a quarter-cell of z per
    // output step (periodic boundaries keep the synthetic loop simple; the
    // laser wavelength is ~4 cells, so consecutive outputs stay coherent).
    let base = synth::warpx_like(dims, 100);
    let field_at = |step: usize| synth::advect_periodic(&base, [0.0, 0.0, 0.25 * step as f64]);

    let eb = base.range() as f64 * 2e-3;
    let cfg = MrcConfig::ours_pad(eb);
    let mut writer = TemporalWriter::create(&out_dir, &cfg, Prediction::delta()).unwrap();

    println!(
        "streaming {steps} WarpX-like timesteps at {dims} into {}",
        out_dir.display()
    );
    println!();
    println!("step      bytes  delta-chunks    write(s)");
    let mut template = None;
    let mut independent_estimate = 0u64;
    let mut temporal_total = 0u64;
    for step in 0..steps {
        let field = field_at(step);
        // Step 0 selects the adaptive block layout; later steps reuse it.
        let mr = match &template {
            None => {
                let t = to_adaptive(&field, &RoiConfig::new(16, 0.5));
                template = Some(t.clone());
                t
            }
            Some(t) => resample_like(t, &field),
        };
        let rep = writer.append(step as u64, &mr).unwrap();
        temporal_total += rep.bytes;
        if step == 0 {
            // Frame 0 is a keyframe: its size is what every frame would cost
            // without prediction (same content morphology throughout).
            independent_estimate = rep.bytes;
        }
        println!(
            "{step:4} {:10} {:7}/{:<5} {:10.4}",
            rep.bytes, rep.delta_chunks, rep.total_chunks, rep.seconds
        );
    }
    println!(
        "\ntemporal store: {temporal_total} bytes for {steps} frames \
         (~{} per frame vs {independent_estimate} for an independent snapshot)",
        temporal_total / steps as u64,
    );

    // Analysis side: cold open, no configuration — codecs and delta flags
    // come from the manifest and the per-frame containers.
    let reader = TemporalReader::open(&out_dir).unwrap();
    assert_eq!(reader.frame_count(), steps);

    // Time-windowed ROI around the pulse axis: one decode pass shares the
    // delta-chain work across the window's frames.
    let (lo, hi) = ([8, 8, 128], [24, 24, 224]);
    let window = reader
        .read_roi_window(1, steps - 1, 0, lo, hi, 0.0)
        .unwrap();
    println!(
        "\nwindowed ROI {:?}..{:?}, frames 1..{}: {} fields of {}",
        lo,
        hi,
        steps - 1,
        window.len(),
        window[0].dims()
    );

    // Progressive refinement of the last frame, through its delta chain.
    let last = reader.frame(steps - 1).unwrap();
    let truth = field_at(steps - 1);
    println!("\nprogressive refinement of frame {}:", steps - 1);
    for step in last.progressive(Upsample::Trilinear) {
        let step = step.unwrap();
        println!(
            "  level {}: PSNR {:6.2} dB vs simulation truth",
            step.level,
            psnr(&truth, &step.field)
        );
    }

    std::fs::remove_dir_all(&out_dir).ok();
}
