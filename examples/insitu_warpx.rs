//! In-situ scenario: a WarpX-like simulation loop writing compressed
//! snapshots with SZ3MR (the Table IV pipeline).
//!
//! ```text
//! cargo run --release --example insitu_warpx
//! ```
//!
//! Each "timestep" produces an Ez field, converts it to adaptive
//! multi-resolution data (WarpX does not support AMR, §I), and writes a
//! compressed snapshot, reporting the pre-process vs compress+write split for
//! our linear merge versus AMRIC's stacking.

use hqmr::grid::{synth, Dims3};
use hqmr::metrics::psnr;
use hqmr::mr::{to_adaptive, RoiConfig, Upsample};
use hqmr::workflow::{decompress_mr, write_snapshot, Sz3MrConfig};

fn main() {
    let dims = Dims3::new(32, 32, 256);
    let steps = 3;
    let out_dir = std::env::temp_dir().join("hqmr_insitu_demo");
    std::fs::create_dir_all(&out_dir).unwrap();

    println!("simulating {steps} WarpX-like timesteps at {dims}...");
    println!();
    println!("step  method  preproc(s)  comp+write(s)  total(s)   bytes      CR     PSNR");
    for step in 0..steps {
        let field = synth::warpx_like(dims, 100 + step as u64);
        let mr = to_adaptive(&field, &RoiConfig::new(16, 0.5));
        let eb = field.range() as f64 * 2e-3;
        for (name, cfg) in [("AMRIC", Sz3MrConfig::amric(eb)), ("Ours", Sz3MrConfig::ours(eb))] {
            let path = out_dir.join(format!("snap_{step}_{name}.hqmr"));
            let (t, bytes) = write_snapshot(&mr, &cfg, &path).unwrap();
            // Verify the snapshot by decompressing the equivalent stream.
            let (stream, stats) = hqmr::workflow::compress_mr(&mr, &cfg);
            let back = decompress_mr(&stream).unwrap();
            let recon = back.reconstruct(Upsample::Trilinear);
            println!(
                "{step:4}  {name:6} {:10.4} {:14.4} {:9.4} {bytes:9}  {:6.1}  {:6.2}",
                t.preprocess,
                t.compress_write,
                t.total(),
                stats.ratio(),
                psnr(&field, &recon)
            );
        }
    }
    std::fs::remove_dir_all(&out_dir).ok();
    println!("\n(our linear merge pre-processes with less data movement than stacking)");
}
