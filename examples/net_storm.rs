//! Network storm: the `roi_storm` fleet, moved onto real TCP.
//!
//! ```text
//! cargo run --release --example net_storm                 # self-hosted loopback
//! cargo run --release --example net_storm -- 10.0.0.5:7745  # storm a remote netd
//! ```
//!
//! Without an argument, a `NetServer` is spawned in-process on a loopback
//! port (deliberately small: 2 workers, shallow queues) and 16 clients
//! storm it over sockets — the same panning-viewer access pattern as
//! `roi_storm`, but every query now pays encode + two socket hops + shard
//! dispatch. Overload comes back as typed `Busy` answers that clients
//! retry, and the cache ledger still proves each chunk decoded once for
//! the whole fleet. With an address argument the fleet half is skipped and
//! the storm hits a remote `netd` instead.

use hqmr::net::{DatasetSpec, NetClient, NetConfig, NetError, NetServer};
use hqmr::serve::Query;
use hqmr::store::{write_store, StoreConfig, StoreReader};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 16;
const OPS_PER_CLIENT: usize = 32;

fn main() {
    let remote = std::env::args().nth(1);
    let _local; // keeps a self-hosted fleet alive for the storm's duration
    let addr = match &remote {
        Some(a) => a.parse().expect("ADDR must be HOST:PORT"),
        None => {
            let n = 64;
            let field = hqmr::grid::synth::nyx_like(n, 7);
            let mr = hqmr::mr::to_adaptive(&field, &hqmr::mr::RoiConfig::new(8, 0.5));
            let eb = field.range() as f64 * 1e-3;
            let buf = write_store(
                &mr,
                &StoreConfig::new(eb).with_chunk_blocks(4),
                &hqmr::sz3::Sz3Codec::default(),
            );
            println!(
                "self-hosting: {} KiB store, 2 workers, queue depth 4, 64 MiB budget",
                buf.len() / 1024
            );
            let server = NetServer::spawn(
                "127.0.0.1:0",
                NetConfig {
                    workers: 2,
                    queue_depth: 4,
                    cache_budget: 64 << 20,
                    ..NetConfig::default()
                },
                vec![DatasetSpec {
                    id: 0,
                    name: "nyx-storm".into(),
                    reader: Arc::new(StoreReader::from_bytes(buf).expect("open store")),
                }],
            )
            .expect("spawn fleet");
            let addr = server.local_addr();
            _local = server;
            addr
        }
    };

    // Catalog probe: dataset 0 must exist; its extents drive the storm.
    let mut probe = NetClient::connect(addr).expect("connect");
    let catalog = probe.datasets().expect("catalog");
    let info = catalog
        .iter()
        .find(|d| d.id == 0)
        .expect("server hosts no dataset 0");
    println!(
        "storming [{}] {} on {addr}: {} levels, {} chunks, {} KiB compressed",
        info.id,
        info.name,
        info.levels,
        info.chunks,
        info.compressed_bytes / 1024,
    );
    let fine = info.domain;
    // Reset the stats window so the ledger below covers exactly this storm.
    let _ = probe.stats(0, true);

    let t0 = Instant::now();
    let totals: Vec<(u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x0057_0911 + client as u64);
                    let mut client = NetClient::connect(addr).expect("connect");
                    let mut ok = 0u64;
                    let mut busy = 0u64;
                    for _ in 0..OPS_PER_CLIENT {
                        // 25% of steps pull the coarse overview (the pan-out
                        // gesture); the rest pan fine-level bricks.
                        let q = if rng.gen_range(0u32..4) == 0 {
                            Query::Level {
                                level: info.levels - 1,
                            }
                        } else {
                            let brick = [fine.nx / 4, fine.ny / 4, fine.nz / 4];
                            let lo = [
                                rng.gen_range(0..=fine.nx - brick[0]),
                                rng.gen_range(0..=fine.ny - brick[1]),
                                rng.gen_range(0..=fine.nz - brick[2]),
                            ];
                            Query::Roi {
                                level: 0,
                                lo,
                                hi: [lo[0] + brick[0], lo[1] + brick[1], lo[2] + brick[2]],
                                fill: 0.0,
                            }
                        };
                        let mut attempt = 0u32;
                        loop {
                            match client.batch(0, std::slice::from_ref(&q)) {
                                Ok(_) => {
                                    ok += 1;
                                    break;
                                }
                                Err(NetError::Busy) => {
                                    busy += 1;
                                    // Capped jittered backoff, not a
                                    // scheduler spin (same policy as
                                    // `batch_retry`, counted here for the
                                    // report).
                                    let cap = 100u64 << attempt.min(6);
                                    let us = rng.gen_range(cap / 2..=cap);
                                    std::thread::sleep(Duration::from_micros(us));
                                    attempt += 1;
                                }
                                Err(e) => panic!("storm request failed: {e}"),
                            }
                        }
                    }
                    (ok, busy)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let ok: u64 = totals.iter().map(|(o, _)| o).sum();
    let busy: u64 = totals.iter().map(|(_, b)| b).sum();

    println!(
        "\n{CLIENTS} clients x {OPS_PER_CLIENT} queries in {elapsed:.3}s \
         ({:.0} queries/s aggregate over TCP)",
        ok as f64 / elapsed
    );
    println!("{busy} Busy answers absorbed by client retries (typed backpressure, no hangs)");

    let stats = probe.stats(0, false).expect("stats");
    println!(
        "remote cache: {} requests = {} hits + {} misses ({} shared in-flight waits)",
        stats.cache.requests, stats.cache.hits, stats.cache.misses, stats.cache.shared
    );
    println!(
        "              {:.1} KiB resident (peak {:.1} KiB), {} evictions — the fleet \
         decoded each chunk once, over sockets",
        stats.cache.resident_bytes as f64 / 1024.0,
        stats.cache.peak_resident_bytes as f64 / 1024.0,
        stats.cache.evictions
    );
}
