//! Uncertainty scenario: where did compression hurt the isosurface? (Fig. 14)
//!
//! ```text
//! cargo run --release --example uncertainty_isosurface
//! ```
//!
//! Compresses a Hurricane-like field aggressively with the ZFP-class codec,
//! fits the isovalue-conditioned Gaussian error model from sampled errors,
//! runs probabilistic marching cubes, and reports which isosurface features
//! deterministic extraction lost but the uncertainty visualization recovers.

use hqmr::grid::{synth, Dims3};
use hqmr::metrics::psnr;
use hqmr::vis::{extract_isosurface, render_slice, save_ppm, surface_features, Colormap};
use hqmr::workflow::{analyze_feature_recovery, model_near_isovalue, sample_error_pairs};
use hqmr::zfp::{compress, decompress, ZfpConfig};

fn main() {
    let field = synth::hurricane_like(Dims3::new(64, 64, 16), 3);
    let (mn, mx) = field.min_max();
    let iso = mn + 0.45 * (mx - mn);

    // Aggressive compression: large tolerance => high CR, visible feature loss.
    let tol = (mx - mn) as f64 * 0.12;
    let r = compress(&field, &ZfpConfig::new(tol));
    let dec = decompress(&r.bytes).unwrap();
    println!(
        "ZFP: CR = {:.1}, PSNR = {:.1} dB",
        r.ratio(field.len()),
        psnr(&field, &dec)
    );

    // Isosurface comparison.
    let mesh_o = extract_isosurface(&field, iso);
    let mesh_d = extract_isosurface(&dec, iso);
    println!(
        "isosurface triangles: original {}, decompressed {}",
        mesh_o.triangle_count(),
        mesh_d.triangle_count()
    );
    let feats_o = surface_features(&field, iso, 2);
    let feats_d = surface_features(&dec, iso, 2);
    println!(
        "surface features:     original {}, decompressed {}",
        feats_o.len(),
        feats_d.len()
    );

    // Error model from sampled (original, decompressed) pairs near the
    // isovalue — the same samples the post-processor collects.
    let pairs = sample_error_pairs(&field, &dec, 0.02, 0xCAFE);
    let model = model_near_isovalue(&pairs, iso, (mx - mn) * 0.1);
    println!(
        "error model near iso: N({:.4}, {:.4}^2), {} samples",
        model.mean, model.sigma, model.samples
    );

    let rec = analyze_feature_recovery(&field, &dec, iso, &model, 0.1, 2, 16.0);
    println!(
        "feature recovery: {} original, {} preserved, {} lost, {} recovered by PMC",
        rec.original,
        rec.preserved,
        rec.original - rec.preserved,
        rec.recovered
    );

    // Render Fig. 14-style panels. Renders land under results/ with the
    // other experiment artifacts, not in the repo root.
    let k = field.dims().nz / 2;
    std::fs::create_dir_all("results").unwrap();
    save_ppm(
        "results/uncertainty_original.ppm",
        &render_slice(&field, k, mn, mx, Colormap::Viridis),
    )
    .unwrap();
    let mut img = render_slice(&dec, k, mn, mx, Colormap::Viridis);
    let (cd, prob) = hqmr::vis::crossing_probability_field(&dec, &model.pmc(iso));
    let mut slice = vec![0f32; cd.nx * cd.ny];
    for x in 0..cd.nx {
        for y in 0..cd.ny {
            slice[x * cd.ny + y] = prob[cd.idx(x, y, k.min(cd.nz - 1))];
        }
    }
    hqmr::vis::render::overlay_probability(&mut img, &slice, cd.nx, cd.ny);
    save_ppm("results/uncertainty_pmc.ppm", &img).unwrap();
    println!("\nwrote results/uncertainty_original.ppm and results/uncertainty_pmc.ppm");
}
