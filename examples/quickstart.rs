//! Quickstart: compress a cosmology snapshot with the full workflow.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a Nyx-like density field, converts it to multi-resolution data
//! via range-threshold ROI extraction, compresses it with MRC-SZ3 (padding +
//! adaptive per-level error bounds), reconstructs, post-processes, and
//! reports compression ratio and quality.

use hqmr::grid::synth;
use hqmr::metrics::{psnr, ssim3d};
use hqmr::mr::RoiConfig;
use hqmr::workflow::{run_uniform_workflow, WorkflowConfig};

fn main() {
    let n = 64;
    println!("generating Nyx-like density field ({n}^3)...");
    let field = synth::nyx_like(n, 42);

    let mut cfg = WorkflowConfig::new(1e-3); // eb = 0.1% of the value range
    cfg.roi = RoiConfig::new(16, 0.5); // paper defaults: b=16, top 50%
    cfg.uncertainty_iso = Some(field.range() * 0.3);

    println!("running the workflow (ROI -> SZ3MR -> post-process)...");
    let result = run_uniform_workflow(&field, &cfg).expect("workflow round-trip");

    println!();
    println!(
        "multi-res storage ratio : {:.2}x ({} of {} cells stored)",
        field.len() as f64 / result.mr_stats.stored_cells as f64,
        result.mr_stats.stored_cells,
        field.len()
    );
    println!("compression ratio (MR)  : {:.1}x", result.mr_stats.ratio());
    println!(
        "end-to-end ratio        : {:.1}x (vs raw uniform f32)",
        result.end_to_end_ratio
    );
    println!("absolute error bound    : {:.3e}", result.eb);
    println!(
        "PSNR                    : {:.2} dB",
        psnr(&field, &result.reconstruction)
    );
    println!(
        "volumetric SSIM         : {:.4}",
        ssim3d(&field, &result.reconstruction)
    );
    if let Some(m) = result.error_model {
        println!(
            "error model near iso    : N({:.3e}, {:.3e}^2) from {} samples",
            m.mean, m.sigma, m.samples
        );
    }
}
