//! Cosmology scenario: ROI extraction quality for halo analysis (Fig. 4).
//!
//! ```text
//! cargo run --release --example cosmology_roi
//! ```
//!
//! Shows the paper's motivating result: range-threshold ROI extraction keeps
//! a small fraction of the volume at full resolution while preserving the
//! halo population and the power spectrum that cosmologists analyze.

use hqmr::grid::synth;
use hqmr::metrics::{find_halos_abs, halo_recall, spectrum_rel_errors};
use hqmr::mr::{roi_only_field, to_adaptive, RoiConfig, Upsample};
use hqmr::vis::{render_slice, save_ppm, Colormap};

fn main() {
    let n = 64;
    let field = synth::nyx_like(n, 7);
    let mean = field.data().iter().map(|&v| v as f64).sum::<f64>() / field.len() as f64;
    let thr = (25.0 * mean) as f32;
    let halos = find_halos_abs(&field, thr, 3);
    println!(
        "Nyx-like field {n}^3: {} halos (25x mean overdensity)",
        halos.len()
    );
    println!();
    println!("roi%   vol%   halo_recall  P(k) max_rel_err  storage_savings");

    for frac in [0.10, 0.15, 0.25, 0.50] {
        let cfg = RoiConfig::new(16, frac);
        let (roi, vol) = roi_only_field(&field, &cfg);
        let recall = halo_recall(&halos, &find_halos_abs(&roi, thr, 1), 3.0);
        let mr = to_adaptive(&field, &cfg);
        let recon = mr.reconstruct(Upsample::Trilinear);
        let (spec_max, _) = spectrum_rel_errors(&field, &recon, 10);
        println!(
            "{:4.0}  {:5.1}  {:11.3}  {:15.3e}  {:14.2}x",
            frac * 100.0,
            vol * 100.0,
            recall,
            spec_max,
            mr.storage_ratio()
        );
    }

    // Render the original and the 15% ROI side by side (Fig. 4's comparison).
    let cfg = RoiConfig::new(16, 0.15);
    let (roi, _) = roi_only_field(&field, &cfg);
    let (mn, mx) = field.min_max();
    let k = field.dims().nz / 2;
    // Log-scale densities for display (cosmology convention).
    let logize = |f: &hqmr::grid::Field3| {
        let mut g = f.clone();
        g.map_inplace(|v| (v.max(1.0)).ln());
        g
    };
    let lf = logize(&field);
    let lr = logize(&roi);
    let (lmn, lmx) = (mn.max(1.0).ln(), mx.ln());
    // Renders land under results/ with the other experiment artifacts, not
    // in the repo root.
    std::fs::create_dir_all("results").unwrap();
    save_ppm(
        "results/roi_original.ppm",
        &render_slice(&lf, k, lmn, lmx, Colormap::Viridis),
    )
    .unwrap();
    save_ppm(
        "results/roi_extracted.ppm",
        &render_slice(&lr, k, lmn, lmx, Colormap::Viridis),
    )
    .unwrap();
    println!("\nwrote results/roi_original.ppm and results/roi_extracted.ppm");
}
