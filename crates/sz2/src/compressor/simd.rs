//! x86-64 SIMD arms of the sz2 block kernels.
//!
//! Dispatched from the parent module on [`hqmr_codec::kernels::simd_level`];
//! every arm is bit-identical to the scalar loop it shadows. The kernels work
//! a whole block per call (constants hoisted out of the tiny per-row loops)
//! and two patterns keep float results exact:
//!
//! * **Lane-per-accumulator** ([`fit_plane_sums_avx2`]): the four plane-fit
//!   sums live one per lane and every point updates all four with one
//!   broadcast multiply-add — each lane performs exactly the scalar add
//!   sequence (`1.0 * v == v`, and weight products round identically).
//! * **Lane-per-point with ordered horizontal adds** (the estimators): the
//!   per-point terms are independent, so four compute in parallel, but the
//!   running total is a serial float sum whose association is
//!   selection-relevant — lanes are added back one at a time in point order.
//!
//! The quantization runs take an all-lanes-pass fast path and replay the
//! whole group through the scalar [`super::encode_point`] /
//! [`super::decode_value`] when any lane is an outlier, a rounding tie, or
//! fails a recheck — the side-channel pushes stay in point order.

use super::{decode_value, encode_point, lorenzo, lorenzo_interior, Plane};
use hqmr_codec::LinearQuantizer;
use hqmr_grid::{Dims3, Field3};
use std::arch::x86_64::*;

/// `nextDown(0.5)` — the rounding tie [`hqmr_codec::round_ties_away_i64`]
/// guards against; tie lanes take the scalar replay path.
const TIE: f64 = 0.499_999_999_999_999_94;

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn abs4(x: __m256d) -> __m256d {
    _mm256_andnot_pd(_mm256_set1_pd(-0.0), x)
}

#[inline]
unsafe fn abs2(x: __m128d) -> __m128d {
    _mm_andnot_pd(_mm_set1_pd(-0.0), x)
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn ld4(data: &[f32], i: usize) -> __m256d {
    _mm256_cvtps_pd(_mm_loadu_ps(data.as_ptr().add(i)))
}

#[inline]
unsafe fn ld2(data: &[f32], i: usize) -> __m128d {
    _mm_cvtps_pd(_mm_castsi128_ps(_mm_loadl_epi64(
        data.as_ptr().add(i) as *const __m128i
    )))
}

/// AVX2 arm of the plane-fit accumulation: lanes are `[Σv, Σwx·v, Σwy·v,
/// Σwz·v]`, updated per point in row-major order.
///
/// # Safety
/// Requires AVX2 (guaranteed by the dispatcher).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn fit_plane_sums_avx2(
    field: &Field3,
    origin: [usize; 3],
    size: Dims3,
    mx: f64,
    my: f64,
    mz: f64,
) -> (f64, f64, f64, f64) {
    let dims = field.dims();
    let data = field.data();
    let one3 = _mm256_set_pd(1.0, 0.0, 0.0, 0.0);
    let mut acc = _mm256_setzero_pd();
    for x in 0..size.nx {
        let wx = x as f64 - mx;
        for y in 0..size.ny {
            let wy = y as f64 - my;
            let row = dims.idx(origin[0] + x, origin[1] + y, origin[2]);
            // Lanes low→high: [1.0, wx, wy, z − mz].
            let mut w = _mm256_set_pd(-mz, wy, wx, 1.0);
            for &vf in &data[row..row + size.nz] {
                let v = _mm256_set1_pd(vf as f64);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(w, v));
                w = _mm256_add_pd(w, one3);
            }
        }
    }
    let mut s = [0f64; 4];
    _mm256_storeu_pd(s.as_mut_ptr(), acc);
    (s[0], s[1], s[2], s[3])
}

/// SSE2 arm of [`fit_plane_sums_avx2`]: the four accumulators split across
/// two registers, same per-lane order.
///
/// # Safety
/// SSE2 is the x86-64 baseline.
pub(super) unsafe fn fit_plane_sums_sse2(
    field: &Field3,
    origin: [usize; 3],
    size: Dims3,
    mx: f64,
    my: f64,
    mz: f64,
) -> (f64, f64, f64, f64) {
    let dims = field.dims();
    let data = field.data();
    let one_hi = _mm_set_pd(1.0, 0.0);
    let mut acc01 = _mm_setzero_pd(); // [Σv, Σwx·v]
    let mut acc23 = _mm_setzero_pd(); // [Σwy·v, Σwz·v]
    for x in 0..size.nx {
        let wx = x as f64 - mx;
        for y in 0..size.ny {
            let wy = y as f64 - my;
            let row = dims.idx(origin[0] + x, origin[1] + y, origin[2]);
            let w01 = _mm_set_pd(wx, 1.0);
            let mut w23 = _mm_set_pd(-mz, wy);
            for &vf in &data[row..row + size.nz] {
                let v = _mm_set1_pd(vf as f64);
                acc01 = _mm_add_pd(acc01, _mm_mul_pd(w01, v));
                acc23 = _mm_add_pd(acc23, _mm_mul_pd(w23, v));
                w23 = _mm_add_pd(w23, one_hi);
            }
        }
    }
    let mut s01 = [0f64; 2];
    let mut s23 = [0f64; 2];
    _mm_storeu_pd(s01.as_mut_ptr(), acc01);
    _mm_storeu_pd(s23.as_mut_ptr(), acc23);
    (s01[0], s01[1], s23[0], s23[1])
}

/// AVX2 arm of the Lorenzo-error bound test: accumulates the block's
/// absolute Lorenzo error exactly like the scalar scan (ordered lane folds)
/// and answers `err > bound`, bailing out after any row once the monotone
/// partial sum already exceeds `bound` — the decision is identical, most of
/// the scan is skipped on regression-dominated data.
///
/// # Safety
/// Requires AVX2 (guaranteed by the dispatcher).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn lorenzo_exceeds_avx2(
    field: &Field3,
    origin: [usize; 3],
    size: Dims3,
    bound: f64,
) -> bool {
    let d = field.dims();
    let data = field.data();
    let (sx, sy) = (d.ny * d.nz, d.nz);
    let mut acc = 0.0f64;
    for x in 0..size.nx {
        let gx = origin[0] + x;
        for y in 0..size.ny {
            let gy = origin[1] + y;
            let row = d.idx(gx, gy, origin[2]);
            if gx == 0 || gy == 0 {
                for z in 0..size.nz {
                    let gz = origin[2] + z;
                    let pred = lorenzo(data, d, gx, gy, gz);
                    acc += (data[row + z] as f64 - pred).abs();
                }
            } else {
                let mut i = row;
                if origin[2] == 0 {
                    let pred = lorenzo(data, d, gx, gy, 0);
                    acc += (data[i] as f64 - pred).abs();
                    i += 1;
                }
                let end = row + size.nz;
                while i + 4 <= end {
                    // Same term order as `lorenzo_interior`, per lane.
                    let pred = _mm256_add_pd(
                        _mm256_sub_pd(
                            _mm256_sub_pd(
                                _mm256_sub_pd(
                                    _mm256_add_pd(
                                        _mm256_add_pd(ld4(data, i - sx), ld4(data, i - sy)),
                                        ld4(data, i - 1),
                                    ),
                                    ld4(data, i - sx - sy),
                                ),
                                ld4(data, i - sx - 1),
                            ),
                            ld4(data, i - sy - 1),
                        ),
                        ld4(data, i - sx - sy - 1),
                    );
                    let dv = abs4(_mm256_sub_pd(ld4(data, i), pred));
                    let mut t = [0f64; 4];
                    _mm256_storeu_pd(t.as_mut_ptr(), dv);
                    acc += t[0];
                    acc += t[1];
                    acc += t[2];
                    acc += t[3];
                    i += 4;
                }
                while i < end {
                    let pred = lorenzo_interior(data, i, sx, sy);
                    acc += (data[i] as f64 - pred).abs();
                    i += 1;
                }
            }
            if acc > bound {
                return true;
            }
        }
    }
    acc > bound
}

/// SSE2 arm of [`lorenzo_exceeds_avx2`] (two stencils per step).
///
/// # Safety
/// SSE2 baseline.
pub(super) unsafe fn lorenzo_exceeds_sse2(
    field: &Field3,
    origin: [usize; 3],
    size: Dims3,
    bound: f64,
) -> bool {
    let d = field.dims();
    let data = field.data();
    let (sx, sy) = (d.ny * d.nz, d.nz);
    let mut acc = 0.0f64;
    for x in 0..size.nx {
        let gx = origin[0] + x;
        for y in 0..size.ny {
            let gy = origin[1] + y;
            let row = d.idx(gx, gy, origin[2]);
            if gx == 0 || gy == 0 {
                for z in 0..size.nz {
                    let gz = origin[2] + z;
                    let pred = lorenzo(data, d, gx, gy, gz);
                    acc += (data[row + z] as f64 - pred).abs();
                }
            } else {
                let mut i = row;
                if origin[2] == 0 {
                    let pred = lorenzo(data, d, gx, gy, 0);
                    acc += (data[i] as f64 - pred).abs();
                    i += 1;
                }
                let end = row + size.nz;
                while i + 2 <= end {
                    let pred = _mm_add_pd(
                        _mm_sub_pd(
                            _mm_sub_pd(
                                _mm_sub_pd(
                                    _mm_add_pd(
                                        _mm_add_pd(ld2(data, i - sx), ld2(data, i - sy)),
                                        ld2(data, i - 1),
                                    ),
                                    ld2(data, i - sx - sy),
                                ),
                                ld2(data, i - sx - 1),
                            ),
                            ld2(data, i - sy - 1),
                        ),
                        ld2(data, i - sx - sy - 1),
                    );
                    let dv = abs2(_mm_sub_pd(ld2(data, i), pred));
                    let mut t = [0f64; 2];
                    _mm_storeu_pd(t.as_mut_ptr(), dv);
                    acc += t[0];
                    acc += t[1];
                    i += 2;
                }
                while i < end {
                    let pred = lorenzo_interior(data, i, sx, sy);
                    acc += (data[i] as f64 - pred).abs();
                    i += 1;
                }
            }
            if acc > bound {
                return true;
            }
        }
    }
    acc > bound
}

/// AVX2 arm of the plane-predictor error scan over a whole block
/// (predictions `((c0 + c1·x) + c2·y) + c3·z`), ordered folds like the
/// Lorenzo scan.
///
/// # Safety
/// Requires AVX2 (guaranteed by the dispatcher).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn plane_err_block_avx2(
    field: &Field3,
    origin: [usize; 3],
    size: Dims3,
    plane: &Plane,
) -> f64 {
    let d = field.dims();
    let data = field.data();
    let c3 = plane.c[3] as f64;
    let c3v = _mm256_set1_pd(c3);
    let four = _mm256_set1_pd(4.0);
    let zv0 = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
    let mut acc = 0.0f64;
    for x in 0..size.nx {
        let bx = plane.c[0] as f64 + plane.c[1] as f64 * x as f64;
        for y in 0..size.ny {
            let bxy = bx + plane.c[2] as f64 * y as f64;
            let row = d.idx(origin[0] + x, origin[1] + y, origin[2]);
            let bxv = _mm256_set1_pd(bxy);
            let mut zv = zv0;
            let mut z = 0usize;
            while z + 4 <= size.nz {
                let pred = _mm256_add_pd(bxv, _mm256_mul_pd(c3v, zv));
                let dv = abs4(_mm256_sub_pd(ld4(data, row + z), pred));
                let mut t = [0f64; 4];
                _mm256_storeu_pd(t.as_mut_ptr(), dv);
                acc += t[0];
                acc += t[1];
                acc += t[2];
                acc += t[3];
                zv = _mm256_add_pd(zv, four);
                z += 4;
            }
            while z < size.nz {
                let pred = bxy + c3 * z as f64;
                acc += (data[row + z] as f64 - pred).abs();
                z += 1;
            }
        }
    }
    acc
}

/// SSE2 arm of [`plane_err_block_avx2`].
///
/// # Safety
/// SSE2 baseline.
pub(super) unsafe fn plane_err_block_sse2(
    field: &Field3,
    origin: [usize; 3],
    size: Dims3,
    plane: &Plane,
) -> f64 {
    let d = field.dims();
    let data = field.data();
    let c3 = plane.c[3] as f64;
    let c3v = _mm_set1_pd(c3);
    let two = _mm_set1_pd(2.0);
    let zv0 = _mm_set_pd(1.0, 0.0);
    let mut acc = 0.0f64;
    for x in 0..size.nx {
        let bx = plane.c[0] as f64 + plane.c[1] as f64 * x as f64;
        for y in 0..size.ny {
            let bxy = bx + plane.c[2] as f64 * y as f64;
            let row = d.idx(origin[0] + x, origin[1] + y, origin[2]);
            let bxv = _mm_set1_pd(bxy);
            let mut zv = zv0;
            let mut z = 0usize;
            while z + 2 <= size.nz {
                let pred = _mm_add_pd(bxv, _mm_mul_pd(c3v, zv));
                let dv = abs2(_mm_sub_pd(ld2(data, row + z), pred));
                let mut t = [0f64; 2];
                _mm_storeu_pd(t.as_mut_ptr(), dv);
                acc += t[0];
                acc += t[1];
                zv = _mm_add_pd(zv, two);
                z += 2;
            }
            while z < size.nz {
                let pred = bxy + c3 * z as f64;
                acc += (data[row + z] as f64 - pred).abs();
                z += 1;
            }
        }
    }
    acc
}

/// AVX2 arm of the plane-path quantize over a whole block. Groups of four
/// take the vector fast path only when every lane is predicted, tie-free and
/// passes both reconstruction rechecks; otherwise the group replays through
/// [`encode_point`] so codes, outliers and reconstructions land exactly as
/// the scalar loop would.
///
/// # Safety
/// Requires AVX2 (guaranteed by the dispatcher).
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
pub(super) unsafe fn quant_plane_block_avx2(
    q: &LinearQuantizer,
    data: &[f32],
    recon: &mut [f32],
    dims: Dims3,
    origin: [usize; 3],
    size: Dims3,
    plane: &Plane,
    codes: &mut Vec<u32>,
    outliers: &mut Vec<f32>,
) {
    let c3 = plane.c[3] as f64;
    let sign = _mm256_set1_pd(-0.0);
    let half = _mm256_set1_pd(0.5);
    let eb2v = _mm256_set1_pd(2.0 * q.eb());
    let ebv = _mm256_set1_pd(q.eb());
    let limv = _mm256_set1_pd((q.radius() - 1) as f64 - 0.5);
    let tiev = _mm256_set1_pd(TIE);
    let radv = _mm_set1_epi32(q.radius() as i32);
    let c3v = _mm256_set1_pd(c3);
    let four = _mm256_set1_pd(4.0);
    let zv0 = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
    for x in 0..size.nx {
        let bx = plane.c[0] as f64 + plane.c[1] as f64 * x as f64;
        for y in 0..size.ny {
            // ((c0 + c1·x) + c2·y) + c3·z, the `eval` association.
            let bxy = bx + plane.c[2] as f64 * y as f64;
            let row = dims.idx(origin[0] + x, origin[1] + y, origin[2]);
            let bxv = _mm256_set1_pd(bxy);
            let mut zv = zv0;
            let mut z = 0usize;
            while z + 4 <= size.nz {
                let pred = _mm256_add_pd(bxv, _mm256_mul_pd(c3v, zv));
                let a = ld4(data, row + z);
                let t = _mm256_div_pd(_mm256_sub_pd(a, pred), eb2v);
                let tabs = abs4(t);
                // In-range (NaN fails, like the scalar negated compare) and
                // not the rounding tie.
                let ok1 = _mm256_cmp_pd::<_CMP_LT_OQ>(tabs, limv);
                let tie = _mm256_cmp_pd::<_CMP_EQ_OQ>(tabs, tiev);
                let rt = _mm256_add_pd(t, _mm256_or_pd(_mm256_and_pd(t, sign), half));
                let qi = _mm256_cvttpd_epi32(rt); // |t| < 32766.5: fits i32
                let recon64 = _mm256_add_pd(pred, _mm256_mul_pd(eb2v, _mm256_cvtepi32_pd(qi)));
                let ok2 = _mm256_cmp_pd::<_CMP_LE_OQ>(abs4(_mm256_sub_pd(recon64, a)), ebv);
                let r32 = _mm256_cvtpd_ps(recon64);
                let ok3 =
                    _mm256_cmp_pd::<_CMP_LE_OQ>(abs4(_mm256_sub_pd(_mm256_cvtps_pd(r32), a)), ebv);
                let ok = _mm256_and_pd(_mm256_and_pd(ok1, ok2), ok3);
                if _mm256_movemask_pd(ok) == 0xF && _mm256_movemask_pd(tie) == 0 {
                    let mut cs = [0u32; 4];
                    _mm_storeu_si128(cs.as_mut_ptr() as *mut __m128i, _mm_add_epi32(qi, radv));
                    codes.extend_from_slice(&cs);
                    _mm_storeu_ps(recon.as_mut_ptr().add(row + z), r32);
                } else {
                    for j in z..z + 4 {
                        let p = bxy + c3 * j as f64;
                        recon[row + j] = encode_point(q, data[row + j], p, codes, outliers);
                    }
                }
                zv = _mm256_add_pd(zv, four);
                z += 4;
            }
            while z < size.nz {
                let p = bxy + c3 * z as f64;
                recon[row + z] = encode_point(q, data[row + z], p, codes, outliers);
                z += 1;
            }
        }
    }
}

/// SSE2 arm of [`quant_plane_block_avx2`] (pairs instead of quads).
///
/// # Safety
/// SSE2 baseline.
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn quant_plane_block_sse2(
    q: &LinearQuantizer,
    data: &[f32],
    recon: &mut [f32],
    dims: Dims3,
    origin: [usize; 3],
    size: Dims3,
    plane: &Plane,
    codes: &mut Vec<u32>,
    outliers: &mut Vec<f32>,
) {
    let c3 = plane.c[3] as f64;
    let sign = _mm_set1_pd(-0.0);
    let half = _mm_set1_pd(0.5);
    let eb2v = _mm_set1_pd(2.0 * q.eb());
    let ebv = _mm_set1_pd(q.eb());
    let limv = _mm_set1_pd((q.radius() - 1) as f64 - 0.5);
    let tiev = _mm_set1_pd(TIE);
    let radv = _mm_set1_epi32(q.radius() as i32);
    let c3v = _mm_set1_pd(c3);
    let two = _mm_set1_pd(2.0);
    let zv0 = _mm_set_pd(1.0, 0.0);
    for x in 0..size.nx {
        let bx = plane.c[0] as f64 + plane.c[1] as f64 * x as f64;
        for y in 0..size.ny {
            let bxy = bx + plane.c[2] as f64 * y as f64;
            let row = dims.idx(origin[0] + x, origin[1] + y, origin[2]);
            let bxv = _mm_set1_pd(bxy);
            let mut zv = zv0;
            let mut z = 0usize;
            while z + 2 <= size.nz {
                let pred = _mm_add_pd(bxv, _mm_mul_pd(c3v, zv));
                let a = ld2(data, row + z);
                let t = _mm_div_pd(_mm_sub_pd(a, pred), eb2v);
                let tabs = abs2(t);
                let ok1 = _mm_cmplt_pd(tabs, limv);
                let tie = _mm_cmpeq_pd(tabs, tiev);
                let rt = _mm_add_pd(t, _mm_or_pd(_mm_and_pd(t, sign), half));
                let qi = _mm_cvttpd_epi32(rt);
                let recon64 = _mm_add_pd(pred, _mm_mul_pd(eb2v, _mm_cvtepi32_pd(qi)));
                let ok2 = _mm_cmple_pd(abs2(_mm_sub_pd(recon64, a)), ebv);
                let r32 = _mm_cvtpd_ps(recon64);
                let ok3 = _mm_cmple_pd(abs2(_mm_sub_pd(_mm_cvtps_pd(r32), a)), ebv);
                let ok = _mm_and_pd(_mm_and_pd(ok1, ok2), ok3);
                if _mm_movemask_pd(ok) == 0x3 && _mm_movemask_pd(tie) == 0 {
                    let mut cs = [0u32; 4];
                    _mm_storeu_si128(cs.as_mut_ptr() as *mut __m128i, _mm_add_epi32(qi, radv));
                    codes.extend_from_slice(&cs[..2]);
                    let mut rs = [0f32; 4];
                    _mm_storeu_ps(rs.as_mut_ptr(), r32);
                    recon[row + z] = rs[0];
                    recon[row + z + 1] = rs[1];
                } else {
                    for j in z..z + 2 {
                        let p = bxy + c3 * j as f64;
                        recon[row + j] = encode_point(q, data[row + j], p, codes, outliers);
                    }
                }
                zv = _mm_add_pd(zv, two);
                z += 2;
            }
            while z < size.nz {
                let p = bxy + c3 * z as f64;
                recon[row + z] = encode_point(q, data[row + z], p, codes, outliers);
                z += 1;
            }
        }
    }
}

/// AVX2 arm of the plane-path recover over a whole block: codes back to
/// reconstructions. Any `UNPREDICTABLE` lane replays the group through
/// [`decode_value`] (outlier cursor order is preserved). `codes` holds
/// exactly this block's codes in point order.
///
/// # Safety
/// Requires AVX2 (guaranteed by the dispatcher).
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
pub(super) unsafe fn recover_plane_block_avx2(
    q: &LinearQuantizer,
    codes: &[u32],
    recon: &mut [f32],
    dims: Dims3,
    origin: [usize; 3],
    size: Dims3,
    plane: &Plane,
    outliers: &[f32],
    oi: &mut usize,
    ok: &mut bool,
) {
    let c3 = plane.c[3] as f64;
    let eb2v = _mm256_set1_pd(2.0 * q.eb());
    let radv = _mm_set1_epi32(q.radius() as i32);
    let zero = _mm_setzero_si128();
    let c3v = _mm256_set1_pd(c3);
    let four = _mm256_set1_pd(4.0);
    let zv0 = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
    let mut k = 0usize; // cursor into this block's codes
    for x in 0..size.nx {
        let bx = plane.c[0] as f64 + plane.c[1] as f64 * x as f64;
        for y in 0..size.ny {
            let bxy = bx + plane.c[2] as f64 * y as f64;
            let row = dims.idx(origin[0] + x, origin[1] + y, origin[2]);
            let bxv = _mm256_set1_pd(bxy);
            let mut zv = zv0;
            let mut z = 0usize;
            while z + 4 <= size.nz {
                let c = _mm_loadu_si128(codes.as_ptr().add(k + z) as *const __m128i);
                if _mm_movemask_epi8(_mm_cmpeq_epi32(c, zero)) == 0 {
                    let qf = _mm256_cvtepi32_pd(_mm_sub_epi32(c, radv));
                    let pred = _mm256_add_pd(bxv, _mm256_mul_pd(c3v, zv));
                    let recon64 = _mm256_add_pd(pred, _mm256_mul_pd(eb2v, qf));
                    _mm_storeu_ps(recon.as_mut_ptr().add(row + z), _mm256_cvtpd_ps(recon64));
                } else {
                    for j in z..z + 4 {
                        let p = bxy + c3 * j as f64;
                        recon[row + j] = decode_value(q, p, codes[k + j], outliers, oi, ok);
                    }
                }
                zv = _mm256_add_pd(zv, four);
                z += 4;
            }
            while z < size.nz {
                let p = bxy + c3 * z as f64;
                recon[row + z] = decode_value(q, p, codes[k + z], outliers, oi, ok);
                z += 1;
            }
            k += size.nz;
        }
    }
}

/// SSE2 arm of [`recover_plane_block_avx2`].
///
/// # Safety
/// SSE2 baseline.
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn recover_plane_block_sse2(
    q: &LinearQuantizer,
    codes: &[u32],
    recon: &mut [f32],
    dims: Dims3,
    origin: [usize; 3],
    size: Dims3,
    plane: &Plane,
    outliers: &[f32],
    oi: &mut usize,
    ok: &mut bool,
) {
    let c3 = plane.c[3] as f64;
    let eb2v = _mm_set1_pd(2.0 * q.eb());
    let radv = _mm_set1_epi32(q.radius() as i32);
    let c3v = _mm_set1_pd(c3);
    let two = _mm_set1_pd(2.0);
    let zv0 = _mm_set_pd(1.0, 0.0);
    let mut k = 0usize;
    for x in 0..size.nx {
        let bx = plane.c[0] as f64 + plane.c[1] as f64 * x as f64;
        for y in 0..size.ny {
            let bxy = bx + plane.c[2] as f64 * y as f64;
            let row = dims.idx(origin[0] + x, origin[1] + y, origin[2]);
            let bxv = _mm_set1_pd(bxy);
            let mut zv = zv0;
            let mut z = 0usize;
            while z + 2 <= size.nz {
                let (c0, c1) = (codes[k + z], codes[k + z + 1]);
                if c0 != 0 && c1 != 0 {
                    let c = _mm_set_epi32(0, 0, c1 as i32, c0 as i32);
                    let qf = _mm_cvtepi32_pd(_mm_sub_epi32(c, radv));
                    let pred = _mm_add_pd(bxv, _mm_mul_pd(c3v, zv));
                    let recon64 = _mm_add_pd(pred, _mm_mul_pd(eb2v, qf));
                    let mut rs = [0f32; 4];
                    _mm_storeu_ps(rs.as_mut_ptr(), _mm_cvtpd_ps(recon64));
                    recon[row + z] = rs[0];
                    recon[row + z + 1] = rs[1];
                } else {
                    for j in z..z + 2 {
                        let p = bxy + c3 * j as f64;
                        recon[row + j] = decode_value(q, p, codes[k + j], outliers, oi, ok);
                    }
                }
                zv = _mm_add_pd(zv, two);
                z += 2;
            }
            while z < size.nz {
                let p = bxy + c3 * z as f64;
                recon[row + z] = decode_value(q, p, codes[k + z], outliers, oi, ok);
                z += 1;
            }
            k += size.nz;
        }
    }
}
