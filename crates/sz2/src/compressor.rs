//! Block-wise compression engine (Lorenzo ∥ regression selection).

use crate::Sz2Config;
use hqmr_codec::{
    check_stream_id, huffman_decode, huffman_encode, pack_maybe_rle, push_stream_id, read_uvarint,
    rle_decode, rle_encode, tag, unpack_maybe_rle, write_uvarint, Codec, CodecError, Container,
    LinearQuantizer, QuantOutcome,
};
use hqmr_grid::{BlockGrid, Dims3, Field3};

/// SZ2's codec/stream id (also the per-stream section tag in MR containers).
pub const SZ2_CODEC_ID: u32 = tag(b"SZ2S");

const TAG_HEAD: u32 = tag(b"S2HD");
const TAG_FLAGS: u32 = tag(b"FLGS");
const TAG_COEFFS: u32 = tag(b"COEF");
const TAG_CODES: u32 = tag(b"QNTC");
const TAG_OUTLIERS: u32 = tag(b"UNPR");

/// Decompression errors — the shared [`CodecError`] under SZ2's historical
/// name.
pub type Sz2Error = CodecError;

/// Output of [`compress`].
#[derive(Debug, Clone)]
pub struct CompressResult {
    /// Serialized stream.
    pub bytes: Vec<u8>,
    /// Blocks that chose the Lorenzo predictor.
    pub lorenzo_blocks: usize,
    /// Blocks that chose the regression predictor.
    pub regression_blocks: usize,
    /// Out-of-band points.
    pub outliers: usize,
}

impl CompressResult {
    /// Compression ratio versus raw `f32`.
    pub fn ratio(&self, n_points: usize) -> f64 {
        (n_points * 4) as f64 / self.bytes.len() as f64
    }
}

/// Fitted plane coefficients `v ≈ c0 + c1·x + c2·y + c3·z` (block-local coords).
#[derive(Debug, Clone, Copy)]
struct Plane {
    c: [f32; 4],
}

impl Plane {
    #[inline]
    fn eval(&self, x: usize, y: usize, z: usize) -> f64 {
        self.c[0] as f64
            + self.c[1] as f64 * x as f64
            + self.c[2] as f64 * y as f64
            + self.c[3] as f64 * z as f64
    }
}

/// Least-squares plane fit over a block. The regular grid makes the normal
/// equations diagonal after centring, so the fit is four running sums.
fn fit_plane(field: &Field3, origin: [usize; 3], size: Dims3) -> Plane {
    let n = size.len() as f64;
    let mean_c = |e: usize| (e as f64 - 1.0) / 2.0;
    let (mx, my, mz) = (mean_c(size.nx), mean_c(size.ny), mean_c(size.nz));
    // var(axis) summed over the block = n/extent * Σ(i-mean)² etc.
    let axis_var = |e: usize| -> f64 {
        (0..e).map(|i| (i as f64 - mean_c(e)).powi(2)).sum::<f64>() * n / e as f64
    };
    let (vx, vy, vz) = (axis_var(size.nx), axis_var(size.ny), axis_var(size.nz));
    let mut sum = 0.0f64;
    let mut cx = 0.0f64;
    let mut cy = 0.0f64;
    let mut cz = 0.0f64;
    for x in 0..size.nx {
        for y in 0..size.ny {
            for z in 0..size.nz {
                let v = field.get(origin[0] + x, origin[1] + y, origin[2] + z) as f64;
                sum += v;
                cx += (x as f64 - mx) * v;
                cy += (y as f64 - my) * v;
                cz += (z as f64 - mz) * v;
            }
        }
    }
    let mean = sum / n;
    let c1 = if vx > 0.0 { cx / vx } else { 0.0 };
    let c2 = if vy > 0.0 { cy / vy } else { 0.0 };
    let c3 = if vz > 0.0 { cz / vz } else { 0.0 };
    let c0 = mean - c1 * mx - c2 * my - c3 * mz;
    Plane {
        c: [c0 as f32, c1 as f32, c2 as f32, c3 as f32],
    }
}

/// 3-D first-order Lorenzo prediction from the reconstruction buffer.
/// Out-of-domain neighbours read as 0 (SZ convention).
#[inline]
fn lorenzo(buf: &[f32], dims: Dims3, x: usize, y: usize, z: usize) -> f64 {
    let at = |x: isize, y: isize, z: isize| -> f64 {
        if x < 0 || y < 0 || z < 0 {
            0.0
        } else {
            buf[dims.idx(x as usize, y as usize, z as usize)] as f64
        }
    };
    let (xi, yi, zi) = (x as isize, y as isize, z as isize);
    at(xi - 1, yi, zi) + at(xi, yi - 1, zi) + at(xi, yi, zi - 1)
        - at(xi - 1, yi - 1, zi)
        - at(xi - 1, yi, zi - 1)
        - at(xi, yi - 1, zi - 1)
        + at(xi - 1, yi - 1, zi - 1)
}

/// Estimated absolute Lorenzo error over the block, computed on *original*
/// data (SZ2's selection heuristic: cheap, no reconstruction dependency).
fn estimate_lorenzo_err(field: &Field3, origin: [usize; 3], size: Dims3) -> f64 {
    let d = field.dims();
    let mut acc = 0.0f64;
    for x in 0..size.nx {
        for y in 0..size.ny {
            for z in 0..size.nz {
                let (gx, gy, gz) = (origin[0] + x, origin[1] + y, origin[2] + z);
                let pred = lorenzo(field.data(), d, gx, gy, gz);
                acc += (field.get(gx, gy, gz) as f64 - pred).abs();
            }
        }
    }
    acc
}

fn estimate_plane_err(field: &Field3, origin: [usize; 3], size: Dims3, plane: &Plane) -> f64 {
    let mut acc = 0.0f64;
    for x in 0..size.nx {
        for y in 0..size.ny {
            for z in 0..size.nz {
                let v = field.get(origin[0] + x, origin[1] + y, origin[2] + z) as f64;
                acc += (v - plane.eval(x, y, z)).abs();
            }
        }
    }
    acc
}

/// Quantizes `actual` against `pred`, pushing the code and maintaining the
/// invariant that the returned value (stored in the reconstruction buffer)
/// matches decompression bit-for-bit.
#[inline]
fn encode_point(
    q: &LinearQuantizer,
    actual: f32,
    pred: f64,
    codes: &mut Vec<u32>,
    outliers: &mut Vec<f32>,
) -> f32 {
    match q.quantize(actual as f64, pred) {
        QuantOutcome::Predicted { code, recon } => {
            let r32 = recon as f32;
            if (r32 as f64 - actual as f64).abs() <= q.eb() {
                codes.push(code);
                return r32;
            }
            codes.push(LinearQuantizer::UNPREDICTABLE);
            outliers.push(actual);
            actual
        }
        QuantOutcome::Unpredictable => {
            codes.push(LinearQuantizer::UNPREDICTABLE);
            outliers.push(actual);
            actual
        }
    }
}

/// Compresses `field` under `cfg`. The absolute error bound holds pointwise.
pub fn compress(field: &Field3, cfg: &Sz2Config) -> CompressResult {
    let (c, lorenzo_blocks, regression_blocks, outliers) = compress_container(field, cfg);
    CompressResult {
        bytes: c.to_bytes(),
        lorenzo_blocks,
        regression_blocks,
        outliers,
    }
}

/// [`compress`] serializing into a caller-owned buffer (cleared first), so
/// per-chunk writers reuse one output allocation.
pub fn compress_into(field: &Field3, cfg: &Sz2Config, out: &mut Vec<u8>) {
    out.clear();
    let (c, _, _, _) = compress_container(field, cfg);
    c.write_into(out);
}

/// The compression pipeline up to (but not including) serialization.
/// Returns `(container, lorenzo_blocks, regression_blocks, outliers)`.
fn compress_container(field: &Field3, cfg: &Sz2Config) -> (Container, usize, usize, usize) {
    let dims = field.dims();
    let grid = BlockGrid::new(dims, cfg.block);
    let q = LinearQuantizer::new(cfg.eb);

    let mut recon = vec![0f32; dims.len()];
    let mut codes: Vec<u32> = Vec::with_capacity(dims.len());
    let mut outliers: Vec<f32> = Vec::new();
    let mut flags: Vec<u8> = Vec::with_capacity(grid.num_blocks());
    let mut coeffs: Vec<u8> = Vec::new();
    let (mut n_lorenzo, mut n_regression) = (0usize, 0usize);

    for blk in grid.iter() {
        let plane = fit_plane(field, blk.origin, blk.size);
        let use_regression = blk.size.len() >= 8 && {
            let le = estimate_lorenzo_err(field, blk.origin, blk.size);
            let pe = estimate_plane_err(field, blk.origin, blk.size, &plane);
            pe < le
        };
        flags.push(use_regression as u8);
        if use_regression {
            n_regression += 1;
            for c in plane.c {
                coeffs.extend_from_slice(&c.to_le_bytes());
            }
            for x in 0..blk.size.nx {
                for y in 0..blk.size.ny {
                    for z in 0..blk.size.nz {
                        let (gx, gy, gz) =
                            (blk.origin[0] + x, blk.origin[1] + y, blk.origin[2] + z);
                        let actual = field.get(gx, gy, gz);
                        let pred = plane.eval(x, y, z);
                        recon[dims.idx(gx, gy, gz)] =
                            encode_point(&q, actual, pred, &mut codes, &mut outliers);
                    }
                }
            }
        } else {
            n_lorenzo += 1;
            for x in 0..blk.size.nx {
                for y in 0..blk.size.ny {
                    for z in 0..blk.size.nz {
                        let (gx, gy, gz) =
                            (blk.origin[0] + x, blk.origin[1] + y, blk.origin[2] + z);
                        let actual = field.get(gx, gy, gz);
                        let pred = lorenzo(&recon, dims, gx, gy, gz);
                        recon[dims.idx(gx, gy, gz)] =
                            encode_point(&q, actual, pred, &mut codes, &mut outliers);
                    }
                }
            }
        }
    }

    let mut head = Vec::new();
    write_uvarint(&mut head, dims.nx as u64);
    write_uvarint(&mut head, dims.ny as u64);
    write_uvarint(&mut head, dims.nz as u64);
    write_uvarint(&mut head, cfg.block as u64);
    head.extend_from_slice(&cfg.eb.to_le_bytes());

    let mut out_bytes = Vec::with_capacity(outliers.len() * 4 + 8);
    write_uvarint(&mut out_bytes, outliers.len() as u64);
    for v in &outliers {
        out_bytes.extend_from_slice(&v.to_le_bytes());
    }

    let mut c = Container::new();
    push_stream_id(&mut c, SZ2_CODEC_ID);
    c.push(TAG_HEAD, head);
    c.push(TAG_FLAGS, rle_encode(&flags));
    c.push(TAG_COEFFS, coeffs);
    c.push(TAG_CODES, pack_maybe_rle(&huffman_encode(&codes)));
    c.push(TAG_OUTLIERS, out_bytes);
    let n_outliers = outliers.len();
    (c, n_lorenzo, n_regression, n_outliers)
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(bytes: &[u8]) -> Result<Field3, Sz2Error> {
    let mut out = Field3::zeros(Dims3::new(0, 0, 0));
    decompress_into(bytes, &mut out)?;
    Ok(out)
}

/// [`decompress`] into a caller-owned field (reshaped in place), so
/// per-chunk readers reuse one reconstruction buffer.
pub fn decompress_into(bytes: &[u8], out: &mut Field3) -> Result<(), Sz2Error> {
    let c = Container::from_bytes(bytes)?;
    check_stream_id(&c, SZ2_CODEC_ID)?;
    let head = c.require(TAG_HEAD)?;
    let mut pos = 0usize;
    let nx = read_uvarint(head, &mut pos).ok_or(Sz2Error::Malformed("dims"))? as usize;
    let ny = read_uvarint(head, &mut pos).ok_or(Sz2Error::Malformed("dims"))? as usize;
    let nz = read_uvarint(head, &mut pos).ok_or(Sz2Error::Malformed("dims"))? as usize;
    let block = read_uvarint(head, &mut pos).ok_or(Sz2Error::Malformed("block"))? as usize;
    if block < 2 {
        return Err(Sz2Error::Malformed("block size"));
    }
    let tail = head.get(pos..pos + 8).ok_or(Sz2Error::Malformed("eb"))?;
    let eb = f64::from_le_bytes(tail.try_into().unwrap());
    if !(eb.is_finite() && eb > 0.0) {
        return Err(Sz2Error::Malformed("eb"));
    }
    let dims = Dims3::new(nx, ny, nz);
    let grid = BlockGrid::new(dims, block);
    let q = LinearQuantizer::new(eb);

    let flags = rle_decode(c.require(TAG_FLAGS)?).ok_or(Sz2Error::Malformed("flags"))?;
    if flags.len() != grid.num_blocks() {
        return Err(Sz2Error::Malformed("flag count"));
    }
    let coeff_bytes = c.require(TAG_COEFFS)?;
    let n_reg = flags.iter().filter(|&&f| f == 1).count();
    if coeff_bytes.len() != n_reg * 16 {
        return Err(Sz2Error::Malformed("coefficient payload"));
    }
    let packed = unpack_maybe_rle(c.require(TAG_CODES)?).ok_or(Sz2Error::Malformed("codes"))?;
    let codes = huffman_decode(&packed)?;
    if codes.len() != dims.len() {
        return Err(Sz2Error::Malformed("code count"));
    }
    let out_bytes = c.require(TAG_OUTLIERS)?;
    let mut opos = 0usize;
    let n_out = read_uvarint(out_bytes, &mut opos).ok_or(Sz2Error::Malformed("outliers"))? as usize;
    let payload = out_bytes
        .get(opos..opos + n_out * 4)
        .ok_or(Sz2Error::Malformed("outlier payload"))?;
    let outliers: Vec<f32> = payload
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect();

    out.reshape(dims, 0.0);
    let recon = out.data_mut();
    let mut code_it = codes.iter();
    let mut out_it = outliers.iter();
    let mut coeff_it = coeff_bytes.chunks_exact(16);
    let mut underrun = false;
    let mut decode_point = |pred: f64, recon_cell: &mut f32| {
        let Some(&code) = code_it.next() else {
            underrun = true;
            return;
        };
        *recon_cell = if code == LinearQuantizer::UNPREDICTABLE {
            match out_it.next() {
                Some(&v) => v,
                None => {
                    underrun = true;
                    0.0
                }
            }
        } else {
            q.recover(code, pred) as f32
        };
    };

    for (bi, blk) in grid.iter().enumerate() {
        if flags[bi] == 1 {
            let cb = coeff_it.next().ok_or(Sz2Error::Malformed("coefficients"))?;
            let plane = Plane {
                c: [
                    f32::from_le_bytes(cb[0..4].try_into().unwrap()),
                    f32::from_le_bytes(cb[4..8].try_into().unwrap()),
                    f32::from_le_bytes(cb[8..12].try_into().unwrap()),
                    f32::from_le_bytes(cb[12..16].try_into().unwrap()),
                ],
            };
            for x in 0..blk.size.nx {
                for y in 0..blk.size.ny {
                    for z in 0..blk.size.nz {
                        let idx = dims.idx(blk.origin[0] + x, blk.origin[1] + y, blk.origin[2] + z);
                        let pred = plane.eval(x, y, z);
                        let mut cell = 0f32;
                        decode_point(pred, &mut cell);
                        recon[idx] = cell;
                    }
                }
            }
        } else {
            for x in 0..blk.size.nx {
                for y in 0..blk.size.ny {
                    for z in 0..blk.size.nz {
                        let (gx, gy, gz) =
                            (blk.origin[0] + x, blk.origin[1] + y, blk.origin[2] + z);
                        let pred = lorenzo(recon, dims, gx, gy, gz);
                        let mut cell = 0f32;
                        decode_point(pred, &mut cell);
                        recon[dims.idx(gx, gy, gz)] = cell;
                    }
                }
            }
        }
    }
    if underrun {
        return Err(Sz2Error::Malformed("stream underrun"));
    }
    Ok(())
}

/// SZ2 as a pluggable [`Codec`] backend: the block size is the codec-specific
/// knob; the error bound arrives per call through the trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sz2Codec {
    /// Block side length (6 for uniform data, 4 for multi-resolution data).
    pub block: usize,
}

impl Default for Sz2Codec {
    fn default() -> Self {
        Sz2Codec { block: 6 }
    }
}

impl Sz2Codec {
    /// AMRIC's multi-resolution configuration (4³ blocks).
    pub const MULTIRES: Sz2Codec = Sz2Codec { block: 4 };
}

impl Codec for Sz2Codec {
    fn id(&self) -> u32 {
        SZ2_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "sz2"
    }

    fn compress(&self, field: &Field3, eb: f64) -> Vec<u8> {
        compress(
            field,
            &Sz2Config {
                eb,
                block: self.block,
            },
        )
        .bytes
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Field3, CodecError> {
        decompress(bytes)
    }

    fn compress_into(&self, field: &Field3, eb: f64, out: &mut Vec<u8>) {
        compress_into(
            field,
            &Sz2Config {
                eb,
                block: self.block,
            },
            out,
        );
    }

    fn decompress_into(&self, bytes: &[u8], out: &mut Field3) -> Result<(), CodecError> {
        decompress_into(bytes, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_fit_recovers_exact_plane() {
        let f = Field3::from_fn(Dims3::cube(6), |x, y, z| {
            2.0 + 1.5 * x as f32 - 0.5 * y as f32 + 0.25 * z as f32
        });
        let p = fit_plane(&f, [0, 0, 0], Dims3::cube(6));
        assert!((p.c[0] - 2.0).abs() < 1e-4);
        assert!((p.c[1] - 1.5).abs() < 1e-5);
        assert!((p.c[2] + 0.5).abs() < 1e-5);
        assert!((p.c[3] - 0.25).abs() < 1e-5);
    }

    #[test]
    fn plane_fit_degenerate_axis() {
        // A 1-thick block cannot constrain its axis slope; fit must not NaN.
        let f = Field3::from_fn(Dims3::new(1, 4, 4), |_, y, z| (y + z) as f32);
        let p = fit_plane(&f, [0, 0, 0], Dims3::new(1, 4, 4));
        assert!(p.c.iter().all(|c| c.is_finite()));
        assert!((p.eval(0, 1, 2) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn lorenzo_constant_field_is_exact() {
        let dims = Dims3::cube(4);
        let buf = vec![5.0f32; dims.len()];
        // Interior point: Lorenzo of a constant field returns the constant.
        assert!((lorenzo(&buf, dims, 2, 2, 2) - 5.0).abs() < 1e-12);
        // Corner point: all neighbours out of domain => 0.
        assert_eq!(lorenzo(&buf, dims, 0, 0, 0), 0.0);
    }

    #[test]
    fn lorenzo_linear_field_is_exact_interior() {
        let dims = Dims3::cube(5);
        let f = Field3::from_fn(dims, |x, y, z| (3 * x + 2 * y + z) as f32);
        for x in 1..5 {
            for y in 1..5 {
                for z in 1..5 {
                    let pred = lorenzo(f.data(), dims, x, y, z);
                    assert!((pred - f.get(x, y, z) as f64).abs() < 1e-9);
                }
            }
        }
    }
}
