//! Block-wise compression engine (Lorenzo ∥ regression selection).
//!
//! The per-block kernels are split interior/boundary: rows whose `x`/`y`
//! coordinate touches the domain face (or whose first cell sits at `z = 0`)
//! take the general edge-aware [`lorenzo`] gather, every other row runs a
//! branch-free inner loop over direct indices — seven neighbour loads at
//! fixed offsets instead of seven bounds-tested coordinate probes, with the
//! plane predictor's row terms hoisted (`(c0 + c1·x) + c2·y` once per row;
//! the float associativity is unchanged, so predictions are bit-identical).
//! The pre-overhaul per-point loops survive in [`reference`] as the
//! differential oracle.

use crate::Sz2Config;
use hqmr_codec::kernels::{self, SimdLevel};
use hqmr_codec::{
    check_stream_id, huffman_decode, huffman_encode_packed, push_stream_id, read_uvarint,
    rle_decode, rle_encode, tag, unpack_maybe_rle, write_uvarint, Codec, CodecError, Container,
    LinearQuantizer, QuantOutcome,
};
use hqmr_grid::{BlockGrid, Dims3, Field3};

#[cfg(target_arch = "x86_64")]
mod simd;

/// SZ2's codec/stream id (also the per-stream section tag in MR containers).
pub const SZ2_CODEC_ID: u32 = tag(b"SZ2S");

const TAG_HEAD: u32 = tag(b"S2HD");
const TAG_FLAGS: u32 = tag(b"FLGS");
const TAG_COEFFS: u32 = tag(b"COEF");
const TAG_CODES: u32 = tag(b"QNTC");
const TAG_OUTLIERS: u32 = tag(b"UNPR");

/// Decompression errors — the shared [`CodecError`] under SZ2's historical
/// name.
pub type Sz2Error = CodecError;

/// Output of [`compress`].
#[derive(Debug, Clone)]
pub struct CompressResult {
    /// Serialized stream.
    pub bytes: Vec<u8>,
    /// Blocks that chose the Lorenzo predictor.
    pub lorenzo_blocks: usize,
    /// Blocks that chose the regression predictor.
    pub regression_blocks: usize,
    /// Out-of-band points.
    pub outliers: usize,
}

impl CompressResult {
    /// Compression ratio versus raw `f32`.
    pub fn ratio(&self, n_points: usize) -> f64 {
        (n_points * 4) as f64 / self.bytes.len() as f64
    }
}

/// Fitted plane coefficients `v ≈ c0 + c1·x + c2·y + c3·z` (block-local coords).
#[derive(Debug, Clone, Copy)]
struct Plane {
    c: [f32; 4],
}

impl Plane {
    #[inline]
    fn eval(&self, x: usize, y: usize, z: usize) -> f64 {
        self.c[0] as f64
            + self.c[1] as f64 * x as f64
            + self.c[2] as f64 * y as f64
            + self.c[3] as f64 * z as f64
    }
}

/// Least-squares plane fit over a block. The regular grid makes the normal
/// equations diagonal after centring, so the fit is four running sums,
/// accumulated in row-major point order (bit-stable across refactors) over
/// direct row slices.
fn fit_plane(field: &Field3, origin: [usize; 3], size: Dims3) -> Plane {
    let n = size.len() as f64;
    let mean_c = |e: usize| (e as f64 - 1.0) / 2.0;
    let (mx, my, mz) = (mean_c(size.nx), mean_c(size.ny), mean_c(size.nz));
    // var(axis) summed over the block = n/extent * Σ(i-mean)² etc.
    let axis_var = |e: usize| -> f64 {
        (0..e).map(|i| (i as f64 - mean_c(e)).powi(2)).sum::<f64>() * n / e as f64
    };
    let (vx, vy, vz) = (axis_var(size.nx), axis_var(size.ny), axis_var(size.nz));
    let (sum, cx, cy, cz) = match kernels::simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { simd::fit_plane_sums_avx2(field, origin, size, mx, my, mz) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { simd::fit_plane_sums_sse2(field, origin, size, mx, my, mz) },
        _ => fit_plane_sums(field, origin, size, mx, my, mz),
    };
    let mean = sum / n;
    let c1 = if vx > 0.0 { cx / vx } else { 0.0 };
    let c2 = if vy > 0.0 { cy / vy } else { 0.0 };
    let c3 = if vz > 0.0 { cz / vz } else { 0.0 };
    let c0 = mean - c1 * mx - c2 * my - c3 * mz;
    Plane {
        c: [c0 as f32, c1 as f32, c2 as f32, c3 as f32],
    }
}

/// Scalar arm of the plane-fit accumulation: four running sums in row-major
/// point order (bit-stable across refactors — the SIMD arms keep one sum per
/// lane so each lane replays exactly this add sequence).
fn fit_plane_sums(
    field: &Field3,
    origin: [usize; 3],
    size: Dims3,
    mx: f64,
    my: f64,
    mz: f64,
) -> (f64, f64, f64, f64) {
    let dims = field.dims();
    let data = field.data();
    let mut sum = 0.0f64;
    let mut cx = 0.0f64;
    let mut cy = 0.0f64;
    let mut cz = 0.0f64;
    for x in 0..size.nx {
        let wx = x as f64 - mx;
        for y in 0..size.ny {
            let wy = y as f64 - my;
            let row = dims.idx(origin[0] + x, origin[1] + y, origin[2]);
            for (z, &vf) in data[row..row + size.nz].iter().enumerate() {
                let v = vf as f64;
                sum += v;
                cx += wx * v;
                cy += wy * v;
                cz += (z as f64 - mz) * v;
            }
        }
    }
    (sum, cx, cy, cz)
}

/// 3-D first-order Lorenzo prediction from the reconstruction buffer.
/// Out-of-domain neighbours read as 0 (SZ convention).
#[inline]
fn lorenzo(buf: &[f32], dims: Dims3, x: usize, y: usize, z: usize) -> f64 {
    let at = |x: isize, y: isize, z: isize| -> f64 {
        if x < 0 || y < 0 || z < 0 {
            0.0
        } else {
            buf[dims.idx(x as usize, y as usize, z as usize)] as f64
        }
    };
    let (xi, yi, zi) = (x as isize, y as isize, z as isize);
    at(xi - 1, yi, zi) + at(xi, yi - 1, zi) + at(xi, yi, zi - 1)
        - at(xi - 1, yi - 1, zi)
        - at(xi - 1, yi, zi - 1)
        - at(xi, yi - 1, zi - 1)
        + at(xi - 1, yi - 1, zi - 1)
}

/// The seven-neighbour Lorenzo stencil read at direct offsets from `i` —
/// the interior fast path. Term order matches [`lorenzo`] exactly.
#[inline]
fn lorenzo_interior(buf: &[f32], i: usize, sx: usize, sy: usize) -> f64 {
    buf[i - sx] as f64 + buf[i - sy] as f64 + buf[i - 1] as f64
        - buf[i - sx - sy] as f64
        - buf[i - sx - 1] as f64
        - buf[i - sy - 1] as f64
        + buf[i - sx - sy - 1] as f64
}

/// [`lorenzo_interior`] with the `z − 1` neighbour passed in a register.
/// In the quantization loops that neighbour is the value stored on the
/// previous iteration, so reading it from `buf` would put a store-to-load
/// forward on the loop-carried critical path. `prev` must equal `buf[i - 1]`
/// bit-for-bit (the caller carries the just-stored value), making this
/// identical to [`lorenzo_interior`] — term order included.
#[inline]
fn lorenzo_interior_carried(buf: &[f32], i: usize, sx: usize, sy: usize, prev: f32) -> f64 {
    buf[i - sx] as f64 + buf[i - sy] as f64 + prev as f64
        - buf[i - sx - sy] as f64
        - buf[i - sx - 1] as f64
        - buf[i - sy - 1] as f64
        + buf[i - sx - sy - 1] as f64
}

/// Whether the block's estimated absolute Lorenzo error exceeds `bound`,
/// computed on *original* data (SZ2's selection heuristic: cheap, no
/// reconstruction dependency). The error is accumulated in point order
/// exactly like the historical full scan, but because every term is
/// non-negative the partial sum is monotone — the scan bails out after any
/// row once it already exceeds `bound`, which skips most of the work on
/// regression-dominated data without ever changing the selection decision.
/// Interior rows use the direct-offset stencil; rows on a domain face fall
/// back to the edge-aware gather.
fn lorenzo_err_exceeds(field: &Field3, origin: [usize; 3], size: Dims3, bound: f64) -> bool {
    match kernels::simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { simd::lorenzo_exceeds_avx2(field, origin, size, bound) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { simd::lorenzo_exceeds_sse2(field, origin, size, bound) },
        _ => lorenzo_exceeds_scalar(field, origin, size, bound),
    }
}

/// Scalar arm of [`lorenzo_err_exceeds`] (also the non-x86 path).
fn lorenzo_exceeds_scalar(field: &Field3, origin: [usize; 3], size: Dims3, bound: f64) -> bool {
    let d = field.dims();
    let data = field.data();
    let (sx, sy) = (d.ny * d.nz, d.nz);
    let mut acc = 0.0f64;
    for x in 0..size.nx {
        let gx = origin[0] + x;
        for y in 0..size.ny {
            let gy = origin[1] + y;
            let row = d.idx(gx, gy, origin[2]);
            if gx == 0 || gy == 0 {
                for z in 0..size.nz {
                    let gz = origin[2] + z;
                    let pred = lorenzo(data, d, gx, gy, gz);
                    acc += (data[row + z] as f64 - pred).abs();
                }
            } else {
                let mut i = row;
                if origin[2] == 0 {
                    let pred = lorenzo(data, d, gx, gy, 0);
                    acc += (data[i] as f64 - pred).abs();
                    i += 1;
                }
                while i < row + size.nz {
                    let pred = lorenzo_interior(data, i, sx, sy);
                    acc += (data[i] as f64 - pred).abs();
                    i += 1;
                }
            }
            if acc > bound {
                return true;
            }
        }
    }
    acc > bound
}

/// Estimated absolute plane-predictor error over the block, accumulated in
/// point order.
fn estimate_plane_err(field: &Field3, origin: [usize; 3], size: Dims3, plane: &Plane) -> f64 {
    match kernels::simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { simd::plane_err_block_avx2(field, origin, size, plane) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { simd::plane_err_block_sse2(field, origin, size, plane) },
        _ => {
            let d = field.dims();
            let data = field.data();
            let c3 = plane.c[3] as f64;
            let mut acc = 0.0f64;
            for x in 0..size.nx {
                let bx = plane.c[0] as f64 + plane.c[1] as f64 * x as f64;
                for y in 0..size.ny {
                    // Same association as `eval`: ((c0 + c1·x) + c2·y) + c3·z.
                    let bxy = bx + plane.c[2] as f64 * y as f64;
                    let row = d.idx(origin[0] + x, origin[1] + y, origin[2]);
                    for (z, &vf) in data[row..row + size.nz].iter().enumerate() {
                        let pred = bxy + c3 * z as f64;
                        acc += (vf as f64 - pred).abs();
                    }
                }
            }
            acc
        }
    }
}

/// Quantizes `actual` against `pred`, pushing the code and maintaining the
/// invariant that the returned value (stored in the reconstruction buffer)
/// matches decompression bit-for-bit.
#[inline]
fn encode_point(
    q: &LinearQuantizer,
    actual: f32,
    pred: f64,
    codes: &mut Vec<u32>,
    outliers: &mut Vec<f32>,
) -> f32 {
    match q.quantize(actual as f64, pred) {
        QuantOutcome::Predicted { code, recon } => {
            let r32 = recon as f32;
            if (r32 as f64 - actual as f64).abs() <= q.eb() {
                codes.push(code);
                return r32;
            }
            codes.push(LinearQuantizer::UNPREDICTABLE);
            outliers.push(actual);
            actual
        }
        QuantOutcome::Unpredictable => {
            codes.push(LinearQuantizer::UNPREDICTABLE);
            outliers.push(actual);
            actual
        }
    }
}

/// Compresses `field` under `cfg`. The absolute error bound holds pointwise.
pub fn compress(field: &Field3, cfg: &Sz2Config) -> CompressResult {
    let (c, lorenzo_blocks, regression_blocks, outliers) = compress_container(field, cfg);
    CompressResult {
        bytes: c.to_bytes(),
        lorenzo_blocks,
        regression_blocks,
        outliers,
    }
}

/// [`compress`] serializing into a caller-owned buffer (cleared first), so
/// per-chunk writers reuse one output allocation.
pub fn compress_into(field: &Field3, cfg: &Sz2Config, out: &mut Vec<u8>) {
    out.clear();
    let (c, _, _, _) = compress_container(field, cfg);
    c.write_into(out);
}

/// Per-block encode state threaded through the kernel loops.
struct EncodeState {
    recon: Vec<f32>,
    codes: Vec<u32>,
    outliers: Vec<f32>,
    flags: Vec<u8>,
    coeffs: Vec<u8>,
    n_lorenzo: usize,
    n_regression: usize,
}

/// Selects the predictor for one block and records its flag/coefficients —
/// shared by the production and reference encoders so selection is defined
/// once.
fn select_block(
    field: &Field3,
    origin: [usize; 3],
    size: Dims3,
    st: &mut EncodeState,
) -> Option<Plane> {
    let plane = fit_plane(field, origin, size);
    // `pe < le` asked as `le > pe` so the (more expensive) Lorenzo scan can
    // stop as soon as its monotone partial sum settles the comparison.
    let use_regression = size.len() >= 8 && {
        let pe = estimate_plane_err(field, origin, size, &plane);
        lorenzo_err_exceeds(field, origin, size, pe)
    };
    st.flags.push(use_regression as u8);
    if use_regression {
        st.n_regression += 1;
        for c in plane.c {
            st.coeffs.extend_from_slice(&c.to_le_bytes());
        }
        Some(plane)
    } else {
        st.n_lorenzo += 1;
        None
    }
}

/// Runs the predictor-selection + quantization kernels over every block.
fn encode_blocks(field: &Field3, cfg: &Sz2Config) -> EncodeState {
    let dims = field.dims();
    let grid = BlockGrid::new(dims, cfg.block);
    let q = LinearQuantizer::new(cfg.eb);
    let data = field.data();
    let (sx, sy) = (dims.ny * dims.nz, dims.nz);

    let mut st = EncodeState {
        recon: vec![0f32; dims.len()],
        codes: Vec::with_capacity(dims.len()),
        outliers: Vec::new(),
        flags: Vec::with_capacity(grid.num_blocks()),
        coeffs: Vec::new(),
        n_lorenzo: 0,
        n_regression: 0,
    };

    let lvl = kernels::simd_level();
    for blk in grid.iter() {
        match select_block(field, blk.origin, blk.size, &mut st) {
            Some(plane) => match lvl {
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Avx2 => unsafe {
                    simd::quant_plane_block_avx2(
                        &q,
                        data,
                        &mut st.recon,
                        dims,
                        blk.origin,
                        blk.size,
                        &plane,
                        &mut st.codes,
                        &mut st.outliers,
                    )
                },
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Sse2 => unsafe {
                    simd::quant_plane_block_sse2(
                        &q,
                        data,
                        &mut st.recon,
                        dims,
                        blk.origin,
                        blk.size,
                        &plane,
                        &mut st.codes,
                        &mut st.outliers,
                    )
                },
                _ => {
                    let c3 = plane.c[3] as f64;
                    for x in 0..blk.size.nx {
                        let bx = plane.c[0] as f64 + plane.c[1] as f64 * x as f64;
                        for y in 0..blk.size.ny {
                            // ((c0 + c1·x) + c2·y) + c3·z, the `eval` association.
                            let bxy = bx + plane.c[2] as f64 * y as f64;
                            let row = dims.idx(blk.origin[0] + x, blk.origin[1] + y, blk.origin[2]);
                            for z in 0..blk.size.nz {
                                let pred = bxy + c3 * z as f64;
                                st.recon[row + z] = encode_point(
                                    &q,
                                    data[row + z],
                                    pred,
                                    &mut st.codes,
                                    &mut st.outliers,
                                );
                            }
                        }
                    }
                }
            },
            None => {
                for x in 0..blk.size.nx {
                    let gx = blk.origin[0] + x;
                    for y in 0..blk.size.ny {
                        let gy = blk.origin[1] + y;
                        let row = dims.idx(gx, gy, blk.origin[2]);
                        if gx == 0 || gy == 0 {
                            // Domain face: every cell needs the edge-aware gather.
                            for z in 0..blk.size.nz {
                                let gz = blk.origin[2] + z;
                                let pred = lorenzo(&st.recon, dims, gx, gy, gz);
                                st.recon[row + z] = encode_point(
                                    &q,
                                    data[row + z],
                                    pred,
                                    &mut st.codes,
                                    &mut st.outliers,
                                );
                            }
                        } else {
                            let mut i = row;
                            if blk.origin[2] == 0 {
                                // First cell reads z−1 out of domain.
                                let pred = lorenzo(&st.recon, dims, gx, gy, 0);
                                st.recon[i] = encode_point(
                                    &q,
                                    data[i],
                                    pred,
                                    &mut st.codes,
                                    &mut st.outliers,
                                );
                                i += 1;
                            }
                            if i < row + blk.size.nz {
                                // Carry the z−1 reconstruction in a register:
                                // it is the value this loop just stored, and
                                // reloading it would put a store-to-load
                                // forward on the critical path.
                                let mut prev = st.recon[i - 1];
                                while i < row + blk.size.nz {
                                    let pred = lorenzo_interior_carried(&st.recon, i, sx, sy, prev);
                                    prev = encode_point(
                                        &q,
                                        data[i],
                                        pred,
                                        &mut st.codes,
                                        &mut st.outliers,
                                    );
                                    st.recon[i] = prev;
                                    i += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    st
}

/// The compression pipeline up to (but not including) serialization.
/// Returns `(container, lorenzo_blocks, regression_blocks, outliers)`.
fn compress_container(field: &Field3, cfg: &Sz2Config) -> (Container, usize, usize, usize) {
    let st = encode_blocks(field, cfg);
    let (n_l, n_r, n_o) = (st.n_lorenzo, st.n_regression, st.outliers.len());
    (serialize(field.dims(), cfg, st), n_l, n_r, n_o)
}

/// Frames one encoded field into the self-describing container — shared by
/// the production and reference paths. Takes the state by value so the
/// coefficient buffer moves into the container without a copy.
fn serialize(dims: Dims3, cfg: &Sz2Config, st: EncodeState) -> Container {
    let mut head = Vec::new();
    write_uvarint(&mut head, dims.nx as u64);
    write_uvarint(&mut head, dims.ny as u64);
    write_uvarint(&mut head, dims.nz as u64);
    write_uvarint(&mut head, cfg.block as u64);
    head.extend_from_slice(&cfg.eb.to_le_bytes());

    let mut out_bytes = Vec::with_capacity(st.outliers.len() * 4 + 8);
    write_uvarint(&mut out_bytes, st.outliers.len() as u64);
    for v in &st.outliers {
        out_bytes.extend_from_slice(&v.to_le_bytes());
    }

    let mut c = Container::new();
    push_stream_id(&mut c, SZ2_CODEC_ID);
    c.push(TAG_HEAD, head);
    c.push(TAG_FLAGS, rle_encode(&st.flags));
    c.push(TAG_COEFFS, st.coeffs);
    c.push(TAG_CODES, huffman_encode_packed(&st.codes));
    c.push(TAG_OUTLIERS, out_bytes);
    c
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(bytes: &[u8]) -> Result<Field3, Sz2Error> {
    let mut out = Field3::zeros(Dims3::new(0, 0, 0));
    decompress_into(bytes, &mut out)?;
    Ok(out)
}

/// Everything [`decompress_into`] needs after validation: geometry,
/// quantizer, per-block flags, fitted planes (decoded straight off the
/// borrowed coefficient section — no byte-buffer copy), codes and outliers.
struct Parsed {
    dims: Dims3,
    block: usize,
    eb: f64,
    flags: Vec<u8>,
    planes: Vec<Plane>,
    codes: Vec<u32>,
    outliers: Vec<f32>,
}

/// [`decompress`] into a caller-owned field (reshaped in place), so
/// per-chunk readers reuse one reconstruction buffer.
pub fn decompress_into(bytes: &[u8], out: &mut Field3) -> Result<(), Sz2Error> {
    let p = parse(bytes)?;
    out.reshape(p.dims, 0.0);
    decode_blocks(&p, out.data_mut())
}

/// Parses and validates a stream — shared by the production and reference
/// decode paths.
fn parse(bytes: &[u8]) -> Result<Parsed, Sz2Error> {
    let c = Container::from_bytes(bytes)?;
    check_stream_id(&c, SZ2_CODEC_ID)?;
    let head = c.require(TAG_HEAD)?;
    let mut pos = 0usize;
    let nx = read_uvarint(head, &mut pos).ok_or(Sz2Error::Malformed("dims"))? as usize;
    let ny = read_uvarint(head, &mut pos).ok_or(Sz2Error::Malformed("dims"))? as usize;
    let nz = read_uvarint(head, &mut pos).ok_or(Sz2Error::Malformed("dims"))? as usize;
    let block = read_uvarint(head, &mut pos).ok_or(Sz2Error::Malformed("block"))? as usize;
    if block < 2 {
        return Err(Sz2Error::Malformed("block size"));
    }
    let tail = head.get(pos..pos + 8).ok_or(Sz2Error::Malformed("eb"))?;
    let eb = f64::from_le_bytes(tail.try_into().unwrap());
    if !(eb.is_finite() && eb > 0.0) {
        return Err(Sz2Error::Malformed("eb"));
    }
    let dims = Dims3::new(nx, ny, nz);
    let grid = BlockGrid::new(dims, block);

    let flags = rle_decode(c.require(TAG_FLAGS)?).ok_or(Sz2Error::Malformed("flags"))?;
    if flags.len() != grid.num_blocks() {
        return Err(Sz2Error::Malformed("flag count"));
    }
    let coeff_bytes = c.require(TAG_COEFFS)?;
    let n_reg = flags.iter().filter(|&&f| f == 1).count();
    if coeff_bytes.len() != n_reg * 16 {
        return Err(Sz2Error::Malformed("coefficient payload"));
    }
    let packed = unpack_maybe_rle(c.require(TAG_CODES)?).ok_or(Sz2Error::Malformed("codes"))?;
    let codes = huffman_decode(&packed)?;
    if codes.len() != dims.len() {
        return Err(Sz2Error::Malformed("code count"));
    }
    let out_bytes = c.require(TAG_OUTLIERS)?;
    let mut opos = 0usize;
    let n_out = read_uvarint(out_bytes, &mut opos).ok_or(Sz2Error::Malformed("outliers"))? as usize;
    let payload = out_bytes
        .get(opos..opos + n_out * 4)
        .ok_or(Sz2Error::Malformed("outlier payload"))?;
    let outliers: Vec<f32> = payload
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect();
    let planes: Vec<Plane> = coeff_bytes
        .chunks_exact(16)
        .map(|cb| Plane {
            c: [
                f32::from_le_bytes(cb[0..4].try_into().unwrap()),
                f32::from_le_bytes(cb[4..8].try_into().unwrap()),
                f32::from_le_bytes(cb[8..12].try_into().unwrap()),
                f32::from_le_bytes(cb[12..16].try_into().unwrap()),
            ],
        })
        .collect();
    Ok(Parsed {
        dims,
        block,
        eb,
        flags,
        planes,
        codes,
        outliers,
    })
}

/// Recovers one cell from its code, drawing out-of-band values from the
/// outlier cursor. Clears `ok` on underrun (decode continues with zeros so
/// one typed error surfaces at the end, like the reference path).
#[inline]
fn decode_value(
    q: &LinearQuantizer,
    pred: f64,
    code: u32,
    outliers: &[f32],
    oi: &mut usize,
    ok: &mut bool,
) -> f32 {
    if code == LinearQuantizer::UNPREDICTABLE {
        match outliers.get(*oi) {
            Some(&v) => {
                *oi += 1;
                v
            }
            None => {
                *ok = false;
                0.0
            }
        }
    } else {
        q.recover(code, pred) as f32
    }
}

/// Reconstructs every block from a parsed stream — the interior/boundary
/// split mirror of [`encode_blocks`].
fn decode_blocks(p: &Parsed, recon: &mut [f32]) -> Result<(), Sz2Error> {
    let dims = p.dims;
    let grid = BlockGrid::new(dims, p.block);
    let q = LinearQuantizer::new(p.eb);
    let (sx, sy) = (dims.ny * dims.nz, dims.nz);
    let mut plane_it = p.planes.iter();
    let (mut ci, mut oi) = (0usize, 0usize);
    let mut ok = true;

    let lvl = kernels::simd_level();
    for (bi, blk) in grid.iter().enumerate() {
        if p.flags[bi] == 1 {
            let plane = plane_it.next().ok_or(Sz2Error::Malformed("coefficients"))?;
            let n = blk.size.len();
            match lvl {
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Avx2 => unsafe {
                    simd::recover_plane_block_avx2(
                        &q,
                        &p.codes[ci..ci + n],
                        recon,
                        dims,
                        blk.origin,
                        blk.size,
                        plane,
                        &p.outliers,
                        &mut oi,
                        &mut ok,
                    )
                },
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Sse2 => unsafe {
                    simd::recover_plane_block_sse2(
                        &q,
                        &p.codes[ci..ci + n],
                        recon,
                        dims,
                        blk.origin,
                        blk.size,
                        plane,
                        &p.outliers,
                        &mut oi,
                        &mut ok,
                    )
                },
                _ => {
                    let c3 = plane.c[3] as f64;
                    let mut k = ci;
                    for x in 0..blk.size.nx {
                        let bx = plane.c[0] as f64 + plane.c[1] as f64 * x as f64;
                        for y in 0..blk.size.ny {
                            // ((c0 + c1·x) + c2·y) + c3·z, the `eval` association.
                            let bxy = bx + plane.c[2] as f64 * y as f64;
                            let row = dims.idx(blk.origin[0] + x, blk.origin[1] + y, blk.origin[2]);
                            for z in 0..blk.size.nz {
                                let pred = bxy + c3 * z as f64;
                                recon[row + z] = decode_value(
                                    &q,
                                    pred,
                                    p.codes[k + z],
                                    &p.outliers,
                                    &mut oi,
                                    &mut ok,
                                );
                            }
                            k += blk.size.nz;
                        }
                    }
                }
            }
            ci += n;
        } else {
            for x in 0..blk.size.nx {
                let gx = blk.origin[0] + x;
                for y in 0..blk.size.ny {
                    let gy = blk.origin[1] + y;
                    let row = dims.idx(gx, gy, blk.origin[2]);
                    if gx == 0 || gy == 0 {
                        for z in 0..blk.size.nz {
                            let gz = blk.origin[2] + z;
                            let pred = lorenzo(recon, dims, gx, gy, gz);
                            recon[row + z] =
                                decode_value(&q, pred, p.codes[ci], &p.outliers, &mut oi, &mut ok);
                            ci += 1;
                        }
                    } else {
                        let mut i = row;
                        if blk.origin[2] == 0 {
                            let pred = lorenzo(recon, dims, gx, gy, 0);
                            recon[i] =
                                decode_value(&q, pred, p.codes[ci], &p.outliers, &mut oi, &mut ok);
                            ci += 1;
                            i += 1;
                        }
                        if i < row + blk.size.nz {
                            // Register-carried z−1 value, mirroring the
                            // encode loop (see `lorenzo_interior_carried`).
                            let mut prev = recon[i - 1];
                            while i < row + blk.size.nz {
                                let pred = lorenzo_interior_carried(recon, i, sx, sy, prev);
                                prev = decode_value(
                                    &q,
                                    pred,
                                    p.codes[ci],
                                    &p.outliers,
                                    &mut oi,
                                    &mut ok,
                                );
                                recon[i] = prev;
                                ci += 1;
                                i += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    if !ok {
        return Err(Sz2Error::Malformed("stream underrun"));
    }
    Ok(())
}

/// Pre-overhaul per-point codec paths, kept verbatim as the differential
/// oracle for the interior/boundary-split kernels (the `bitio::reference`
/// pattern): the same selection, serialization and parsing drive the
/// original all-points edge-aware gathers.
pub mod reference {
    use super::*;

    /// [`super::compress`] with the original per-point block loops —
    /// byte-identical output.
    pub fn compress(field: &Field3, cfg: &Sz2Config) -> CompressResult {
        let dims = field.dims();
        let grid = BlockGrid::new(dims, cfg.block);
        let q = LinearQuantizer::new(cfg.eb);
        let mut st = EncodeState {
            recon: vec![0f32; dims.len()],
            codes: Vec::with_capacity(dims.len()),
            outliers: Vec::new(),
            flags: Vec::with_capacity(grid.num_blocks()),
            coeffs: Vec::new(),
            n_lorenzo: 0,
            n_regression: 0,
        };
        for blk in grid.iter() {
            match select_block(field, blk.origin, blk.size, &mut st) {
                Some(plane) => {
                    for x in 0..blk.size.nx {
                        for y in 0..blk.size.ny {
                            for z in 0..blk.size.nz {
                                let (gx, gy, gz) =
                                    (blk.origin[0] + x, blk.origin[1] + y, blk.origin[2] + z);
                                let actual = field.get(gx, gy, gz);
                                let pred = plane.eval(x, y, z);
                                st.recon[dims.idx(gx, gy, gz)] =
                                    encode_point(&q, actual, pred, &mut st.codes, &mut st.outliers);
                            }
                        }
                    }
                }
                None => {
                    for x in 0..blk.size.nx {
                        for y in 0..blk.size.ny {
                            for z in 0..blk.size.nz {
                                let (gx, gy, gz) =
                                    (blk.origin[0] + x, blk.origin[1] + y, blk.origin[2] + z);
                                let actual = field.get(gx, gy, gz);
                                let pred = lorenzo(&st.recon, dims, gx, gy, gz);
                                st.recon[dims.idx(gx, gy, gz)] =
                                    encode_point(&q, actual, pred, &mut st.codes, &mut st.outliers);
                            }
                        }
                    }
                }
            }
        }
        let (n_l, n_r, n_o) = (st.n_lorenzo, st.n_regression, st.outliers.len());
        CompressResult {
            bytes: serialize(dims, cfg, st).to_bytes(),
            lorenzo_blocks: n_l,
            regression_blocks: n_r,
            outliers: n_o,
        }
    }

    /// [`super::decompress`] with the original per-point block loops — same
    /// reconstructions, same typed errors.
    pub fn decompress(bytes: &[u8]) -> Result<Field3, Sz2Error> {
        let p = parse(bytes)?;
        let dims = p.dims;
        let grid = BlockGrid::new(dims, p.block);
        let q = LinearQuantizer::new(p.eb);
        let mut out = Field3::zeros(dims);
        let recon = out.data_mut();
        let mut plane_it = p.planes.iter();
        let (mut ci, mut oi) = (0usize, 0usize);
        let mut ok = true;
        for (bi, blk) in grid.iter().enumerate() {
            if p.flags[bi] == 1 {
                let plane = plane_it.next().ok_or(Sz2Error::Malformed("coefficients"))?;
                for x in 0..blk.size.nx {
                    for y in 0..blk.size.ny {
                        for z in 0..blk.size.nz {
                            let idx =
                                dims.idx(blk.origin[0] + x, blk.origin[1] + y, blk.origin[2] + z);
                            let pred = plane.eval(x, y, z);
                            recon[idx] =
                                decode_value(&q, pred, p.codes[ci], &p.outliers, &mut oi, &mut ok);
                            ci += 1;
                        }
                    }
                }
            } else {
                for x in 0..blk.size.nx {
                    for y in 0..blk.size.ny {
                        for z in 0..blk.size.nz {
                            let (gx, gy, gz) =
                                (blk.origin[0] + x, blk.origin[1] + y, blk.origin[2] + z);
                            let pred = lorenzo(recon, dims, gx, gy, gz);
                            recon[dims.idx(gx, gy, gz)] =
                                decode_value(&q, pred, p.codes[ci], &p.outliers, &mut oi, &mut ok);
                            ci += 1;
                        }
                    }
                }
            }
        }
        if !ok {
            return Err(Sz2Error::Malformed("stream underrun"));
        }
        Ok(out)
    }
}

/// SZ2 as a pluggable [`Codec`] backend: the block size is the codec-specific
/// knob; the error bound arrives per call through the trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sz2Codec {
    /// Block side length (6 for uniform data, 4 for multi-resolution data).
    pub block: usize,
}

impl Default for Sz2Codec {
    fn default() -> Self {
        Sz2Codec { block: 6 }
    }
}

impl Sz2Codec {
    /// AMRIC's multi-resolution configuration (4³ blocks).
    pub const MULTIRES: Sz2Codec = Sz2Codec { block: 4 };
}

impl Codec for Sz2Codec {
    fn id(&self) -> u32 {
        SZ2_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "sz2"
    }

    fn compress(&self, field: &Field3, eb: f64) -> Vec<u8> {
        compress(
            field,
            &Sz2Config {
                eb,
                block: self.block,
            },
        )
        .bytes
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Field3, CodecError> {
        decompress(bytes)
    }

    fn compress_into(&self, field: &Field3, eb: f64, out: &mut Vec<u8>) {
        compress_into(
            field,
            &Sz2Config {
                eb,
                block: self.block,
            },
            out,
        );
    }

    fn decompress_into(&self, bytes: &[u8], out: &mut Field3) -> Result<(), CodecError> {
        decompress_into(bytes, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_fit_recovers_exact_plane() {
        let f = Field3::from_fn(Dims3::cube(6), |x, y, z| {
            2.0 + 1.5 * x as f32 - 0.5 * y as f32 + 0.25 * z as f32
        });
        let p = fit_plane(&f, [0, 0, 0], Dims3::cube(6));
        assert!((p.c[0] - 2.0).abs() < 1e-4);
        assert!((p.c[1] - 1.5).abs() < 1e-5);
        assert!((p.c[2] + 0.5).abs() < 1e-5);
        assert!((p.c[3] - 0.25).abs() < 1e-5);
    }

    #[test]
    fn plane_fit_degenerate_axis() {
        // A 1-thick block cannot constrain its axis slope; fit must not NaN.
        let f = Field3::from_fn(Dims3::new(1, 4, 4), |_, y, z| (y + z) as f32);
        let p = fit_plane(&f, [0, 0, 0], Dims3::new(1, 4, 4));
        assert!(p.c.iter().all(|c| c.is_finite()));
        assert!((p.eval(0, 1, 2) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn lorenzo_constant_field_is_exact() {
        let dims = Dims3::cube(4);
        let buf = vec![5.0f32; dims.len()];
        // Interior point: Lorenzo of a constant field returns the constant.
        assert!((lorenzo(&buf, dims, 2, 2, 2) - 5.0).abs() < 1e-12);
        // Corner point: all neighbours out of domain => 0.
        assert_eq!(lorenzo(&buf, dims, 0, 0, 0), 0.0);
    }

    #[test]
    fn lorenzo_linear_field_is_exact_interior() {
        let dims = Dims3::cube(5);
        let f = Field3::from_fn(dims, |x, y, z| (3 * x + 2 * y + z) as f32);
        for x in 1..5 {
            for y in 1..5 {
                for z in 1..5 {
                    let pred = lorenzo(f.data(), dims, x, y, z);
                    assert!((pred - f.get(x, y, z) as f64).abs() < 1e-9);
                }
            }
        }
    }
}
