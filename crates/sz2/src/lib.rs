//! SZ2-class block-wise error-bounded compressor.
//!
//! SZ2 (§II-A) partitions the field into small blocks (6³ by default; AMRIC
//! found 4³ optimal for multi-resolution data, §III-B) and, per block, picks
//! the better of two predictors:
//!
//! * **Lorenzo** — the 3-D first-order Lorenzo stencil over already
//!   reconstructed neighbours (which may cross block boundaries);
//! * **linear regression** — a fitted plane `c₀ + c₁x + c₂y + c₃z`, encoded as
//!   four coefficients per block and evaluated with no knowledge of
//!   neighbouring blocks — this is the source of the blocking artifacts the
//!   paper's post-processing targets.
//!
//! Residuals are quantized with the shared error-controlled quantizer and
//! entropy-coded with Huffman.

mod compressor;

pub use compressor::{
    compress, compress_into, decompress, decompress_into, CompressResult, Sz2Codec, Sz2Error,
    SZ2_CODEC_ID,
};

/// Pre-overhaul per-point implementations, kept verbatim as differential
/// oracles for the interior/boundary-split kernels
/// (`tests/kernel_equivalence.rs`) and the `tables hotpath` before/after
/// rows — the `bitio::reference` pattern.
pub mod reference {
    pub use crate::compressor::reference::{compress, decompress};
}

/// SZ2 configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sz2Config {
    /// Absolute error bound.
    pub eb: f64,
    /// Block side length (6 for uniform data, 4 for multi-resolution data).
    pub block: usize,
}

impl Sz2Config {
    /// Default configuration for uniform-resolution data (6³ blocks).
    pub fn new(eb: f64) -> Self {
        Sz2Config { eb, block: 6 }
    }

    /// AMRIC's multi-resolution configuration (4³ blocks).
    pub fn multires(eb: f64) -> Self {
        Sz2Config { eb, block: 4 }
    }

    /// Overrides the block size.
    pub fn with_block(mut self, block: usize) -> Self {
        assert!(block >= 2, "block must be at least 2");
        self.block = block;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::{Dims3, Field3};

    fn max_err(a: &Field3, b: &Field3) -> f64 {
        a.data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| (x as f64 - y as f64).abs())
            .fold(0.0, f64::max)
    }

    fn wavy(dims: Dims3) -> Field3 {
        Field3::from_fn(dims, |x, y, z| {
            ((x as f32 * 0.31).sin() * 2.0 + (y as f32 * 0.17).cos())
                * ((z as f32 * 0.23).sin() + 2.0)
        })
    }

    #[test]
    fn roundtrip_respects_bound() {
        let f = wavy(Dims3::new(20, 18, 22));
        for eb in [0.1, 0.01, 0.001] {
            let r = compress(&f, &Sz2Config::new(eb));
            let g = decompress(&r.bytes).unwrap();
            let e = max_err(&f, &g);
            assert!(e <= eb + 1e-12, "eb={eb} err={e}");
        }
    }

    #[test]
    fn multires_block_size_roundtrips() {
        let f = wavy(Dims3::new(16, 16, 64));
        let r = compress(&f, &Sz2Config::multires(0.01));
        let g = decompress(&r.bytes).unwrap();
        assert!(max_err(&f, &g) <= 0.01);
    }

    #[test]
    fn non_multiple_dims_roundtrip() {
        // Domain not divisible by the block size: edge blocks are partial.
        let f = wavy(Dims3::new(7, 11, 13));
        let r = compress(&f, &Sz2Config::new(0.05));
        let g = decompress(&r.bytes).unwrap();
        assert!(max_err(&f, &g) <= 0.05);
    }

    #[test]
    fn smooth_field_compresses() {
        let f = Field3::from_fn(Dims3::cube(24), |x, y, z| (x + y + z) as f32 * 0.1);
        let r = compress(&f, &Sz2Config::new(1e-3));
        assert!(r.ratio(f.len()) > 10.0, "cr = {}", r.ratio(f.len()));
        let g = decompress(&r.bytes).unwrap();
        assert!(max_err(&f, &g) <= 1e-3);
    }

    #[test]
    fn linear_field_prefers_regression() {
        // A plane is exactly representable by the regression predictor.
        let f = Field3::from_fn(Dims3::cube(12), |x, y, z| {
            1.0 + 0.5 * x as f32 - 0.25 * y as f32 + 2.0 * z as f32
        });
        let r = compress(&f, &Sz2Config::new(1e-4));
        assert!(r.regression_blocks > 0 || r.lorenzo_blocks > 0);
        let g = decompress(&r.bytes).unwrap();
        assert!(max_err(&f, &g) <= 1e-4);
    }

    #[test]
    fn spike_handled_as_outlier() {
        let mut f = Field3::new(Dims3::cube(8), 0.0);
        f.set(4, 4, 4, 1e28);
        let r = compress(&f, &Sz2Config::new(1e-6));
        let g = decompress(&r.bytes).unwrap();
        assert_eq!(g.get(4, 4, 4), 1e28);
        assert!(max_err(&f, &g) <= 1e-6);
    }

    #[test]
    fn noise_bounded() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let f = Field3::from_fn(Dims3::new(13, 9, 17), |_, _, _| rng.gen_range(-50.0..50.0));
        let r = compress(&f, &Sz2Config::new(0.25));
        let g = decompress(&r.bytes).unwrap();
        assert!(max_err(&f, &g) <= 0.25 + 1e-9);
    }

    #[test]
    fn corrupted_stream_rejected() {
        let f = wavy(Dims3::cube(12));
        let r = compress(&f, &Sz2Config::new(0.01));
        let mut bad = r.bytes.clone();
        let n = bad.len();
        bad[n / 2] ^= 0x55;
        assert!(decompress(&bad).is_err());
    }

    #[test]
    fn tiny_domains() {
        for dims in [
            Dims3::new(1, 1, 1),
            Dims3::new(2, 3, 1),
            Dims3::new(1, 6, 6),
        ] {
            let f = wavy(dims);
            let r = compress(&f, &Sz2Config::new(0.01));
            let g = decompress(&r.bytes).unwrap();
            assert!(max_err(&f, &g) <= 0.01, "dims {dims}");
        }
    }
}
