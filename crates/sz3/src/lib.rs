//! SZ3-class global interpolation compressor.
//!
//! SZ3 (§II-A of the paper) predicts every point by **level-wise
//! interpolation** over the whole array instead of per-block prediction:
//! levels proceed coarse→fine with strides `2^(L−1) … 1`; at each level, each
//! dimension is swept in turn and points at odd multiples of the stride are
//! predicted from their already-reconstructed neighbours at even multiples.
//! Residuals go through an error-controlled linear quantizer and a Huffman
//! stage.
//!
//! Two hooks make this implementation the substrate for the paper's SZ3MR:
//!
//! * interior points whose `+stride` neighbour falls outside the array are
//!   **extrapolated** (Fig. 7's pathology) — `hqmr-mr`'s padding removes
//!   these, and [`InterpStats`] exposes the counts so the effect is testable;
//! * [`LevelEbPolicy`] implements the paper's adaptive per-level error bound
//!   `eb_l = eb · (min(α^{maxlevel−l}, β))⁻¹` (§III-A, Improvement 2).

pub mod engine;
mod stream;

pub use engine::{interp_levels, InterpKind, InterpStats, PredKind};
pub use stream::{
    compress, compress_into, decompress, decompress_into, CompressResult, Sz3Codec, Sz3Error,
    SZ3_CODEC_ID,
};

/// Pre-overhaul per-point implementations, kept verbatim as differential
/// oracles for the line kernels (`tests/kernel_equivalence.rs`) and the
/// `tables hotpath` before/after rows — the `bitio::reference` pattern.
pub mod reference {
    pub use crate::engine::reference::traverse;
    pub use crate::stream::reference::{compress, decompress};
}

/// Adaptive per-level error-bound policy (the paper's Improvement 2).
///
/// With processing step `l = 1` (coarsest) … `maxlevel` (finest, stride 1):
/// `eb_l = eb / min(α^{maxlevel−l}, β)` — early levels, whose points seed all
/// later predictions, get tighter bounds. The paper fixes `α = 2.25`, `β = 8`
/// for multi-resolution data (larger than QoZ's sampled values, because the
/// two small dimensions of a linearized merge leave few interpolation levels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelEbPolicy {
    /// Per-level shrink factor.
    pub alpha: f64,
    /// Cap on the shrink.
    pub beta: f64,
}

impl LevelEbPolicy {
    /// The paper's fixed choice for multi-resolution data.
    pub const PAPER: LevelEbPolicy = LevelEbPolicy {
        alpha: 2.25,
        beta: 8.0,
    };

    /// Error bound for processing step `l` (1-based) of `maxlevel` total.
    pub fn eb_for_level(&self, eb: f64, l: usize, maxlevel: usize) -> f64 {
        let exp = (maxlevel.saturating_sub(l)) as f64;
        eb / self.alpha.powf(exp).min(self.beta)
    }
}

/// SZ3 compressor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sz3Config {
    /// Absolute error bound.
    pub eb: f64,
    /// Interpolator (SZ3 defaults to cubic).
    pub interp: InterpKind,
    /// Optional adaptive per-level error bound; `None` reproduces baseline
    /// SZ3's uniform bound.
    pub level_eb: Option<LevelEbPolicy>,
}

impl Sz3Config {
    /// Baseline SZ3: cubic interpolation, uniform error bound.
    pub fn new(eb: f64) -> Self {
        Sz3Config {
            eb,
            interp: InterpKind::Cubic,
            level_eb: None,
        }
    }

    /// Enables the paper's adaptive per-level error bound.
    pub fn with_level_eb(mut self, policy: LevelEbPolicy) -> Self {
        self.level_eb = Some(policy);
        self
    }

    /// Selects the interpolator.
    pub fn with_interp(mut self, interp: InterpKind) -> Self {
        self.interp = interp;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_eb_monotone_tightening() {
        let p = LevelEbPolicy::PAPER;
        let maxlevel = 9;
        let ebs: Vec<f64> = (1..=maxlevel)
            .map(|l| p.eb_for_level(1.0, l, maxlevel))
            .collect();
        // Finest level gets the full budget.
        assert!((ebs[maxlevel - 1] - 1.0).abs() < 1e-12);
        // Earlier levels are tighter, monotonically.
        for w in ebs.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // Cap at beta: earliest levels sit at eb/8.
        assert!((ebs[0] - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn level_eb_beta_cap_engages_quickly() {
        // alpha^(maxlevel-l) exceeds beta=8 within ceil(log_2.25 8) ≈ 3 levels.
        let p = LevelEbPolicy::PAPER;
        assert!((p.eb_for_level(1.0, 7, 10) - 1.0 / 8.0).abs() < 1e-12);
        assert!((p.eb_for_level(1.0, 9, 10) - 1.0 / 2.25).abs() < 1e-12);
    }
}
