//! Serialization: SZ3 bitstream = container{ header, Huffman codes, outliers }.
//!
//! The quantization/prediction work happens in the `engine` line kernels
//! ([`crate::engine::compress_pass`] / [`crate::engine::decompress_pass`]);
//! this module owns the container layout, shared by the production kernels
//! and the [`reference`]-oracle paths so both serialize byte-identically.

use crate::engine::{
    compress_pass, decompress_pass, interp_levels, reference::traverse, InterpKind, InterpStats,
    PredKind,
};
use crate::{LevelEbPolicy, Sz3Config};
use hqmr_codec::{
    check_stream_id, huffman_decode, huffman_encode_packed, push_stream_id, read_uvarint, tag,
    unpack_maybe_rle, write_uvarint, Codec, CodecError, Container, LinearQuantizer, QuantOutcome,
};
use hqmr_grid::{Dims3, Field3};

/// SZ3's codec/stream id (also the per-stream section tag in MR containers).
pub const SZ3_CODEC_ID: u32 = tag(b"SZ3S");

const TAG_HEAD: u32 = tag(b"S3HD");
const TAG_CODES: u32 = tag(b"QNTC");
const TAG_OUTLIERS: u32 = tag(b"UNPR");

/// Decompression errors — the shared [`CodecError`] under SZ3's historical
/// name.
pub type Sz3Error = CodecError;

/// Output of [`compress`].
#[derive(Debug, Clone)]
pub struct CompressResult {
    /// Serialized stream (self-describing; feed to [`decompress`]).
    pub bytes: Vec<u8>,
    /// Prediction-kind statistics (Fig. 7/8 diagnostics).
    pub stats: InterpStats,
    /// Number of out-of-band (unpredictable) points.
    pub outliers: usize,
}

impl CompressResult {
    /// Compression ratio versus raw `f32` storage.
    pub fn ratio(&self, n_points: usize) -> f64 {
        (n_points * 4) as f64 / self.bytes.len() as f64
    }
}

/// Builds per-processing-step quantizers (index 0 unused; 1..=maxlevel).
fn level_quantizers(cfg: &Sz3Config, maxlevel: usize) -> Vec<LinearQuantizer> {
    let policy = cfg.level_eb;
    (0..=maxlevel.max(1))
        .map(|l| {
            let eb = match (l, policy) {
                (0, _) => cfg.eb, // placeholder, never used
                (_, Some(p)) => p.eb_for_level(cfg.eb, l, maxlevel.max(1)),
                (_, None) => cfg.eb,
            };
            LinearQuantizer::new(eb)
        })
        .collect()
}

/// Compresses `field` under `cfg`.
///
/// The error bound is *absolute*: every reconstructed value differs from the
/// original by at most `cfg.eb` (adaptive per-level bounds only tighten it).
pub fn compress(field: &Field3, cfg: &Sz3Config) -> CompressResult {
    let (c, stats, n_outliers) = compress_container(field, cfg);
    CompressResult {
        bytes: c.to_bytes(),
        stats,
        outliers: n_outliers,
    }
}

/// [`compress`] serializing into a caller-owned buffer (cleared first), so
/// per-chunk writers reuse one output allocation.
pub fn compress_into(field: &Field3, cfg: &Sz3Config, out: &mut Vec<u8>) -> InterpStats {
    out.clear();
    let (c, stats, _) = compress_container(field, cfg);
    c.write_into(out);
    stats
}

/// The compression pipeline up to (but not including) serialization.
fn compress_container(field: &Field3, cfg: &Sz3Config) -> (Container, InterpStats, usize) {
    let dims = field.dims();
    let maxlevel = interp_levels(dims.max_extent());
    let quants = level_quantizers(cfg, maxlevel);

    let mut buf = field.data().to_vec();
    let mut codes: Vec<u32> = Vec::new();
    let mut outliers: Vec<f32> = Vec::new();
    let stats = compress_pass(
        dims,
        cfg.interp,
        &quants,
        &mut buf,
        &mut codes,
        &mut outliers,
    );
    let n_outliers = outliers.len();
    (serialize(dims, cfg, &codes, &outliers), stats, n_outliers)
}

/// Frames quantization codes + outliers into the self-describing container.
fn serialize(dims: Dims3, cfg: &Sz3Config, codes: &[u32], outliers: &[f32]) -> Container {
    let mut head = Vec::new();
    write_uvarint(&mut head, dims.nx as u64);
    write_uvarint(&mut head, dims.ny as u64);
    write_uvarint(&mut head, dims.nz as u64);
    head.extend_from_slice(&cfg.eb.to_le_bytes());
    head.push(match cfg.interp {
        InterpKind::Linear => 0,
        InterpKind::Cubic => 1,
    });
    match cfg.level_eb {
        None => head.push(0),
        Some(p) => {
            head.push(1);
            head.extend_from_slice(&p.alpha.to_le_bytes());
            head.extend_from_slice(&p.beta.to_le_bytes());
        }
    }

    let mut out_bytes = Vec::with_capacity(outliers.len() * 4 + 8);
    write_uvarint(&mut out_bytes, outliers.len() as u64);
    for v in outliers {
        out_bytes.extend_from_slice(&v.to_le_bytes());
    }

    let mut c = Container::new();
    push_stream_id(&mut c, SZ3_CODEC_ID);
    c.push(TAG_HEAD, head);
    c.push(TAG_CODES, huffman_encode_packed(codes));
    c.push(TAG_OUTLIERS, out_bytes);
    c
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(bytes: &[u8]) -> Result<Field3, Sz3Error> {
    let mut out = Field3::zeros(Dims3::new(0, 0, 0));
    decompress_into(bytes, &mut out)?;
    Ok(out)
}

/// [`decompress`] into a caller-owned field (reshaped in place), so
/// per-chunk readers reuse one reconstruction buffer.
pub fn decompress_into(bytes: &[u8], out: &mut Field3) -> Result<(), Sz3Error> {
    let (cfg, dims, codes, outliers) = parse(bytes)?;
    let maxlevel = interp_levels(dims.max_extent());
    let quants = level_quantizers(&cfg, maxlevel);
    out.reshape(dims, 0.0);
    if !decompress_pass(dims, cfg.interp, &quants, &codes, &outliers, out.data_mut()) {
        return Err(Sz3Error::Malformed("stream underrun"));
    }
    Ok(())
}

/// Parses and validates a stream back into its config, dims, quantization
/// codes and outlier side channel — shared by the production and reference
/// decode paths.
#[allow(clippy::type_complexity)]
fn parse(bytes: &[u8]) -> Result<(Sz3Config, Dims3, Vec<u32>, Vec<f32>), Sz3Error> {
    let c = Container::from_bytes(bytes)?;
    check_stream_id(&c, SZ3_CODEC_ID)?;
    let head = c.require(TAG_HEAD)?;
    let mut pos = 0usize;
    let nx = read_uvarint(head, &mut pos).ok_or(Sz3Error::Malformed("dims"))? as usize;
    let ny = read_uvarint(head, &mut pos).ok_or(Sz3Error::Malformed("dims"))? as usize;
    let nz = read_uvarint(head, &mut pos).ok_or(Sz3Error::Malformed("dims"))? as usize;
    let dims = Dims3::new(nx, ny, nz);
    let fixed = head.get(pos..).ok_or(Sz3Error::Malformed("header tail"))?;
    if fixed.len() < 10 {
        return Err(Sz3Error::Malformed("header tail"));
    }
    let eb = f64::from_le_bytes(fixed[0..8].try_into().unwrap());
    let interp = match fixed[8] {
        0 => InterpKind::Linear,
        1 => InterpKind::Cubic,
        _ => return Err(Sz3Error::Malformed("interp kind")),
    };
    let level_eb = match fixed[9] {
        0 => None,
        1 => {
            if fixed.len() < 26 {
                return Err(Sz3Error::Malformed("level-eb params"));
            }
            Some(LevelEbPolicy {
                alpha: f64::from_le_bytes(fixed[10..18].try_into().unwrap()),
                beta: f64::from_le_bytes(fixed[18..26].try_into().unwrap()),
            })
        }
        _ => return Err(Sz3Error::Malformed("level-eb flag")),
    };
    let cfg = Sz3Config {
        eb,
        interp,
        level_eb,
    };

    let packed = unpack_maybe_rle(c.require(TAG_CODES)?).ok_or(Sz3Error::Malformed("codes"))?;
    let codes = huffman_decode(&packed)?;
    if codes.len() != dims.len() {
        return Err(Sz3Error::Malformed("code count"));
    }
    let out_bytes = c.require(TAG_OUTLIERS)?;
    let mut pos = 0usize;
    let n_out = read_uvarint(out_bytes, &mut pos).ok_or(Sz3Error::Malformed("outliers"))? as usize;
    let payload = out_bytes
        .get(pos..pos + n_out * 4)
        .ok_or(Sz3Error::Malformed("outlier payload"))?;
    let outliers: Vec<f32> = payload
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect();
    Ok((cfg, dims, codes, outliers))
}

/// Pre-overhaul codec paths: the per-point visit-closure traversal driving
/// the same quantizers and the same serialization. These are the full-stream
/// oracles the differential suite compares [`compress`] / [`decompress`]
/// against, mirroring `bitio::reference`.
pub mod reference {
    use super::*;

    /// [`super::compress`] built on [`traverse`] — byte-identical output.
    pub fn compress(field: &Field3, cfg: &Sz3Config) -> CompressResult {
        let dims = field.dims();
        let maxlevel = interp_levels(dims.max_extent());
        let quants = level_quantizers(cfg, maxlevel);

        let mut buf = field.data().to_vec();
        let mut codes: Vec<u32> = Vec::with_capacity(buf.len());
        let mut outliers: Vec<f32> = Vec::new();

        let stats = traverse(dims, cfg.interp, &mut buf, |l, _idx, cur, pred, _kind| {
            let q = &quants[l];
            match q.quantize(cur as f64, pred) {
                QuantOutcome::Predicted { code, recon } => {
                    let r32 = recon as f32;
                    // Re-check at f32 precision (the stored type).
                    if (r32 as f64 - cur as f64).abs() <= q.eb() {
                        codes.push(code);
                        return r32;
                    }
                    codes.push(LinearQuantizer::UNPREDICTABLE);
                    outliers.push(cur);
                    cur
                }
                QuantOutcome::Unpredictable => {
                    codes.push(LinearQuantizer::UNPREDICTABLE);
                    outliers.push(cur);
                    cur
                }
            }
        });
        let n_outliers = outliers.len();
        CompressResult {
            bytes: serialize(dims, cfg, &codes, &outliers).to_bytes(),
            stats,
            outliers: n_outliers,
        }
    }

    /// [`super::decompress`] built on [`traverse`] — same reconstructions,
    /// same typed errors.
    pub fn decompress(bytes: &[u8]) -> Result<Field3, Sz3Error> {
        let (cfg, dims, codes, outliers) = parse(bytes)?;
        let maxlevel = interp_levels(dims.max_extent());
        let quants = level_quantizers(&cfg, maxlevel);
        let mut out = Field3::zeros(dims);
        let mut code_it = codes.iter();
        let mut out_it = outliers.iter();
        let mut missing = false;
        traverse(
            dims,
            cfg.interp,
            out.data_mut(),
            |l, _idx, _cur, pred, _kind: PredKind| {
                let Some(&code) = code_it.next() else {
                    missing = true;
                    return 0.0;
                };
                if code == LinearQuantizer::UNPREDICTABLE {
                    match out_it.next() {
                        Some(&v) => v,
                        None => {
                            missing = true;
                            0.0
                        }
                    }
                } else {
                    quants[l].recover(code, pred) as f32
                }
            },
        );
        if missing {
            return Err(Sz3Error::Malformed("stream underrun"));
        }
        Ok(out)
    }
}

/// SZ3 as a pluggable [`Codec`] backend: the codec-specific knobs
/// (interpolator, per-level error-bound policy) live here; the error bound
/// arrives per call through the trait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sz3Codec {
    /// Interpolator (SZ3 defaults to cubic).
    pub interp: InterpKind,
    /// Optional adaptive per-level error bound (the paper's Improvement 2).
    pub level_eb: Option<LevelEbPolicy>,
}

impl Default for Sz3Codec {
    fn default() -> Self {
        Sz3Codec {
            interp: InterpKind::Cubic,
            level_eb: None,
        }
    }
}

impl Sz3Codec {
    /// The paper's multi-resolution configuration: cubic interpolation with
    /// the α=2.25, β=8 level bounds.
    pub const PAPER: Sz3Codec = Sz3Codec {
        interp: InterpKind::Cubic,
        level_eb: Some(LevelEbPolicy::PAPER),
    };
}

impl Codec for Sz3Codec {
    fn id(&self) -> u32 {
        SZ3_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "sz3"
    }

    fn compress(&self, field: &Field3, eb: f64) -> Vec<u8> {
        compress(
            field,
            &Sz3Config {
                eb,
                interp: self.interp,
                level_eb: self.level_eb,
            },
        )
        .bytes
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Field3, CodecError> {
        decompress(bytes)
    }

    fn compress_into(&self, field: &Field3, eb: f64, out: &mut Vec<u8>) {
        compress_into(
            field,
            &Sz3Config {
                eb,
                interp: self.interp,
                level_eb: self.level_eb,
            },
            out,
        );
    }

    fn decompress_into(&self, bytes: &[u8], out: &mut Field3) -> Result<(), CodecError> {
        decompress_into(bytes, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &Field3, b: &Field3) -> f64 {
        a.data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| (x as f64 - y as f64).abs())
            .fold(0.0, f64::max)
    }

    fn wavy(dims: Dims3) -> Field3 {
        Field3::from_fn(dims, |x, y, z| {
            ((x as f32 * 0.2).sin() + (y as f32 * 0.15).cos()) * 3.0 + (z as f32 * 0.1).sin()
        })
    }

    #[test]
    fn roundtrip_respects_bound() {
        let f = wavy(Dims3::new(16, 16, 16));
        for eb in [1e-1, 1e-2, 1e-3] {
            let r = compress(&f, &Sz3Config::new(eb));
            let g = decompress(&r.bytes).unwrap();
            assert_eq!(g.dims(), f.dims());
            let e = max_err(&f, &g);
            assert!(e <= eb + 1e-12, "eb={eb}, err={e}");
        }
    }

    #[test]
    fn roundtrip_with_level_eb_respects_bound() {
        let f = wavy(Dims3::new(17, 17, 64));
        let cfg = Sz3Config::new(0.05).with_level_eb(LevelEbPolicy::PAPER);
        let r = compress(&f, &cfg);
        let g = decompress(&r.bytes).unwrap();
        assert!(max_err(&f, &g) <= 0.05 + 1e-12);
    }

    #[test]
    fn smooth_data_compresses_well() {
        let f = wavy(Dims3::cube(32));
        let r = compress(&f, &Sz3Config::new(1e-2));
        let cr = r.ratio(f.len());
        assert!(cr > 8.0, "cr = {cr}");
    }

    #[test]
    fn constant_field_is_tiny() {
        let f = Field3::new(Dims3::cube(32), 7.0);
        let r = compress(&f, &Sz3Config::new(1e-3));
        assert!(r.ratio(f.len()) > 100.0);
        let g = decompress(&r.bytes).unwrap();
        assert!(max_err(&f, &g) <= 1e-3);
    }

    #[test]
    fn random_noise_still_bounded() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let dims = Dims3::new(9, 8, 10);
        let f = Field3::from_fn(dims, |_, _, _| rng.gen_range(-100.0..100.0));
        let r = compress(&f, &Sz3Config::new(0.5));
        let g = decompress(&r.bytes).unwrap();
        assert!(max_err(&f, &g) <= 0.5 + 1e-9);
    }

    #[test]
    fn outliers_handled_exactly() {
        // A field with one extreme spike: spike must come back exactly
        // (outlier path) and everything else stays bounded.
        let mut f = Field3::new(Dims3::cube(8), 1.0);
        f.set(3, 3, 3, 1e30);
        let r = compress(&f, &Sz3Config::new(1e-4));
        assert!(r.outliers >= 1);
        let g = decompress(&r.bytes).unwrap();
        assert!(max_err(&f, &g) <= 1e-4);
        assert_eq!(g.get(3, 3, 3), 1e30);
    }

    #[test]
    fn degenerate_shapes_roundtrip() {
        for dims in [
            Dims3::new(1, 1, 1),
            Dims3::new(1, 1, 17),
            Dims3::new(2, 1, 3),
        ] {
            let f = wavy(dims);
            let r = compress(&f, &Sz3Config::new(1e-3));
            let g = decompress(&r.bytes).unwrap();
            assert!(max_err(&f, &g) <= 1e-3, "dims {dims}");
        }
    }

    #[test]
    fn linear_beats_nothing_cubic_beats_linear_on_smooth() {
        let f = wavy(Dims3::cube(32));
        let lin = compress(&f, &Sz3Config::new(1e-3).with_interp(InterpKind::Linear));
        let cub = compress(&f, &Sz3Config::new(1e-3).with_interp(InterpKind::Cubic));
        assert!(
            cub.bytes.len() as f64 <= lin.bytes.len() as f64 * 1.05,
            "cubic {} vs linear {}",
            cub.bytes.len(),
            lin.bytes.len()
        );
    }

    #[test]
    fn corrupted_stream_is_rejected() {
        let f = wavy(Dims3::cube(8));
        let r = compress(&f, &Sz3Config::new(1e-2));
        let mut bad = r.bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        assert!(decompress(&bad).is_err());
        assert!(decompress(&bad[..10]).is_err());
    }

    #[test]
    fn header_roundtrips_config() {
        let f = wavy(Dims3::cube(8));
        let cfg = Sz3Config::new(0.01).with_level_eb(LevelEbPolicy {
            alpha: 3.0,
            beta: 5.0,
        });
        let r = compress(&f, &cfg);
        // Decompress succeeds and respects the tightest bound implied.
        let g = decompress(&r.bytes).unwrap();
        assert!(max_err(&f, &g) <= 0.01);
    }
}
