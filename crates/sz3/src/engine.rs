//! Level-wise interpolation kernels shared by compression and decompression.
//!
//! Two implementations live here:
//!
//! * [`compress_pass`] / [`decompress_pass`] — the production kernels. Each
//!   level-sweep is decomposed into independent *lines* along the sweep
//!   dimension, and every line is peeled into four branch-free segments from
//!   its geometry alone (`LineGeom`): a midpoint head, a cubic interior
//!   run, a midpoint tail, and (at most) one extrapolated boundary point.
//!   Within a line every prediction reads only even multiples of the stride
//!   (already-known points) while writes land on odd multiples, so the
//!   interior loops carry no dependency and no per-point predicate: the
//!   finest level along `z` walks the buffer at element stride 2, which is
//!   what lets the compiler keep it in registers/vectors. Prediction-kind
//!   statistics are derived from the level geometry (lines × per-line
//!   segment counts), not from a per-point `match`.
//!
//! * [`mod@reference`] — the original per-point traversal (an `FnMut` visit
//!   closure plus a gather-closure predictor), kept verbatim as the oracle.
//!   The differential suite (`tests/kernel_equivalence.rs`) pins the two
//!   bit-for-bit — same codes, same outliers, same reconstructions, same
//!   stats — mirroring the `bitio::reference` pattern from the entropy-stage
//!   overhaul.
//!
//! Both paths evaluate predictions with the same f64 expressions in the same
//! order, so IEEE determinism makes them bit-identical by construction; the
//! tests make it checked, not assumed.

use hqmr_codec::kernels::{self, SimdLevel};
use hqmr_codec::{LinearQuantizer, QuantOutcome};
use hqmr_grid::Dims3;
use rayon::prelude::*;

#[cfg(target_arch = "x86_64")]
mod simd;

/// Interpolator choice for interior points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpKind {
    /// Two-point midpoint prediction.
    Linear,
    /// Four-point cubic (weights −1/16, 9/16, 9/16, −1/16), falling back to
    /// linear near boundaries. SZ3's default.
    Cubic,
}

/// How a point was predicted (for diagnostics and the Fig. 7/8 experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredKind {
    /// The global first point, predicted from 0.
    Seed,
    /// Two-sided linear interpolation.
    Midpoint,
    /// Four-point cubic interpolation.
    Cubic,
    /// One-sided fallback: the `+stride` neighbour does not exist (the
    /// pathology the paper's padding eliminates).
    Extrapolated,
}

/// Prediction-kind counters accumulated over a traversal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Seed points (always 1 for non-empty arrays).
    pub seeds: usize,
    /// Midpoint-predicted points.
    pub midpoint: usize,
    /// Cubic-predicted points.
    pub cubic: usize,
    /// Extrapolated points (sub-optimal predictions).
    pub extrapolated: usize,
}

impl InterpStats {
    /// Total points visited.
    pub fn total(&self) -> usize {
        self.seeds + self.midpoint + self.cubic + self.extrapolated
    }
}

/// Number of interpolation levels for a largest extent of `n`:
/// `ceil(log2(n))` (0 when the array is a single point).
pub fn interp_levels(n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// Per-line segment counts for one level-sweep: every line of a sweep shares
/// the same extent `n` and stride `s`, so its prediction kinds are a pure
/// function of geometry. Target points sit at `p_k = (2k+1)·s < n`;
/// `predict`'s rules translate to contiguous `k`-ranges:
///
/// * only the last point can be one-sided (`p + s ≥ n` for an earlier point
///   would put its successor past the array);
/// * cubic requires `p ≥ 3s` (⇔ `k ≥ 1`) and `p + 3s < n`, which implies the
///   point is interior — so cubic points form one run sandwiched between a
///   single midpoint head point and a midpoint tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LineGeom {
    /// Midpoint points before the cubic run (`k < 1` or all-interior when
    /// the interpolator is linear).
    mid_head: usize,
    /// Cubic interior points.
    cubic: usize,
    /// Midpoint points after the cubic run (`p + 3s ≥ n` but `p + s < n`).
    mid_tail: usize,
    /// Whether the final point extrapolates from its predecessor.
    extra: bool,
}

impl LineGeom {
    fn new(n: usize, s: usize, interp: InterpKind) -> Self {
        debug_assert!(s < n, "no odd multiples of {s} inside extent {n}");
        let cnt = (n - 1 - s) / (2 * s) + 1;
        let last = (2 * cnt - 1) * s;
        let extra = last + s >= n;
        let interior = cnt - extra as usize;
        match interp {
            InterpKind::Linear => LineGeom {
                mid_head: interior,
                cubic: 0,
                mid_tail: 0,
                extra,
            },
            InterpKind::Cubic => {
                // k is cubic iff 1 ≤ k and (2k+4)·s ≤ n−1.
                let m = (n - 1) / s;
                let c_upper = if m >= 5 { (m - 4) / 2 + 1 } else { 0 };
                let hi = c_upper.min(interior);
                let cubic = hi.saturating_sub(1);
                let mid_head = interior.min(1);
                LineGeom {
                    mid_head,
                    cubic,
                    mid_tail: interior - mid_head - cubic,
                    extra,
                }
            }
        }
    }

    fn interior(&self) -> usize {
        self.mid_head + self.cubic + self.mid_tail
    }
}

/// Quantizes `cur` against `pred`, pushing the code (and, for out-of-band
/// points, the original value) while returning the value decompression will
/// reproduce — the invariant that keeps both directions bit-identical.
#[inline]
fn quantize_store(
    q: &LinearQuantizer,
    cur: f32,
    pred: f64,
    codes: &mut Vec<u32>,
    outliers: &mut Vec<f32>,
) -> f32 {
    match q.quantize(cur as f64, pred) {
        QuantOutcome::Predicted { code, recon } => {
            let r32 = recon as f32;
            // Re-check at f32 precision (the stored type).
            if (r32 as f64 - cur as f64).abs() <= q.eb() {
                codes.push(code);
                return r32;
            }
            codes.push(LinearQuantizer::UNPREDICTABLE);
            outliers.push(cur);
            cur
        }
        QuantOutcome::Unpredictable => {
            codes.push(LinearQuantizer::UNPREDICTABLE);
            outliers.push(cur);
            cur
        }
    }
}

/// Recovers one value from its code (out-of-band values come from
/// `outliers`). On outlier underrun, clears `ok` and substitutes 0 — the
/// traversal continues so the caller can surface one typed error at the end,
/// exactly like the reference path.
#[inline]
fn recover_value(
    q: &LinearQuantizer,
    pred: f64,
    code: u32,
    outliers: &[f32],
    oi: &mut usize,
    ok: &mut bool,
) -> f32 {
    if code == LinearQuantizer::UNPREDICTABLE {
        match outliers.get(*oi) {
            Some(&v) => {
                *oi += 1;
                v
            }
            None => {
                *ok = false;
                0.0
            }
        }
    } else {
        q.recover(code, pred) as f32
    }
}

/// Compression kernel for one line: points at odd multiples of `s` along
/// element stride `e`, peeled into the [`LineGeom`] segments. Every
/// prediction reads even multiples only — never a value this line writes —
/// so the interior loops carry no dependency and keep a *rolling window* of
/// neighbour values: consecutive cubic points share three of their four
/// support points, so each iteration loads exactly one new value. The f64
/// expressions match [`super::reference`] term for term, which (IEEE
/// determinism) makes the two paths bit-identical.
#[inline]
#[allow(clippy::too_many_arguments)] // the line kernel's full register set
fn compress_line(
    buf: &mut [f32],
    base: usize,
    e: usize,
    s: usize,
    g: &LineGeom,
    q: &LinearQuantizer,
    codes: &mut Vec<u32>,
    outliers: &mut Vec<f32>,
) {
    let se = s * e;
    let step = 2 * se;
    let mut i = base + se;
    if g.mid_head > 0 {
        let mut prev = buf[i - se] as f64;
        for _ in 0..g.mid_head {
            let next = buf[i + se] as f64;
            let pred = (prev + next) / 2.0;
            buf[i] = quantize_store(q, buf[i], pred, codes, outliers);
            i += step;
            prev = next;
        }
    }
    if g.cubic > 0 {
        let se3 = 3 * se;
        let mut a = buf[i - se3] as f64;
        let mut b = buf[i - se] as f64;
        let mut c = buf[i + se] as f64;
        let mut d = buf[i + se3] as f64;
        for _ in 1..g.cubic {
            let pred = (-a + 9.0 * b + 9.0 * c - d) / 16.0;
            buf[i] = quantize_store(q, buf[i], pred, codes, outliers);
            i += step;
            (a, b, c) = (b, c, d);
            d = buf[i + se3] as f64;
        }
        let pred = (-a + 9.0 * b + 9.0 * c - d) / 16.0;
        buf[i] = quantize_store(q, buf[i], pred, codes, outliers);
        i += step;
    }
    if g.mid_tail > 0 {
        let mut prev = buf[i - se] as f64;
        for _ in 0..g.mid_tail {
            let next = buf[i + se] as f64;
            let pred = (prev + next) / 2.0;
            buf[i] = quantize_store(q, buf[i], pred, codes, outliers);
            i += step;
            prev = next;
        }
    }
    if g.extra {
        let pred = buf[i - se] as f64;
        buf[i] = quantize_store(q, buf[i], pred, codes, outliers);
    }
}

/// Decompression kernel for one line — the mirror of [`compress_line`],
/// including the rolling neighbour window (predictions read only even
/// multiples, which decoding never rewrites mid-line).
#[inline]
#[allow(clippy::too_many_arguments)] // the line kernel's full register set
fn decompress_line(
    buf: &mut [f32],
    base: usize,
    e: usize,
    s: usize,
    g: &LineGeom,
    q: &LinearQuantizer,
    codes: &[u32],
    ci: &mut usize,
    outliers: &[f32],
    oi: &mut usize,
    ok: &mut bool,
) {
    let se = s * e;
    let step = 2 * se;
    let mut i = base + se;
    if g.mid_head > 0 {
        let mut prev = buf[i - se] as f64;
        for _ in 0..g.mid_head {
            let next = buf[i + se] as f64;
            let pred = (prev + next) / 2.0;
            buf[i] = recover_value(q, pred, codes[*ci], outliers, oi, ok);
            *ci += 1;
            i += step;
            prev = next;
        }
    }
    if g.cubic > 0 {
        let se3 = 3 * se;
        let mut a = buf[i - se3] as f64;
        let mut b = buf[i - se] as f64;
        let mut c = buf[i + se] as f64;
        let mut d = buf[i + se3] as f64;
        for _ in 1..g.cubic {
            let pred = (-a + 9.0 * b + 9.0 * c - d) / 16.0;
            buf[i] = recover_value(q, pred, codes[*ci], outliers, oi, ok);
            *ci += 1;
            i += step;
            (a, b, c) = (b, c, d);
            d = buf[i + se3] as f64;
        }
        let pred = (-a + 9.0 * b + 9.0 * c - d) / 16.0;
        buf[i] = recover_value(q, pred, codes[*ci], outliers, oi, ok);
        *ci += 1;
        i += step;
    }
    if g.mid_tail > 0 {
        let mut prev = buf[i - se] as f64;
        for _ in 0..g.mid_tail {
            let next = buf[i + se] as f64;
            let pred = (prev + next) / 2.0;
            buf[i] = recover_value(q, pred, codes[*ci], outliers, oi, ok);
            *ci += 1;
            i += step;
            prev = next;
        }
    }
    if g.extra {
        let pred = buf[i - se] as f64;
        buf[i] = recover_value(q, pred, codes[*ci], outliers, oi, ok);
        *ci += 1;
    }
}

/// The SIMD arm for one sweep: only the finest-`z` sweep (`stride == 1 &&
/// s == 1`) has vector kernels — its lines are contiguous stride-2 walks and
/// it visits about half of all points; every other sweep stays scalar.
fn sweep_arm(sw: &Sweep) -> SimdLevel {
    if sw.stride == 1 && sw.s == 1 {
        kernels::simd_level()
    } else {
        SimdLevel::Scalar
    }
}

/// Encodes one line through the arm selected by [`sweep_arm`]. Every arm is
/// bit-identical; the scalar [`compress_line`] is the oracle.
#[allow(clippy::too_many_arguments)]
#[inline]
fn encode_line(
    arm: SimdLevel,
    buf: &mut [f32],
    base: usize,
    e: usize,
    s: usize,
    g: &LineGeom,
    q: &LinearQuantizer,
    codes: &mut Vec<u32>,
    outliers: &mut Vec<f32>,
) {
    match arm {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { simd::compress_line_z1_avx2(buf, base, g, q, codes, outliers) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe { simd::compress_line_z1_sse2(buf, base, g, q, codes, outliers) },
        _ => compress_line(buf, base, e, s, g, q, codes, outliers),
    }
}

/// Decodes one line through the arm selected by [`sweep_arm`].
#[allow(clippy::too_many_arguments)]
#[inline]
fn decode_line(
    arm: SimdLevel,
    buf: &mut [f32],
    base: usize,
    e: usize,
    s: usize,
    g: &LineGeom,
    q: &LinearQuantizer,
    codes: &[u32],
    ci: &mut usize,
    outliers: &[f32],
    oi: &mut usize,
    ok: &mut bool,
) {
    match arm {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe {
            simd::decompress_line_z1_avx2(buf, base, g, q, codes, ci, outliers, oi, ok)
        },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => unsafe {
            simd::decompress_line_z1_sse2(buf, base, g, q, codes, ci, outliers, oi, ok)
        },
        _ => decompress_line(buf, base, e, s, g, q, codes, ci, outliers, oi, ok),
    }
}

/// Minimum sweep size (in points) before the decode fans its lines across
/// the rayon shim — below this, scoped-thread spawn overhead dominates.
const PAR_MIN_POINTS: usize = 1 << 16;

/// A `*mut f32` the sweep workers share. Lines of one sweep write disjoint
/// cells (odd multiples of `s` along the sweep dim, at distinct bases) and
/// read only cells no line of the sweep writes (even multiples), so the
/// overlapping mutable views the workers re-materialize never touch the same
/// element.
struct SharedBuf {
    ptr: *mut f32,
    len: usize,
}

unsafe impl Send for SharedBuf {}
unsafe impl Sync for SharedBuf {}

impl SharedBuf {
    /// # Safety
    /// Callers must write disjoint element sets (see the type docs).
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice(&self) -> &mut [f32] {
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

/// One level-sweep's loop bounds, shared by both passes so the visit order is
/// defined in exactly one place (and matches [`reference::traverse`]).
struct Sweep {
    l_proc: usize,
    stride: usize,
    n: usize,
    s: usize,
    o_strides: [usize; 2],
    o_steps: [usize; 2],
    o_extents: [usize; 2],
}

impl Sweep {
    /// Number of lines this sweep visits.
    fn lines(&self) -> usize {
        self.o_extents[0].div_ceil(self.o_steps[0]) * self.o_extents[1].div_ceil(self.o_steps[1])
    }

    /// Calls `f(base)` for every line, in traversal order.
    #[inline]
    fn for_each_base(&self, mut f: impl FnMut(usize)) {
        let mut c1 = 0usize;
        while c1 < self.o_extents[0] {
            let b1 = c1 * self.o_strides[0];
            let mut c2 = 0usize;
            while c2 < self.o_extents[1] {
                f(b1 + c2 * self.o_strides[1]);
                c2 += self.o_steps[1];
            }
            c1 += self.o_steps[0];
        }
    }
}

/// Yields every level-sweep of the coarse→fine traversal in processing order.
fn sweeps(dims: Dims3) -> impl Iterator<Item = Sweep> {
    let maxlevel = interp_levels(dims.max_extent());
    let strides = [dims.ny * dims.nz, dims.nz, 1usize];
    let extents = dims.as_array();
    (1..=maxlevel)
        .rev()
        .enumerate()
        .flat_map(move |(step, level)| {
            let l_proc = step + 1;
            let s = 1usize << (level - 1);
            (0..3).filter_map(move |d| {
                let n_d = extents[d];
                if s >= n_d {
                    return None; // no odd multiples of s inside this extent
                }
                // Other dims: already-processed dims this level use step `s`,
                // not-yet-processed use `2s`.
                let (o1, o2) = match d {
                    0 => (1, 2),
                    1 => (0, 2),
                    _ => (0, 1),
                };
                Some(Sweep {
                    l_proc,
                    stride: strides[d],
                    n: n_d,
                    s,
                    o_strides: [strides[o1], strides[o2]],
                    o_steps: [
                        if o1 < d { s } else { 2 * s },
                        if o2 < d { s } else { 2 * s },
                    ],
                    o_extents: [extents[o1], extents[o2]],
                })
            })
        })
}

/// Runs the full compression pass over `buf` (row-major, `dims`), quantizing
/// every point's prediction residual with the per-processing-step quantizers
/// `quants` (index 0 unused; `1..=maxlevel`, clamped to the last entry).
/// Codes and out-of-band values append to `codes` / `outliers`; `buf` ends up
/// holding the reconstruction decompression will reproduce.
///
/// Returns the prediction-kind statistics, derived from level geometry.
pub fn compress_pass(
    dims: Dims3,
    interp: InterpKind,
    quants: &[LinearQuantizer],
    buf: &mut [f32],
    codes: &mut Vec<u32>,
    outliers: &mut Vec<f32>,
) -> InterpStats {
    assert_eq!(buf.len(), dims.len(), "buffer does not match {dims}");
    let mut stats = InterpStats::default();
    if buf.is_empty() {
        return stats;
    }
    codes.reserve(buf.len());
    // Seed: the global first point, predicted from 0 ("level 0" in the paper).
    buf[0] = quantize_store(
        &quants[1.min(quants.len() - 1)],
        buf[0],
        0.0,
        codes,
        outliers,
    );
    stats.seeds += 1;
    for sw in sweeps(dims) {
        let q = &quants[sw.l_proc.min(quants.len() - 1)];
        let g = LineGeom::new(sw.n, sw.s, interp);
        let arm = sweep_arm(&sw);
        sw.for_each_base(|base| {
            encode_line(arm, buf, base, sw.stride, sw.s, &g, q, codes, outliers);
        });
        let lines = sw.lines();
        stats.midpoint += lines * (g.mid_head + g.mid_tail);
        stats.cubic += lines * g.cubic;
        stats.extrapolated += lines * g.extra as usize;
        debug_assert_eq!(g.interior() + g.extra as usize, {
            (sw.n - 1 - sw.s) / (2 * sw.s) + 1
        });
    }
    stats
}

/// Runs the full decompression pass into `buf`, consuming one code per point
/// (and one `outliers` entry per out-of-band code) in traversal order.
///
/// `codes` must hold exactly `dims.len()` entries (the caller validates the
/// stream before the pass). Returns `false` when the outlier side channel
/// underruns — the pass still completes, substituting zeros, so the caller
/// reports one typed error.
pub fn decompress_pass(
    dims: Dims3,
    interp: InterpKind,
    quants: &[LinearQuantizer],
    codes: &[u32],
    outliers: &[f32],
    buf: &mut [f32],
) -> bool {
    assert_eq!(buf.len(), dims.len(), "buffer does not match {dims}");
    assert_eq!(codes.len(), buf.len(), "one code per point");
    if buf.is_empty() {
        return true;
    }
    let mut ok = true;
    let (mut ci, mut oi) = (0usize, 0usize);
    buf[0] = recover_value(
        &quants[1.min(quants.len() - 1)],
        0.0,
        codes[0],
        outliers,
        &mut oi,
        &mut ok,
    );
    ci += 1;
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    for sw in sweeps(dims) {
        let q = &quants[sw.l_proc.min(quants.len() - 1)];
        let g = LineGeom::new(sw.n, sw.s, interp);
        let arm = sweep_arm(&sw);
        let per_line = g.interior() + g.extra as usize;
        let lines = sw.lines();
        if kernels::tile_parallel() && cores > 1 && lines >= 2 && lines * per_line >= PAR_MIN_POINTS
        {
            // Every line of a sweep consumes exactly `per_line` codes, so
            // per-line code cursors are a multiplication; per-line outlier
            // cursors come from prefix-counting the `UNPREDICTABLE` codes
            // (each consumes exactly one side-channel value — on underrun a
            // worker substitutes zero and clears its flag, and the caller
            // discards the buffer).
            let mut jobs: Vec<(usize, usize, usize)> = Vec::with_capacity(lines);
            let (mut co, mut oo) = (ci, oi);
            sw.for_each_base(|base| {
                jobs.push((base, co, oo));
                oo += codes[co..co + per_line]
                    .iter()
                    .filter(|&&c| c == LinearQuantizer::UNPREDICTABLE)
                    .count();
                co += per_line;
            });
            let shared = SharedBuf {
                ptr: buf.as_mut_ptr(),
                len: buf.len(),
            };
            let line_ok: Vec<bool> = jobs
                .par_iter()
                .map(|&(base, co, oo)| {
                    // Safety: sweep lines write disjoint cells (SharedBuf docs).
                    let b = unsafe { shared.slice() };
                    let (mut ci_l, mut oi_l, mut ok_l) = (co, oo, true);
                    decode_line(
                        arm, b, base, sw.stride, sw.s, &g, q, codes, &mut ci_l, outliers,
                        &mut oi_l, &mut ok_l,
                    );
                    ok_l
                })
                .collect();
            ok &= line_ok.iter().all(|&x| x);
            ci = co;
            oi = oo;
        } else {
            sw.for_each_base(|base| {
                decode_line(
                    arm, buf, base, sw.stride, sw.s, &g, q, codes, &mut ci, outliers, &mut oi,
                    &mut ok,
                );
            });
        }
    }
    debug_assert_eq!(ci, codes.len(), "every code consumed exactly once");
    ok
}

/// The pre-overhaul per-point traversal, kept verbatim as the differential
/// oracle for the line kernels (the `bitio::reference` pattern).
pub mod reference {
    use super::{interp_levels, InterpKind, InterpStats, PredKind};
    use hqmr_grid::Dims3;

    /// Predicts the point at line position `p` (an odd multiple of `s`) from
    /// its already-known neighbours at multiples of `2s`.
    #[inline]
    fn predict(
        buf: &[f32],
        base: usize,
        stride_elems: usize,
        n: usize,
        p: usize,
        s: usize,
        interp: InterpKind,
    ) -> (f64, PredKind) {
        let at = |q: usize| buf[base + q * stride_elems] as f64;
        let prev = at(p - s);
        if p + s >= n {
            // One-sided fallback: the point "depends solely" on its
            // predecessor (the paper's Fig. 7 description of SZ3's behaviour
            // — d1 extrapolates d5, d5 extrapolates d7). This limited
            // accuracy is precisely what padding (Improvement 1) removes.
            return (prev, PredKind::Extrapolated);
        }
        let next = at(p + s);
        if interp == InterpKind::Cubic && p >= 3 * s && p + 3 * s < n {
            let pred = (-at(p - 3 * s) + 9.0 * prev + 9.0 * next - at(p + 3 * s)) / 16.0;
            return (pred, PredKind::Cubic);
        }
        ((prev + next) / 2.0, PredKind::Midpoint)
    }

    /// Runs the full coarse→fine traversal over `buf` (row-major, `dims`).
    ///
    /// For every visited point, `visit(l, idx, cur, pred, kind)` is called
    /// with the 1-based processing step `l` (1 = coarsest), the linear index,
    /// the current buffer value and the prediction; its return value is
    /// stored back into the buffer. Compression passes original data in
    /// `buf` and returns reconstructions; decompression passes zeros and
    /// returns decoded values.
    ///
    /// Returns the prediction-kind statistics.
    pub fn traverse(
        dims: Dims3,
        interp: InterpKind,
        buf: &mut [f32],
        mut visit: impl FnMut(usize, usize, f32, f64, PredKind) -> f32,
    ) -> InterpStats {
        assert_eq!(buf.len(), dims.len(), "buffer does not match {dims}");
        let mut stats = InterpStats::default();
        if buf.is_empty() {
            return stats;
        }
        let maxlevel = interp_levels(dims.max_extent());
        // Seed: the global first point, predicted from 0 ("level 0").
        buf[0] = visit(1, 0, buf[0], 0.0, PredKind::Seed);
        stats.seeds += 1;

        let strides = [dims.ny * dims.nz, dims.nz, 1usize];
        let extents = dims.as_array();

        for (step, level) in (1..=maxlevel).rev().enumerate() {
            let l_proc = step + 1;
            let s = 1usize << (level - 1);
            for d in 0..3 {
                let n_d = extents[d];
                if s >= n_d {
                    continue; // no odd multiples of s inside this extent
                }
                // Other dims: already-processed dims this level use step
                // `s`, not-yet-processed use `2s`.
                let (o1, o2) = match d {
                    0 => (1, 2),
                    1 => (0, 2),
                    _ => (0, 1),
                };
                let step1 = if o1 < d { s } else { 2 * s };
                let step2 = if o2 < d { s } else { 2 * s };
                let mut c1 = 0usize;
                while c1 < extents[o1] {
                    let mut c2 = 0usize;
                    while c2 < extents[o2] {
                        let base = c1 * strides[o1] + c2 * strides[o2];
                        let mut p = s;
                        while p < n_d {
                            let (pred, kind) = predict(buf, base, strides[d], n_d, p, s, interp);
                            let idx = base + p * strides[d];
                            buf[idx] = visit(l_proc, idx, buf[idx], pred, kind);
                            match kind {
                                PredKind::Midpoint => stats.midpoint += 1,
                                PredKind::Cubic => stats.cubic += 1,
                                PredKind::Extrapolated => stats.extrapolated += 1,
                                PredKind::Seed => unreachable!(),
                            }
                            p += 2 * s;
                        }
                        c2 += step2;
                    }
                    c1 += step1;
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::reference::traverse;
    use super::*;

    fn count_visits(dims: Dims3) -> (Vec<u32>, InterpStats) {
        let mut buf = vec![0f32; dims.len()];
        let mut visits = vec![0u32; dims.len()];
        let stats = traverse(dims, InterpKind::Linear, &mut buf, |_, idx, cur, _, _| {
            visits[idx] += 1;
            cur
        });
        (visits, stats)
    }

    #[test]
    fn levels_formula() {
        assert_eq!(interp_levels(1), 0);
        assert_eq!(interp_levels(2), 1);
        assert_eq!(interp_levels(8), 3);
        assert_eq!(interp_levels(9), 4);
        assert_eq!(interp_levels(17), 5);
        assert_eq!(interp_levels(512), 9);
    }

    #[test]
    fn every_cell_visited_exactly_once() {
        for dims in [
            Dims3::cube(8),
            Dims3::cube(9),
            Dims3::new(17, 17, 64),
            Dims3::new(1, 1, 8),
            Dims3::new(5, 3, 7),
            Dims3::new(1, 1, 1),
            Dims3::new(2, 1, 1),
        ] {
            let (visits, stats) = count_visits(dims);
            assert!(visits.iter().all(|&v| v == 1), "dims {dims}");
            assert_eq!(stats.total(), dims.len(), "dims {dims}");
        }
    }

    /// The geometry-derived statistics of the line kernels must equal the
    /// per-point tally of the reference traversal on every shape.
    #[test]
    fn geometry_stats_match_reference_tally() {
        for dims in [
            Dims3::cube(8),
            Dims3::cube(9),
            Dims3::new(17, 17, 64),
            Dims3::new(1, 1, 8),
            Dims3::new(5, 3, 7),
            Dims3::new(1, 1, 1),
            Dims3::new(2, 1, 1),
            Dims3::new(1, 31, 2),
        ] {
            for interp in [InterpKind::Linear, InterpKind::Cubic] {
                let mut buf = vec![1f32; dims.len()];
                let ref_stats = traverse(dims, interp, &mut buf, |_, _, cur, _, _| cur);
                let quants = [LinearQuantizer::new(1.0); 2];
                let mut buf = vec![1f32; dims.len()];
                let (mut codes, mut outliers) = (Vec::new(), Vec::new());
                let new_stats =
                    compress_pass(dims, interp, &quants, &mut buf, &mut codes, &mut outliers);
                assert_eq!(new_stats, ref_stats, "dims {dims} {interp:?}");
                assert_eq!(codes.len(), dims.len(), "one code per point");
            }
        }
    }

    /// Fig. 7: an 8-point line suffers inner extrapolations; Fig. 8: padding
    /// to 9 points leaves only the single outer extrapolation.
    #[test]
    fn padding_eliminates_inner_extrapolation() {
        let (_, s8) = count_visits(Dims3::new(1, 1, 8));
        let (_, s9) = count_visits(Dims3::new(1, 1, 9));
        // n=8: p=4 (stride 4), p=6 (stride 2), p=7 (stride 1) extrapolate.
        assert_eq!(s8.extrapolated, 3);
        // n=9: only the outer point p=8 (stride 8) extrapolates.
        assert_eq!(s9.extrapolated, 1);
    }

    #[test]
    fn padded_merge_shape_has_fewer_extrapolations_per_point() {
        // A 16³ block vs its 17³ padded version (per Improvement 1, the gain
        // holds in 3-D too).
        let (_, raw) = count_visits(Dims3::cube(16));
        let (_, pad) = count_visits(Dims3::cube(17));
        let raw_frac = raw.extrapolated as f64 / raw.total() as f64;
        let pad_frac = pad.extrapolated as f64 / pad.total() as f64;
        assert!(
            pad_frac < raw_frac / 4.0,
            "padded {pad_frac:.4} vs raw {raw_frac:.4}"
        );
    }

    #[test]
    fn predictors_only_use_known_points() {
        // Fill with NaN; the visitor replaces each visited cell with a real
        // value. Any prediction touching an unvisited cell would go NaN.
        let dims = Dims3::new(6, 10, 33);
        let mut buf = vec![f32::NAN; dims.len()];
        traverse(dims, InterpKind::Cubic, &mut buf, |_, _, _, pred, kind| {
            if kind != PredKind::Seed {
                assert!(pred.is_finite(), "prediction consumed an unknown point");
            }
            1.0
        });
        assert!(buf.iter().all(|v| *v == 1.0));
    }

    #[test]
    fn linear_ramp_predicts_exactly_inside() {
        // On a perfectly linear field, midpoint & cubic predictions are
        // exact; passing the true values straight through must keep every
        // interior prediction error at zero.
        let dims = Dims3::new(1, 1, 9);
        let mut buf: Vec<f32> = (0..9).map(|z| z as f32).collect();
        let mut max_err = 0f64;
        traverse(
            dims,
            InterpKind::Cubic,
            &mut buf,
            |_, _, cur, pred, kind| {
                if matches!(kind, PredKind::Midpoint | PredKind::Cubic) {
                    max_err = max_err.max((pred - cur as f64).abs());
                }
                cur
            },
        );
        assert!(max_err < 1e-12, "max interior error {max_err}");
    }

    #[test]
    fn seed_gets_coarsest_level_number() {
        let dims = Dims3::cube(8);
        let mut buf = vec![0f32; dims.len()];
        let mut seed_level = 0usize;
        let mut max_level = 0usize;
        traverse(dims, InterpKind::Linear, &mut buf, |l, _, cur, _, kind| {
            if kind == PredKind::Seed {
                seed_level = l;
            }
            max_level = max_level.max(l);
            cur
        });
        assert_eq!(seed_level, 1);
        assert_eq!(max_level, interp_levels(8));
    }
}
