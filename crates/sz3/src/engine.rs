//! Level-wise interpolation traversal shared by compression and decompression.
//!
//! The traversal is the contract between the two directions: both must visit
//! the same points in the same order with the same predictions, so it lives in
//! one function parameterized by a visitor closure.

use hqmr_grid::Dims3;

/// Interpolator choice for interior points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpKind {
    /// Two-point midpoint prediction.
    Linear,
    /// Four-point cubic (weights −1/16, 9/16, 9/16, −1/16), falling back to
    /// linear near boundaries. SZ3's default.
    Cubic,
}

/// How a point was predicted (for diagnostics and the Fig. 7/8 experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredKind {
    /// The global first point, predicted from 0.
    Seed,
    /// Two-sided linear interpolation.
    Midpoint,
    /// Four-point cubic interpolation.
    Cubic,
    /// One-sided fallback: the `+stride` neighbour does not exist (the
    /// pathology the paper's padding eliminates).
    Extrapolated,
}

/// Prediction-kind counters accumulated over a traversal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Seed points (always 1 for non-empty arrays).
    pub seeds: usize,
    /// Midpoint-predicted points.
    pub midpoint: usize,
    /// Cubic-predicted points.
    pub cubic: usize,
    /// Extrapolated points (sub-optimal predictions).
    pub extrapolated: usize,
}

impl InterpStats {
    /// Total points visited.
    pub fn total(&self) -> usize {
        self.seeds + self.midpoint + self.cubic + self.extrapolated
    }
}

/// Number of interpolation levels for a largest extent of `n`:
/// `ceil(log2(n))` (0 when the array is a single point).
pub fn interp_levels(n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// Predicts the point at line position `p` (an odd multiple of `s`) from its
/// already-known neighbours at multiples of `2s`.
#[inline]
fn predict(
    buf: &[f32],
    base: usize,
    stride_elems: usize,
    n: usize,
    p: usize,
    s: usize,
    interp: InterpKind,
) -> (f64, PredKind) {
    let at = |q: usize| buf[base + q * stride_elems] as f64;
    let prev = at(p - s);
    if p + s >= n {
        // One-sided fallback: the point "depends solely" on its predecessor
        // (the paper's Fig. 7 description of SZ3's behaviour — d1 extrapolates
        // d5, d5 extrapolates d7). This limited accuracy is precisely what
        // padding (Improvement 1) removes.
        return (prev, PredKind::Extrapolated);
    }
    let next = at(p + s);
    if interp == InterpKind::Cubic && p >= 3 * s && p + 3 * s < n {
        let pred = (-at(p - 3 * s) + 9.0 * prev + 9.0 * next - at(p + 3 * s)) / 16.0;
        return (pred, PredKind::Cubic);
    }
    ((prev + next) / 2.0, PredKind::Midpoint)
}

/// Runs the full coarse→fine traversal over `buf` (row-major, `dims`).
///
/// For every visited point, `visit(l, idx, cur, pred, kind)` is called with
/// the 1-based processing step `l` (1 = coarsest), the linear index, the
/// current buffer value and the prediction; its return value is stored back
/// into the buffer. Compression passes original data in `buf` and returns
/// reconstructions; decompression passes zeros and returns decoded values.
///
/// Returns the prediction-kind statistics.
pub(crate) fn traverse(
    dims: Dims3,
    interp: InterpKind,
    buf: &mut [f32],
    mut visit: impl FnMut(usize, usize, f32, f64, PredKind) -> f32,
) -> InterpStats {
    assert_eq!(buf.len(), dims.len(), "buffer does not match {dims}");
    let mut stats = InterpStats::default();
    if buf.is_empty() {
        return stats;
    }
    let maxlevel = interp_levels(dims.max_extent());
    // Seed: the global first point, predicted from 0 ("level 0" in the paper).
    buf[0] = visit(1, 0, buf[0], 0.0, PredKind::Seed);
    stats.seeds += 1;

    let strides = [dims.ny * dims.nz, dims.nz, 1usize];
    let extents = dims.as_array();

    for (step, level) in (1..=maxlevel).rev().enumerate() {
        let l_proc = step + 1;
        let s = 1usize << (level - 1);
        for d in 0..3 {
            let n_d = extents[d];
            if s >= n_d {
                continue; // no odd multiples of s inside this extent
            }
            // Other dims: already-processed dims this level use step `s`,
            // not-yet-processed use `2s`.
            let (o1, o2) = match d {
                0 => (1, 2),
                1 => (0, 2),
                _ => (0, 1),
            };
            let step1 = if o1 < d { s } else { 2 * s };
            let step2 = if o2 < d { s } else { 2 * s };
            let mut c1 = 0usize;
            while c1 < extents[o1] {
                let mut c2 = 0usize;
                while c2 < extents[o2] {
                    let base = c1 * strides[o1] + c2 * strides[o2];
                    let mut p = s;
                    while p < n_d {
                        let (pred, kind) = predict(buf, base, strides[d], n_d, p, s, interp);
                        let idx = base + p * strides[d];
                        buf[idx] = visit(l_proc, idx, buf[idx], pred, kind);
                        match kind {
                            PredKind::Midpoint => stats.midpoint += 1,
                            PredKind::Cubic => stats.cubic += 1,
                            PredKind::Extrapolated => stats.extrapolated += 1,
                            PredKind::Seed => unreachable!(),
                        }
                        p += 2 * s;
                    }
                    c2 += step2;
                }
                c1 += step1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_visits(dims: Dims3) -> (Vec<u32>, InterpStats) {
        let mut buf = vec![0f32; dims.len()];
        let mut visits = vec![0u32; dims.len()];
        let stats = traverse(dims, InterpKind::Linear, &mut buf, |_, idx, cur, _, _| {
            visits[idx] += 1;
            cur
        });
        (visits, stats)
    }

    #[test]
    fn levels_formula() {
        assert_eq!(interp_levels(1), 0);
        assert_eq!(interp_levels(2), 1);
        assert_eq!(interp_levels(8), 3);
        assert_eq!(interp_levels(9), 4);
        assert_eq!(interp_levels(17), 5);
        assert_eq!(interp_levels(512), 9);
    }

    #[test]
    fn every_cell_visited_exactly_once() {
        for dims in [
            Dims3::cube(8),
            Dims3::cube(9),
            Dims3::new(17, 17, 64),
            Dims3::new(1, 1, 8),
            Dims3::new(5, 3, 7),
            Dims3::new(1, 1, 1),
            Dims3::new(2, 1, 1),
        ] {
            let (visits, stats) = count_visits(dims);
            assert!(visits.iter().all(|&v| v == 1), "dims {dims}");
            assert_eq!(stats.total(), dims.len(), "dims {dims}");
        }
    }

    /// Fig. 7: an 8-point line suffers inner extrapolations; Fig. 8: padding to
    /// 9 points leaves only the single outer extrapolation.
    #[test]
    fn padding_eliminates_inner_extrapolation() {
        let (_, s8) = count_visits(Dims3::new(1, 1, 8));
        let (_, s9) = count_visits(Dims3::new(1, 1, 9));
        // n=8: p=4 (stride 4), p=6 (stride 2), p=7 (stride 1) extrapolate.
        assert_eq!(s8.extrapolated, 3);
        // n=9: only the outer point p=8 (stride 8) extrapolates.
        assert_eq!(s9.extrapolated, 1);
    }

    #[test]
    fn padded_merge_shape_has_fewer_extrapolations_per_point() {
        // A 16³ block vs its 17³ padded version (per Improvement 1, the gain
        // holds in 3-D too).
        let (_, raw) = count_visits(Dims3::cube(16));
        let (_, pad) = count_visits(Dims3::cube(17));
        let raw_frac = raw.extrapolated as f64 / raw.total() as f64;
        let pad_frac = pad.extrapolated as f64 / pad.total() as f64;
        assert!(
            pad_frac < raw_frac / 4.0,
            "padded {pad_frac:.4} vs raw {raw_frac:.4}"
        );
    }

    #[test]
    fn predictors_only_use_known_points() {
        // Fill with NaN; the visitor replaces each visited cell with a real
        // value. Any prediction touching an unvisited cell would go NaN.
        let dims = Dims3::new(6, 10, 33);
        let mut buf = vec![f32::NAN; dims.len()];
        traverse(dims, InterpKind::Cubic, &mut buf, |_, _, _, pred, kind| {
            if kind != PredKind::Seed {
                assert!(pred.is_finite(), "prediction consumed an unknown point");
            }
            1.0
        });
        assert!(buf.iter().all(|v| *v == 1.0));
    }

    #[test]
    fn linear_ramp_predicts_exactly_inside() {
        // On a perfectly linear field, midpoint & cubic predictions are exact;
        // passing the true values straight through must keep every interior
        // prediction error at zero.
        let dims = Dims3::new(1, 1, 9);
        let mut buf: Vec<f32> = (0..9).map(|z| z as f32).collect();
        let mut max_err = 0f64;
        traverse(
            dims,
            InterpKind::Cubic,
            &mut buf,
            |_, _, cur, pred, kind| {
                if matches!(kind, PredKind::Midpoint | PredKind::Cubic) {
                    max_err = max_err.max((pred - cur as f64).abs());
                }
                cur
            },
        );
        assert!(max_err < 1e-12, "max interior error {max_err}");
    }

    #[test]
    fn seed_gets_coarsest_level_number() {
        let dims = Dims3::cube(8);
        let mut buf = vec![0f32; dims.len()];
        let mut seed_level = 0usize;
        let mut max_level = 0usize;
        traverse(dims, InterpKind::Linear, &mut buf, |l, _, cur, _, kind| {
            if kind == PredKind::Seed {
                seed_level = l;
            }
            max_level = max_level.max(l);
            cur
        });
        assert_eq!(seed_level, 1);
        assert_eq!(max_level, interp_levels(8));
    }
}
