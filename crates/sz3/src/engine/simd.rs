//! x86-64 SIMD arms of the finest-level `z` line kernels.
//!
//! Only the sweep with `stride == 1 && s == 1` is vectorized: it is the one
//! sweep whose lines are contiguous in memory (targets at odd indices,
//! supports at even indices, element stride 2) and it alone visits about
//! half of all points — every other sweep walks the buffer at a large
//! stride where gathers would cost more than the math. The parent module
//! dispatches on [`hqmr_codec::kernels::simd_level`] and keeps the scalar
//! [`super::compress_line`] / [`super::decompress_line`] as the oracle.
//!
//! Bit-identity follows the same rules as the sz2 kernels: predictions are
//! evaluated lane-per-point with the scalar association (`9·b − a` is the
//! IEEE-identical commutation of `−a + 9·b`), and a group takes the vector
//! fast path only when every lane is predicted, tie-free and passes both
//! reconstruction rechecks — otherwise the whole group replays through the
//! scalar [`super::quantize_store`] / [`super::recover_value`], keeping the
//! code and outlier pushes in point order.

use super::{quantize_store, recover_value, LineGeom};
use hqmr_codec::LinearQuantizer;
use std::arch::x86_64::*;

/// `nextDown(0.5)` — the rounding tie [`hqmr_codec::round_ties_away_i64`]
/// guards against; tie lanes take the scalar replay path.
const TIE: f64 = 0.499_999_999_999_999_94;

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn abs4(x: __m256d) -> __m256d {
    _mm256_andnot_pd(_mm256_set1_pd(-0.0), x)
}

#[inline]
unsafe fn abs2(x: __m128d) -> __m128d {
    _mm_andnot_pd(_mm_set1_pd(-0.0), x)
}

/// Four even-stride values `buf[at], buf[at+2], buf[at+4], buf[at+6]` as
/// f32 lanes. Loads eight floats, so the caller guarantees
/// `at + 8 <= buf.len()` (the discarded odd lanes may read one element past
/// the line, never past the buffer).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn ev4f(buf: &[f32], at: usize) -> __m128 {
    debug_assert!(at + 8 <= buf.len());
    let v = _mm256_loadu_ps(buf.as_ptr().add(at));
    let idx = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
    _mm256_castps256_ps128(_mm256_permutevar8x32_ps(v, idx))
}

/// [`ev4f`] widened to f64.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn ev4(buf: &[f32], at: usize) -> __m256d {
    _mm256_cvtps_pd(ev4f(buf, at))
}

/// One-f64 left shift across two adjacent even windows:
/// `shift1([E0..E3], [E4..E7]) = [E1..E4]` (and the derived
/// `[E2..E5]` quarter via [`_mm256_permute2f128_pd`]). The kernels roll
/// `e_hi → e_lo` across groups so each even support is loaded and widened
/// exactly once — the vector analogue of the scalar rolling window — and so
/// the 8-float loads never span a just-stored odd target (which would
/// defeat store-to-load forwarding).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn shift1(e_lo: __m256d, mid: __m256d) -> __m256d {
    _mm256_shuffle_pd::<0b0101>(e_lo, mid)
}

/// Scatters four f32 reconstructions to the stride-2 targets at `i`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn scatter4(buf: &mut [f32], i: usize, r32: __m128) {
    debug_assert!(i + 6 < buf.len());
    let mut rs = [0f32; 4];
    _mm_storeu_ps(rs.as_mut_ptr(), r32);
    *buf.get_unchecked_mut(i) = rs[0];
    *buf.get_unchecked_mut(i + 2) = rs[1];
    *buf.get_unchecked_mut(i + 4) = rs[2];
    *buf.get_unchecked_mut(i + 6) = rs[3];
}

/// Two even-stride values as f64 lanes (scalar gathers: no over-read).
#[inline]
unsafe fn ev2(buf: &[f32], at: usize) -> __m128d {
    _mm_set_pd(buf[at + 2] as f64, buf[at] as f64)
}

/// Hoisted quantizer constants for the four-lane fast path.
struct Qc4 {
    sign: __m256d,
    half: __m256d,
    eb2: __m256d,
    eb: __m256d,
    lim: __m256d,
    tie: __m256d,
    rad: __m128i,
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn qc4(q: &LinearQuantizer) -> Qc4 {
    Qc4 {
        sign: _mm256_set1_pd(-0.0),
        half: _mm256_set1_pd(0.5),
        eb2: _mm256_set1_pd(2.0 * q.eb()),
        eb: _mm256_set1_pd(q.eb()),
        lim: _mm256_set1_pd((q.radius() - 1) as f64 - 0.5),
        tie: _mm256_set1_pd(TIE),
        rad: _mm_set1_epi32(q.radius() as i32),
    }
}

/// Vector quantize of four targets (`cur` lanes) against `pred`. On success
/// fills `cs` with the codes and `r32` with the f32 reconstructions and
/// returns true; returns false when any lane must replay through the scalar
/// path (outlier, rounding tie, or a failed recheck).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn quant4(k: &Qc4, pred: __m256d, cur: __m128, cs: &mut [u32; 4], out: &mut __m128) -> bool {
    let a = _mm256_cvtps_pd(cur);
    let t = _mm256_div_pd(_mm256_sub_pd(a, pred), k.eb2);
    let tabs = abs4(t);
    // In-range (NaN fails, like the scalar negated compare) and not the
    // rounding tie.
    let ok1 = _mm256_cmp_pd::<_CMP_LT_OQ>(tabs, k.lim);
    let tie = _mm256_cmp_pd::<_CMP_EQ_OQ>(tabs, k.tie);
    let rt = _mm256_add_pd(t, _mm256_or_pd(_mm256_and_pd(t, k.sign), k.half));
    let qi = _mm256_cvttpd_epi32(rt); // |t| < 32766.5: fits i32
    let recon64 = _mm256_add_pd(pred, _mm256_mul_pd(k.eb2, _mm256_cvtepi32_pd(qi)));
    let ok2 = _mm256_cmp_pd::<_CMP_LE_OQ>(abs4(_mm256_sub_pd(recon64, a)), k.eb);
    let r32 = _mm256_cvtpd_ps(recon64);
    let ok3 = _mm256_cmp_pd::<_CMP_LE_OQ>(abs4(_mm256_sub_pd(_mm256_cvtps_pd(r32), a)), k.eb);
    let okm = _mm256_and_pd(_mm256_and_pd(ok1, ok2), ok3);
    if _mm256_movemask_pd(okm) != 0xF || _mm256_movemask_pd(tie) != 0 {
        return false;
    }
    _mm_storeu_si128(cs.as_mut_ptr() as *mut __m128i, _mm_add_epi32(qi, k.rad));
    *out = r32;
    true
}

/// AVX2 arm of [`super::compress_line`] for the contiguous finest-z sweep.
///
/// # Safety
/// Requires AVX2 (guaranteed by the dispatcher); `base` must be a valid line
/// base for a sweep with `stride == 1 && s == 1`.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn compress_line_z1_avx2(
    buf: &mut [f32],
    base: usize,
    g: &LineGeom,
    q: &LinearQuantizer,
    codes: &mut Vec<u32>,
    outliers: &mut Vec<f32>,
) {
    let k = qc4(q);
    let two = _mm256_set1_pd(2.0);
    let nine = _mm256_set1_pd(9.0);
    let sixteen = _mm256_set1_pd(16.0);
    let n = buf.len();
    let mut i = base + 1;

    // Midpoint head (the whole interior when the interpolator is linear).
    let mut r = g.mid_head;
    if r >= 4 && i + 15 <= n {
        let mut e_lo = ev4(buf, i - 1); // [E0..E3], E_k = buf[i−1+2k]
        while r >= 4 && i + 15 <= n {
            let e_hi = ev4(buf, i + 7); // [E4..E7]
            let mid = _mm256_permute2f128_pd::<0x21>(e_lo, e_hi); // [E2..E5]
            let next = shift1(e_lo, mid); // [E1..E4]
            let pred = _mm256_div_pd(_mm256_add_pd(e_lo, next), two);
            let mut cs = [0u32; 4];
            let mut r32 = _mm_setzero_ps();
            if quant4(&k, pred, ev4f(buf, i), &mut cs, &mut r32) {
                codes.extend_from_slice(&cs);
                scatter4(buf, i, r32);
            } else {
                for j in 0..4 {
                    let p = i + 2 * j;
                    let pred = (buf[p - 1] as f64 + buf[p + 1] as f64) / 2.0;
                    buf[p] = quantize_store(q, buf[p], pred, codes, outliers);
                }
            }
            e_lo = e_hi;
            i += 8;
            r -= 4;
        }
    }
    while r > 0 {
        let pred = (buf[i - 1] as f64 + buf[i + 1] as f64) / 2.0;
        buf[i] = quantize_store(q, buf[i], pred, codes, outliers);
        i += 2;
        r -= 1;
    }

    // Cubic interior run.
    r = g.cubic;
    if r >= 4 && i + 13 <= n {
        let mut e_lo = ev4(buf, i - 3); // [E0..E3], E_k = buf[i−3+2k]
        while r >= 4 && i + 13 <= n {
            let e_hi = ev4(buf, i + 5); // [E4..E7]
            let cv = _mm256_permute2f128_pd::<0x21>(e_lo, e_hi); // [E2..E5]
            let bv = shift1(e_lo, cv); // [E1..E4]
            let dv = shift1(cv, e_hi); // [E3..E6]
                                       // 9·b − a ≡ −a + 9·b and the rest is the scalar association.
            let t0 = _mm256_add_pd(
                _mm256_sub_pd(_mm256_mul_pd(nine, bv), e_lo),
                _mm256_mul_pd(nine, cv),
            );
            let pred = _mm256_div_pd(_mm256_sub_pd(t0, dv), sixteen);
            let mut cs = [0u32; 4];
            let mut r32 = _mm_setzero_ps();
            if quant4(&k, pred, ev4f(buf, i), &mut cs, &mut r32) {
                codes.extend_from_slice(&cs);
                scatter4(buf, i, r32);
            } else {
                for j in 0..4 {
                    let p = i + 2 * j;
                    let (a, b) = (buf[p - 3] as f64, buf[p - 1] as f64);
                    let (c, d) = (buf[p + 1] as f64, buf[p + 3] as f64);
                    let pred = (-a + 9.0 * b + 9.0 * c - d) / 16.0;
                    buf[p] = quantize_store(q, buf[p], pred, codes, outliers);
                }
            }
            e_lo = e_hi;
            i += 8;
            r -= 4;
        }
    }
    while r > 0 {
        let (a, b) = (buf[i - 3] as f64, buf[i - 1] as f64);
        let (c, d) = (buf[i + 1] as f64, buf[i + 3] as f64);
        let pred = (-a + 9.0 * b + 9.0 * c - d) / 16.0;
        buf[i] = quantize_store(q, buf[i], pred, codes, outliers);
        i += 2;
        r -= 1;
    }

    // Midpoint tail (at most two points) and the extrapolated boundary.
    for _ in 0..g.mid_tail {
        let pred = (buf[i - 1] as f64 + buf[i + 1] as f64) / 2.0;
        buf[i] = quantize_store(q, buf[i], pred, codes, outliers);
        i += 2;
    }
    if g.extra {
        let pred = buf[i - 1] as f64;
        buf[i] = quantize_store(q, buf[i], pred, codes, outliers);
    }
}

/// SSE2 arm of [`compress_line_z1_avx2`] (pairs; scalar gathers, no
/// over-read).
///
/// # Safety
/// SSE2 baseline; same geometry contract as the AVX2 arm.
pub(super) unsafe fn compress_line_z1_sse2(
    buf: &mut [f32],
    base: usize,
    g: &LineGeom,
    q: &LinearQuantizer,
    codes: &mut Vec<u32>,
    outliers: &mut Vec<f32>,
) {
    let sign = _mm_set1_pd(-0.0);
    let half = _mm_set1_pd(0.5);
    let eb2v = _mm_set1_pd(2.0 * q.eb());
    let ebv = _mm_set1_pd(q.eb());
    let limv = _mm_set1_pd((q.radius() - 1) as f64 - 0.5);
    let tiev = _mm_set1_pd(TIE);
    let radv = _mm_set1_epi32(q.radius() as i32);
    let two = _mm_set1_pd(2.0);
    let nine = _mm_set1_pd(9.0);
    let sixteen = _mm_set1_pd(16.0);
    let mut i = base + 1;

    let quant2 = |buf: &mut [f32], i: usize, pred: __m128d, codes: &mut Vec<u32>| -> bool {
        let a = ev2(buf, i);
        let t = _mm_div_pd(_mm_sub_pd(a, pred), eb2v);
        let tabs = abs2(t);
        let ok1 = _mm_cmplt_pd(tabs, limv);
        let tie = _mm_cmpeq_pd(tabs, tiev);
        let rt = _mm_add_pd(t, _mm_or_pd(_mm_and_pd(t, sign), half));
        let qi = _mm_cvttpd_epi32(rt);
        let recon64 = _mm_add_pd(pred, _mm_mul_pd(eb2v, _mm_cvtepi32_pd(qi)));
        let ok2 = _mm_cmple_pd(abs2(_mm_sub_pd(recon64, a)), ebv);
        let r32 = _mm_cvtpd_ps(recon64);
        let ok3 = _mm_cmple_pd(abs2(_mm_sub_pd(_mm_cvtps_pd(r32), a)), ebv);
        let okm = _mm_and_pd(_mm_and_pd(ok1, ok2), ok3);
        if _mm_movemask_pd(okm) != 0x3 || _mm_movemask_pd(tie) != 0 {
            return false;
        }
        let mut cs = [0u32; 4];
        _mm_storeu_si128(cs.as_mut_ptr() as *mut __m128i, _mm_add_epi32(qi, radv));
        codes.extend_from_slice(&cs[..2]);
        let mut rs = [0f32; 4];
        _mm_storeu_ps(rs.as_mut_ptr(), r32);
        buf[i] = rs[0];
        buf[i + 2] = rs[1];
        true
    };

    let mut r = g.mid_head;
    while r >= 2 {
        let pred = _mm_div_pd(_mm_add_pd(ev2(buf, i - 1), ev2(buf, i + 1)), two);
        if !quant2(buf, i, pred, codes) {
            for j in 0..2 {
                let p = i + 2 * j;
                let pred = (buf[p - 1] as f64 + buf[p + 1] as f64) / 2.0;
                buf[p] = quantize_store(q, buf[p], pred, codes, outliers);
            }
        }
        i += 4;
        r -= 2;
    }
    if r > 0 {
        let pred = (buf[i - 1] as f64 + buf[i + 1] as f64) / 2.0;
        buf[i] = quantize_store(q, buf[i], pred, codes, outliers);
        i += 2;
    }

    r = g.cubic;
    while r >= 2 {
        let bv = _mm_mul_pd(nine, ev2(buf, i - 1));
        let cv = _mm_mul_pd(nine, ev2(buf, i + 1));
        let t0 = _mm_add_pd(_mm_sub_pd(bv, ev2(buf, i - 3)), cv);
        let pred = _mm_div_pd(_mm_sub_pd(t0, ev2(buf, i + 3)), sixteen);
        if !quant2(buf, i, pred, codes) {
            for j in 0..2 {
                let p = i + 2 * j;
                let (a, b) = (buf[p - 3] as f64, buf[p - 1] as f64);
                let (c, d) = (buf[p + 1] as f64, buf[p + 3] as f64);
                let pred = (-a + 9.0 * b + 9.0 * c - d) / 16.0;
                buf[p] = quantize_store(q, buf[p], pred, codes, outliers);
            }
        }
        i += 4;
        r -= 2;
    }
    if r > 0 {
        let (a, b) = (buf[i - 3] as f64, buf[i - 1] as f64);
        let (c, d) = (buf[i + 1] as f64, buf[i + 3] as f64);
        let pred = (-a + 9.0 * b + 9.0 * c - d) / 16.0;
        buf[i] = quantize_store(q, buf[i], pred, codes, outliers);
        i += 2;
    }

    for _ in 0..g.mid_tail {
        let pred = (buf[i - 1] as f64 + buf[i + 1] as f64) / 2.0;
        buf[i] = quantize_store(q, buf[i], pred, codes, outliers);
        i += 2;
    }
    if g.extra {
        let pred = buf[i - 1] as f64;
        buf[i] = quantize_store(q, buf[i], pred, codes, outliers);
    }
}

/// AVX2 arm of [`super::decompress_line`] for the contiguous finest-z sweep.
/// Quads with no `UNPREDICTABLE` lane reconstruct vectorially; any outlier
/// replays the quad through [`recover_value`] so the side-channel cursor
/// stays in point order.
///
/// # Safety
/// Requires AVX2 (guaranteed by the dispatcher); same geometry contract as
/// the compress arm, and `codes` must hold at least one code per remaining
/// target.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
pub(super) unsafe fn decompress_line_z1_avx2(
    buf: &mut [f32],
    base: usize,
    g: &LineGeom,
    q: &LinearQuantizer,
    codes: &[u32],
    ci: &mut usize,
    outliers: &[f32],
    oi: &mut usize,
    ok: &mut bool,
) {
    let eb2 = _mm256_set1_pd(2.0 * q.eb());
    let rad = _mm_set1_epi32(q.radius() as i32);
    let zero = _mm_setzero_si128();
    let two = _mm256_set1_pd(2.0);
    let nine = _mm256_set1_pd(9.0);
    let sixteen = _mm256_set1_pd(16.0);
    let n = buf.len();
    let mut i = base + 1;

    let mut r = g.mid_head;
    if r >= 4 && i + 15 <= n {
        let mut e_lo = ev4(buf, i - 1); // [E0..E3]
        while r >= 4 && i + 15 <= n {
            let e_hi = ev4(buf, i + 7); // [E4..E7]
            let c = _mm_loadu_si128(codes.as_ptr().add(*ci) as *const __m128i);
            if _mm_movemask_epi8(_mm_cmpeq_epi32(c, zero)) == 0 {
                let mid = _mm256_permute2f128_pd::<0x21>(e_lo, e_hi);
                let next = shift1(e_lo, mid);
                let pred = _mm256_div_pd(_mm256_add_pd(e_lo, next), two);
                let qf = _mm256_cvtepi32_pd(_mm_sub_epi32(c, rad));
                let r32 = _mm256_cvtpd_ps(_mm256_add_pd(pred, _mm256_mul_pd(eb2, qf)));
                scatter4(buf, i, r32);
            } else {
                for j in 0..4 {
                    let p = i + 2 * j;
                    let pred = (buf[p - 1] as f64 + buf[p + 1] as f64) / 2.0;
                    buf[p] = recover_value(q, pred, codes[*ci + j], outliers, oi, ok);
                }
            }
            e_lo = e_hi;
            *ci += 4;
            i += 8;
            r -= 4;
        }
    }
    while r > 0 {
        let pred = (buf[i - 1] as f64 + buf[i + 1] as f64) / 2.0;
        buf[i] = recover_value(q, pred, codes[*ci], outliers, oi, ok);
        *ci += 1;
        i += 2;
        r -= 1;
    }

    r = g.cubic;
    if r >= 4 && i + 13 <= n {
        let mut e_lo = ev4(buf, i - 3); // [E0..E3]
        while r >= 4 && i + 13 <= n {
            let e_hi = ev4(buf, i + 5); // [E4..E7]
            let c = _mm_loadu_si128(codes.as_ptr().add(*ci) as *const __m128i);
            if _mm_movemask_epi8(_mm_cmpeq_epi32(c, zero)) == 0 {
                let cv = _mm256_permute2f128_pd::<0x21>(e_lo, e_hi);
                let bv = shift1(e_lo, cv);
                let dv = shift1(cv, e_hi);
                let t0 = _mm256_add_pd(
                    _mm256_sub_pd(_mm256_mul_pd(nine, bv), e_lo),
                    _mm256_mul_pd(nine, cv),
                );
                let pred = _mm256_div_pd(_mm256_sub_pd(t0, dv), sixteen);
                let qf = _mm256_cvtepi32_pd(_mm_sub_epi32(c, rad));
                let r32 = _mm256_cvtpd_ps(_mm256_add_pd(pred, _mm256_mul_pd(eb2, qf)));
                scatter4(buf, i, r32);
            } else {
                for j in 0..4 {
                    let p = i + 2 * j;
                    let (a, b) = (buf[p - 3] as f64, buf[p - 1] as f64);
                    let (c, d) = (buf[p + 1] as f64, buf[p + 3] as f64);
                    let pred = (-a + 9.0 * b + 9.0 * c - d) / 16.0;
                    buf[p] = recover_value(q, pred, codes[*ci + j], outliers, oi, ok);
                }
            }
            e_lo = e_hi;
            *ci += 4;
            i += 8;
            r -= 4;
        }
    }
    while r > 0 {
        let (a, b) = (buf[i - 3] as f64, buf[i - 1] as f64);
        let (c, d) = (buf[i + 1] as f64, buf[i + 3] as f64);
        let pred = (-a + 9.0 * b + 9.0 * c - d) / 16.0;
        buf[i] = recover_value(q, pred, codes[*ci], outliers, oi, ok);
        *ci += 1;
        i += 2;
        r -= 1;
    }

    for _ in 0..g.mid_tail {
        let pred = (buf[i - 1] as f64 + buf[i + 1] as f64) / 2.0;
        buf[i] = recover_value(q, pred, codes[*ci], outliers, oi, ok);
        *ci += 1;
        i += 2;
    }
    if g.extra {
        let pred = buf[i - 1] as f64;
        buf[i] = recover_value(q, pred, codes[*ci], outliers, oi, ok);
        *ci += 1;
    }
}

/// SSE2 arm of [`decompress_line_z1_avx2`] (pairs; scalar gathers).
///
/// # Safety
/// SSE2 baseline; same contract as the AVX2 arm.
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn decompress_line_z1_sse2(
    buf: &mut [f32],
    base: usize,
    g: &LineGeom,
    q: &LinearQuantizer,
    codes: &[u32],
    ci: &mut usize,
    outliers: &[f32],
    oi: &mut usize,
    ok: &mut bool,
) {
    let eb2 = _mm_set1_pd(2.0 * q.eb());
    let rad = _mm_set1_epi32(q.radius() as i32);
    let two = _mm_set1_pd(2.0);
    let nine = _mm_set1_pd(9.0);
    let sixteen = _mm_set1_pd(16.0);
    let mut i = base + 1;

    let mut r = g.mid_head;
    while r >= 2 {
        let (c0, c1) = (codes[*ci], codes[*ci + 1]);
        if c0 != 0 && c1 != 0 {
            let c = _mm_set_epi32(0, 0, c1 as i32, c0 as i32);
            let pred = _mm_div_pd(_mm_add_pd(ev2(buf, i - 1), ev2(buf, i + 1)), two);
            let qf = _mm_cvtepi32_pd(_mm_sub_epi32(c, rad));
            let mut rs = [0f32; 4];
            _mm_storeu_ps(
                rs.as_mut_ptr(),
                _mm_cvtpd_ps(_mm_add_pd(pred, _mm_mul_pd(eb2, qf))),
            );
            buf[i] = rs[0];
            buf[i + 2] = rs[1];
        } else {
            for j in 0..2 {
                let p = i + 2 * j;
                let pred = (buf[p - 1] as f64 + buf[p + 1] as f64) / 2.0;
                buf[p] = recover_value(q, pred, codes[*ci + j], outliers, oi, ok);
            }
        }
        *ci += 2;
        i += 4;
        r -= 2;
    }
    if r > 0 {
        let pred = (buf[i - 1] as f64 + buf[i + 1] as f64) / 2.0;
        buf[i] = recover_value(q, pred, codes[*ci], outliers, oi, ok);
        *ci += 1;
        i += 2;
    }

    r = g.cubic;
    while r >= 2 {
        let (c0, c1) = (codes[*ci], codes[*ci + 1]);
        if c0 != 0 && c1 != 0 {
            let c = _mm_set_epi32(0, 0, c1 as i32, c0 as i32);
            let bv = _mm_mul_pd(nine, ev2(buf, i - 1));
            let cv = _mm_mul_pd(nine, ev2(buf, i + 1));
            let t0 = _mm_add_pd(_mm_sub_pd(bv, ev2(buf, i - 3)), cv);
            let pred = _mm_div_pd(_mm_sub_pd(t0, ev2(buf, i + 3)), sixteen);
            let qf = _mm_cvtepi32_pd(_mm_sub_epi32(c, rad));
            let mut rs = [0f32; 4];
            _mm_storeu_ps(
                rs.as_mut_ptr(),
                _mm_cvtpd_ps(_mm_add_pd(pred, _mm_mul_pd(eb2, qf))),
            );
            buf[i] = rs[0];
            buf[i + 2] = rs[1];
        } else {
            for j in 0..2 {
                let p = i + 2 * j;
                let (a, b) = (buf[p - 3] as f64, buf[p - 1] as f64);
                let (c, d) = (buf[p + 1] as f64, buf[p + 3] as f64);
                let pred = (-a + 9.0 * b + 9.0 * c - d) / 16.0;
                buf[p] = recover_value(q, pred, codes[*ci + j], outliers, oi, ok);
            }
        }
        *ci += 2;
        i += 4;
        r -= 2;
    }
    if r > 0 {
        let (a, b) = (buf[i - 3] as f64, buf[i - 1] as f64);
        let (c, d) = (buf[i + 1] as f64, buf[i + 3] as f64);
        let pred = (-a + 9.0 * b + 9.0 * c - d) / 16.0;
        buf[i] = recover_value(q, pred, codes[*ci], outliers, oi, ok);
        *ci += 1;
        i += 2;
    }

    for _ in 0..g.mid_tail {
        let pred = (buf[i - 1] as f64 + buf[i + 1] as f64) / 2.0;
        buf[i] = recover_value(q, pred, codes[*ci], outliers, oi, ok);
        *ci += 1;
        i += 2;
    }
    if g.extra {
        let pred = buf[i - 1] as f64;
        buf[i] = recover_value(q, pred, codes[*ci], outliers, oi, ok);
        *ci += 1;
    }
}
