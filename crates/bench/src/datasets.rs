//! Table III dataset instantiations at a configurable scale.
//!
//! `scale` is the cube side of the cubic datasets (the paper uses 512; the
//! default harness scale is 64–128). Elongated datasets derive their shape
//! from `scale` with the paper's aspect ratios.

use hqmr_grid::{synth, Dims3, Field3};
use hqmr_mr::{to_adaptive, to_amr, AmrConfig, MultiResData, RoiConfig};

/// A ready-to-compress dataset: its fine uniform field plus the
/// multi-resolution structure Table III specifies.
pub struct BenchDataset {
    /// Table III name.
    pub name: &'static str,
    /// The uniform fine field the proxy generator produced.
    pub field: Field3,
    /// Multi-resolution structure (None for the uniform datasets).
    pub mr: Option<MultiResData>,
}

impl BenchDataset {
    /// Value range of the fine field (error bounds are specified relative to
    /// this, matching the SZ convention).
    pub fn range(&self) -> f64 {
        self.field.range() as f64
    }
}

fn unit_for(scale: usize) -> usize {
    // The paper's unit block is 16 on 512³; shrink with the domain but never
    // below 8 so padding stays active (u > 4).
    if scale >= 128 {
        16
    } else {
        8
    }
}

/// Nyx-T1: in-situ AMR, 2 levels, fine 18% / coarse 82%.
pub fn nyx_t1(scale: usize, seed: u64) -> BenchDataset {
    let field = synth::nyx_like(scale, seed);
    let mr = to_amr(&field, &AmrConfig::new(unit_for(scale), vec![0.18, 0.82]));
    BenchDataset {
        name: "Nyx-T1",
        field,
        mr: Some(mr),
    }
}

/// Nyx-T2: offline AMR, 2 levels, fine 58% / coarse 42%.
pub fn nyx_t2(scale: usize, seed: u64) -> BenchDataset {
    let field = synth::nyx_like(scale, seed ^ 0x1111);
    let mr = to_amr(&field, &AmrConfig::new(unit_for(scale), vec![0.58, 0.42]));
    BenchDataset {
        name: "Nyx-T2",
        field,
        mr: Some(mr),
    }
}

/// Nyx-T3: offline uniform.
pub fn nyx_t3(scale: usize, seed: u64) -> BenchDataset {
    let field = synth::nyx_like(scale, seed ^ 0x2222);
    BenchDataset {
        name: "Nyx-T3",
        field,
        mr: None,
    }
}

/// WarpX: in-situ adaptive (uniform → 2 levels, 50/50), shape n²×8n.
pub fn warpx(scale: usize, seed: u64) -> BenchDataset {
    let field = synth::warpx_like(Dims3::new(scale, scale, 8 * scale), seed);
    let mr = to_adaptive(&field, &RoiConfig::new(unit_for(scale), 0.5));
    BenchDataset {
        name: "WarpX",
        field,
        mr: Some(mr),
    }
}

/// RT: offline AMR, 3 levels, 15/31/54.
pub fn rt(scale: usize, seed: u64) -> BenchDataset {
    let field = synth::rt_like(scale, seed);
    let unit = unit_for(scale).max(16); // 3 levels need unit ≥ 16 for u/4 ≥ 4
    let mr = to_amr(&field, &AmrConfig::new(unit, vec![0.15, 0.31, 0.54]));
    BenchDataset {
        name: "RT",
        field,
        mr: Some(mr),
    }
}

/// Hurricane: offline adaptive (uniform → 2 levels, 35/65), shape n²×n/4.
pub fn hurricane(scale: usize, seed: u64) -> BenchDataset {
    let nz = (scale / 4).max(unit_for(scale));
    let field = synth::hurricane_like(Dims3::new(scale, scale, nz), seed);
    let mr = to_adaptive(&field, &RoiConfig::new(unit_for(scale), 0.35));
    BenchDataset {
        name: "Hurri",
        field,
        mr: Some(mr),
    }
}

/// S3D: offline uniform.
pub fn s3d(scale: usize, seed: u64) -> BenchDataset {
    let field = synth::s3d_like(scale, seed);
    BenchDataset {
        name: "S3D",
        field,
        mr: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_densities_roughly_hold() {
        let d = nyx_t1(64, 1);
        let mr = d.mr.unwrap();
        let fine = mr.levels[0].covered_cells() as f64 / mr.domain.len() as f64;
        assert!((fine - 0.18).abs() < 0.06, "fine density {fine}");

        let d = rt(64, 2);
        let mr = d.mr.unwrap();
        assert_eq!(mr.levels.len(), 3);
        assert_eq!(mr.coverage_defects(), 0);
    }

    #[test]
    fn elongated_shapes() {
        let d = warpx(16, 0);
        assert_eq!(d.field.dims(), Dims3::new(16, 16, 128));
        let d = hurricane(32, 0);
        assert_eq!(d.field.dims(), Dims3::new(32, 32, 8));
    }
}
