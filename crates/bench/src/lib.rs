//! Experiment harness regenerating every table and figure of §IV.
//!
//! `cargo run -p hqmr-bench --release --bin tables -- <experiment> [scale]`
//! runs one experiment (or `all`) and writes its report to
//! `results/<experiment>.txt`. The default scale keeps every experiment
//! within seconds on a laptop; pass a larger scale (e.g. `128`) for the
//! numbers recorded in EXPERIMENTS.md.
//!
//! The absolute values differ from the paper (synthetic proxies, different
//! machine); the *shape* — who wins, by what factor, where crossovers sit —
//! is the reproduction target.

pub mod datasets;
pub mod experiments;
pub mod runner;

use std::io::Write;
use std::path::PathBuf;

/// Writes a report to `results/<name>.txt` (creating the directory) and
/// echoes it to stdout.
pub fn emit_report(name: &str, body: &str) {
    println!("{body}");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join(format!("{name}.txt"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = f.write_all(body.as_bytes());
            eprintln!("[saved {}]", path.display());
        }
        Err(e) => eprintln!("[could not save {}: {e}]", path.display()),
    }
}

/// The `results/` directory at the workspace root (falls back to CWD).
pub fn results_dir() -> PathBuf {
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    here.ancestors()
        .nth(2)
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Writes a committed JSON baseline (e.g. `BENCH_codecs.json`,
/// `BENCH_store.json`) at the workspace root, appending the outcome to the
/// experiment's report body.
pub fn write_root_json(name: &str, json: &str, report: &mut String) {
    use std::fmt::Write as _;
    let Some(root) = results_dir().parent().map(std::path::Path::to_path_buf) else {
        return;
    };
    let path = root.join(name);
    match std::fs::write(&path, json) {
        Ok(()) => writeln!(report, "wrote {}", path.display()).unwrap(),
        Err(e) => writeln!(report, "could not write {}: {e}", path.display()).unwrap(),
    }
}
