//! Shared experiment machinery: rate-distortion sweeps, CR matching,
//! block-wise multi-resolution round-trips, formatting.

use hqmr_core::mrc::{compress_mr, decompress_mr, MrcConfig};
use hqmr_core::post::{bezier_pass, select_intensity, PostConfig};
use hqmr_grid::Field3;
use hqmr_mr::{merge_level, LevelData, MergeStrategy, MultiResData};
use hqmr_sz2::Sz2Config;
use hqmr_zfp::ZfpConfig;

/// A named `MrcConfig` constructor from an absolute error bound — the shape
/// every sweep table is built from.
pub type MkConfig = fn(f64) -> MrcConfig;

/// One point on a rate-distortion curve.
#[derive(Debug, Clone, Copy)]
pub struct RdPoint {
    /// Compression ratio.
    pub cr: f64,
    /// PSNR in dB.
    pub psnr: f64,
}

/// PSNR over raw sample slices (used for per-level comparisons where a dense
/// field would dilute the metric with untouched fill values).
pub fn psnr_slices(orig: &[f32], dec: &[f32]) -> f64 {
    assert_eq!(orig.len(), dec.len());
    let (mut mn, mut mx) = (f32::INFINITY, f32::NEG_INFINITY);
    let mut mse = 0.0f64;
    for (&a, &b) in orig.iter().zip(dec) {
        mn = mn.min(a);
        mx = mx.max(a);
        let d = a as f64 - b as f64;
        mse += d * d;
    }
    mse /= orig.len() as f64;
    if mse == 0.0 {
        return f64::INFINITY;
    }
    20.0 * ((mx - mn) as f64).log10() - 10.0 * mse.log10()
}

/// Concatenated block values of a level (fine-to-coarse raster order).
pub fn level_values(level: &LevelData) -> Vec<f32> {
    level
        .blocks
        .iter()
        .flat_map(|b| b.data.iter().copied())
        .collect()
}

/// PSNR between two structurally identical levels, over stored block data.
pub fn level_psnr(a: &LevelData, b: &LevelData) -> f64 {
    psnr_slices(&level_values(a), &level_values(b))
}

/// Wraps one level as a standalone [`MultiResData`] so per-level CR and
/// quality can be measured in isolation (the per-panel plots of Fig. 15).
pub fn single_level(mr: &MultiResData, idx: usize) -> MultiResData {
    let mut lvl = mr.levels[idx].clone();
    lvl.level = 0;
    MultiResData {
        domain: lvl.dims,
        levels: vec![lvl],
    }
}

/// Compresses `mr` under `cfg`, returning `(cr, per-level PSNR over stored
/// blocks)`.
pub fn roundtrip_mr(mr: &MultiResData, cfg: &MrcConfig) -> (f64, Vec<f64>) {
    let (bytes, stats) = compress_mr(mr, cfg);
    let back = decompress_mr(&bytes).expect("fresh stream must decompress");
    let psnrs = mr
        .levels
        .iter()
        .zip(&back.levels)
        .map(|(a, b)| level_psnr(a, b))
        .collect();
    (stats.ratio(), psnrs)
}

/// Sweeps relative error bounds and returns one rate-distortion curve per
/// configuration constructor.
pub fn rd_sweep(
    mr: &MultiResData,
    range: f64,
    rel_ebs: &[f64],
    configs: &[(&'static str, MkConfig)],
) -> Vec<(&'static str, Vec<RdPoint>)> {
    configs
        .iter()
        .map(|&(name, mk)| {
            let pts = rel_ebs
                .iter()
                .map(|&rel| {
                    let (cr, psnrs) = roundtrip_mr(mr, &mk(range * rel));
                    RdPoint {
                        cr,
                        psnr: combine_level_psnr(mr, &psnrs),
                    }
                })
                .collect();
            (name, pts)
        })
        .collect()
}

/// Combines per-level PSNRs into a dataset PSNR by recomputing over all
/// stored values (cheap; levels already round-tripped inside `rd_sweep`).
fn combine_level_psnr(mr: &MultiResData, per_level: &[f64]) -> f64 {
    // Weighted in the MSE domain by stored cell counts; ranges differ per
    // level so this is approximate, but monotone in the thing we plot.
    let mut total_cells = 0.0f64;
    let mut mse_acc = 0.0f64;
    let mut range: f64 = 0.0;
    for (lvl, &p) in mr.levels.iter().zip(per_level) {
        let vals = level_values(lvl);
        if vals.is_empty() {
            continue;
        }
        let (mn, mx) = vals
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(a, b), &v| {
                (a.min(v), b.max(v))
            });
        let r = (mx - mn) as f64;
        range = range.max(r);
        let mse = if p.is_finite() {
            (r.powi(2)) / 10f64.powf(p / 10.0)
        } else {
            0.0
        };
        let n = vals.len() as f64;
        mse_acc += mse * n;
        total_cells += n;
    }
    if total_cells == 0.0 || mse_acc == 0.0 {
        return f64::INFINITY;
    }
    20.0 * range.log10() - 10.0 * (mse_acc / total_cells).log10()
}

/// Finds the relative error bound whose compression ratio is closest to
/// `target_cr` by bisection on `log(rel_eb)` (CR grows with eb).
pub fn match_cr(
    eval: impl Fn(f64) -> f64,
    mut lo_rel: f64,
    mut hi_rel: f64,
    target_cr: f64,
    iters: usize,
) -> f64 {
    for _ in 0..iters {
        let mid = (lo_rel.ln() + hi_rel.ln()) / 2.0;
        let mid = mid.exp();
        if eval(mid) < target_cr {
            lo_rel = mid;
        } else {
            hi_rel = mid;
        }
    }
    (lo_rel.ln() / 2.0 + hi_rel.ln() / 2.0).exp()
}

/// Which block-wise compressor a round-trip uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockCodec {
    /// SZ2 with the given block size.
    Sz2 {
        /// Block side (6 uniform, 4 multi-resolution).
        block: usize,
    },
    /// ZFP fixed-accuracy.
    Zfp,
}

impl BlockCodec {
    /// Compress + decompress, returning `(compressed bytes, reconstruction)`.
    pub fn roundtrip(&self, field: &Field3, eb: f64) -> (usize, Field3) {
        match *self {
            BlockCodec::Sz2 { block } => {
                let r = hqmr_sz2::compress(field, &Sz2Config { eb, block });
                let d = hqmr_sz2::decompress(&r.bytes).expect("sz2 roundtrip");
                (r.bytes.len(), d)
            }
            BlockCodec::Zfp => {
                let r = hqmr_zfp::compress(field, &ZfpConfig::new(eb));
                let d = hqmr_zfp::decompress(&r.bytes).expect("zfp roundtrip");
                (r.bytes.len(), d)
            }
        }
    }

    /// The matching post-process configuration.
    pub fn post_config(&self) -> PostConfig {
        match *self {
            BlockCodec::Sz2 { block: 4 } => PostConfig::sz2_multires(),
            BlockCodec::Sz2 { .. } => PostConfig::sz2(),
            BlockCodec::Zfp => PostConfig::zfp(),
        }
    }
}

/// Result of a block-wise round-trip over multi-resolution data.
pub struct MrBlockwiseResult {
    /// Compression ratio over stored cells.
    pub cr: f64,
    /// PSNR of stored values before post-processing.
    pub psnr_ori: f64,
    /// PSNR after the Bézier post-process.
    pub psnr_post: f64,
    /// Per-level `(psnr_ori, psnr_post)`.
    pub per_level: Vec<(f64, f64)>,
}

/// Round-trips multi-resolution data through a block-wise codec (the
/// AMRIC-SZ2 / ZFP paths of Tables V and VII): stack-merge each level,
/// compress the merged arrays, then post-process each decompressed array.
pub fn mr_blockwise_roundtrip(mr: &MultiResData, codec: BlockCodec, eb: f64) -> MrBlockwiseResult {
    let mut bytes = 0usize;
    let mut per_level = Vec::new();
    let mut all_o: Vec<f32> = Vec::new();
    let mut all_d: Vec<f32> = Vec::new();
    let mut all_p: Vec<f32> = Vec::new();
    for level in &mr.levels {
        let arrays = merge_level(level, MergeStrategy::Stack);
        let mut lo: Vec<f32> = Vec::new();
        let mut ld: Vec<f32> = Vec::new();
        let mut lp: Vec<f32> = Vec::new();
        for m in &arrays {
            let (b, dec) = codec.roundtrip(&m.field, eb);
            bytes += b;
            let cfg = codec.post_config();
            let choice = select_intensity(&m.field, &dec, eb, &cfg);
            let post = bezier_pass(&dec, eb, choice.a, &cfg);
            // Only real slots count toward quality (stack filler excluded).
            for &(slot, _) in &m.slots {
                let size = hqmr_grid::Dims3::cube(m.unit);
                lo.extend(m.field.extract_box(slot, size).into_vec());
                ld.extend(dec.extract_box(slot, size).into_vec());
                lp.extend(post.extract_box(slot, size).into_vec());
            }
        }
        per_level.push((psnr_slices(&lo, &ld), psnr_slices(&lo, &lp)));
        all_o.extend(lo);
        all_d.extend(ld);
        all_p.extend(lp);
    }
    MrBlockwiseResult {
        cr: (mr.total_cells() * 4) as f64 / bytes.max(1) as f64,
        psnr_ori: psnr_slices(&all_o, &all_d),
        psnr_post: psnr_slices(&all_o, &all_p),
        per_level,
    }
}

/// Formats a labelled row of numbers.
pub fn row(
    label: &str,
    values: impl IntoIterator<Item = f64>,
    width: usize,
    prec: usize,
) -> String {
    let mut s = format!("{label:<16}");
    for v in values {
        if v.is_finite() {
            s.push_str(&format!(" {v:>width$.prec$}"));
        } else {
            s.push_str(&format!(" {:>width$}", "inf"));
        }
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::synth;
    use hqmr_mr::{to_amr, AmrConfig};

    #[test]
    fn psnr_slices_matches_definition() {
        let o = vec![0.0f32, 10.0];
        let d = vec![0.1f32, 10.1];
        // range 10, rmse 0.1 → 40 dB (f32 representation error allowed).
        assert!((psnr_slices(&o, &d) - 40.0).abs() < 1e-3);
    }

    #[test]
    fn match_cr_converges() {
        // CR model: cr(rel) = 1000·rel (monotone).
        let rel = match_cr(|r| 1000.0 * r, 1e-4, 1.0, 50.0, 40);
        assert!((1000.0 * rel - 50.0).abs() < 1.0, "rel={rel}");
    }

    #[test]
    fn mr_blockwise_roundtrip_bounds_and_improves() {
        let f = synth::nyx_like(32, 3);
        let mr = to_amr(&f, &AmrConfig::new(8, vec![0.25, 0.75]));
        let eb = f.range() as f64 * 1e-3;
        let r = mr_blockwise_roundtrip(&mr, BlockCodec::Sz2 { block: 4 }, eb);
        assert!(r.cr > 1.0);
        assert!(
            r.psnr_post >= r.psnr_ori - 0.01,
            "{} vs {}",
            r.psnr_post,
            r.psnr_ori
        );
    }
}
