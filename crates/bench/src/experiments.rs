//! One function per paper table/figure. Each returns a plain-text report;
//! the `tables` binary dispatches and persists them under `results/`.

use crate::datasets;
use crate::runner::{
    level_psnr, level_values, match_cr, mr_blockwise_roundtrip, psnr_slices, rd_sweep,
    roundtrip_mr, row, single_level, BlockCodec, MkConfig, RdPoint,
};
use hqmr_core::mrc::{compress_mr, decompress_mr, Backend, MrcConfig};
use hqmr_core::post::{bezier_pass, select_intensity, select_intensity_sampled, PostConfig};
use hqmr_core::uncertainty::{analyze_feature_recovery, model_near_isovalue, sample_error_pairs};
use hqmr_core::{insitu, StageTimings};
use hqmr_filters::{anisotropic_diffusion, gaussian_blur, median3};
use hqmr_grid::{synth, Dims3, Field3};
use hqmr_metrics::{find_halos_abs, halo_recall, psnr, spectrum_rel_errors, ssim};
use hqmr_mr::{
    merge_discontinuity, merge_level, resample_like, roi_only_field, to_adaptive, MergeStrategy,
    MultiResData, RoiConfig, Upsample,
};
use hqmr_sz3::interp_levels;
use hqmr_vis::{render_slice, save_ppm, Colormap};
use std::fmt::Write as _;

const RD_CONFIGS: [(&str, MkConfig); 5] = [
    ("Baseline-SZ3", MrcConfig::baseline),
    ("AMRIC-SZ3", MrcConfig::amric),
    ("TAC-SZ3", MrcConfig::tac),
    ("Ours(pad)", MrcConfig::ours_pad),
    ("Ours(pad+eb)", MrcConfig::ours),
];

fn fmt_curves(out: &mut String, curves: &[(&'static str, Vec<RdPoint>)]) {
    for (name, pts) in curves {
        out.push_str(&row(&format!("{name} CR"), pts.iter().map(|p| p.cr), 9, 2));
        out.push_str(&row(
            &format!("{name} PSNR"),
            pts.iter().map(|p| p.psnr),
            9,
            2,
        ));
    }
}

/// Table III: dataset inventory at the chosen scale.
pub fn tab03(scale: usize) -> String {
    let mut out = String::from("Table III — datasets (proxy instantiation)\n");
    let sets = [
        datasets::nyx_t1(scale, 1),
        datasets::warpx(scale / 2, 2),
        datasets::rt(scale, 3),
        datasets::nyx_t2(scale, 4),
        datasets::hurricane(scale, 5),
        datasets::nyx_t3(scale, 6),
        datasets::s3d(scale, 7),
    ];
    for d in sets {
        let dims = d.field.dims();
        let mb = (d.field.len() * 4) as f64 / (1024.0 * 1024.0);
        write!(out, "{:8} dims={dims} size={mb:.1} MiB", d.name).unwrap();
        if let Some(mr) = &d.mr {
            write!(out, " levels={}", mr.levels.len()).unwrap();
            for l in &mr.levels {
                write!(
                    out,
                    " [L{} unit={} density={:.0}%]",
                    l.level,
                    l.unit,
                    100.0 * l.density()
                )
                .unwrap();
            }
            write!(out, " storage_ratio={:.2}", mr.storage_ratio()).unwrap();
        } else {
            write!(out, " uniform").unwrap();
        }
        out.push('\n');
    }
    out
}

/// Fig. 4: range-threshold ROI extraction on Nyx — volume fraction vs. halo
/// recall and slice SSIM (the paper reports 15% volume, SSIM 0.99995).
pub fn fig04(scale: usize) -> String {
    let d = datasets::nyx_t1(scale, 11);
    // Halo definition: extreme over-densities (a FOF-style finder targets
    // collapsed structures, not the broad over-dense tail).
    let mean = d.field.data().iter().map(|&v| v as f64).sum::<f64>() / d.field.len() as f64;
    let thr = (25.0 * mean) as f32;
    let halos = find_halos_abs(&d.field, thr, 3);
    let mut out = format!(
        "Fig. 4 — ROI extraction on {} ({} halos at 25x mean, >=3 cells)\n",
        d.name,
        halos.len()
    );
    out.push_str("roi_frac  vol%   halo_recall  slice_SSIM  storage_ratio\n");
    for frac in [0.05, 0.10, 0.15, 0.25, 0.50] {
        let cfg = RoiConfig::new(if scale >= 128 { 16 } else { 8 }, frac);
        let (roi_field, vol) = roi_only_field(&d.field, &cfg);
        let roi_halos = find_halos_abs(&roi_field, thr, 1);
        let recall = halo_recall(&halos, &roi_halos, 3.0);
        let mr = to_adaptive(&d.field, &cfg);
        let recon = mr.reconstruct(Upsample::Trilinear);
        let k = d.field.dims().nz / 2;
        let (w, h, a) = d.field.slice_z(k);
        let (_, _, b) = recon.slice_z(k);
        let s = ssim(&a, &b, w, h);
        writeln!(
            out,
            "{:8.2} {:5.1}  {:11.3}  {:10.5}  {:13.2}",
            frac,
            100.0 * vol,
            recall,
            s,
            mr.storage_ratio()
        )
        .unwrap();
    }
    out
}

/// Fig. 5: visual quality at matched CR on the Nyx fine level —
/// TAC vs AMRIC vs ours (the paper: SSIM .64/.57/.91 at CR 163).
pub fn fig05(scale: usize) -> String {
    let d = datasets::nyx_t1(scale, 21);
    let mr = d.mr.as_ref().unwrap();
    let fine = single_level(mr, 0);
    let range = d.range();
    // Target CR: whatever "ours" reaches at a high relative bound.
    let (target_cr, _) = roundtrip_mr(&fine, &MrcConfig::ours(range * 2e-2));
    let mut out = format!("Fig. 5 — Nyx fine level at matched CR ≈ {target_cr:.0}\n");
    out.push_str("method        CR       PSNR     SSIM(slice)\n");
    for (name, mk) in RD_CONFIGS {
        let rel = match_cr(
            |r| roundtrip_mr(&fine, &mk(range * r)).0,
            1e-5,
            0.3,
            target_cr,
            18,
        );
        let cfg = mk(range * rel);
        let (bytes, stats) = compress_mr(&fine, &cfg);
        let back = decompress_mr(&bytes).unwrap();
        let p = level_psnr(&fine.levels[0], &back.levels[0]);
        // Slice SSIM of the fine-level field (empty cells filled with 0 in
        // both, so structural differences come from the blocks).
        let fa = fine.levels[0].to_field(0.0);
        let fb = back.levels[0].to_field(0.0);
        let k = fa.dims().nz / 2;
        let (w, h, a) = fa.slice_z(k);
        let (_, _, b) = fb.slice_z(k);
        writeln!(
            out,
            "{name:13} {:8.1} {p:8.2} {:10.4}",
            stats.ratio(),
            ssim(&a, &b, w, h)
        )
        .unwrap();
    }
    out
}

/// Fig. 6: boundary unsmoothness of the three arrangements.
pub fn fig06(scale: usize) -> String {
    let mut out =
        String::from("Fig. 6 — mean |jump| across merged block joins (lower = smoother)\n");
    for (name, d) in [
        ("Nyx-T1", datasets::nyx_t1(scale, 31)),
        ("RT", datasets::rt(scale, 32)),
    ] {
        let mr = d.mr.as_ref().unwrap();
        write!(out, "{name:8}").unwrap();
        for (sname, s) in [
            ("linear", MergeStrategy::Linear),
            ("stack", MergeStrategy::Stack),
            ("tac", MergeStrategy::Tac),
        ] {
            let arrays: Vec<_> = mr.levels.iter().flat_map(|l| merge_level(l, s)).collect();
            write!(out, "  {sname}={:.4e}", merge_discontinuity(&arrays)).unwrap();
        }
        out.push('\n');
    }
    out
}

/// Fig. 7/8: interpolation extrapolation counts with and without padding.
pub fn fig07(_scale: usize) -> String {
    let mut out =
        String::from("Fig. 7/8 — sub-optimal (extrapolated) predictions per line/array\n");
    for (label, dims) in [
        ("1-D n=8 (Fig.7)", Dims3::new(1, 1, 8)),
        ("1-D n=9 (Fig.8, padded)", Dims3::new(1, 1, 9)),
        ("1-D n=16", Dims3::new(1, 1, 16)),
        ("1-D n=17 (padded)", Dims3::new(1, 1, 17)),
        ("3-D 16^3", Dims3::cube(16)),
        ("3-D 17^3 (padded)", Dims3::cube(17)),
        ("merged 16x16x256", Dims3::new(16, 16, 256)),
        ("merged 17x17x256 (padded)", Dims3::new(17, 17, 256)),
    ] {
        let f = Field3::from_fn(dims, |x, y, z| {
            ((x + y) as f32 * 0.3).sin() + (z as f32 * 0.2).cos()
        });
        let r = hqmr_sz3::compress(&f, &hqmr_sz3::Sz3Config::new(1e-3));
        writeln!(
            out,
            "{label:28} levels={} extrapolated={:5} of {:7} ({:.2}%)",
            interp_levels(dims.max_extent()),
            r.stats.extrapolated,
            r.stats.total(),
            100.0 * r.stats.extrapolated as f64 / r.stats.total() as f64
        )
        .unwrap();
    }
    out
}

/// Table I: post-process vs. image filters on ZFP-decompressed WarpX.
pub fn tab01(scale: usize) -> String {
    let d = datasets::warpx(scale / 2, 41);
    let eb = d.range() * 4e-3;
    let (bytes, dec) = BlockCodec::Zfp.roundtrip(&d.field, eb);
    let cr = (d.field.len() * 4) as f64 / bytes as f64;
    let cfg = PostConfig::zfp();
    let choice = select_intensity(&d.field, &dec, eb, &cfg);
    let ours = bezier_pass(&dec, eb, choice.a, &cfg);
    let median = median3(&dec);
    let gauss = gaussian_blur(&dec, 1.0);
    let aniso = anisotropic_diffusion(&dec, 5, d.range() * 0.01);
    let mut out = format!("Table I — WarpX + ZFP at CR {cr:.0}: PSNR of post-processing options\n");
    out.push_str("decompressed  median  gaussian  anisotropic  ours\n");
    writeln!(
        out,
        "{:12.1} {:7.1} {:9.1} {:12.1} {:5.1}",
        psnr(&d.field, &dec),
        psnr(&d.field, &median),
        psnr(&d.field, &gauss),
        psnr(&d.field, &aniso),
        psnr(&d.field, &ours),
    )
    .unwrap();
    writeln!(
        out,
        "(chosen a = {:?}, sample rate {:.2}%)",
        choice.a,
        100.0 * choice.sample_rate
    )
    .unwrap();
    out
}

/// Fig. 12: rate-distortion of post-process variants on WarpX + ZFP.
pub fn fig12(scale: usize) -> String {
    let d = datasets::warpx(scale / 2, 42);
    let mut out = String::from("Fig. 12 — WarpX + ZFP post-process variants\n");
    out.push_str("rows: CR, then PSNR for zfp / bezier(unclamped) / a=1 / processed(dynamic)\n");
    let cfg = PostConfig::zfp();
    let mut crs = Vec::new();
    let mut p_zfp = Vec::new();
    let mut p_bez = Vec::new();
    let mut p_a1 = Vec::new();
    let mut p_dyn = Vec::new();
    for rel in [1e-3, 3e-3, 8e-3, 2e-2, 5e-2] {
        let eb = d.range() * rel;
        let (bytes, dec) = BlockCodec::Zfp.roundtrip(&d.field, eb);
        crs.push((d.field.len() * 4) as f64 / bytes as f64);
        p_zfp.push(psnr(&d.field, &dec));
        p_bez.push(psnr(&d.field, &bezier_pass(&dec, eb, [1e12; 3], &cfg)));
        p_a1.push(psnr(&d.field, &bezier_pass(&dec, eb, [1.0; 3], &cfg)));
        let choice = select_intensity(&d.field, &dec, eb, &cfg);
        p_dyn.push(psnr(&d.field, &bezier_pass(&dec, eb, choice.a, &cfg)));
    }
    out.push_str(&row("CR", crs.iter().copied(), 8, 1));
    out.push_str(&row("ZFP", p_zfp.iter().copied(), 8, 2));
    out.push_str(&row("Bezier", p_bez.iter().copied(), 8, 2));
    out.push_str(&row("a=1", p_a1.iter().copied(), 8, 2));
    out.push_str(&row("Processed", p_dyn.iter().copied(), 8, 2));
    out
}

/// Table II: SZ2 + post-process on WarpX across CRs.
pub fn tab02(scale: usize) -> String {
    let d = datasets::warpx(scale / 2, 43);
    let cfg = PostConfig::sz2();
    let mut out = String::from("Table II — WarpX + SZ2: PSNR before/after post-process\n");
    let mut crs = Vec::new();
    let mut ori = Vec::new();
    let mut post = Vec::new();
    for rel in [5e-4, 1e-3, 3e-3, 8e-3, 2e-2, 5e-2, 1e-1] {
        let eb = d.range() * rel;
        let (bytes, dec) = BlockCodec::Sz2 { block: 6 }.roundtrip(&d.field, eb);
        crs.push((d.field.len() * 4) as f64 / bytes as f64);
        ori.push(psnr(&d.field, &dec));
        let choice = select_intensity(&d.field, &dec, eb, &cfg);
        post.push(psnr(&d.field, &bezier_pass(&dec, eb, choice.a, &cfg)));
    }
    out.push_str(&row("CR", crs.iter().copied(), 8, 1));
    out.push_str(&row("PSNR-SZ2", ori.iter().copied(), 8, 2));
    out.push_str(&row("PSNR-Proc'ed", post.iter().copied(), 8, 2));
    out
}

/// Fig. 14: uncertainty visualization recovers isosurface features lost to
/// compression (Hurricane + ZFP at high CR). Also writes PPM renders.
pub fn fig14(scale: usize) -> String {
    let d = datasets::hurricane(scale, 44);
    let eb = d.range() * 0.25;
    let (bytes, dec) = BlockCodec::Zfp.roundtrip(&d.field, eb);
    let cr = (d.field.len() * 4) as f64 / bytes as f64;
    let (mn, mx) = d.field.min_max();
    // Scan for an isovalue where compression visibly destroys features (the
    // paper likewise shows a view chosen to exhibit the failure mode).
    let iso = (45..80)
        .map(|i| mn + i as f32 / 100.0 * (mx - mn))
        .find(|&iso| {
            let o = hqmr_vis::surface_features(&d.field, iso, 2).len();
            let dd = hqmr_vis::surface_features(&dec, iso, 2).len();
            o > dd
        })
        .unwrap_or(mn + 0.58 * (mx - mn));
    let pairs = sample_error_pairs(&d.field, &dec, 0.02, 0xF16);
    let model = model_near_isovalue(&pairs, iso, (mx - mn) * 0.1);
    let rec = analyze_feature_recovery(&d.field, &dec, iso, &model, 0.1, 2, scale as f64 / 8.0);
    let mut out = format!(
        "Fig. 14 — Hurricane + ZFP (CR {cr:.0}), iso = {iso:.2}, error model N({:.3}, {:.3}²)\n",
        model.mean, model.sigma
    );
    writeln!(
        out,
        "features: original={} preserved={} lost={} recovered_by_PMC={}",
        rec.original,
        rec.preserved,
        rec.original - rec.preserved,
        rec.recovered
    )
    .unwrap();

    // Renders: mid-z slice of original, decompressed, decompressed+PMC.
    let dir = crate::results_dir();
    std::fs::create_dir_all(&dir).ok();
    let k = d.field.dims().nz / 2;
    let img_o = render_slice(&d.field, k, mn, mx, Colormap::Viridis);
    let img_d = render_slice(&dec, k, mn, mx, Colormap::Viridis);
    let mut img_u = render_slice(&dec, k, mn, mx, Colormap::Viridis);
    let (cd, prob) = hqmr_vis::crossing_probability_field(&dec, &model.pmc(iso));
    if !cd.is_empty() && k < cd.nz {
        let mut slice = vec![0f32; cd.nx * cd.ny];
        for x in 0..cd.nx {
            for y in 0..cd.ny {
                slice[x * cd.ny + y] = prob[cd.idx(x, y, k.min(cd.nz - 1))];
            }
        }
        hqmr_vis::render::overlay_probability(&mut img_u, &slice, cd.nx, cd.ny);
    }
    for (name, img) in [
        ("fig14_original", &img_o),
        ("fig14_decompressed", &img_d),
        ("fig14_uncertainty", &img_u),
    ] {
        let p = dir.join(format!("{name}.ppm"));
        if save_ppm(&p, img).is_ok() {
            writeln!(out, "wrote {}", p.display()).unwrap();
        }
    }
    out
}

/// Fig. 15: in-situ AMR rate-distortion on Nyx-T1, per level, five methods.
pub fn fig15(scale: usize) -> String {
    let d = datasets::nyx_t1(scale, 51);
    let mr = d.mr.as_ref().unwrap();
    let range = d.range();
    let rels = [3e-4, 1e-3, 4e-3, 1.5e-2, 5e-2];
    let mut out = String::from("Fig. 15 — Nyx-T1 rate-distortion per level (CR / PSNR rows)\n");
    for (idx, label) in [(0usize, "fine level"), (1, "coarse level")] {
        let lvl = single_level(mr, idx);
        writeln!(
            out,
            "--- {label} (density {:.0}%)",
            100.0 * mr.levels[idx].density()
        )
        .unwrap();
        let curves = rd_sweep(&lvl, range, &rels, &RD_CONFIGS);
        fmt_curves(&mut out, &curves);
        // "Ours (processed)": ours + Bézier post on the merged arrays.
        let pts: Vec<RdPoint> = rels
            .iter()
            .map(|&rel| processed_point(&lvl, range * rel))
            .collect();
        out.push_str(&row("Ours(proc) CR", pts.iter().map(|p| p.cr), 9, 2));
        out.push_str(&row("Ours(proc) PSNR", pts.iter().map(|p| p.psnr), 9, 2));
    }
    out
}

/// "Ours (processed)" point: SZ3MR(ours) + Bézier post on unit-block joins.
fn processed_point(mr: &MultiResData, eb: f64) -> RdPoint {
    let cfg = MrcConfig::ours(eb);
    let (bytes, stats) = compress_mr(mr, &cfg);
    let back = decompress_mr(&bytes).unwrap();
    let mut all_o: Vec<f32> = Vec::new();
    let mut all_p: Vec<f32> = Vec::new();
    for (lo, lb) in mr.levels.iter().zip(&back.levels) {
        // Post-process the decompressed level on its merged linear layout.
        let arrays_o = merge_level(lo, MergeStrategy::Linear);
        let arrays_b = merge_level(lb, MergeStrategy::Linear);
        let pcfg = PostConfig::sz3_multires(lo.unit);
        for (mo, mb) in arrays_o.iter().zip(&arrays_b) {
            let choice = select_intensity(&mo.field, &mb.field, eb, &pcfg);
            let post = bezier_pass(&mb.field, eb, choice.a, &pcfg);
            all_o.extend(mo.field.data());
            all_p.extend(post.data());
        }
    }
    RdPoint {
        cr: stats.ratio(),
        psnr: psnr_slices(&all_o, &all_p),
    }
}

/// Table IV: output time, AMRIC vs ours, big and small error bounds.
pub fn tab04(scale: usize) -> String {
    let d = datasets::nyx_t1(scale, 52);
    let mr = d.mr.as_ref().unwrap();
    let path = std::env::temp_dir().join("hqmr_tab04.bin");
    let mut out =
        String::from("Table IV — output time (s): pre-process vs compress+write (Nyx-T1)\n");
    out.push_str("eb      method  preprocess  comp+write  total\n");
    // Warm up.
    let _ = insitu::write_snapshot(mr, &MrcConfig::ours(d.range() * 1e-2), &path);
    for (label, rel) in [("big", 4e-2), ("small", 2e-3)] {
        for (name, cfg) in [
            ("AMRIC", MrcConfig::amric(d.range() * rel)),
            ("Ours", MrcConfig::ours(d.range() * rel)),
        ] {
            let mut best = StageTimings {
                preprocess: f64::MAX,
                compress_write: f64::MAX,
            };
            for _ in 0..3 {
                let (t, _) = insitu::write_snapshot(mr, &cfg, &path).unwrap();
                if t.total() < best.total() {
                    best = t;
                }
            }
            writeln!(
                out,
                "{label:7} {name:7} {:10.4} {:11.4} {:6.4}",
                best.preprocess,
                best.compress_write,
                best.total()
            )
            .unwrap();
        }
    }
    std::fs::remove_file(&path).ok();
    out
}

/// Table V: AMRIC-SZ2 + post-process on Nyx-T1, per level.
pub fn tab05(scale: usize) -> String {
    let d = datasets::nyx_t1(scale, 53);
    let mr = d.mr.as_ref().unwrap();
    let mut out = String::from("Table V — Nyx-T1 AMRIC-SZ2 + post-process (per level)\n");
    for (idx, label) in [(0usize, "Fine"), (1, "Coarse")] {
        let lvl = single_level(mr, idx);
        let vals = level_values(&lvl.levels[0]);
        let (mn, mx) = vals
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(a, b), &v| {
                (a.min(v), b.max(v))
            });
        let range = (mx - mn) as f64;
        let mut crs = Vec::new();
        let mut ori = Vec::new();
        let mut post = Vec::new();
        for rel in [2e-3, 6e-3, 2e-2, 6e-2, 1.5e-1] {
            let r = mr_blockwise_roundtrip(&lvl, BlockCodec::Sz2 { block: 4 }, range * rel);
            crs.push(r.cr);
            ori.push(r.psnr_ori);
            post.push(r.psnr_post);
        }
        writeln!(out, "--- {label}").unwrap();
        out.push_str(&row("CR", crs.iter().copied(), 8, 1));
        out.push_str(&row("PSNR-AMRIC-SZ2", ori.iter().copied(), 8, 2));
        out.push_str(&row("PSNR-Post-SZ2", post.iter().copied(), 8, 2));
    }
    out
}

/// Fig. 16: WarpX visual comparison at matched CR — baseline SZ3 vs SZ3MR.
pub fn fig16(scale: usize) -> String {
    let d = datasets::warpx(scale / 2, 54);
    let mr = d.mr.as_ref().unwrap();
    let range = d.range();
    let (target_cr, _) = roundtrip_mr(mr, &MrcConfig::ours(range * 2e-2));
    let mut out = format!("Fig. 16 — WarpX at matched CR ≈ {target_cr:.0}\n");
    out.push_str("method        CR       PSNR     SSIM(slice)\n");
    let dir = crate::results_dir();
    std::fs::create_dir_all(&dir).ok();
    let (mn, mx) = d.field.min_max();
    for (name, mk) in [
        ("Baseline-SZ3", MrcConfig::baseline as fn(f64) -> _),
        ("Ours", MrcConfig::ours),
    ] {
        let rel = match_cr(
            |r| roundtrip_mr(mr, &mk(range * r)).0,
            1e-5,
            0.3,
            target_cr,
            18,
        );
        let (bytes, stats) = compress_mr(mr, &mk(range * rel));
        let back = decompress_mr(&bytes).unwrap();
        let recon = back.reconstruct(Upsample::Trilinear);
        let k = d.field.dims().nx / 2;
        let (w, h, a) = d.field.slice_x(k);
        let (_, _, b) = recon.slice_x(k);
        writeln!(
            out,
            "{name:13} {:8.1} {:8.2} {:10.4}",
            stats.ratio(),
            psnr(&d.field, &recon),
            ssim(&a, &b, w, h)
        )
        .unwrap();
        let img = render_slice(&recon, recon.dims().nz * 7 / 10, mn, mx, Colormap::CoolWarm);
        let p = dir.join(format!(
            "fig16_{}.ppm",
            name.to_lowercase().replace('-', "_")
        ));
        save_ppm(&p, &img).ok();
    }
    let img = render_slice(
        &d.field,
        d.field.dims().nz * 7 / 10,
        mn,
        mx,
        Colormap::CoolWarm,
    );
    save_ppm(dir.join("fig16_original.ppm"), &img).ok();
    out
}

/// Fig. 17: adaptive-data rate-distortion (WarpX + Hurricane), three curves.
pub fn fig17(scale: usize) -> String {
    let mut out = String::from("Fig. 17 — adaptive data rate-distortion\n");
    let configs: [(&str, MkConfig); 3] = [
        ("Baseline-SZ3", MrcConfig::baseline),
        ("Ours(pad)", MrcConfig::ours_pad),
        ("Ours(pad+eb)", MrcConfig::ours),
    ];
    for d in [
        datasets::warpx(scale / 2, 55),
        datasets::hurricane(scale, 56),
    ] {
        writeln!(out, "--- {}", d.name).unwrap();
        let mr = d.mr.as_ref().unwrap();
        let curves = rd_sweep(mr, d.range(), &[3e-4, 1e-3, 4e-3, 1.5e-2, 5e-2], &configs);
        fmt_curves(&mut out, &curves);
    }
    out
}

/// Fig. 18: offline AMR rate-distortion (Nyx-T2 + RT), five curves.
pub fn fig18(scale: usize) -> String {
    let mut out = String::from("Fig. 18 — offline AMR rate-distortion\n");
    for d in [datasets::nyx_t2(scale, 57), datasets::rt(scale, 58)] {
        writeln!(out, "--- {}", d.name).unwrap();
        let mr = d.mr.as_ref().unwrap();
        let curves = rd_sweep(
            mr,
            d.range(),
            &[3e-4, 1e-3, 4e-3, 1.5e-2, 5e-2],
            &RD_CONFIGS,
        );
        fmt_curves(&mut out, &curves);
    }
    out
}

/// Table VI: power-spectrum error at matched CR on Nyx-T2 (k < 10).
pub fn tab06(scale: usize) -> String {
    let d = datasets::nyx_t2(scale, 59);
    let mr = d.mr.as_ref().unwrap();
    let range = d.range();
    let (target_cr, _) = roundtrip_mr(mr, &MrcConfig::ours(range * 1.2e-2));
    let mut out =
        format!("Table VI — Nyx-T2 power-spectrum error at CR ≈ {target_cr:.0}, k < 10\n");
    out.push_str("method        CR      max_rel_err   avg_rel_err\n");
    let methods: [(&str, MkConfig); 4] = [
        ("Baseline-SZ3", MrcConfig::baseline),
        ("AMRIC-SZ3", MrcConfig::amric),
        ("TAC-SZ3", MrcConfig::tac),
        ("Ours(pad+eb)", MrcConfig::ours),
    ];
    for (name, mk) in methods {
        let rel = match_cr(
            |r| roundtrip_mr(mr, &mk(range * r)).0,
            1e-5,
            0.3,
            target_cr,
            18,
        );
        let (bytes, stats) = compress_mr(mr, &mk(range * rel));
        let back = decompress_mr(&bytes).unwrap();
        let recon = back.reconstruct(Upsample::Trilinear);
        let orig = mr.reconstruct(Upsample::Trilinear);
        let (mx, avg) = spectrum_rel_errors(&orig, &recon, 10);
        writeln!(
            out,
            "{name:13} {:7.1} {mx:13.3e} {avg:13.3e}",
            stats.ratio()
        )
        .unwrap();
    }
    out
}

/// Table VII: post-process on multi-resolution data (RT + Hurricane) with
/// ZFP and AMRIC-SZ2.
pub fn tab07(scale: usize) -> String {
    let mut out = String::from("Table VII — post-process on multi-resolution data\n");
    for d in [datasets::rt(scale, 61), datasets::hurricane(scale, 62)] {
        let mr = d.mr.as_ref().unwrap();
        let vals: Vec<f32> = mr.levels.iter().flat_map(level_values).collect();
        let (mn, mx) = vals
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(a, b), &v| {
                (a.min(v), b.max(v))
            });
        let range = (mx - mn) as f64;
        for (cname, codec) in [
            ("ZFP", BlockCodec::Zfp),
            ("SZ2", BlockCodec::Sz2 { block: 4 }),
        ] {
            writeln!(out, "--- {} + {cname}", d.name).unwrap();
            let mut crs = Vec::new();
            let mut ori = Vec::new();
            let mut post = Vec::new();
            for rel in [1e-3, 4e-3, 1.2e-2, 4e-2, 1e-1] {
                let r = mr_blockwise_roundtrip(mr, codec, range * rel);
                crs.push(r.cr);
                ori.push(r.psnr_ori);
                post.push(r.psnr_post);
            }
            out.push_str(&row("CR", crs.iter().copied(), 8, 1));
            out.push_str(&row("PSNR-Ori", ori.iter().copied(), 8, 2));
            out.push_str(&row("PSNR-Post", post.iter().copied(), 8, 2));
        }
    }
    out
}

/// Table VIII: post-process on uniform data (S3D + Nyx-T3) with ZFP and SZ2.
pub fn tab08(scale: usize) -> String {
    let mut out = String::from("Table VIII — post-process on uniform data\n");
    for d in [datasets::s3d(scale, 63), datasets::nyx_t3(scale, 64)] {
        for (cname, codec, post_cfg) in [
            ("ZFP", BlockCodec::Zfp, PostConfig::zfp()),
            ("SZ2", BlockCodec::Sz2 { block: 6 }, PostConfig::sz2()),
        ] {
            writeln!(out, "--- {} + {cname}", d.name).unwrap();
            let mut crs = Vec::new();
            let mut ori = Vec::new();
            let mut post = Vec::new();
            for rel in [1e-3, 4e-3, 1.2e-2, 4e-2, 1e-1] {
                let eb = d.range() * rel;
                let (bytes, dec) = codec.roundtrip(&d.field, eb);
                crs.push((d.field.len() * 4) as f64 / bytes as f64);
                ori.push(psnr(&d.field, &dec));
                let choice = select_intensity(&d.field, &dec, eb, &post_cfg);
                post.push(psnr(&d.field, &bezier_pass(&dec, eb, choice.a, &post_cfg)));
            }
            out.push_str(&row("CR", crs.iter().copied(), 8, 1));
            out.push_str(&row("PSNR-Ori", ori.iter().copied(), 8, 2));
            out.push_str(&row("PSNR-Post", post.iter().copied(), 8, 2));
        }
    }
    out
}

/// Table IX: post-processing overhead relative to the compression workflow.
pub fn tab09(scale: usize) -> String {
    use std::time::Instant;
    let d = datasets::s3d(scale, 65);
    let mut out = String::from(
        "Table IX — post-process overhead on S3D (seconds)\n\
         codec        eb    io     comp+dec  sample+model  process  ori(c1+c2)  extra(c3+c4)  overhead\n",
    );
    let io_path = std::env::temp_dir().join("hqmr_tab09.hqf3");
    for (cname, codec, post_cfg) in [
        ("ZFP(par)", BlockCodec::Zfp, PostConfig::zfp()),
        ("SZ2(par)", BlockCodec::Sz2 { block: 6 }, PostConfig::sz2()),
        (
            "SZ2(serial)",
            BlockCodec::Sz2 { block: 6 },
            PostConfig::sz2().serial(),
        ),
    ] {
        for (elabel, rel) in [("small", 2e-3), ("mid", 1e-2), ("large", 5e-2)] {
            let eb = d.range() * rel;
            // c1: read original + write decompressed (round numbers on tmpfs).
            let t = Instant::now();
            hqmr_grid::io::save_field(&io_path, &d.field).unwrap();
            let loaded = hqmr_grid::io::load_field(&io_path).unwrap();
            let c1 = t.elapsed().as_secs_f64();
            // c2: compress + decompress.
            let t = Instant::now();
            let (_, dec) = codec.roundtrip(&loaded, eb);
            let c2 = t.elapsed().as_secs_f64();
            // c3: sampling + modelling (round-trips only the samples).
            let t = Instant::now();
            let choice =
                select_intensity_sampled(&d.field, |w| codec.roundtrip(w, eb).1, eb, &post_cfg);
            let c3 = t.elapsed().as_secs_f64();
            // c4: the post-process itself.
            let t = Instant::now();
            let _post = bezier_pass(&dec, eb, choice.a, &post_cfg);
            let c4 = t.elapsed().as_secs_f64();
            writeln!(
                out,
                "{cname:12} {elabel:5} {c1:6.3} {c2:9.3} {c3:13.4} {c4:8.4} {:11.3} {:13.4} {:9.4}",
                c1 + c2,
                c3 + c4,
                (c3 + c4) / (c1 + c2)
            )
            .unwrap();
        }
    }
    std::fs::remove_file(&io_path).ok();
    out
}

/// Ablations called out in DESIGN.md: pad value, α/β grid, padding cutoff.
pub fn ablations(scale: usize) -> String {
    let mut out = String::from("Ablations\n");
    let d = datasets::warpx(scale / 2, 71);
    let mr = d.mr.as_ref().unwrap();
    let range = d.range();
    let eb = range * 8e-3;

    // (a) Pad value: constant / linear / quadratic extrapolation.
    out.push_str("-- pad extrapolation kind (WarpX, rel eb 8e-3)\n");
    for kind in [
        hqmr_mr::PadKind::Constant,
        hqmr_mr::PadKind::Linear,
        hqmr_mr::PadKind::Quadratic,
    ] {
        let cfg = MrcConfig {
            pad: Some(kind),
            ..MrcConfig::ours_pad(eb)
        };
        let (cr, psnrs) = roundtrip_mr(mr, &cfg);
        writeln!(out, "{kind:?}: CR={cr:.2} PSNR(fine)={:.2}", psnrs[0]).unwrap();
    }

    // (b) Adaptive-eb parameter grid around the paper's (2.25, 8).
    out.push_str("-- adaptive eb (alpha, beta) grid (WarpX)\n");
    for alpha in [1.5, 2.25, 3.0] {
        for beta in [4.0, 8.0, 16.0] {
            let cfg = MrcConfig::ours_pad(eb).with_backend(Backend::Sz3 {
                interp: hqmr_sz3::InterpKind::Cubic,
                level_eb: Some(hqmr_sz3::LevelEbPolicy { alpha, beta }),
            });
            let (cr, psnrs) = roundtrip_mr(mr, &cfg);
            writeln!(
                out,
                "alpha={alpha:<4} beta={beta:<4}: CR={cr:.2} PSNR(fine)={:.2}",
                psnrs[0]
            )
            .unwrap();
        }
    }

    // (c) Padding cutoff: padding must pay at u = 16 but not at u = 4
    // ((u+1)^2/u^2 = 1.13 vs 1.56, SS III-A). Compare SZ3 bytes on merged
    // arrays directly, bypassing the config-level cutoff.
    out.push_str("-- padding overhead vs gain by unit size (WarpX level)\n");
    for unit in [4usize, 8, 16] {
        let f = synth::warpx_like(Dims3::new(unit * 2, unit * 2, unit * 32), 72);
        let lvl = hqmr_mr::LevelData {
            level: 0,
            unit,
            dims: f.dims(),
            blocks: hqmr_grid::BlockGrid::new(f.dims(), unit)
                .iter()
                .map(|b| hqmr_mr::UnitBlock {
                    origin: b.origin,
                    data: f.extract_box(b.origin, Dims3::cube(unit)).into_vec(),
                })
                .collect(),
        };
        let ebu = f.range() as f64 * 8e-3;
        let arrays = merge_level(&lvl, MergeStrategy::Linear);
        let cfg = hqmr_sz3::Sz3Config::new(ebu);
        let mut plain = 0usize;
        let mut padded = 0usize;
        for m in &arrays {
            plain += hqmr_sz3::compress(&m.field, &cfg).bytes.len();
            let pf = hqmr_mr::pad_small_dims(&m.field, hqmr_mr::PadKind::Linear);
            padded += hqmr_sz3::compress(&pf, &cfg).bytes.len();
        }
        writeln!(
            out,
            "unit={unit:2}: plain={plain} bytes, padded={padded} bytes ({:+.1}%)",
            100.0 * (padded as f64 / plain as f64 - 1.0)
        )
        .unwrap();
    }
    out
}

/// Store container benchmark: full vs ROI vs progressive vs isovalue-skip
/// reads on the block-indexed `hqmr-store`, per codec backend. The ROI is
/// chosen the way a viewer would: features found on the *coarse* level
/// (surface_features → features_bbox), scaled up and re-read at fine
/// resolution through `read_roi`. Besides the text report, the full matrix
/// lands in `BENCH_store.json` at the workspace root.
pub fn store(scale: usize) -> String {
    use hqmr_store::{write_store, StoreConfig, StoreReader};
    use std::time::Instant;
    let d = datasets::nyx_t1(scale, 91);
    let mr = d.mr.as_ref().unwrap();
    let eb = d.range() * 8e-3;
    let (mn, mx) = d.field.min_max();
    let iso = mn + 0.6 * (mx - mn);

    let mut out = format!(
        "Store reads — {} (scale {scale}, rel eb 8e-3, chunks of 4 blocks)\n\
         backend  store(KiB)  write(s)   full(s)  full(KiB)   roi(s)  roi(KiB)   iso(s)  iso(KiB)\n",
        d.name
    );
    let mut json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"scale\": {scale},\n  \"rel_eb\": 8e-3,\n  \
         \"chunk_blocks\": 4,\n  \"records\": [\n",
        d.name
    );
    let kib = |b: u64| b as f64 / 1024.0;
    let mut first = true;
    for backend in Backend::ALL {
        let cfg = StoreConfig::new(eb).with_chunk_blocks(4);
        let codec = backend.codec();
        let t0 = Instant::now();
        let buf = write_store(mr, &cfg, codec.as_ref());
        let t_write = t0.elapsed().as_secs_f64();
        let store_bytes = buf.len() as u64;
        let reader = StoreReader::from_bytes(buf).expect("fresh store must parse");

        // Full read: every chunk of every level.
        let t0 = Instant::now();
        let full = reader.read_all().expect("fresh store must decode");
        let t_full = t0.elapsed().as_secs_f64();
        let full_bytes = reader.bytes_decoded();

        // ROI read: features on the coarse level pick the fine-level box.
        let coarse_idx = reader.meta().levels.len() - 1;
        let coarse = &full.levels[coarse_idx];
        let factor = 1usize << coarse.level;
        let fine = reader.meta().levels[0].dims;
        let feats = hqmr_vis::surface_features(&coarse.to_field(mn), iso, 2);
        let (lo, hi) = hqmr_vis::features_bbox(&feats)
            .map(|(lo, hi)| {
                let lo = std::array::from_fn(|a| lo[a] * factor);
                let hi = [
                    (hi[0] * factor).min(fine.nx),
                    (hi[1] * factor).min(fine.ny),
                    (hi[2] * factor).min(fine.nz),
                ];
                (lo, hi)
            })
            .filter(|(lo, hi)| (0..3).all(|a| lo[a] < hi[a]))
            .unwrap_or_else(|| {
                // No coarse features: fall back to the central octant.
                (
                    [fine.nx / 4, fine.ny / 4, fine.nz / 4],
                    [3 * fine.nx / 4, 3 * fine.ny / 4, 3 * fine.nz / 4],
                )
            });
        reader.reset_counters();
        let t0 = Instant::now();
        let _roi = reader.read_roi(0, lo, hi, mn).expect("roi read");
        let t_roi = t0.elapsed().as_secs_f64();
        let roi_bytes = reader.bytes_decoded();

        // Isovalue read: min/max chunk skipping on the fine level.
        reader.reset_counters();
        let t0 = Instant::now();
        let _skim = reader.read_level_iso(0, iso).expect("iso read");
        let t_iso = t0.elapsed().as_secs_f64();
        let iso_bytes = reader.bytes_decoded();

        // Progressive refinement: coarse→fine, cumulative bytes per step.
        reader.reset_counters();
        let mut steps = Vec::new();
        let t0 = Instant::now();
        for step in reader.progressive(Upsample::Nearest) {
            let step = step.expect("progressive step");
            steps.push((
                step.level,
                t0.elapsed().as_secs_f64(),
                reader.bytes_decoded(),
            ));
        }

        writeln!(
            out,
            "{:7} {:11.1} {t_write:9.4} {t_full:9.4} {:10.1} {t_roi:8.4} {:9.1} {t_iso:8.4} {:9.1}",
            backend.name(),
            kib(store_bytes),
            kib(full_bytes),
            kib(roi_bytes),
            kib(iso_bytes),
        )
        .unwrap();
        for (level, s, bytes) in &steps {
            writeln!(
                out,
                "        progressive L{level}: {s:.4}s cumulative, {:.1} KiB decoded",
                kib(*bytes)
            )
            .unwrap();
        }

        if !first {
            json.push_str(",\n");
        }
        first = false;
        let prog: Vec<String> = steps
            .iter()
            .map(|(level, s, bytes)| {
                format!("{{\"level\": {level}, \"cum_s\": {s:.6}, \"cum_bytes\": {bytes}}}")
            })
            .collect();
        write!(
            json,
            "    {{\"backend\": \"{}\", \"store_bytes\": {store_bytes}, \
             \"write_s\": {t_write:.6}, \
             \"full_read_s\": {t_full:.6}, \"full_read_bytes\": {full_bytes}, \
             \"roi\": [[{}, {}, {}], [{}, {}, {}]], \
             \"roi_read_s\": {t_roi:.6}, \"roi_read_bytes\": {roi_bytes}, \
             \"iso_read_s\": {t_iso:.6}, \"iso_read_bytes\": {iso_bytes}, \
             \"progressive\": [{}]}}",
            backend.name(),
            lo[0],
            lo[1],
            lo[2],
            hi[0],
            hi[1],
            hi[2],
            prog.join(", "),
        )
        .unwrap();
    }
    json.push_str("\n  ]\n}\n");
    crate::write_root_json("BENCH_store.json", &json, &mut out);
    out
}

/// Codec-backend matrix: backend × arrangement × error bound on Nyx-T1,
/// reporting compression ratio, PSNR over stored cells, and wall-clock
/// throughput per direction. Besides the text report, the full matrix lands
/// in `BENCH_codecs.json` at the workspace root so future changes have a
/// perf trajectory to compare against.
pub fn codecs(scale: usize) -> String {
    use std::time::Instant;
    let d = datasets::nyx_t1(scale, 81);
    let mr = d.mr.as_ref().unwrap();
    let range = d.range();
    let arrangements: [(&str, MkConfig); 3] = [
        ("baseline", MrcConfig::baseline),
        ("amric", MrcConfig::amric),
        ("ours", MrcConfig::ours_pad),
    ];
    let rels = [1e-3, 8e-3, 5e-2];
    let stored_mb = (mr.total_cells() * 4) as f64 / (1024.0 * 1024.0);

    let mut out = format!(
        "Codec matrix — {} (scale {scale}, {:.1} MiB stored)\n\
         backend arrange   rel_eb       CR     PSNR  comp(MiB/s)  dec(MiB/s)\n",
        d.name, stored_mb
    );
    let mut json = String::from("{\n");
    write!(
        json,
        "  \"dataset\": \"{}\",\n  \"scale\": {scale},\n  \"stored_cells\": {},\n  \"records\": [\n",
        d.name,
        mr.total_cells()
    )
    .unwrap();
    let mut first = true;
    let vals_a: Vec<f32> = mr.levels.iter().flat_map(level_values).collect();
    for backend in Backend::ALL {
        for (aname, mk) in arrangements {
            for rel in rels {
                let cfg = mk(range * rel).with_backend(backend);
                let t0 = Instant::now();
                let (bytes, stats) = compress_mr(mr, &cfg);
                let t_comp = t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                let back = decompress_mr(&bytes).expect("fresh stream must decompress");
                let t_dec = t1.elapsed().as_secs_f64();
                let vals_b: Vec<f32> = back.levels.iter().flat_map(level_values).collect();
                let p = psnr_slices(&vals_a, &vals_b);
                writeln!(
                    out,
                    "{:7} {aname:8} {rel:8.0e} {:8.1} {:8.2} {:12.1} {:11.1}",
                    backend.name(),
                    stats.ratio(),
                    p,
                    stored_mb / t_comp.max(1e-9),
                    stored_mb / t_dec.max(1e-9),
                )
                .unwrap();
                if !first {
                    json.push_str(",\n");
                }
                first = false;
                let psnr_json = if p.is_finite() {
                    format!("{p:.3}")
                } else {
                    "null".to_string()
                };
                write!(
                    json,
                    "    {{\"backend\": \"{}\", \"arrangement\": \"{aname}\", \
                     \"rel_eb\": {rel:e}, \"bytes\": {}, \"cr\": {:.3}, \"psnr\": {psnr_json}, \
                     \"compress_s\": {t_comp:.6}, \"decompress_s\": {t_dec:.6}}}",
                    backend.name(),
                    bytes.len(),
                    stats.ratio(),
                )
                .unwrap();
            }
        }
    }
    json.push_str("\n  ]\n}\n");
    crate::write_root_json("BENCH_codecs.json", &json, &mut out);
    out
}

/// Serving-layer benchmark (`BENCH_serve.json`): cold vs warm vs
/// 16-concurrent-client throughput of the `hqmr-serve` chunk-cache layer,
/// per codec backend, on a viewer-like query mix (sliding ROI bricks, an
/// isovalue skim, a coarse overview). Three effects are measured:
///
/// * **cold vs warm** — the LRU cache turns repeat queries into assembly
///   only (no fetch, CRC or codec work);
/// * **batched** — `serve_batch` unions overlapping requests, so one batch
///   decodes each chunk once even with the cache disabled;
/// * **concurrent clients** — 16 threads over one *cold* shared server:
///   single-flight + the shared cache mean the fleet collectively decodes
///   each chunk once, so aggregate throughput scales with the client count
///   instead of redoing the work 16× (this host has 1 core, so the win is
///   pure work-sharing, not parallel decode).
pub fn serve(scale: usize) -> String {
    use hqmr_serve::{Query, StoreServer};
    use hqmr_store::{write_store, StoreConfig, StoreReader};
    use std::sync::Arc;
    use std::time::Instant;

    const CLIENTS: usize = 16;
    let d = datasets::nyx_t1(scale, 97);
    let mr = d.mr.as_ref().unwrap();
    let eb = d.range() * 8e-3;
    let (mn, mx) = d.field.min_max();
    let iso = mn + 0.6 * (mx - mn);

    // The query mix one interactive client issues per pass: eight ROI
    // bricks sweeping the fine level (half of them revisiting earlier
    // regions, as a panning viewer does), one isovalue skim, one coarse
    // overview.
    let fine = mr.levels[0].dims;
    let brick = [
        (fine.nx / 2).max(1),
        (fine.ny / 2).max(1),
        (fine.nz / 4).max(1),
    ];
    let mut queries: Vec<Query> = Vec::new();
    for k in 0..8usize {
        let lo = [
            (k % 2) * (fine.nx - brick[0]),
            ((k / 2) % 2) * (fine.ny - brick[1]),
            (k % 4) * (fine.nz - brick[2]) / 3,
        ];
        queries.push(Query::Roi {
            level: 0,
            lo,
            hi: [lo[0] + brick[0], lo[1] + brick[1], lo[2] + brick[2]],
            fill: mn,
        });
    }
    queries.push(Query::Iso { level: 0, iso });
    queries.push(Query::Level {
        level: mr.levels.len() - 1,
    });

    let run_client = |server: &StoreServer| {
        for q in &queries {
            match *q {
                Query::Roi {
                    level,
                    lo,
                    hi,
                    fill,
                } => {
                    std::hint::black_box(server.read_roi(level, lo, hi, fill).expect("roi"));
                }
                Query::Iso { level, iso } => {
                    std::hint::black_box(server.read_level_iso(level, iso).expect("iso"));
                }
                Query::Level { level } => {
                    std::hint::black_box(server.read_level(level).expect("level"));
                }
            }
        }
    };

    let mut out = format!(
        "Serving layer — {} (scale {scale}, rel eb 8e-3, chunks of 4 blocks, {} queries/pass)\n\
         backend  cold(s)   warm(s)  warm_speedup  batch(s)  1-client(q/s)  {CLIENTS}-client agg(q/s)  agg_speedup\n",
        d.name,
        queries.len()
    );
    let mut json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"scale\": {scale},\n  \"rel_eb\": 8e-3,\n  \
         \"chunk_blocks\": 4,\n  \"queries_per_pass\": {},\n  \"clients\": {CLIENTS},\n  \
         \"records\": [\n",
        d.name,
        queries.len()
    );
    let mut first = true;
    for backend in Backend::ALL {
        let cfg = StoreConfig::new(eb).with_chunk_blocks(4);
        let codec = backend.codec();
        let buf = write_store(mr, &cfg, codec.as_ref());
        let mk_server =
            || StoreServer::unbounded(Arc::new(StoreReader::from_bytes(buf.clone()).unwrap()));

        // Cold: every chunk the mix touches decodes (once — later queries in
        // the pass already reuse the cache, which is the serving point).
        let server = mk_server();
        let t0 = Instant::now();
        run_client(&server);
        let cold_s = t0.elapsed().as_secs_f64();
        let cold_stats = server.stats();
        let cold_bytes = server.reader().bytes_decoded();

        // Warm: same mix again, answered from the resident cache.
        const WARM_REPS: usize = 3;
        let t0 = Instant::now();
        for _ in 0..WARM_REPS {
            run_client(&server);
        }
        let warm_s = t0.elapsed().as_secs_f64() / WARM_REPS as f64;
        let warm_speedup = cold_s / warm_s;

        // Batched: the planner unions the same mix into one decode set.
        let server_b = mk_server();
        let t0 = Instant::now();
        std::hint::black_box(server_b.serve_batch(&queries).expect("batch"));
        let batch_s = t0.elapsed().as_secs_f64();

        // 16 concurrent clients on one cold server: single-flight + shared
        // cache collapse the fleet's decodes to one per chunk.
        let server_c = mk_server();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..CLIENTS {
                let server_c = &server_c;
                s.spawn(move || run_client(server_c));
            }
        });
        let conc_s = t0.elapsed().as_secs_f64();
        let conc_stats = server_c.stats();

        let single_qps = queries.len() as f64 / cold_s;
        let agg_qps = (CLIENTS * queries.len()) as f64 / conc_s;
        let agg_speedup = agg_qps / single_qps;
        writeln!(
            out,
            "{:7} {cold_s:8.4} {warm_s:9.5} {warm_speedup:13.1} {batch_s:9.4} {single_qps:14.1} {agg_qps:19.1} {agg_speedup:12.1}",
            backend.name(),
        )
        .unwrap();
        writeln!(
            out,
            "        cold: {} misses, {} hits, {:.1} KiB decoded; {CLIENTS}-client: {} misses, {} hits ({} shared waits)",
            cold_stats.misses,
            cold_stats.hits,
            cold_bytes as f64 / 1024.0,
            conc_stats.misses,
            conc_stats.hits,
            conc_stats.shared,
        )
        .unwrap();

        if !first {
            json.push_str(",\n");
        }
        first = false;
        write!(
            json,
            "    {{\"backend\": \"{}\", \"store_bytes\": {}, \
             \"cold_s\": {cold_s:.6}, \"warm_s\": {warm_s:.6}, \"warm_speedup\": {warm_speedup:.2}, \
             \"batch_cold_s\": {batch_s:.6}, \
             \"single_client_qps\": {single_qps:.2}, \"concurrent_agg_qps\": {agg_qps:.2}, \
             \"agg_speedup\": {agg_speedup:.2}, \
             \"cold_cache\": {{\"requests\": {}, \"hits\": {}, \"misses\": {}, \"bytes_decoded\": {cold_bytes}}}, \
             \"concurrent_cache\": {{\"requests\": {}, \"hits\": {}, \"shared\": {}, \"misses\": {}, \"resident_bytes\": {}}}}}",
            backend.name(),
            buf.len(),
            cold_stats.requests,
            cold_stats.hits,
            cold_stats.misses,
            conc_stats.requests,
            conc_stats.hits,
            conc_stats.shared,
            conc_stats.misses,
            conc_stats.resident_bytes,
        )
        .unwrap();
    }
    json.push_str("\n  ]\n}\n");
    crate::write_root_json("BENCH_serve.json", &json, &mut out);
    out
}

/// Hot-path throughput: every overhauled stage measured against the
/// reference implementation it replaced, on real Nyx-T1 inputs —
/// word-at-a-time bit-IO and table-driven Huffman (entropy overhaul) plus
/// the predictor/quantizer kernel rows (line-kernel SZ3 passes,
/// interior-split SZ2 blocks, in-place/fused ZFP transform + batched
/// bit-plane decode), a store-write throughput row, and end-to-end codec
/// throughput for context. Emits `BENCH_hotpath.json` at the workspace root
/// so the before/after MB/s is committed evidence.
pub fn hotpath(scale: usize) -> String {
    use hqmr_codec::bitio;
    use hqmr_codec::{
        huffman_decode, huffman_decode_reference, huffman_encode, huffman_encode_reference,
        kernels, tag, unpack_maybe_rle, Codec, Container,
    };
    use std::time::Instant;

    /// Best-of-N wall-clock of `f`, in seconds.
    fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            std::hint::black_box(f());
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    }

    let d = datasets::nyx_t1(scale, 81);
    let mr = d.mr.as_ref().unwrap();
    let eb = d.range() * 1e-3;

    // The real entropy workload: every Huffman block inside the SZ3 streams
    // of the paper-default arrangement (one per prepared array).
    let prepared = hqmr_core::mrc::prepare_mr(mr, &MrcConfig::ours_pad(eb));
    let codec = hqmr_sz3::Sz3Codec::default();
    let mut blocks: Vec<Vec<u8>> = Vec::new();
    let mut symbol_count = 0usize;
    for prep in &prepared {
        for (_, f) in prep.blocks() {
            let stream = codec.compress(f, eb);
            let c = Container::from_bytes(&stream).expect("fresh stream parses");
            let packed = c.require(tag(b"QNTC")).expect("codes section present");
            let block = unpack_maybe_rle(packed).expect("codes unpack");
            symbol_count += huffman_decode(&block).expect("fresh block decodes").len();
            blocks.push(block);
        }
    }
    let symbol_mb = (symbol_count * 4) as f64 / (1024.0 * 1024.0);

    let reps = 7;
    // (stage, before MB/s, after MB/s, forced-scalar MB/s for SIMD-dispatched
    // kernels — `None` for stages with no vector arm).
    let mut records: Vec<(&str, f64, f64, Option<f64>)> = Vec::new();

    let t_dec_ref = best_of(reps, || {
        blocks
            .iter()
            .map(|b| huffman_decode_reference(b).unwrap().len())
            .sum::<usize>()
    });
    let t_dec_tab = best_of(reps, || {
        blocks
            .iter()
            .map(|b| huffman_decode(b).unwrap().len())
            .sum::<usize>()
    });
    records.push((
        "huffman_decode",
        symbol_mb / t_dec_ref,
        symbol_mb / t_dec_tab,
        None,
    ));

    let symbol_sets: Vec<Vec<u32>> = blocks.iter().map(|b| huffman_decode(b).unwrap()).collect();
    let t_enc_ref = best_of(reps, || {
        symbol_sets
            .iter()
            .map(|s| huffman_encode_reference(s).len())
            .sum::<usize>()
    });
    let t_enc_tab = best_of(reps, || {
        symbol_sets
            .iter()
            .map(|s| huffman_encode(s).len())
            .sum::<usize>()
    });
    records.push((
        "huffman_encode",
        symbol_mb / t_enc_ref,
        symbol_mb / t_enc_tab,
        None,
    ));

    // Bit-IO on a ZFP-like width mix (bit-plane coding interleaves 1-bit
    // group tests with up-to-64-bit verbatim runs).
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    let pattern: Vec<(u64, u32)> = (0..400_000)
        .map(|_| {
            x = x.rotate_left(11).wrapping_mul(0x2545_F491_4F6C_DD1D);
            (x, 1 + (x % 24) as u32)
        })
        .collect();
    let total_bits: usize = pattern.iter().map(|&(_, n)| n as usize).sum();
    let bit_mb = (total_bits / 8) as f64 / (1024.0 * 1024.0);
    let t_w_ref = best_of(reps, || {
        let mut w = bitio::reference::BitWriter::new();
        for &(v, n) in &pattern {
            w.write_bits(v, n);
        }
        w.finish().len()
    });
    let t_w_word = best_of(reps, || {
        let mut w = bitio::BitWriter::new();
        for &(v, n) in &pattern {
            w.write_bits(v, n);
        }
        w.finish().len()
    });
    records.push(("bitio_write", bit_mb / t_w_ref, bit_mb / t_w_word, None));

    let mut w = bitio::BitWriter::new();
    for &(v, n) in &pattern {
        w.write_bits(v, n);
    }
    let stream = w.finish();
    let t_r_ref = best_of(reps, || {
        let mut r = bitio::reference::BitReader::new(&stream);
        pattern
            .iter()
            .fold(0u64, |a, &(_, n)| a.wrapping_add(r.read_bits(n)))
    });
    let t_r_word = best_of(reps, || {
        let mut r = bitio::BitReader::new(&stream);
        pattern
            .iter()
            .fold(0u64, |a, &(_, n)| a.wrapping_add(r.read_bits(n)))
    });
    records.push(("bitio_read", bit_mb / t_r_ref, bit_mb / t_r_word, None));

    // Predictor/quantizer kernel rows: full codec compress/decompress,
    // reference vs current, over the same prepared arrays. The entropy
    // stage is shared between the two paths, so the delta isolates the
    // kernel overhaul (line kernels / interior splits / fused transform).
    // The third column repeats the current path under `HQMR_FORCE_SCALAR`
    // so the SIMD dispatch contribution is visible in isolation; streams
    // are bit-identical across arms, only the clock differs.
    let stored_mb = (mr.total_cells() * 4) as f64 / (1024.0 * 1024.0);
    let fields: Vec<&hqmr_grid::Field3> = prepared.iter().flat_map(|p| p.fields()).collect();
    {
        use hqmr_sz3::Sz3Config;
        let cfg = Sz3Config::new(eb);
        let t_ref = best_of(reps, || {
            fields
                .iter()
                .map(|f| hqmr_sz3::reference::compress(f, &cfg).bytes.len())
                .sum::<usize>()
        });
        let t_cur = best_of(reps, || {
            fields
                .iter()
                .map(|f| hqmr_sz3::compress(f, &cfg).bytes.len())
                .sum::<usize>()
        });
        kernels::set_force_scalar(true);
        let t_sca = best_of(reps, || {
            fields
                .iter()
                .map(|f| hqmr_sz3::compress(f, &cfg).bytes.len())
                .sum::<usize>()
        });
        kernels::set_force_scalar(false);
        records.push((
            "sz3_compress_kernel",
            stored_mb / t_ref,
            stored_mb / t_cur,
            Some(stored_mb / t_sca),
        ));
        let streams: Vec<Vec<u8>> = fields
            .iter()
            .map(|f| hqmr_sz3::compress(f, &cfg).bytes)
            .collect();
        let t_ref = best_of(reps, || {
            streams
                .iter()
                .map(|b| hqmr_sz3::reference::decompress(b).unwrap().len())
                .sum::<usize>()
        });
        let t_cur = best_of(reps, || {
            streams
                .iter()
                .map(|b| hqmr_sz3::decompress(b).unwrap().len())
                .sum::<usize>()
        });
        kernels::set_force_scalar(true);
        let t_sca = best_of(reps, || {
            streams
                .iter()
                .map(|b| hqmr_sz3::decompress(b).unwrap().len())
                .sum::<usize>()
        });
        kernels::set_force_scalar(false);
        records.push((
            "sz3_decompress_kernel",
            stored_mb / t_ref,
            stored_mb / t_cur,
            Some(stored_mb / t_sca),
        ));
    }
    {
        use hqmr_sz2::Sz2Config;
        let cfg = Sz2Config::multires(eb);
        let t_ref = best_of(reps, || {
            fields
                .iter()
                .map(|f| hqmr_sz2::reference::compress(f, &cfg).bytes.len())
                .sum::<usize>()
        });
        let t_cur = best_of(reps, || {
            fields
                .iter()
                .map(|f| hqmr_sz2::compress(f, &cfg).bytes.len())
                .sum::<usize>()
        });
        kernels::set_force_scalar(true);
        let t_sca = best_of(reps, || {
            fields
                .iter()
                .map(|f| hqmr_sz2::compress(f, &cfg).bytes.len())
                .sum::<usize>()
        });
        kernels::set_force_scalar(false);
        records.push((
            "sz2_compress_kernel",
            stored_mb / t_ref,
            stored_mb / t_cur,
            Some(stored_mb / t_sca),
        ));
        let streams: Vec<Vec<u8>> = fields
            .iter()
            .map(|f| hqmr_sz2::compress(f, &cfg).bytes)
            .collect();
        let t_ref = best_of(reps, || {
            streams
                .iter()
                .map(|b| hqmr_sz2::reference::decompress(b).unwrap().len())
                .sum::<usize>()
        });
        let t_cur = best_of(reps, || {
            streams
                .iter()
                .map(|b| hqmr_sz2::decompress(b).unwrap().len())
                .sum::<usize>()
        });
        kernels::set_force_scalar(true);
        let t_sca = best_of(reps, || {
            streams
                .iter()
                .map(|b| hqmr_sz2::decompress(b).unwrap().len())
                .sum::<usize>()
        });
        kernels::set_force_scalar(false);
        records.push((
            "sz2_decompress_kernel",
            stored_mb / t_ref,
            stored_mb / t_cur,
            Some(stored_mb / t_sca),
        ));
    }
    {
        use hqmr_zfp::ZfpConfig;
        let cfg = ZfpConfig::new(eb);
        let t_ref = best_of(reps, || {
            fields
                .iter()
                .map(|f| hqmr_zfp::reference::compress(f, &cfg).bytes.len())
                .sum::<usize>()
        });
        let t_cur = best_of(reps, || {
            fields
                .iter()
                .map(|f| hqmr_zfp::compress(f, &cfg).bytes.len())
                .sum::<usize>()
        });
        kernels::set_force_scalar(true);
        let t_sca = best_of(reps, || {
            fields
                .iter()
                .map(|f| hqmr_zfp::compress(f, &cfg).bytes.len())
                .sum::<usize>()
        });
        kernels::set_force_scalar(false);
        records.push((
            "zfp_compress_kernel",
            stored_mb / t_ref,
            stored_mb / t_cur,
            Some(stored_mb / t_sca),
        ));
        let streams: Vec<Vec<u8>> = fields
            .iter()
            .map(|f| hqmr_zfp::compress(f, &cfg).bytes)
            .collect();
        let t_ref = best_of(reps, || {
            streams
                .iter()
                .map(|b| hqmr_zfp::reference::decompress(b).unwrap().len())
                .sum::<usize>()
        });
        let t_cur = best_of(reps, || {
            streams
                .iter()
                .map(|b| hqmr_zfp::decompress(b).unwrap().len())
                .sum::<usize>()
        });
        kernels::set_force_scalar(true);
        let t_sca = best_of(reps, || {
            streams
                .iter()
                .map(|b| hqmr_zfp::decompress(b).unwrap().len())
                .sum::<usize>()
        });
        kernels::set_force_scalar(false);
        records.push((
            "zfp_decompress_kernel",
            stored_mb / t_ref,
            stored_mb / t_cur,
            Some(stored_mb / t_sca),
        ));
    }

    // Store-write throughput (the production-critical in-situ direction),
    // with the parallel full read alongside so the write/read gap is
    // committed evidence.
    let (store_write_mbps, store_read_mbps, tile_threads) = {
        use hqmr_store::{write_store, write_store_into, ChunkSource, StoreConfig, StoreReader};
        let cfg = StoreConfig::new(eb).with_chunk_blocks(4);
        let codec = hqmr_sz3::Sz3Codec::default();
        let mut buf = Vec::new();
        let t_w = best_of(reps, || {
            write_store_into(mr, &cfg, &codec, &mut buf);
            buf.len()
        });
        let reader = StoreReader::from_bytes(write_store(mr, &cfg, &codec)).expect("store parses");
        let t_r = best_of(reps, || {
            reader.read_all().expect("store decodes").levels.len()
        });

        // Single-chunk decode: the serve-path unit of work on a cache miss.
        // Both arms decode the largest chunk in the store; "before" forces
        // the serial path, "after" allows intra-chunk tile parallelism.
        // The gap scales with `tile_threads` — on a single-core runner the
        // arms coincide because the rayon shim degrades to inline calls.
        let (mut lv, mut blk, mut cells) = (0usize, 0usize, 0usize);
        for (l, lm) in reader.store_meta().levels.iter().enumerate() {
            for (b, c) in lm.chunks.iter().enumerate() {
                let n = c.slots.len() * c.unit.pow(3);
                if n > cells {
                    (lv, blk, cells) = (l, b, n);
                }
            }
        }
        let chunk_mb = (cells * 4) as f64 / (1024.0 * 1024.0);
        kernels::set_tile_parallel(false);
        let t_ser = best_of(reps, || reader.decode_chunk(lv, blk).unwrap().data.len());
        kernels::set_tile_parallel(true);
        let t_par = best_of(reps, || reader.decode_chunk(lv, blk).unwrap().data.len());
        records.push((
            "single_chunk_decode",
            chunk_mb / t_ser,
            chunk_mb / t_par,
            None,
        ));
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        (stored_mb / t_w, stored_mb / t_r, threads)
    };

    let mut out = format!(
        "Hot-path throughput — {} (scale {scale}, {:.2} MiB of quant codes, \
         {} Huffman blocks, {tile_threads} thread(s))\n\
         stage                 before(MB/s)  after(MB/s)  scalar(MB/s)  speedup\n",
        d.name,
        symbol_mb,
        blocks.len()
    );
    for (stage, before, after, scalar) in &records {
        let sca = scalar.map_or("           -".into(), |s| format!("{s:12.1}"));
        writeln!(
            out,
            "{stage:21} {before:12.1} {after:12.1} {sca}  {:6.2}x",
            after / before
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nstore write (sz3, 4-block chunks): {store_write_mbps:8.1} MB/s \
         (full parallel read: {store_read_mbps:.1} MB/s)"
    )
    .unwrap();

    // End-to-end codec throughput on the same data (context: the entropy
    // stage is one term of the full pipeline).
    writeln!(out, "\nend-to-end (paper arrangement, rel_eb 1e-3):").unwrap();
    let mut e2e: Vec<(&str, f64, f64)> = Vec::new();
    for backend in [Backend::SZ3, Backend::SZ2, Backend::ZFP] {
        let cfg = MrcConfig::ours_pad(eb).with_backend(backend);
        let t_c = best_of(5, || compress_mr(mr, &cfg).0.len());
        let bytes = compress_mr(mr, &cfg).0;
        let t_d = best_of(5, || decompress_mr(&bytes).unwrap().levels.len());
        writeln!(
            out,
            "{:7} compress {:8.1} MB/s   decompress {:8.1} MB/s",
            backend.name(),
            stored_mb / t_c,
            stored_mb / t_d
        )
        .unwrap();
        e2e.push((backend.name(), stored_mb / t_c, stored_mb / t_d));
    }

    let mut json = String::from("{\n");
    write!(
        json,
        "  \"dataset\": \"{}\",\n  \"scale\": {scale},\n  \"stored_mb\": {stored_mb:.3},\n  \
         \"symbol_mb\": {symbol_mb:.3},\n  \"symbol_count\": {symbol_count},\n  \
         \"tile_threads\": {tile_threads},\n  \"records\": [\n",
        d.name
    )
    .unwrap();
    for (i, (stage, before, after, scalar)) in records.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let sca = scalar.map_or(String::new(), |s| format!(", \"scalar_MBps\": {s:.1}"));
        write!(
            json,
            "    {{\"stage\": \"{stage}\", \"before_MBps\": {before:.1}, \
             \"after_MBps\": {after:.1}{sca}, \"speedup\": {:.3}}}",
            after / before
        )
        .unwrap();
    }
    json.push_str("\n  ],\n");
    writeln!(
        json,
        "  \"store_write\": {{\"backend\": \"sz3\", \"chunk_blocks\": 4, \
         \"write_MBps\": {store_write_mbps:.1}, \"full_read_MBps\": {store_read_mbps:.1}}},"
    )
    .unwrap();
    json.push_str("  \"end_to_end\": [\n");
    for (i, (name, comp, dec)) in e2e.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        write!(
            json,
            "    {{\"backend\": \"{name}\", \"compress_MBps\": {comp:.1}, \
             \"decompress_MBps\": {dec:.1}}}"
        )
        .unwrap();
    }
    json.push_str("\n  ]\n}\n");
    crate::write_root_json("BENCH_hotpath.json", &json, &mut out);
    out
}

/// Network serving benchmark (`BENCH_net.json`): per-request latency
/// (p50/p99) and aggregate QPS of the `hqmr-net` fleet over real TCP
/// loopback, across client count × cache budget, plus a deliberately
/// saturated cell (1 worker, depth-1 queue, cache off, 16 clients) showing
/// overload surfacing as typed `Busy` responses — bounded answers, not an
/// unbounded backlog. Each request is one single-query batch from a
/// viewer-like mix (ROI bricks, an isovalue skim, a coarse overview), so a
/// latency sample is one full round-trip: encode, two socket hops, shard
/// dispatch, serve, decode.
pub fn net(scale: usize) -> String {
    use hqmr_net::{DatasetSpec, NetClient, NetConfig, NetError, NetServer};
    use hqmr_serve::{Query, UNBOUNDED};
    use hqmr_store::{write_store, StoreConfig, StoreReader};
    use std::sync::Arc;
    use std::time::Instant;

    const PASSES: usize = 3;
    let d = datasets::nyx_t1(scale, 53);
    let mr = d.mr.as_ref().unwrap();
    let eb = d.range() * 8e-3;
    let (mn, mx) = d.field.min_max();
    let iso = mn + 0.6 * (mx - mn);

    // Same viewer-like mix as the in-process serving bench, issued as
    // individual requests so each one is a latency sample.
    let fine = mr.levels[0].dims;
    let brick = [
        (fine.nx / 2).max(1),
        (fine.ny / 2).max(1),
        (fine.nz / 4).max(1),
    ];
    let mut mix: Vec<Query> = Vec::new();
    for k in 0..8usize {
        let lo = [
            (k % 2) * (fine.nx - brick[0]),
            ((k / 2) % 2) * (fine.ny - brick[1]),
            (k % 4) * (fine.nz - brick[2]) / 3,
        ];
        mix.push(Query::Roi {
            level: 0,
            lo,
            hi: [lo[0] + brick[0], lo[1] + brick[1], lo[2] + brick[2]],
            fill: mn,
        });
    }
    mix.push(Query::Iso { level: 0, iso });
    mix.push(Query::Level {
        level: mr.levels.len() - 1,
    });

    let buf = write_store(
        mr,
        &StoreConfig::new(eb).with_chunk_blocks(4),
        &hqmr_sz3::Sz3Codec::default(),
    );
    let store_bytes = buf.len();
    let spawn = |cfg: NetConfig| {
        NetServer::spawn(
            "127.0.0.1:0",
            cfg,
            vec![DatasetSpec {
                id: 0,
                name: d.name.to_string(),
                reader: Arc::new(StoreReader::from_bytes(buf.clone()).unwrap()),
            }],
        )
        .expect("spawn fleet")
    };

    /// Drives `clients` threads × `PASSES` passes of the mix against
    /// `addr`; returns (per-request seconds, wall seconds, busy retries).
    fn drive(
        addr: std::net::SocketAddr,
        clients: usize,
        mix: &[Query],
        passes: usize,
    ) -> (Vec<f64>, f64, u64) {
        let t0 = Instant::now();
        let results: Vec<(Vec<f64>, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    s.spawn(move || {
                        let mut client = NetClient::connect(addr).expect("connect");
                        let mut lat = Vec::with_capacity(passes * mix.len());
                        let mut busy = 0u64;
                        for _ in 0..passes {
                            for q in mix {
                                let t = Instant::now();
                                loop {
                                    match client.batch(0, std::slice::from_ref(q)) {
                                        Ok(r) => {
                                            std::hint::black_box(r);
                                            break;
                                        }
                                        Err(NetError::Busy) => {
                                            busy += 1;
                                            std::thread::yield_now();
                                        }
                                        Err(e) => panic!("request failed: {e}"),
                                    }
                                }
                                lat.push(t.elapsed().as_secs_f64());
                            }
                        }
                        (lat, busy)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = t0.elapsed().as_secs_f64();
        let mut lat = Vec::new();
        let mut busy = 0;
        for (l, b) in results {
            lat.extend(l);
            busy += b;
        }
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (lat, wall, busy)
    }

    fn pct(sorted: &[f64], q: f64) -> f64 {
        let i = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[i]
    }

    let budgets: [(&str, usize); 2] = [("64KiB", 64 << 10), ("unbounded", UNBOUNDED)];
    let client_counts = [1usize, 4, 16];

    let mut out = format!(
        "Network serving — {} (scale {scale}, rel eb 8e-3, sz3 store {:.1} KiB, \
         {} requests/client-pass, {PASSES} passes, TCP loopback)\n\
         budget     clients   p50(ms)   p99(ms)   agg(q/s)   busy_retries   hits   misses\n",
        d.name,
        store_bytes as f64 / 1024.0,
        mix.len(),
    );
    let mut json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"scale\": {scale},\n  \"rel_eb\": 8e-3,\n  \
         \"store_bytes\": {store_bytes},\n  \"requests_per_pass\": {},\n  \
         \"passes\": {PASSES},\n  \"records\": [\n",
        d.name,
        mix.len(),
    );
    let mut first = true;
    for (bname, budget) in budgets {
        for clients in client_counts {
            // Fresh fleet per cell: cold cache, default worker pool.
            let server = spawn(NetConfig {
                cache_budget: budget,
                max_connections: 64,
                ..NetConfig::default()
            });
            let (lat, wall, busy) = drive(server.local_addr(), clients, &mix, PASSES);
            let total = lat.len() as f64;
            let (p50, p99) = (pct(&lat, 0.50) * 1e3, pct(&lat, 0.99) * 1e3);
            let qps = total / wall;
            let mut probe = NetClient::connect(server.local_addr()).expect("stats probe");
            let stats = probe.stats(0, false).expect("stats");
            writeln!(
                out,
                "{bname:9} {clients:8} {p50:9.3} {p99:9.3} {qps:10.1} {busy:14} {:6} {:8}",
                stats.cache.hits, stats.cache.misses,
            )
            .unwrap();
            if !first {
                json.push_str(",\n");
            }
            first = false;
            write!(
                json,
                "    {{\"budget\": \"{bname}\", \"clients\": {clients}, \
                 \"p50_ms\": {p50:.4}, \"p99_ms\": {p99:.4}, \"agg_qps\": {qps:.2}, \
                 \"requests\": {}, \"busy_retries\": {busy}, \
                 \"cache\": {{\"requests\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}}}}}",
                lat.len(),
                stats.cache.requests,
                stats.cache.hits,
                stats.cache.misses,
                stats.cache.evictions,
            )
            .unwrap();
        }
    }

    // Saturation: a deliberately starved fleet — overload must surface as
    // typed Busy answers while every client still finishes its work.
    let server = spawn(NetConfig {
        workers: 1,
        queue_depth: 1,
        cache_budget: 0,
        max_connections: 64,
        ..NetConfig::default()
    });
    let (lat, wall, busy) = drive(server.local_addr(), 16, &mix, 1);
    let busy_server = server.busy_rejections();
    writeln!(
        out,
        "saturation (1 worker, queue depth 1, cache off, 16 clients): \
         {} requests in {wall:.2}s, {busy} Busy retries observed by clients \
         ({busy_server} rejected server-side), p99 {:.1} ms",
        lat.len(),
        pct(&lat, 0.99) * 1e3,
    )
    .unwrap();
    write!(
        json,
        ",\n    {{\"budget\": \"saturation\", \"clients\": 16, \"workers\": 1, \
         \"queue_depth\": 1, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
         \"agg_qps\": {:.2}, \"requests\": {}, \"busy_retries\": {busy}, \
         \"busy_rejections_server\": {busy_server}}}",
        pct(&lat, 0.50) * 1e3,
        pct(&lat, 0.99) * 1e3,
        lat.len() as f64 / wall,
        lat.len(),
    )
    .unwrap();

    json.push_str("\n  ]\n}\n");
    crate::write_root_json("BENCH_net.json", &json, &mut out);
    out
}

/// Fault-tolerance benchmark (`BENCH_faults.json`): availability, outcome
/// mix and tail latency of the fleet under seeded chaos. Three rows — no
/// chaos, light chaos, heavy chaos — each driving 8 retrying clients
/// through the degraded read path against a fleet with fault injection
/// armed. Every operation must finish (hangs are counted and must be
/// zero); failures must be the typed give-up. Availability is the fraction
/// of operations that returned data (exact or quality-flagged).
pub fn faults(scale: usize) -> String {
    use hqmr_net::{
        ChaosConfig, ClientConfig, DatasetSpec, NetClient, NetConfig, NetError, NetServer,
    };
    use hqmr_serve::Query;
    use hqmr_store::{write_store, StoreConfig, StoreReader};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    const CLIENTS: usize = 8;
    const PASSES: usize = 3;
    const RETRIES: usize = 12;
    /// An operation running past this long counts as a hang — far beyond
    /// the deadline + full-backoff envelope of one retried request.
    const HANG: Duration = Duration::from_secs(10);

    let d = datasets::nyx_t1(scale, 59);
    let mr = d.mr.as_ref().unwrap();
    let eb = d.range() * 8e-3;
    let (mn, mx) = d.field.min_max();

    let fine = mr.levels[0].dims;
    let mix: Vec<Query> = vec![
        Query::Level {
            level: mr.levels.len() - 1,
        },
        Query::Roi {
            level: 0,
            lo: [0, 0, 0],
            hi: [
                (fine.nx / 2).max(1),
                (fine.ny / 2).max(1),
                (fine.nz / 2).max(1),
            ],
            fill: mn,
        },
        Query::Iso {
            level: 0,
            iso: mn + 0.6 * (mx - mn),
        },
    ];

    let buf = write_store(
        mr,
        &StoreConfig::new(eb).with_chunk_blocks(4),
        &hqmr_sz3::Sz3Codec::default(),
    );
    let store_bytes = buf.len();

    // Deterministic per-row fault levels, keyed to one fixed seed.
    let rows: [(&str, Option<&str>); 3] = [
        ("none", None),
        (
            "light",
            Some("drop:0.01,stall:1ms@0.05,flip:0.01,seed:4242"),
        ),
        (
            "heavy",
            Some("drop:0.05,partial:0.03,wire:0.02,stall:2ms@0.15,flip:0.05,seed:4242"),
        ),
    ];

    let client_cfg = ClientConfig {
        connect_timeout: Some(Duration::from_secs(5)),
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        request_deadline: Some(Duration::from_secs(3)),
        backoff_base: Duration::from_micros(200),
        backoff_cap: Duration::from_millis(5),
        ..ClientConfig::default()
    };

    let mut out = format!(
        "Fault tolerance — {} (scale {scale}, sz3 store {:.1} KiB, {CLIENTS} clients × \
         {PASSES} passes × {} ops, retry budget {RETRIES}, degraded reads)\n\
         chaos    avail(%)   exact   degraded   gave_up   hangs   p50(ms)   p99(ms)   deadline   busy\n",
        d.name,
        store_bytes as f64 / 1024.0,
        mix.len(),
    );
    let mut json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"scale\": {scale},\n  \"store_bytes\": {store_bytes},\n  \
         \"clients\": {CLIENTS},\n  \"passes\": {PASSES},\n  \"retry_budget\": {RETRIES},\n  \
         \"records\": [\n",
        d.name,
    );

    for (i, (row, chaos)) in rows.into_iter().enumerate() {
        let chaos_cfg = chaos.map(|s| ChaosConfig::parse(s).expect("chaos grammar"));
        let server = NetServer::spawn(
            "127.0.0.1:0",
            NetConfig {
                chaos: chaos_cfg,
                read_timeout: Some(Duration::from_millis(500)),
                write_timeout: Some(Duration::from_secs(5)),
                request_deadline: Some(Duration::from_secs(5)),
                max_connections: 64,
                ..NetConfig::default()
            },
            vec![DatasetSpec {
                id: 0,
                name: d.name.to_string(),
                reader: Arc::new(StoreReader::from_bytes(buf.clone()).unwrap()),
            }],
        )
        .expect("spawn fleet");
        let addr = server.local_addr();

        // (ok_exact, ok_degraded, gave_up, hangs, latencies)
        let results: Vec<(u64, u64, u64, u64, Vec<f64>)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|t| {
                    let mix = &mix;
                    let mut cfg = client_cfg.clone();
                    cfg.jitter_seed = 0xFA17 ^ t as u64;
                    s.spawn(move || {
                        // Chaos shoots down handshakes too; redial until one
                        // survives.
                        let mut client = (0..100)
                            .find_map(|_| NetClient::connect_with(addr, cfg.clone()).ok())
                            .expect("no handshake survived 100 dials");
                        let (mut exact, mut degraded, mut gave_up, mut hangs) = (0u64, 0, 0, 0);
                        let mut lat = Vec::with_capacity(PASSES * mix.len());
                        for _ in 0..PASSES {
                            for q in mix {
                                let t0 = Instant::now();
                                match client.batch_degraded_retry(
                                    0,
                                    std::slice::from_ref(q),
                                    RETRIES,
                                ) {
                                    Ok(rs) => {
                                        if rs.iter().all(|r| r.is_exact()) {
                                            exact += 1;
                                        } else {
                                            degraded += 1;
                                        }
                                    }
                                    Err(NetError::RetriesExhausted { .. }) => gave_up += 1,
                                    Err(e) => panic!("untyped failure under chaos: {e}"),
                                }
                                let el = t0.elapsed();
                                if el >= HANG {
                                    hangs += 1;
                                }
                                lat.push(el.as_secs_f64());
                            }
                        }
                        (exact, degraded, gave_up, hangs, lat)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let (mut exact, mut degraded, mut gave_up, mut hangs) = (0u64, 0u64, 0u64, 0u64);
        let mut lat = Vec::new();
        for (e, dg, g, h, l) in results {
            exact += e;
            degraded += dg;
            gave_up += g;
            hangs += h;
            lat.extend(l);
        }
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |q: f64| lat[((lat.len() - 1) as f64 * q).round() as usize] * 1e3;
        let total = exact + degraded + gave_up;
        let avail = 100.0 * (exact + degraded) as f64 / total as f64;
        let (p50, p99) = (pct(0.50), pct(0.99));
        let (dl, busy) = (server.deadline_rejections(), server.busy_rejections());
        assert_eq!(hangs, 0, "chaos row `{row}` hung {hangs} operations");
        if chaos.is_none() {
            assert_eq!(avail, 100.0, "clean row must be fully available");
            assert_eq!(degraded, 0, "clean row must not degrade");
        }

        writeln!(
            out,
            "{row:8} {avail:8.1} {exact:7} {degraded:10} {gave_up:9} {hangs:7} {p50:9.3} {p99:9.3} {dl:10} {busy:6}",
        )
        .unwrap();
        if i > 0 {
            json.push_str(",\n");
        }
        write!(
            json,
            "    {{\"chaos\": \"{row}\", \"switches\": \"{}\", \"availability_pct\": {avail:.2}, \
             \"exact\": {exact}, \"degraded\": {degraded}, \"gave_up\": {gave_up}, \
             \"hangs\": {hangs}, \"p50_ms\": {p50:.4}, \"p99_ms\": {p99:.4}, \
             \"deadline_rejections\": {dl}, \"busy_rejections\": {busy}}}",
            chaos.unwrap_or(""),
        )
        .unwrap();
    }

    json.push_str("\n  ]\n}\n");
    crate::write_root_json("BENCH_faults.json", &json, &mut out);
    out
}

/// Temporal stores: compression-ratio win of inter-frame prediction over
/// independent per-frame snapshots, on an advected synthetic sequence at an
/// equal error bound. Streams the sequence through [`hqmr_core::TemporalWriter`] (the
/// crash-safe in-situ path), then re-opens the container and verifies every
/// reconstructed frame against its original field.
pub fn temporal(scale: usize) -> String {
    use hqmr_core::TemporalWriter;
    use hqmr_store::temporal::{Prediction, TemporalReader};
    use hqmr_store::{write_store, DEFAULT_CHUNK_BLOCKS};
    use std::time::Instant;

    const STEPS: usize = 6;
    let dims = Dims3::cube(scale);
    let frames = synth::advected_sequence(dims, STEPS, [0.4, 0.2, 0.1], 77);
    let (mn, mx) = frames[0].min_max();
    let eb = (mx - mn) as f64 * 8e-3;

    // Frame-stable structure: the ROI layout is chosen once (frame 0) and
    // every later timestep is poured into it, exactly as the in-situ
    // pipeline does — deltas only line up when block layouts match.
    let template = to_adaptive(&frames[0], &RoiConfig::new(8, 0.5));
    let mrs: Vec<MultiResData> = frames.iter().map(|f| resample_like(&template, f)).collect();

    let mut out = format!(
        "Temporal stores — advected GRF sequence ({STEPS} frames of {scale}³, rel eb 8e-3)\n\
         backend  indep(KiB)  temporal(KiB)   ratio  delta%   write(s)  max_err/eb\n"
    );
    let mut json = format!(
        "{{\n  \"dataset\": \"advected-grf\",\n  \"scale\": {scale},\n  \"frames\": {STEPS},\n  \
         \"rel_eb\": 8e-3,\n  \"records\": [\n"
    );
    let kib = |b: u64| b as f64 / 1024.0;
    for (bi, backend) in Backend::ALL.into_iter().enumerate() {
        let cfg = MrcConfig::baseline(eb).with_backend(backend);
        let codec = backend.codec();

        // Baseline: each frame as an independent snapshot container.
        let scfg = cfg.store_config(DEFAULT_CHUNK_BLOCKS);
        let independent: u64 = mrs
            .iter()
            .map(|mr| write_store(mr, &scfg, codec.as_ref()).len() as u64)
            .sum();

        // Temporal: the same frames through the streaming delta writer.
        let dir = std::env::temp_dir().join(format!("hqmr_bench_temporal_{}", backend.name()));
        let _ = std::fs::remove_dir_all(&dir);
        let t0 = Instant::now();
        let mut writer =
            TemporalWriter::create(&dir, &cfg, Prediction::delta()).expect("create temporal dir");
        let (mut temporal, mut delta_chunks, mut total_chunks) = (0u64, 0usize, 0usize);
        for (t, mr) in mrs.iter().enumerate() {
            let rep = writer.append(t as u64, mr).expect("append frame");
            temporal += rep.bytes;
            delta_chunks += rep.delta_chunks;
            total_chunks += rep.total_chunks;
        }
        let t_write = t0.elapsed().as_secs_f64();

        // Verify the error bound holds per frame through the reader (delta
        // chains and all), against the original uncompressed fields.
        let reader = TemporalReader::open(&dir).expect("reopen temporal store");
        let mut max_err = 0.0f64;
        if backend != Backend::NULL {
            for (t, mr) in mrs.iter().enumerate() {
                let fine = reader.read_level(t, 0).expect("read fine level");
                let got = fine.to_field(mn);
                let want = mr.levels[0].to_field(mn);
                for (g, w) in got.data().iter().zip(want.data()) {
                    max_err = max_err.max((g - w).abs() as f64);
                }
            }
            assert!(
                max_err <= eb * (1.0 + 1e-6),
                "{}: max err {max_err} exceeds eb {eb}",
                backend.name()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);

        let ratio = independent as f64 / temporal as f64;
        let delta_pct = 100.0 * delta_chunks as f64 / total_chunks.max(1) as f64;
        writeln!(
            out,
            "{:7} {:11.1} {:14.1} {ratio:7.3} {delta_pct:6.1} {t_write:10.4} {:11.3}",
            backend.name(),
            kib(independent),
            kib(temporal),
            max_err / eb,
        )
        .unwrap();
        if bi > 0 {
            json.push_str(",\n");
        }
        write!(
            json,
            "    {{\"backend\": \"{}\", \"independent_bytes\": {independent}, \
             \"temporal_bytes\": {temporal}, \"ratio\": {ratio:.4}, \
             \"delta_chunk_frac\": {:.4}, \"write_s\": {t_write:.4}, \
             \"max_err_over_eb\": {:.4}}}",
            backend.name(),
            delta_chunks as f64 / total_chunks.max(1) as f64,
            max_err / eb,
        )
        .unwrap();
    }
    json.push_str("\n  ]\n}\n");
    crate::write_root_json("BENCH_temporal.json", &json, &mut out);
    out
}

/// Self-healing stores: availability and exactness under chunk rot with and
/// without parity sidecars, at-rest scrub throughput, parity overhead, and
/// torn-run salvage. The acceptance story: with sidecars armed, heavy rot
/// is *repaired* (served bit-exactly), not merely degraded; without them,
/// the degraded-read behaviour of the fault bench reappears.
pub fn scrub(scale: usize) -> String {
    use hqmr_net::{
        ChaosConfig, ClientConfig, DatasetSpec, NetClient, NetConfig, NetError, NetServer,
    };
    use hqmr_serve::Query;
    use hqmr_store::temporal::{Prediction, TemporalReader};
    use hqmr_store::{
        parity_path, scrub_store, write_store_with_parity, StoreConfig, StoreReader, Throttle,
        DEFAULT_PARITY_GROUP,
    };
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    const CLIENTS: usize = 4;
    const PASSES: usize = 3;
    const RETRIES: usize = 8;

    let d = datasets::nyx_t1(scale, 61);
    let mr = d.mr.as_ref().unwrap();
    let eb = d.range() * 8e-3;
    let (mn, _mx) = d.field.min_max();

    let fine = mr.levels[0].dims;
    let mix: Vec<Query> = vec![
        Query::Level {
            level: mr.levels.len() - 1,
        },
        Query::Roi {
            level: 0,
            lo: [0, 0, 0],
            hi: [
                (fine.nx / 2).max(1),
                (fine.ny / 2).max(1),
                (fine.nz / 2).max(1),
            ],
            fill: mn,
        },
    ];

    let scfg = StoreConfig::new(eb)
        .with_chunk_blocks(2)
        .with_parity_group(DEFAULT_PARITY_GROUP);
    let (buf, sidecar) = write_store_with_parity(mr, &scfg, &hqmr_sz3::Sz3Codec::default());
    let sidecar = sidecar.expect("parity enabled");
    let overhead = sidecar.len() as f64 / buf.len() as f64;
    let (head, _) = hqmr_store::parse_head(&buf).unwrap();
    let chunk_total: usize = head.levels.iter().map(|l| l.chunks.len()).sum();
    // One parity block per group costs ~1/group amortized; tiny smoke
    // scales leave partial groups dominating, so the budget is only
    // meaningful once groups actually fill.
    if chunk_total >= 4 * DEFAULT_PARITY_GROUP {
        assert!(
            overhead <= 0.15,
            "parity overhead {overhead:.3} exceeds the 15% budget at group \
             {DEFAULT_PARITY_GROUP} ({chunk_total} chunks)"
        );
    }

    let client_cfg = ClientConfig {
        connect_timeout: Some(Duration::from_secs(5)),
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        request_deadline: Some(Duration::from_secs(3)),
        backoff_base: Duration::from_micros(200),
        backoff_cap: Duration::from_millis(5),
        ..ClientConfig::default()
    };

    // Chunk-rot levels: `flip:P` faults each (level, block) with
    // probability P at fetch time. `flip:1` rots every chunk — the
    // worst-case acceptance row.
    let rows: [(&str, Option<&str>); 3] = [
        ("none", None),
        ("light", Some("flip:0.1,seed:4242")),
        ("heavy", Some("flip:1,seed:4242")),
    ];

    let mut out = format!(
        "Self-healing stores — {} (scale {scale}, sz3 store {:.1} KiB, sidecar {:.1} KiB, \
         group {DEFAULT_PARITY_GROUP}, parity overhead {:.1}%)\n\
         chaos    parity   avail(%)   exact(%)   degraded   repairs   rep_fail   gave_up\n",
        d.name,
        buf.len() as f64 / 1024.0,
        sidecar.len() as f64 / 1024.0,
        overhead * 100.0,
    );
    let mut json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"scale\": {scale},\n  \"store_bytes\": {},\n  \
         \"sidecar_bytes\": {},\n  \"parity_group\": {DEFAULT_PARITY_GROUP},\n  \
         \"parity_overhead\": {overhead:.4},\n  \"records\": [\n",
        d.name,
        buf.len(),
        sidecar.len(),
    );

    let mut first = true;
    for (row, chaos) in rows {
        for parity_on in [false, true] {
            let server = NetServer::spawn(
                "127.0.0.1:0",
                NetConfig {
                    chaos: chaos.map(|s| ChaosConfig::parse(s).expect("chaos grammar")),
                    parity_group: if parity_on { DEFAULT_PARITY_GROUP } else { 0 },
                    read_timeout: Some(Duration::from_millis(500)),
                    write_timeout: Some(Duration::from_secs(5)),
                    request_deadline: Some(Duration::from_secs(5)),
                    max_connections: 64,
                    ..NetConfig::default()
                },
                vec![DatasetSpec {
                    id: 0,
                    name: d.name.to_string(),
                    reader: Arc::new(StoreReader::from_bytes(buf.clone()).unwrap()),
                }],
            )
            .expect("spawn fleet");
            let addr = server.local_addr();

            let results: Vec<(u64, u64, u64)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..CLIENTS)
                    .map(|t| {
                        let mix = &mix;
                        let mut cfg = client_cfg.clone();
                        cfg.jitter_seed = 0x5CB ^ t as u64;
                        s.spawn(move || {
                            let mut client = NetClient::connect_with(addr, cfg.clone())
                                .expect("clean handshake (no wire chaos armed)");
                            let (mut exact, mut degraded, mut gave_up) = (0u64, 0u64, 0u64);
                            for _ in 0..PASSES {
                                for q in mix {
                                    match client.batch_degraded_retry(
                                        0,
                                        std::slice::from_ref(q),
                                        RETRIES,
                                    ) {
                                        Ok(rs) => {
                                            if rs.iter().all(|r| r.is_exact()) {
                                                exact += 1;
                                            } else {
                                                degraded += 1;
                                            }
                                        }
                                        Err(NetError::RetriesExhausted { .. }) => gave_up += 1,
                                        Err(e) => panic!("untyped failure under rot: {e}"),
                                    }
                                }
                            }
                            (exact, degraded, gave_up)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let (mut exact, mut degraded, mut gave_up) = (0u64, 0u64, 0u64);
            for (e, dg, g) in results {
                exact += e;
                degraded += dg;
                gave_up += g;
            }
            let mut probe = NetClient::connect(addr).expect("stats probe");
            let stats = probe.stats(0, false).expect("stats");
            let total = exact + degraded + gave_up;
            let avail = 100.0 * (exact + degraded) as f64 / total as f64;
            let exact_pct = 100.0 * exact as f64 / total as f64;

            // The acceptance criteria, asserted where they are measured.
            assert_eq!(gave_up, 0, "chunk rot must never cost availability");
            if parity_on {
                assert_eq!(
                    degraded, 0,
                    "row `{row}`: with sidecars every rotted chunk must repair, not degrade"
                );
                if chaos.is_some() {
                    assert!(stats.cache.repairs > 0, "row `{row}`: repairs must show");
                }
                assert_eq!(stats.cache.repair_failures, 0);
            } else if row == "heavy" {
                assert!(
                    degraded > 0,
                    "heavy rot without sidecars must fall back to degraded fills"
                );
            }

            writeln!(
                out,
                "{row:8} {:6}   {avail:8.1} {exact_pct:10.1} {degraded:10} {:9} {:10} {gave_up:9}",
                if parity_on { "on" } else { "off" },
                stats.cache.repairs,
                stats.cache.repair_failures,
            )
            .unwrap();
            if !first {
                json.push_str(",\n");
            }
            first = false;
            write!(
                json,
                "    {{\"chaos\": \"{row}\", \"parity\": {parity_on}, \
                 \"availability_pct\": {avail:.2}, \"exact_pct\": {exact_pct:.2}, \
                 \"exact\": {exact}, \"degraded\": {degraded}, \"gave_up\": {gave_up}, \
                 \"repairs\": {}, \"repair_failures\": {}}}",
                stats.cache.repairs, stats.cache.repair_failures,
            )
            .unwrap();
        }
    }
    json.push_str("\n  ],\n");

    // At-rest scrub: flip a few chunks on disk, heal them in place, and
    // time a full unpaced verification pass.
    let dir = std::env::temp_dir().join("hqmr_bench_scrub");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.hqst");
    let mut rotted = buf.clone();
    let (meta, data_start) = hqmr_store::parse_head(&buf).unwrap();
    let mut flipped = 0usize;
    for (l, lm) in meta.levels.iter().enumerate() {
        for b in 0..lm.chunks.len() {
            // One casualty per parity group: always repairable.
            if (l + b) % DEFAULT_PARITY_GROUP == 0 && l == 0 {
                let c = &lm.chunks[b];
                rotted[data_start as usize + c.offset as usize] ^= 0x10;
                flipped += 1;
            }
        }
    }
    std::fs::write(&path, &rotted).unwrap();
    std::fs::write(parity_path(&path), &sidecar).unwrap();
    let t0 = Instant::now();
    let report = scrub_store(&path, Some(&mut Throttle::new(0))).expect("scrub");
    let scrub_s = t0.elapsed().as_secs_f64();
    assert!(report.all_exact(), "every planted flip must heal");
    assert_eq!(std::fs::read(&path).unwrap(), buf, "healed bit-exactly");
    let mbps = report.bytes_scanned as f64 / 1e6 / scrub_s.max(1e-9);
    writeln!(
        out,
        "\nAt-rest scrub: {} chunks verified, {} healed of {flipped} planted, \
         {:.1} MB scanned in {scrub_s:.3}s ({mbps:.0} MB/s, unpaced)",
        report.verified,
        report.repaired,
        report.bytes_scanned as f64 / 1e6,
    )
    .unwrap();
    writeln!(
        json,
        "  \"at_rest\": {{\"verified\": {}, \"planted\": {flipped}, \"repaired\": {}, \
         \"bytes_scanned\": {}, \"scrub_s\": {scrub_s:.4}, \"scrub_mb_s\": {mbps:.1}}},",
        report.verified, report.repaired, report.bytes_scanned,
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // Torn-run salvage: crash a short temporal run mid-frame and recover.
    let steps = 4;
    let frames = synth::advected_sequence(Dims3::cube(scale.min(32)), steps, [0.5, 0.25, 0.0], 62);
    let template = to_adaptive(&frames[0], &RoiConfig::new(8, 0.5));
    let tdir = std::env::temp_dir().join("hqmr_bench_scrub_salvage");
    let _ = std::fs::remove_dir_all(&tdir);
    let mcfg = hqmr_core::MrcConfig::baseline(0.02);
    let mut writer = hqmr_core::TemporalWriter::create(&tdir, &mcfg, Prediction::delta()).unwrap();
    for (t, f) in frames.iter().enumerate() {
        writer
            .append(t as u64, &resample_like(&template, f))
            .unwrap();
    }
    drop(writer);
    let manifest = TemporalReader::read_manifest(&tdir).unwrap();
    let torn = tdir.join(&manifest.frames[steps - 1].file);
    let full = std::fs::read(&torn).unwrap();
    std::fs::write(&torn, &full[..full.len() / 2]).unwrap();
    let (_writer, salvage) =
        hqmr_core::TemporalWriter::salvage(&tdir, &mcfg, Prediction::delta()).expect("salvage");
    assert_eq!(salvage.kept, steps - 1, "the unbroken prefix survives");
    assert_eq!(salvage.dropped.len(), 1, "only the torn tail is dropped");
    writeln!(
        out,
        "Salvage: torn run of {steps} frames -> kept {} / dropped {:?} (repaired {} chunks)",
        salvage.kept, salvage.dropped, salvage.repaired_chunks,
    )
    .unwrap();
    write!(
        json,
        "  \"salvage\": {{\"frames\": {steps}, \"kept\": {}, \"dropped\": {}, \
         \"repaired_chunks\": {}}}\n}}\n",
        salvage.kept,
        salvage.dropped.len(),
        salvage.repaired_chunks,
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&tdir);

    crate::write_root_json("BENCH_scrub.json", &json, &mut out);
    out
}
