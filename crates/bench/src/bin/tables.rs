//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p hqmr-bench --release --bin tables -- all [scale]
//! cargo run -p hqmr-bench --release --bin tables -- fig15 128
//! ```
//!
//! Reports land in `results/<id>.txt`; Fig. 14/16 additionally write PPM
//! renders next to them.

use hqmr_bench::{emit_report, experiments as ex};

/// An experiment: scale in, report text out.
type Experiment = fn(usize) -> String;

const DEFAULT_SCALE: usize = 64;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE);
    if !scale.is_power_of_two() || scale < 32 {
        eprintln!("scale must be a power of two >= 32, got {scale}");
        std::process::exit(2);
    }

    let all: &[(&str, Experiment)] = &[
        ("tab03", ex::tab03),
        ("fig04", ex::fig04),
        ("fig05", ex::fig05),
        ("fig06", ex::fig06),
        ("fig07", ex::fig07),
        ("tab01", ex::tab01),
        ("fig12", ex::fig12),
        ("tab02", ex::tab02),
        ("fig14", ex::fig14),
        ("fig15", ex::fig15),
        ("tab04", ex::tab04),
        ("tab05", ex::tab05),
        ("fig16", ex::fig16),
        ("fig17", ex::fig17),
        ("fig18", ex::fig18),
        ("tab06", ex::tab06),
        ("tab07", ex::tab07),
        ("tab08", ex::tab08),
        ("tab09", ex::tab09),
        ("ablations", ex::ablations),
        ("codecs", ex::codecs),
        ("store", ex::store),
        ("serve", ex::serve),
        ("hotpath", ex::hotpath),
        ("net", ex::net),
        ("faults", ex::faults),
        ("temporal", ex::temporal),
        ("scrub", ex::scrub),
    ];

    let selected: Vec<_> = if which == "all" {
        all.to_vec()
    } else {
        all.iter().copied().filter(|(n, _)| *n == which).collect()
    };
    if selected.is_empty() {
        eprintln!("unknown experiment '{which}'. available:");
        eprintln!(
            "  all {}",
            all.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(" ")
        );
        std::process::exit(2);
    }
    for (name, f) in selected {
        eprintln!("== {name} (scale {scale}) ==");
        let t = std::time::Instant::now();
        let report = f(scale);
        emit_report(name, &report);
        eprintln!("[{name} took {:.1}s]\n", t.elapsed().as_secs_f64());
    }
}
