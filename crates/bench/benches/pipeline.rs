//! Pipeline-stage benches: merge arrangements (Table IV's pre-process),
//! padding, the Bézier post-process (Table IX, parallel vs serial), and the
//! FFT behind the power-spectrum analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use hqmr_core::mrc::MrcConfig;
use hqmr_core::post::{bezier_pass, PostConfig};
use hqmr_grid::synth;
use hqmr_mr::{merge_level, pad_small_dims, to_amr, AmrConfig, MergeStrategy, PadKind};

fn bench_merges(c: &mut Criterion) {
    let f = synth::nyx_like(64, 88);
    let mr = to_amr(&f, &AmrConfig::nyx_t1());
    let mut g = c.benchmark_group("merge");
    g.sample_size(20);
    for (name, s) in [
        ("linear", MergeStrategy::Linear),
        ("stack", MergeStrategy::Stack),
        ("tac", MergeStrategy::Tac),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                mr.levels
                    .iter()
                    .map(|l| merge_level(l, s).len())
                    .sum::<usize>()
            })
        });
    }
    g.finish();

    let arrays = merge_level(&mr.levels[0], MergeStrategy::Linear);
    let mut g = c.benchmark_group("pad");
    g.sample_size(20);
    g.bench_function("linear_extrapolation", |b| {
        b.iter(|| pad_small_dims(&arrays[0].field, PadKind::Linear))
    });
    g.finish();
}

fn bench_post(c: &mut Criterion) {
    let f = synth::s3d_like(64, 89);
    let eb = f.range() as f64 * 1e-2;
    let r = hqmr_zfp::compress(&f, &hqmr_zfp::ZfpConfig::new(eb));
    let dec = hqmr_zfp::decompress(&r.bytes).unwrap();
    let a = [0.02f64; 3];
    let mut g = c.benchmark_group("post_process");
    g.sample_size(20);
    g.bench_function("bezier_parallel", |b| {
        b.iter(|| bezier_pass(&dec, eb, a, &PostConfig::zfp()))
    });
    g.bench_function("bezier_serial", |b| {
        b.iter(|| bezier_pass(&dec, eb, a, &PostConfig::zfp().serial()))
    });
    g.finish();
}

fn bench_insitu(c: &mut Criterion) {
    let f = synth::nyx_like(64, 90);
    let mr = to_amr(&f, &AmrConfig::nyx_t1());
    let path = std::env::temp_dir().join("hqmr_bench_insitu.bin");
    let eb = f.range() as f64 * 1e-2;
    let mut g = c.benchmark_group("insitu_snapshot");
    g.sample_size(10);
    g.bench_function("ours", |b| {
        b.iter(|| hqmr_core::insitu::write_snapshot(&mr, &MrcConfig::ours(eb), &path).unwrap())
    });
    g.bench_function("amric", |b| {
        b.iter(|| hqmr_core::insitu::write_snapshot(&mr, &MrcConfig::amric(eb), &path).unwrap())
    });
    g.finish();
    std::fs::remove_file(&path).ok();
}

fn bench_fft(c: &mut Criterion) {
    let n = 64usize;
    let data: Vec<hqmr_fft::Complex> = (0..n * n * n)
        .map(|i| hqmr_fft::Complex::new((i % 97) as f64, 0.0))
        .collect();
    let mut g = c.benchmark_group("fft");
    g.sample_size(20);
    g.bench_function("fft3d_64", |b| {
        b.iter(|| {
            let mut d = data.clone();
            hqmr_fft::fft_3d(&mut d, n, n, n, hqmr_fft::Direction::Forward);
            d
        })
    });
    g.finish();
}

criterion_group!(benches, bench_merges, bench_post, bench_insitu, bench_fft);
criterion_main!(benches);
