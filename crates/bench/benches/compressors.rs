//! Throughput benches for the three compressors (the speed axis of §II-A:
//! block-wise SZ2/ZFP are fast, global SZ3 trades speed for quality).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hqmr_grid::synth;

fn bench_compressors(c: &mut Criterion) {
    let n = 64usize;
    let field = synth::nyx_like(n, 77);
    let eb = field.range() as f64 * 1e-3;
    let bytes = (field.len() * 4) as u64;

    let mut g = c.benchmark_group("compress");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function(BenchmarkId::new("sz3", n), |b| {
        b.iter(|| hqmr_sz3::compress(&field, &hqmr_sz3::Sz3Config::new(eb)))
    });
    g.bench_function(BenchmarkId::new("sz2", n), |b| {
        b.iter(|| hqmr_sz2::compress(&field, &hqmr_sz2::Sz2Config::new(eb)))
    });
    g.bench_function(BenchmarkId::new("zfp", n), |b| {
        b.iter(|| hqmr_zfp::compress(&field, &hqmr_zfp::ZfpConfig::new(eb)))
    });
    g.finish();

    let sz3_stream = hqmr_sz3::compress(&field, &hqmr_sz3::Sz3Config::new(eb)).bytes;
    let sz2_stream = hqmr_sz2::compress(&field, &hqmr_sz2::Sz2Config::new(eb)).bytes;
    let zfp_stream = hqmr_zfp::compress(&field, &hqmr_zfp::ZfpConfig::new(eb)).bytes;
    let mut g = c.benchmark_group("decompress");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function(BenchmarkId::new("sz3", n), |b| {
        b.iter(|| hqmr_sz3::decompress(&sz3_stream).unwrap())
    });
    g.bench_function(BenchmarkId::new("sz2", n), |b| {
        b.iter(|| hqmr_sz2::decompress(&sz2_stream).unwrap())
    });
    g.bench_function(BenchmarkId::new("zfp", n), |b| {
        b.iter(|| hqmr_zfp::decompress(&zfp_stream).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_compressors);
criterion_main!(benches);
