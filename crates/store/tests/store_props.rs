//! Property tests for the block-indexed store, run over every codec backend:
//! ROI reads equal the crop of a full read, ROI reads decode strictly fewer
//! bytes (proven by chunk-table accounting *and* the reader's byte counter),
//! and damaged inputs — truncations, corrupted chunk tables, corrupted chunk
//! payloads — fail with typed errors, never panics or garbage data.

use hqmr_codec::{Codec, NullCodec};
use hqmr_grid::{synth, Dims3, Field3};
use hqmr_mr::{to_adaptive, MergeStrategy, MultiResData, PadKind, RoiConfig};
use hqmr_store::{write_store, StoreConfig, StoreError, StoreReader, PREFIX_LEN};
use hqmr_sz2::Sz2Codec;
use hqmr_sz3::Sz3Codec;
use hqmr_zfp::ZfpCodec;

/// Every registered backend, decodable from a store without configuration.
fn all_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(Sz3Codec::default()),
        Box::new(Sz2Codec::MULTIRES),
        Box::new(ZfpCodec),
        Box::new(NullCodec),
    ]
}

fn test_mr() -> MultiResData {
    let f = synth::nyx_like(32, 41);
    to_adaptive(&f, &RoiConfig::new(8, 0.5))
}

fn eb() -> f64 {
    1e6 // nyx-scale values ~1e8
}

fn store_cfg(chunk_blocks: usize) -> StoreConfig {
    StoreConfig {
        eb: eb(),
        merge: MergeStrategy::Linear,
        pad: Some(PadKind::Linear),
        chunk_blocks,
        parity_group: 0,
    }
}

#[test]
fn roi_equals_crop_of_full_read_across_backends() {
    let mr = test_mr();
    for codec in all_codecs() {
        for chunk_blocks in [1, 3, 16] {
            let buf = write_store(&mr, &store_cfg(chunk_blocks), codec.as_ref());
            let r = StoreReader::from_bytes(buf).unwrap();
            for level in 0..r.meta().levels.len() {
                let full = r.read_level(level).unwrap().to_field(-7.0);
                let d = full.dims();
                if d.is_empty() {
                    continue;
                }
                // A few representative boxes: interior, corner, full level.
                let boxes = [
                    ([0, 0, 0], [d.nx, d.ny, d.nz]),
                    (
                        [0, 0, 0],
                        [1.max(d.nx / 2), 1.max(d.ny / 2), 1.max(d.nz / 3)],
                    ),
                    ([d.nx / 3, d.ny / 4, d.nz / 2], [d.nx, d.ny, d.nz]),
                ];
                for (lo, hi) in boxes {
                    let roi = r.read_roi(level, lo, hi, -7.0).unwrap();
                    let crop = full
                        .extract_box(lo, Dims3::new(hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]));
                    assert_eq!(
                        roi,
                        crop,
                        "{} L{level} {lo:?}..{hi:?} cb={chunk_blocks}",
                        codec.name()
                    );
                }
            }
        }
    }
}

#[test]
fn roi_decodes_strictly_fewer_bytes_than_full_read() {
    let mr = test_mr();
    assert!(mr.levels[0].blocks.len() > 4, "need a multi-block level");
    for codec in all_codecs() {
        let buf = write_store(&mr, &store_cfg(2), codec.as_ref());
        let r = StoreReader::from_bytes(buf).unwrap();
        let lm = &r.meta().levels[0];
        let d = lm.dims;
        let lo = [0, 0, 0];
        let hi = [d.nx, d.ny, (d.nz / 4).max(1)];

        // Chunk-table accounting: the ROI's chunk set is a strict subset,
        // and its summed compressed length is strictly smaller.
        let indices = r.roi_chunk_indices(0, lo, hi).unwrap();
        assert!(!indices.is_empty());
        assert!(indices.len() < lm.chunks.len(), "{}", codec.name());
        let roi_table_bytes: u64 = indices.iter().map(|&i| lm.chunks[i].len as u64).sum();
        assert!(roi_table_bytes < lm.compressed_bytes(), "{}", codec.name());

        // Runtime accounting: the reader actually fetched only those bytes.
        r.reset_counters();
        r.read_level(0).unwrap();
        let full_bytes = r.bytes_decoded();
        assert_eq!(full_bytes, lm.compressed_bytes());
        r.reset_counters();
        r.read_roi(0, lo, hi, 0.0).unwrap();
        assert_eq!(r.bytes_decoded(), roi_table_bytes, "{}", codec.name());
        assert!(r.bytes_decoded() < full_bytes, "{}", codec.name());
    }
}

#[test]
fn truncated_stores_fail_cleanly_across_backends() {
    let mr = test_mr();
    for codec in all_codecs() {
        let buf = write_store(&mr, &store_cfg(4), codec.as_ref());
        // Sweep cuts through the prefix, the chunk table, and the data
        // region; nothing may panic, and any successfully opened reader must
        // report Truncated when a chunk read runs off the end.
        for cut in [
            0,
            3,
            PREFIX_LEN - 1,
            PREFIX_LEN + 1,
            buf.len() / 3,
            buf.len() - buf.len() / 4,
            buf.len() - 1,
        ] {
            match StoreReader::from_bytes(buf[..cut].to_vec()) {
                Ok(r) => {
                    let err = r.read_all().expect_err("data region is truncated");
                    assert!(
                        matches!(err, StoreError::Truncated),
                        "{} cut={cut}: {err:?}",
                        codec.name()
                    );
                }
                Err(e) => assert!(
                    matches!(
                        e,
                        StoreError::Truncated | StoreError::CorruptTable | StoreError::Malformed(_)
                    ),
                    "{} cut={cut}: {e:?}",
                    codec.name()
                ),
            }
        }
    }
}

#[test]
fn corrupted_chunk_table_is_typed_across_backends() {
    let mr = test_mr();
    for codec in all_codecs() {
        let buf = write_store(&mr, &store_cfg(4), codec.as_ref());
        // Any bit flip inside the meta region must trip the table CRC.
        for pos in [PREFIX_LEN, PREFIX_LEN + 9, PREFIX_LEN + 23] {
            let mut bad = buf.clone();
            bad[pos] ^= 0x40;
            assert!(
                matches!(StoreReader::from_bytes(bad), Err(StoreError::CorruptTable)),
                "{} pos={pos}",
                codec.name()
            );
        }
    }
}

#[test]
fn corrupted_chunk_payload_names_the_chunk() {
    let mr = test_mr();
    for codec in all_codecs() {
        let buf = write_store(&mr, &store_cfg(2), codec.as_ref());
        let r = StoreReader::from_bytes(buf.clone()).unwrap();
        let meta = r.meta().clone();
        let data_start = buf.len() - meta.compressed_bytes() as usize;
        // Flip one byte inside a specific chunk of the fine level.
        let victim = meta.levels[0].chunks.len() / 2;
        let c = &meta.levels[0].chunks[victim];
        let mut bad = buf.clone();
        bad[data_start + c.offset as usize + c.len / 2] ^= 0xFF;
        let r = StoreReader::from_bytes(bad).unwrap();
        let err = r.read_level(0).expect_err("chunk CRC must trip");
        assert!(
            matches!(err, StoreError::CorruptChunk { level: 0, block } if block == victim),
            "{}: {err:?}",
            codec.name()
        );
        // Other levels remain readable: damage is contained to the chunk.
        assert!(r.read_level(1).is_ok(), "{}", codec.name());
        // And an ROI that misses the damaged chunk still succeeds.
        let first = &r.meta().levels[0].chunks[0];
        if victim != 0 {
            let (_, origin) = first.slots[0];
            let u = first.unit;
            let hi = [origin[0] + u, origin[1] + u, origin[2] + u];
            assert!(r.read_roi(0, origin, hi, 0.0).is_ok(), "{}", codec.name());
        }
    }
}

#[test]
fn error_bound_holds_per_level_for_every_backend() {
    let mr = test_mr();
    for codec in all_codecs() {
        let buf = write_store(&mr, &store_cfg(4), codec.as_ref());
        let back = StoreReader::from_bytes(buf).unwrap().read_all().unwrap();
        assert_eq!(back.domain, mr.domain);
        for (la, lb) in mr.levels.iter().zip(&back.levels) {
            assert_eq!(la.blocks.len(), lb.blocks.len());
            for (ba, bb) in la.blocks.iter().zip(&lb.blocks) {
                assert_eq!(ba.origin, bb.origin);
                for (&x, &y) in ba.data.iter().zip(&bb.data) {
                    assert!(
                        (x as f64 - y as f64).abs() <= eb() + 1e-3,
                        "{}: |{x} - {y}| > eb",
                        codec.name()
                    );
                }
            }
        }
    }
}

#[test]
fn progressive_partial_steps_decode_partial_bytes() {
    let mr = test_mr();
    let buf = write_store(&mr, &store_cfg(4), &NullCodec);
    let r = StoreReader::from_bytes(buf).unwrap();
    let total: u64 = r.meta().compressed_bytes();
    let coarse: u64 = r.meta().levels[1].compressed_bytes();
    let mut it = r.progressive(hqmr_mr::Upsample::Nearest);
    let first = it.next().unwrap().unwrap();
    assert_eq!(first.level, 1);
    assert_eq!(
        r.bytes_decoded(),
        coarse,
        "first step reads only the coarse level"
    );
    assert!(coarse < total);
    let second = it.next().unwrap().unwrap();
    assert_eq!(second.level, 0);
    assert_eq!(r.bytes_decoded(), total);
    assert!(it.next().is_none());
    // The refined field is the full reconstruction.
    let full = r
        .read_all()
        .unwrap()
        .reconstruct(hqmr_mr::Upsample::Nearest);
    assert_eq!(second.field, full);
}

#[test]
fn roi_of_an_empty_level_is_fill() {
    let mut mr = test_mr();
    mr.levels[0].blocks.clear();
    let buf = write_store(&mr, &store_cfg(4), &NullCodec);
    let r = StoreReader::from_bytes(buf).unwrap();
    let roi = r.read_roi(0, [0, 0, 0], [4, 4, 4], 2.5).unwrap();
    assert!(roi.data().iter().all(|&v| v == 2.5));
    assert_eq!(r.bytes_decoded(), 0);
}

#[test]
fn unknown_codec_id_is_rejected_at_open() {
    let mr = test_mr();
    let buf = write_store(&mr, &store_cfg(4), &NullCodec);
    let (mut meta, _) = hqmr_store::parse_head(&buf).unwrap();
    let data = buf[buf.len() - meta.compressed_bytes() as usize..].to_vec();
    meta.codec_id = hqmr_codec::tag(b"????");
    let bad = hqmr_store::format::frame(&meta, &data);
    assert!(matches!(
        StoreReader::from_bytes(bad),
        Err(StoreError::UnknownCodec(_))
    ));
}

/// The store and the stacked/boxed arrangements compose like the monolithic
/// engine: every merge strategy round-trips.
#[test]
fn all_merge_strategies_roundtrip_through_store() {
    let mr = test_mr();
    for merge in [
        MergeStrategy::Linear,
        MergeStrategy::Stack,
        MergeStrategy::Tac,
    ] {
        let cfg = StoreConfig {
            eb: eb(),
            merge,
            pad: None,
            chunk_blocks: 4,
            parity_group: 0,
        };
        let buf = write_store(&mr, &cfg, &NullCodec);
        let back = StoreReader::from_bytes(buf).unwrap().read_all().unwrap();
        assert_eq!(back, mr, "{merge:?} with the lossless backend");
    }
}

/// Sanity for the min/max directory: every chunk's recorded band contains
/// every original value of its blocks.
#[test]
fn chunk_min_max_bounds_block_values() {
    let mr = test_mr();
    let buf = write_store(&mr, &store_cfg(3), &NullCodec);
    let r = StoreReader::from_bytes(buf).unwrap();
    for (l, lm) in r.meta().levels.iter().enumerate() {
        let full = r.read_level(l).unwrap();
        let by_origin: std::collections::HashMap<[usize; 3], &Vec<f32>> =
            full.blocks.iter().map(|b| (b.origin, &b.data)).collect();
        for c in &lm.chunks {
            for &(_, origin) in &c.slots {
                for &v in by_origin[&origin] {
                    assert!(
                        c.min <= v && v <= c.max,
                        "{v} outside [{}, {}]",
                        c.min,
                        c.max
                    );
                }
            }
        }
    }
}

/// `Field3::is_empty` helper used above exists; keep the compiler honest
/// about unused-import drift in this integration file.
#[test]
fn store_header_constants_are_stable() {
    assert_eq!(hqmr_store::MAGIC, b"HQST");
    assert_eq!(hqmr_store::VERSION, 1);
    let _ = Field3::zeros(Dims3::new(1, 1, 1));
}
