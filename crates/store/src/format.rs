//! On-disk layout of the `hqmr-store` container and its typed errors.
//!
//! ```text
//! "HQST" | version u8 | meta_len u32le | meta_crc u32le | meta | data
//! ```
//!
//! `meta` is the complete directory — domain, codec id, error bound, and a
//! per-level × per-chunk table (byte offset into `data`, compressed length,
//! CRC-32, value min/max, encoded dims, block layout). A reader parses the
//! fixed-size prefix plus `meta_len` bytes and can then fetch any chunk's
//! byte range directly: nothing outside the requested chunks is ever read or
//! decoded. The meta block carries its own CRC so a damaged chunk table
//! fails with [`StoreError::CorruptTable`] instead of mis-addressed reads.
//!
//! Versioning rules: `MAGIC` never changes; any layout change bumps
//! [`VERSION`] and readers reject versions they don't know
//! ([`StoreError::BadVersion`]) rather than guessing.

use hqmr_codec::{crc32, read_uvarint, write_uvarint, CodecError};
use hqmr_grid::Dims3;
use hqmr_mr::prepare::LayoutSlots;
use hqmr_mr::{decode_layout, encode_layout, MergedArray};

/// Store file magic.
pub const MAGIC: &[u8; 4] = b"HQST";
/// Current format version.
pub const VERSION: u8 = 1;
/// Bytes before `meta`: magic + version + meta_len + meta_crc.
pub const PREFIX_LEN: usize = 4 + 1 + 4 + 4;

/// Store read/parse errors.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure. For file-backed readers the error message
    /// carries the store path (see [`StoreError::Open`] for open-time
    /// failures), so a serving layer can report *which* store went bad.
    Io(std::io::Error),
    /// Opening a store file failed before any store structure was parsed —
    /// the path could not be opened, read, or stat'ed. Carries the path so
    /// multi-store servers can surface a typed, attributable error frame
    /// instead of dying on an anonymous `io::Error`.
    Open {
        /// The path that failed to open.
        path: std::path::PathBuf,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Input ended mid-structure (prefix, table, or chunk range).
    Truncated,
    /// The meta block (header + chunk table) failed its CRC.
    CorruptTable,
    /// Structural inconsistency in the meta block.
    Malformed(&'static str),
    /// The header names a codec nobody registered.
    UnknownCodec(u32),
    /// A chunk's payload failed its CRC — the surrounding file is intact but
    /// this `(level, block)` cannot be decoded.
    CorruptChunk {
        /// Level index of the damaged chunk.
        level: usize,
        /// Chunk index within the level.
        block: usize,
    },
    /// The chunk's CRC held but the codec rejected the payload (a writer bug
    /// or a collision-grade corruption).
    Codec {
        /// Level index of the failing chunk.
        level: usize,
        /// Chunk index within the level.
        block: usize,
        /// The codec's own error.
        source: CodecError,
    },
    /// No level with this index exists in the store.
    NoSuchLevel(usize),
    /// No frame with this index exists in a temporal store.
    NoSuchFrame(usize),
    /// The requested ROI exceeds the level's extents.
    RoiOutOfBounds,
    /// A parity sidecar (`.hqpr`) is structurally damaged: bad magic or
    /// version, a failed header CRC, or a header inconsistent with itself.
    /// Sidecar damage never poisons the store — it only withdraws the
    /// redundancy.
    CorruptSidecar(&'static str),
    /// The sidecar parsed but describes a different store (chunk count or
    /// chunk-CRC fingerprint mismatch) — using it would "repair" chunks into
    /// garbage, so the pairing is rejected as a whole.
    SidecarMismatch,
    /// Parity reconstruction of `(level, block)` failed: a sibling chunk or
    /// the group's parity block is also damaged, so the redundancy is
    /// exhausted for this group.
    Unrepairable {
        /// Level index of the chunk that could not be rebuilt.
        level: usize,
        /// Chunk index within the level.
        block: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::Open { path, source } => {
                write!(f, "open {}: {source}", path.display())
            }
            StoreError::BadMagic => write!(f, "bad store magic"),
            StoreError::BadVersion(v) => write!(f, "unsupported store version {v}"),
            StoreError::Truncated => write!(f, "truncated store"),
            StoreError::CorruptTable => write!(f, "store chunk table failed CRC"),
            StoreError::Malformed(m) => write!(f, "malformed store: {m}"),
            StoreError::UnknownCodec(id) => write!(
                f,
                "unknown codec id {:?}",
                id.to_le_bytes().map(|b| b as char)
            ),
            StoreError::CorruptChunk { level, block } => {
                write!(f, "chunk (level {level}, block {block}) failed CRC")
            }
            StoreError::Codec {
                level,
                block,
                source,
            } => write!(f, "chunk (level {level}, block {block}) codec: {source}"),
            StoreError::NoSuchLevel(l) => write!(f, "no level {l} in store"),
            StoreError::NoSuchFrame(t) => write!(f, "no frame {t} in temporal store"),
            StoreError::RoiOutOfBounds => write!(f, "ROI exceeds level extents"),
            StoreError::CorruptSidecar(m) => write!(f, "corrupt parity sidecar: {m}"),
            StoreError::SidecarMismatch => {
                write!(f, "parity sidecar describes a different store")
            }
            StoreError::Unrepairable { level, block } => write!(
                f,
                "chunk (level {level}, block {block}) unrepairable: parity group redundancy exhausted"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Open { source, .. } => Some(source),
            StoreError::Codec { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated
        } else {
            StoreError::Io(e)
        }
    }
}

/// Directory entry of one chunk: where its compressed bytes live and enough
/// metadata to decide — without decoding — whether it is worth fetching.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkMeta {
    /// Byte offset of the compressed stream, relative to the data region.
    pub offset: u64,
    /// Compressed length in bytes.
    pub len: usize,
    /// CRC-32 of the compressed stream.
    pub crc: u32,
    /// Minimum original value across the chunk's blocks.
    pub min: f32,
    /// Maximum original value across the chunk's blocks.
    pub max: f32,
    /// Dims of the encoded field (after padding, if any).
    pub enc_dims: Dims3,
    /// Whether the encoded field carries the single-layer pad.
    pub padded: bool,
    /// Unit block side length.
    pub unit: usize,
    /// `(array slot, level-local origin)` of every block in the chunk.
    pub slots: LayoutSlots,
}

impl ChunkMeta {
    /// Whether any of the chunk's unit blocks intersects the axis-aligned
    /// box `[lo, hi)` in level cell coordinates.
    pub fn intersects(&self, lo: [usize; 3], hi: [usize; 3]) -> bool {
        self.slots
            .iter()
            .any(|&(_, origin)| (0..3).all(|a| origin[a] < hi[a] && origin[a] + self.unit > lo[a]))
    }

    /// Whether the chunk could contain a crossing of `iso` once decoded.
    /// `eb` is the compression error bound: decoded values live within
    /// `[min − eb, max + eb]`, so a chunk outside that band around `iso` is
    /// provably on one side of the isovalue and can be skipped.
    pub fn may_cross(&self, iso: f32, eb: f64) -> bool {
        !((self.max as f64 + eb) < iso as f64 || (self.min as f64 - eb) > iso as f64)
    }

    /// A value provably on the same side of any skippable isovalue as every
    /// decoded value of this chunk: the recorded min for chunks above, max
    /// for chunks below. Used as the proxy fill when the chunk is skipped.
    pub fn proxy_value(&self, iso: f32) -> f32 {
        if self.min > iso {
            self.min
        } else {
            self.max
        }
    }
}

/// Directory entry of one resolution level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelMeta {
    /// Refinement distance from the finest level (0 = finest).
    pub level: usize,
    /// Unit block side length at this level.
    pub unit: usize,
    /// Level-resolution domain extents.
    pub dims: Dims3,
    /// Chunk directory, in write order.
    pub chunks: Vec<ChunkMeta>,
}

impl LevelMeta {
    /// Total compressed bytes across the level's chunks.
    pub fn compressed_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.len as u64).sum()
    }
}

/// The store's complete directory.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMeta {
    /// Fine-level domain extents.
    pub domain: Dims3,
    /// Codec id every chunk was compressed with.
    pub codec_id: u32,
    /// Absolute error bound the writer used.
    pub eb: f64,
    /// Per-level directories, index = refinement distance.
    pub levels: Vec<LevelMeta>,
}

impl StoreMeta {
    /// Total compressed bytes across all levels.
    pub fn compressed_bytes(&self) -> u64 {
        self.levels.iter().map(LevelMeta::compressed_bytes).sum()
    }

    /// Total chunks across all levels.
    pub fn chunk_count(&self) -> usize {
        self.levels.iter().map(|l| l.chunks.len()).sum()
    }

    /// Serializes the directory (the `meta` region, without prefix).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_uvarint(&mut out, self.domain.nx as u64);
        write_uvarint(&mut out, self.domain.ny as u64);
        write_uvarint(&mut out, self.domain.nz as u64);
        out.extend_from_slice(&self.codec_id.to_le_bytes());
        out.extend_from_slice(&self.eb.to_le_bytes());
        write_uvarint(&mut out, self.levels.len() as u64);
        for lvl in &self.levels {
            write_uvarint(&mut out, lvl.level as u64);
            write_uvarint(&mut out, lvl.unit as u64);
            write_uvarint(&mut out, lvl.dims.nx as u64);
            write_uvarint(&mut out, lvl.dims.ny as u64);
            write_uvarint(&mut out, lvl.dims.nz as u64);
            write_uvarint(&mut out, lvl.chunks.len() as u64);
            for c in &lvl.chunks {
                write_uvarint(&mut out, c.offset);
                write_uvarint(&mut out, c.len as u64);
                out.extend_from_slice(&c.crc.to_le_bytes());
                out.extend_from_slice(&c.min.to_le_bytes());
                out.extend_from_slice(&c.max.to_le_bytes());
                write_uvarint(&mut out, c.enc_dims.nx as u64);
                write_uvarint(&mut out, c.enc_dims.ny as u64);
                write_uvarint(&mut out, c.enc_dims.nz as u64);
                let layout = encode_layout(
                    &MergedArray {
                        field: hqmr_grid::Field3::zeros(Dims3::new(0, 0, 0)),
                        unit: c.unit,
                        slots: c.slots.clone(),
                    },
                    c.padded,
                );
                write_uvarint(&mut out, layout.len() as u64);
                out.extend_from_slice(&layout);
            }
        }
        out
    }

    /// Parses [`Self::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut pos = 0usize;
        let rd = |buf: &[u8], pos: &mut usize| -> Result<usize, StoreError> {
            read_uvarint(buf, pos)
                .map(|v| v as usize)
                .ok_or(StoreError::Malformed("varint"))
        };
        fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], StoreError> {
            // `n` comes from untrusted varints; checked math keeps a crafted
            // length a typed error instead of a debug-build overflow panic.
            let end = pos
                .checked_add(n)
                .ok_or(StoreError::Malformed("length overflow"))?;
            let s = buf
                .get(*pos..end)
                .ok_or(StoreError::Malformed("fixed field"))?;
            *pos = end;
            Ok(s)
        }
        let domain = Dims3::new(
            rd(bytes, &mut pos)?,
            rd(bytes, &mut pos)?,
            rd(bytes, &mut pos)?,
        );
        let codec_id = u32::from_le_bytes(take(bytes, &mut pos, 4)?.try_into().unwrap());
        let eb = f64::from_le_bytes(take(bytes, &mut pos, 8)?.try_into().unwrap());
        let n_levels = rd(bytes, &mut pos)?;
        let mut levels = Vec::with_capacity(n_levels.min(64));
        for _ in 0..n_levels {
            let level = rd(bytes, &mut pos)?;
            let unit = rd(bytes, &mut pos)?;
            let dims = Dims3::new(
                rd(bytes, &mut pos)?,
                rd(bytes, &mut pos)?,
                rd(bytes, &mut pos)?,
            );
            let n_chunks = rd(bytes, &mut pos)?;
            let mut chunks = Vec::with_capacity(n_chunks.min(1 << 16));
            for _ in 0..n_chunks {
                let offset =
                    read_uvarint(bytes, &mut pos).ok_or(StoreError::Malformed("varint"))?;
                let len = rd(bytes, &mut pos)?;
                let crc = u32::from_le_bytes(take(bytes, &mut pos, 4)?.try_into().unwrap());
                let min = f32::from_le_bytes(take(bytes, &mut pos, 4)?.try_into().unwrap());
                let max = f32::from_le_bytes(take(bytes, &mut pos, 4)?.try_into().unwrap());
                let enc_dims = Dims3::new(
                    rd(bytes, &mut pos)?,
                    rd(bytes, &mut pos)?,
                    rd(bytes, &mut pos)?,
                );
                let layout_len = rd(bytes, &mut pos)?;
                let layout = take(bytes, &mut pos, layout_len)?;
                let (padded, l_unit, slots) =
                    decode_layout(layout).ok_or(StoreError::Malformed("chunk layout"))?;
                if l_unit != unit {
                    return Err(StoreError::Malformed("chunk unit mismatch"));
                }
                chunks.push(ChunkMeta {
                    offset,
                    len,
                    crc,
                    min,
                    max,
                    enc_dims,
                    padded,
                    unit,
                    slots,
                });
            }
            levels.push(LevelMeta {
                level,
                unit,
                dims,
                chunks,
            });
        }
        if pos != bytes.len() {
            return Err(StoreError::Malformed("trailing meta bytes"));
        }
        Ok(StoreMeta {
            domain,
            codec_id,
            eb,
            levels,
        })
    }
}

/// Frames a serialized meta block and the data region into a complete store
/// byte buffer.
pub fn frame(meta: &StoreMeta, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    frame_into(meta, data, &mut out);
    out
}

/// [`frame`] into a caller-owned buffer (cleared first), so repeated store
/// writes reuse one allocation.
pub fn frame_into(meta: &StoreMeta, data: &[u8], out: &mut Vec<u8>) {
    let meta_bytes = meta.to_bytes();
    out.clear();
    out.reserve(PREFIX_LEN + meta_bytes.len() + data.len());
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(meta_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&meta_bytes).to_le_bytes());
    out.extend_from_slice(&meta_bytes);
    out.extend_from_slice(data);
}

/// Parses and CRC-validates the prefix + meta of a store buffer (or file
/// head). Returns the meta and the data-region start offset.
pub fn parse_head(head: &[u8]) -> Result<(StoreMeta, u64), StoreError> {
    if head.len() < PREFIX_LEN {
        return Err(StoreError::Truncated);
    }
    if &head[..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    if head[4] != VERSION {
        return Err(StoreError::BadVersion(head[4]));
    }
    let meta_len = u32::from_le_bytes(head[5..9].try_into().unwrap()) as usize;
    let meta_crc = u32::from_le_bytes(head[9..13].try_into().unwrap());
    let meta_bytes = head
        .get(PREFIX_LEN..PREFIX_LEN + meta_len)
        .ok_or(StoreError::Truncated)?;
    if crc32(meta_bytes) != meta_crc {
        return Err(StoreError::CorruptTable);
    }
    let meta = StoreMeta::from_bytes(meta_bytes)?;
    Ok((meta, (PREFIX_LEN + meta_len) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> StoreMeta {
        StoreMeta {
            domain: Dims3::new(8, 8, 16),
            codec_id: hqmr_codec::tag(b"SZ3S"),
            eb: 0.125,
            levels: vec![LevelMeta {
                level: 0,
                unit: 4,
                dims: Dims3::new(8, 8, 16),
                chunks: vec![ChunkMeta {
                    offset: 0,
                    len: 100,
                    crc: 0xDEAD_BEEF,
                    min: -1.5,
                    max: 2.5,
                    enc_dims: Dims3::new(5, 5, 8),
                    padded: true,
                    unit: 4,
                    slots: vec![([0, 0, 0], [0, 0, 0]), ([0, 0, 4], [4, 4, 8])],
                }],
            }],
        }
    }

    #[test]
    fn meta_roundtrip() {
        let m = sample_meta();
        let back = StoreMeta::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.compressed_bytes(), 100);
        assert_eq!(back.chunk_count(), 1);
    }

    #[test]
    fn frame_and_parse_head() {
        let m = sample_meta();
        let buf = frame(&m, &[9u8; 100]);
        let (back, data_start) = parse_head(&buf).unwrap();
        assert_eq!(back, m);
        assert_eq!(&buf[data_start as usize..], &[9u8; 100][..]);
    }

    #[test]
    fn damaged_head_is_typed() {
        let m = sample_meta();
        let buf = frame(&m, &[]);
        assert!(matches!(parse_head(&buf[..3]), Err(StoreError::Truncated)));
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(parse_head(&bad), Err(StoreError::BadMagic)));
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(parse_head(&bad), Err(StoreError::BadVersion(99))));
        let mut bad = buf.clone();
        let n = bad.len();
        bad[n - 1] ^= 0xFF; // last meta byte (no data region)
        assert!(matches!(parse_head(&bad), Err(StoreError::CorruptTable)));
    }

    #[test]
    fn chunk_predicates() {
        let c = &sample_meta().levels[0].chunks[0];
        assert!(c.intersects([0, 0, 0], [1, 1, 1]));
        assert!(c.intersects([5, 5, 9], [8, 8, 16])); // second block
        assert!(!c.intersects([0, 0, 12], [4, 4, 16]));
        // min = -1.5, max = 2.5, eb margin widens the band.
        assert!(c.may_cross(0.0, 0.0));
        assert!(!c.may_cross(3.0, 0.25));
        assert!(c.may_cross(3.0, 1.0));
        assert!(!c.may_cross(-2.0, 0.25));
        assert_eq!(c.proxy_value(3.0), 2.5);
        assert_eq!(c.proxy_value(-2.0), -1.5);
    }
}
