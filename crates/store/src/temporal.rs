//! `HQTM` — the multi-timestep temporal store: a directory of per-frame
//! `HQST` containers plus a manifest with per-chunk keyframe/delta flags.
//!
//! ```text
//! <dir>/manifest.hqtm          "HQTM" | version u8 | body_len u32le | body_crc u32le | body
//! <dir>/frame_00000.hqst       plain HQST store (frame 0)
//! <dir>/frame_00001.hqst       plain HQST store (frame 1): delta chunks hold
//! ...                          residuals against frame 0's *decoded* values
//! ```
//!
//! The manifest body lists, per frame, the simulation step, the frame file
//! name, and one bit per `(level, chunk)`: `1` means the chunk's stream is a
//! temporal **delta** (residual against the same chunk of the previous
//! frame), `0` means a **keyframe** chunk (independent raw values). Keeping
//! the flags in the manifest — not in the `HQST` chunk tables — means a
//! frame file with every flag `0` is *bit-identical* to what
//! `insitu::write_snapshot` writes for the same data, so delta-off temporal
//! stores are pinned to today's independent snapshots by construction.
//!
//! Prediction is **closed-loop**: the writer predicts from the *decoded*
//! previous frame, so the reader's reconstruction `x̂_t = x̂_{t−1} + r̂_t`
//! carries per-frame error ≤ eb with no drift along a delta chain. Each
//! chunk picks keyframe-vs-delta independently (whichever compresses
//! smaller), whole frames are forced to keyframes on a configurable
//! interval and whenever the block structure changes, and frame 0 is always
//! a keyframe — so every chunk chain is seekable from its nearest keyframe.
//!
//! Delta chunks still record the chunk's **actual** value min/max in the
//! `HQST` chunk table (not the residual's), so isovalue chunk-skipping and
//! proxy fills through a [`FrameView`] keep their semantics.

use crate::format::{self, ChunkMeta, LevelMeta, StoreError, StoreMeta};
use crate::read::{self, ChunkSource, DecodedChunk, Progressive};
use crate::{encode_prepared_store_into, prepare_store, StoreConfig, StoreReader};
use hqmr_codec::{crc32, read_uvarint, write_uvarint, Codec};
use hqmr_grid::{Dims3, Field3};
use hqmr_mr::prepare::prepare_blocks;
use hqmr_mr::{temporal as predict, LevelData, MultiResData, UnitBlock, Upsample};
use rayon::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Temporal manifest magic.
pub const TEMPORAL_MAGIC: &[u8; 4] = b"HQTM";
/// Current temporal manifest version.
pub const TEMPORAL_VERSION: u8 = 1;
/// Manifest file name inside a temporal store directory.
pub const MANIFEST_NAME: &str = "manifest.hqtm";
/// Bytes before the manifest body: magic + version + body_len + body_crc.
const MANIFEST_PREFIX_LEN: usize = 4 + 1 + 4 + 4;

/// Inter-frame prediction policy of a temporal store writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prediction {
    /// Every frame is an independent snapshot — frame files bit-identical
    /// to `write_snapshot` output.
    Off,
    /// Chunks may be temporal deltas against the previous frame's decoded
    /// values; whichever of raw/delta compresses smaller wins per chunk.
    Delta {
        /// Every `keyframe_interval`-th frame is forced to a whole-frame
        /// keyframe (`0` ⇒ only frame 0 and structure changes force one).
        /// Bounds the chain length a cold random access must walk.
        keyframe_interval: usize,
    },
}

impl Prediction {
    /// The default delta policy: a whole-frame keyframe every 8 frames.
    pub fn delta() -> Self {
        Prediction::Delta {
            keyframe_interval: 8,
        }
    }
}

/// Per-frame `(level, chunk)` delta flags: `flags[level][chunk]` is `true`
/// for a temporal-delta chunk. An empty outer vec is the whole-frame
/// keyframe shorthand.
pub type FrameFlags = Vec<Vec<bool>>;

/// One frame's manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameMeta {
    /// Simulation step this frame captured.
    pub step: u64,
    /// Frame file name within the store directory.
    pub file: String,
    /// Per-`(level, chunk)` delta flags (see [`FrameFlags`]).
    pub delta: FrameFlags,
}

impl FrameMeta {
    /// Whether every chunk of this frame is a keyframe chunk.
    pub fn is_keyframe(&self) -> bool {
        self.delta_chunks() == 0
    }

    /// Whether chunk `(level, chunk)` is a temporal delta. Out-of-range
    /// indices read as keyframe (`false`).
    pub fn is_delta(&self, level: usize, chunk: usize) -> bool {
        self.delta
            .get(level)
            .and_then(|l| l.get(chunk))
            .copied()
            .unwrap_or(false)
    }

    /// Number of delta chunks in this frame.
    pub fn delta_chunks(&self) -> usize {
        self.delta
            .iter()
            .map(|l| l.iter().filter(|&&d| d).count())
            .sum()
    }
}

/// The temporal store's directory: frame entries in time order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TemporalManifest {
    /// Frames, index = time.
    pub frames: Vec<FrameMeta>,
}

impl TemporalManifest {
    /// Serializes the framed manifest (prefix + CRC-guarded body).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();
        write_uvarint(&mut body, self.frames.len() as u64);
        for f in &self.frames {
            write_uvarint(&mut body, f.step);
            write_uvarint(&mut body, f.file.len() as u64);
            body.extend_from_slice(f.file.as_bytes());
            write_uvarint(&mut body, f.delta.len() as u64);
            for level in &f.delta {
                write_uvarint(&mut body, level.len() as u64);
                // LSB-first bitset.
                let mut bits = vec![0u8; level.len().div_ceil(8)];
                for (i, &d) in level.iter().enumerate() {
                    if d {
                        bits[i / 8] |= 1 << (i % 8);
                    }
                }
                body.extend_from_slice(&bits);
            }
        }
        let mut out = Vec::with_capacity(MANIFEST_PREFIX_LEN + body.len());
        out.extend_from_slice(TEMPORAL_MAGIC);
        out.push(TEMPORAL_VERSION);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parses and CRC-validates [`Self::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < MANIFEST_PREFIX_LEN {
            return Err(StoreError::Truncated);
        }
        if &bytes[..4] != TEMPORAL_MAGIC {
            return Err(StoreError::BadMagic);
        }
        if bytes[4] != TEMPORAL_VERSION {
            return Err(StoreError::BadVersion(bytes[4]));
        }
        let body_len = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
        let body_crc = u32::from_le_bytes(bytes[9..13].try_into().unwrap());
        let body = bytes
            .get(MANIFEST_PREFIX_LEN..MANIFEST_PREFIX_LEN + body_len)
            .ok_or(StoreError::Truncated)?;
        if crc32(body) != body_crc {
            return Err(StoreError::CorruptTable);
        }
        let mut pos = 0usize;
        let rd = |pos: &mut usize| -> Result<usize, StoreError> {
            read_uvarint(body, pos)
                .map(|v| v as usize)
                .ok_or(StoreError::Malformed("manifest varint"))
        };
        let n_frames = rd(&mut pos)?;
        let mut frames = Vec::with_capacity(n_frames.min(1 << 16));
        for _ in 0..n_frames {
            let step =
                read_uvarint(body, &mut pos).ok_or(StoreError::Malformed("manifest varint"))?;
            let name_len = rd(&mut pos)?;
            let end = pos
                .checked_add(name_len)
                .ok_or(StoreError::Malformed("manifest name length"))?;
            let name = body
                .get(pos..end)
                .ok_or(StoreError::Malformed("manifest name"))?;
            pos = end;
            let file = std::str::from_utf8(name)
                .map_err(|_| StoreError::Malformed("manifest name not utf-8"))?
                .to_string();
            let n_levels = rd(&mut pos)?;
            let mut delta = Vec::with_capacity(n_levels.min(64));
            for _ in 0..n_levels {
                let n_chunks = rd(&mut pos)?;
                let n_bytes = n_chunks.div_ceil(8);
                let end = pos
                    .checked_add(n_bytes)
                    .ok_or(StoreError::Malformed("manifest bitset length"))?;
                let bits = body
                    .get(pos..end)
                    .ok_or(StoreError::Malformed("manifest bitset"))?;
                pos = end;
                delta.push(
                    (0..n_chunks)
                        .map(|i| bits[i / 8] & (1 << (i % 8)) != 0)
                        .collect(),
                );
            }
            frames.push(FrameMeta { step, file, delta });
        }
        if pos != body.len() {
            return Err(StoreError::Malformed("trailing manifest bytes"));
        }
        Ok(TemporalManifest { frames })
    }
}

/// Adds `residual` onto `prev`, producing the actual-value chunk. Errors if
/// the two chunks disagree structurally (a malformed chain).
pub fn apply_residual(
    prev: &DecodedChunk,
    residual: &DecodedChunk,
) -> Result<DecodedChunk, StoreError> {
    if prev.unit != residual.unit
        || prev.origins != residual.origins
        || prev.data.len() != residual.data.len()
    {
        return Err(StoreError::Malformed("temporal chain structure mismatch"));
    }
    let mut data: Vec<f32> = residual.data.to_vec();
    predict::restore_in_place(&mut data, &prev.data);
    Ok(DecodedChunk {
        unit: residual.unit,
        origins: Arc::clone(&residual.origins),
        data: data.into(),
    })
}

/// The previous frame's decoded state the closed-loop encoder predicts from.
struct PrevLevel {
    level: usize,
    unit: usize,
    dims: Dims3,
    /// Block origins in write order (the structure signature).
    origins: Vec<[usize; 3]>,
    /// Decoded values per block origin.
    decoded: HashMap<[usize; 3], Vec<f32>>,
}

struct PrevFrame {
    domain: Dims3,
    levels: Vec<PrevLevel>,
}

impl PrevFrame {
    fn structure_matches(&self, mr: &MultiResData) -> bool {
        self.domain == mr.domain
            && self.levels.len() == mr.levels.len()
            && self.levels.iter().zip(&mr.levels).all(|(p, l)| {
                p.level == l.level
                    && p.unit == l.unit
                    && p.dims == l.dims
                    && p.origins.len() == l.blocks.len()
                    && p.origins.iter().zip(&l.blocks).all(|(o, b)| *o == b.origin)
            })
    }
}

/// Stateful frame encoder: feeds a sequence of [`MultiResData`] frames
/// through closed-loop temporal prediction and emits one `HQST` buffer per
/// frame plus its keyframe/delta flags. Purely in-memory — the crash-safe
/// file layer lives in `hqmr-core::insitu::TemporalWriter`.
pub struct TemporalEncoder {
    cfg: StoreConfig,
    prediction: Prediction,
    /// Frames encoded so far (the next frame's time index).
    frames: usize,
    prev: Option<PrevFrame>,
}

impl TemporalEncoder {
    /// Creates an encoder writing chunks under `cfg` with `prediction`.
    pub fn new(cfg: StoreConfig, prediction: Prediction) -> Self {
        TemporalEncoder {
            cfg,
            prediction,
            frames: 0,
            prev: None,
        }
    }

    /// Frames encoded so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Encodes the next frame into `out` (cleared first) and returns its
    /// delta flags. With [`Prediction::Off`] this funnels through the exact
    /// same `prepare_store` + `encode_prepared_store_into` path as
    /// `write_snapshot`, so the buffer is bit-identical to an independent
    /// snapshot of the same data.
    pub fn encode_frame_into(
        &mut self,
        mr: &MultiResData,
        codec: &dyn Codec,
        out: &mut Vec<u8>,
    ) -> Result<FrameFlags, StoreError> {
        let keyframe_due = match self.prediction {
            Prediction::Off => true,
            Prediction::Delta { keyframe_interval } => {
                self.frames == 0
                    || (keyframe_interval > 0 && self.frames.is_multiple_of(keyframe_interval))
            }
        };
        let structure_ok = self.prev.as_ref().is_some_and(|p| p.structure_matches(mr));

        let flags = if keyframe_due || !structure_ok {
            let prepared = prepare_store(mr, &self.cfg);
            encode_prepared_store_into(mr, &prepared, &self.cfg, codec, out);
            prepared
                .iter()
                .map(|preps| {
                    let n: usize = preps.iter().map(|p| p.array_count()).sum();
                    vec![false; n]
                })
                .collect()
        } else {
            self.encode_delta_frame(mr, codec, out)
        };

        // Closed loop: the *decoded* frame becomes the next prediction base.
        if matches!(self.prediction, Prediction::Delta { .. }) {
            self.rebuild_state(mr, out, &flags)?;
        }
        self.frames += 1;
        Ok(flags)
    }

    /// Seeds the encoder from the *decoded* values of a run already on
    /// disk, so appends resume as if the run never stopped: `decoded` is
    /// the last existing frame's actual-value reconstruction (e.g.
    /// `TemporalReader::read_frame`), which is exactly the closed-loop
    /// state an unbroken encoder would hold, and `frames` is the number of
    /// frames already written (the next frame's time index, which also
    /// keeps the keyframe-interval cadence aligned with the original run).
    pub fn resume_from_decoded(&mut self, decoded: &MultiResData, frames: usize) {
        self.frames = frames;
        self.prev = if matches!(self.prediction, Prediction::Delta { .. }) && frames > 0 {
            Some(PrevFrame {
                domain: decoded.domain,
                levels: decoded
                    .levels
                    .iter()
                    .map(|lvl| PrevLevel {
                        level: lvl.level,
                        unit: lvl.unit,
                        dims: lvl.dims,
                        origins: lvl.blocks.iter().map(|b| b.origin).collect(),
                        decoded: lvl
                            .blocks
                            .iter()
                            .map(|b| (b.origin, b.data.clone()))
                            .collect(),
                    })
                    .collect(),
            })
        } else {
            None
        };
    }

    /// Per-chunk keyframe/delta choice: prepare both candidates, compress
    /// both, keep the smaller stream. Chunk tables record the *actual*
    /// value min/max either way.
    fn encode_delta_frame(
        &self,
        mr: &MultiResData,
        codec: &dyn Codec,
        out: &mut Vec<u8>,
    ) -> FrameFlags {
        let prev = self.prev.as_ref().expect("caller checked structure");
        let group_len = self.cfg.chunk_blocks.max(1);
        // Raw + residual prepared pairs per chunk group; residual blocks are
        // built against the previous frame's decoded values (closed loop).
        let preps: Vec<Vec<(hqmr_mr::PreparedLevel, hqmr_mr::PreparedLevel)>> = mr
            .levels
            .iter()
            .zip(&prev.levels)
            .map(|(level, prev_lvl)| {
                level
                    .blocks
                    .chunks(group_len)
                    .map(|group| {
                        let raw = prepare_blocks(group, level.unit, self.cfg.merge, self.cfg.pad);
                        let rblocks: Vec<UnitBlock> = group
                            .iter()
                            .map(|b| {
                                let base = prev_lvl
                                    .decoded
                                    .get(&b.origin)
                                    .expect("structure matched: every block has a predecessor");
                                UnitBlock {
                                    origin: b.origin,
                                    data: predict::residual(&b.data, base),
                                }
                            })
                            .collect();
                        let delta =
                            prepare_blocks(&rblocks, level.unit, self.cfg.merge, self.cfg.pad);
                        (raw, delta)
                    })
                    .collect()
            })
            .collect();

        // One flat work list over all chunks; each entry compresses both
        // candidates and keeps the smaller.
        let inputs: Vec<(&Field3, &Field3)> = preps
            .iter()
            .flat_map(|groups| {
                groups
                    .iter()
                    .flat_map(|(raw, delta)| raw.fields().zip(delta.fields()))
            })
            .collect();
        let streams: Vec<(Vec<u8>, bool)> = inputs
            .par_iter()
            .map(|(rf, df)| {
                let mut rs = Vec::new();
                codec.compress_into(rf, self.cfg.eb, &mut rs);
                let mut ds = Vec::new();
                codec.compress_into(df, self.cfg.eb, &mut ds);
                if ds.len() < rs.len() {
                    (ds, true)
                } else {
                    (rs, false)
                }
            })
            .collect();

        let mut it = streams.into_iter();
        let mut data = Vec::new();
        let mut levels_meta = Vec::with_capacity(mr.levels.len());
        let mut flags: FrameFlags = Vec::with_capacity(mr.levels.len());
        for (level, groups) in mr.levels.iter().zip(&preps) {
            let mut chunks = Vec::new();
            let mut lflags = Vec::new();
            for (raw, _) in groups {
                for (m, f) in raw.blocks() {
                    let (stream, is_delta) = it.next().expect("work list aligned");
                    // Actual-value min/max even for delta chunks, so iso
                    // skipping and proxy fills stay meaningful.
                    let (min, max) = m.field.min_max();
                    chunks.push(ChunkMeta {
                        offset: data.len() as u64,
                        len: stream.len(),
                        crc: crc32(&stream),
                        min,
                        max,
                        enc_dims: f.dims(),
                        padded: raw.padded(),
                        unit: m.unit,
                        slots: m.slots.clone(),
                    });
                    data.extend_from_slice(&stream);
                    lflags.push(is_delta);
                }
            }
            levels_meta.push(LevelMeta {
                level: level.level,
                unit: level.unit,
                dims: level.dims,
                chunks,
            });
            flags.push(lflags);
        }
        let meta = StoreMeta {
            domain: mr.domain,
            codec_id: codec.id(),
            eb: self.cfg.eb,
            levels: levels_meta,
        };
        format::frame_into(&meta, &data, out);
        flags
    }

    /// Decodes the just-encoded frame and folds it over the previous state,
    /// producing the decoded-value base the *next* frame predicts from.
    fn rebuild_state(
        &mut self,
        mr: &MultiResData,
        frame_bytes: &[u8],
        flags: &FrameFlags,
    ) -> Result<(), StoreError> {
        let reader = StoreReader::from_bytes(frame_bytes.to_vec())?;
        let prev = self.prev.take();
        let mut levels = Vec::with_capacity(mr.levels.len());
        for (li, lvl) in mr.levels.iter().enumerate() {
            let indices: Vec<usize> = (0..reader.meta().levels[li].chunks.len()).collect();
            let decoded = reader.chunks(li, &indices)?;
            let mut map = HashMap::with_capacity(lvl.blocks.len());
            for (ci, dc) in decoded.into_iter().enumerate() {
                let is_delta = flags
                    .get(li)
                    .and_then(|l| l.get(ci))
                    .copied()
                    .unwrap_or(false);
                for (k, &origin) in dc.origins.iter().enumerate() {
                    let mut vals = dc.block_data(k).to_vec();
                    if is_delta {
                        let base = prev
                            .as_ref()
                            .and_then(|p| p.levels.get(li))
                            .and_then(|p| p.decoded.get(&origin))
                            .ok_or(StoreError::Malformed("delta chunk without prior state"))?;
                        predict::restore_in_place(&mut vals, base);
                    }
                    map.insert(origin, vals);
                }
            }
            levels.push(PrevLevel {
                level: lvl.level,
                unit: lvl.unit,
                dims: lvl.dims,
                origins: lvl.blocks.iter().map(|b| b.origin).collect(),
                decoded: map,
            });
        }
        self.prev = Some(PrevFrame {
            domain: mr.domain,
            levels,
        });
        Ok(())
    }
}

/// `(time, level, chunk)` — the unit of temporal chunk identity, shared
/// with the serving layer's time-keyed cache.
pub type TimeKey = (usize, usize, usize);

/// Memo of actual-value chunks shared along chain walks (and across the
/// frames of a window read), so decoding frames `t0..=t1` touches each
/// underlying chunk once instead of once per frame.
type ChainMemo = Mutex<HashMap<TimeKey, DecodedChunk>>;

/// Random-access reader over a temporal store directory.
///
/// Every per-frame read funnels through a [`FrameView`] — a [`ChunkSource`]
/// whose `chunk` walks the delta chain back to the chunk's nearest keyframe
/// — so level, ROI, isovalue and progressive reads all come from the same
/// provider-generic assembly the single-frame store uses.
pub struct TemporalReader {
    dir: PathBuf,
    manifest: TemporalManifest,
    frames: Vec<StoreReader>,
}

impl TemporalReader {
    /// Opens a temporal store directory: parses the manifest, opens every
    /// frame store, and validates that the manifest's flag shapes match the
    /// frame directories and that frame 0 is a keyframe.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let mpath = dir.join(MANIFEST_NAME);
        let bytes = std::fs::read(&mpath).map_err(|source| StoreError::Open {
            path: mpath.clone(),
            source,
        })?;
        let manifest = TemporalManifest::from_bytes(&bytes)?;
        let frames: Vec<StoreReader> = manifest
            .frames
            .iter()
            .map(|f| StoreReader::open(dir.join(&f.file)))
            .collect::<Result<_, _>>()?;
        for (t, (fm, r)) in manifest.frames.iter().zip(&frames).enumerate() {
            if t == 0 && !fm.is_keyframe() {
                return Err(StoreError::Malformed("frame 0 must be a keyframe"));
            }
            if fm.delta.is_empty() {
                continue;
            }
            let meta = r.meta();
            if fm.delta.len() != meta.levels.len()
                || fm
                    .delta
                    .iter()
                    .zip(&meta.levels)
                    .any(|(lf, lm)| lf.len() != lm.chunks.len())
            {
                return Err(StoreError::Malformed(
                    "manifest delta flags do not match frame chunk table",
                ));
            }
        }
        Ok(TemporalReader {
            dir,
            manifest,
            frames,
        })
    }

    /// Reads and parses just the manifest of a temporal store directory,
    /// without opening (or requiring the integrity of) any frame file —
    /// the entry point for scrub and salvage, which must make progress on
    /// directories whose frames `open` would reject.
    pub fn read_manifest(dir: impl AsRef<Path>) -> Result<TemporalManifest, StoreError> {
        let mpath = dir.as_ref().join(MANIFEST_NAME);
        let bytes = std::fs::read(&mpath).map_err(|source| StoreError::Open {
            path: mpath.clone(),
            source,
        })?;
        TemporalManifest::from_bytes(&bytes)
    }

    /// The store directory this reader was opened on.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &TemporalManifest {
        &self.manifest
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Whether the store holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The underlying per-frame store reader (chunk streams are residuals
    /// for delta chunks — use [`TemporalReader::frame`] for actual values).
    pub fn frame_reader(&self, t: usize) -> Result<&StoreReader, StoreError> {
        self.frames.get(t).ok_or(StoreError::NoSuchFrame(t))
    }

    /// An actual-value view of frame `t`, with a fresh chain memo.
    pub fn frame(&self, t: usize) -> Result<FrameView<'_>, StoreError> {
        if t >= self.frames.len() {
            return Err(StoreError::NoSuchFrame(t));
        }
        Ok(FrameView {
            reader: self,
            t,
            memo: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Decodes the actual-value chunk `(t, level, block)` by walking its
    /// delta chain back to the nearest keyframe (fresh memo).
    pub fn chunk_at(
        &self,
        t: usize,
        level: usize,
        block: usize,
    ) -> Result<DecodedChunk, StoreError> {
        let memo = Mutex::new(HashMap::new());
        self.chunk_chain(&memo, t, level, block)
    }

    /// Chain walk with memoization: finds the nearest memoized state or
    /// keyframe at `s ≤ t`, then applies residuals forward `s+1..=t`,
    /// memoizing every intermediate so overlapping walks (a window read, a
    /// progressive refinement) decode each underlying chunk once.
    fn chunk_chain(
        &self,
        memo: &ChainMemo,
        t: usize,
        level: usize,
        block: usize,
    ) -> Result<DecodedChunk, StoreError> {
        if t >= self.frames.len() {
            return Err(StoreError::NoSuchFrame(t));
        }
        // Walk back to a memo hit or a keyframe chunk.
        let mut s = t;
        let mut acc: Option<DecodedChunk> = None;
        loop {
            if let Some(c) = memo
                .lock()
                .expect("chain memo lock")
                .get(&(s, level, block))
            {
                acc = Some(c.clone());
                break;
            }
            if !self.manifest.frames[s].is_delta(level, block) {
                break; // keyframe chunk at s
            }
            if s == 0 {
                return Err(StoreError::Malformed("delta chain has no keyframe root"));
            }
            s -= 1;
        }
        let mut acc = match acc {
            Some(c) => c,
            None => {
                let c = self.frames[s].decode_chunk(level, block)?;
                memo.lock()
                    .expect("chain memo lock")
                    .insert((s, level, block), c.clone());
                c
            }
        };
        for u in s + 1..=t {
            let residual = self.frames[u].decode_chunk(level, block)?;
            acc = apply_residual(&acc, &residual)?;
            memo.lock()
                .expect("chain memo lock")
                .insert((u, level, block), acc.clone());
        }
        Ok(acc)
    }

    /// Reads one whole resolution level of frame `t` (actual values).
    pub fn read_level(&self, t: usize, level: usize) -> Result<LevelData, StoreError> {
        read::read_level(&self.frame(t)?, level)
    }

    /// Reads every level of frame `t` — the temporal equivalent of
    /// `StoreReader::read_all`.
    pub fn read_frame(&self, t: usize) -> Result<MultiResData, StoreError> {
        read::read_all(&self.frame(t)?)
    }

    /// Reads the axis-aligned box `[lo, hi)` of one level at time `t`.
    pub fn read_roi(
        &self,
        t: usize,
        level: usize,
        lo: [usize; 3],
        hi: [usize; 3],
        fill: f32,
    ) -> Result<Field3, StoreError> {
        read::read_roi(&self.frame(t)?, level, lo, hi, fill)
    }

    /// Time-windowed ROI: the same box read at every frame of `t0..=t1`,
    /// one field per frame. The frames share one chain memo, so each
    /// underlying chunk along the window's chains decodes exactly once —
    /// equal results to calling [`TemporalReader::read_roi`] per frame, at
    /// a fraction of the decode work.
    pub fn read_roi_window(
        &self,
        t0: usize,
        t1: usize,
        level: usize,
        lo: [usize; 3],
        hi: [usize; 3],
        fill: f32,
    ) -> Result<Vec<Field3>, StoreError> {
        if t1 >= self.frames.len() || t0 > t1 {
            return Err(StoreError::NoSuchFrame(t1));
        }
        let memo = Arc::new(Mutex::new(HashMap::new()));
        (t0..=t1)
            .map(|t| {
                let view = FrameView {
                    reader: self,
                    t,
                    memo: Arc::clone(&memo),
                };
                read::read_roi(&view, level, lo, hi, fill)
            })
            .collect()
    }
}

/// One frame of a [`TemporalReader`], viewed as a [`ChunkSource`] of
/// actual-value chunks: `chunk` transparently walks the delta chain. All of
/// the provider-generic reads (level, ROI, isovalue skip, progressive)
/// therefore work per frame, chain decoding included.
pub struct FrameView<'a> {
    reader: &'a TemporalReader,
    t: usize,
    memo: Arc<ChainMemo>,
}

impl FrameView<'_> {
    /// The frame's time index.
    pub fn time(&self) -> usize {
        self.t
    }

    /// Coarse→fine temporal progressive refinement of this frame: each step
    /// decodes the next finer level *through the delta chains*, sharing the
    /// view's memo, so refining a delta frame only walks each chunk's chain
    /// once across all steps.
    pub fn progressive(&self, scheme: Upsample) -> Progressive<'_, Self> {
        read::progressive(self, scheme)
    }

    /// Reads the box `[lo, hi)` of one level (actual values).
    pub fn read_roi(
        &self,
        level: usize,
        lo: [usize; 3],
        hi: [usize; 3],
        fill: f32,
    ) -> Result<Field3, StoreError> {
        read::read_roi(self, level, lo, hi, fill)
    }

    /// Reads one whole level (actual values).
    pub fn read_level(&self, level: usize) -> Result<LevelData, StoreError> {
        read::read_level(self, level)
    }

    /// Reads one level under isovalue chunk-skipping; the chunk table's
    /// min/max are actual-value bounds even for delta chunks, so skipping
    /// semantics match the single-frame store.
    pub fn read_level_iso(&self, level: usize, iso: f32) -> Result<LevelData, StoreError> {
        read::read_level_iso(self, level, iso)
    }
}

impl ChunkSource for FrameView<'_> {
    fn store_meta(&self) -> &StoreMeta {
        self.reader.frames[self.t].meta()
    }

    fn chunk(&self, level: usize, block: usize) -> Result<DecodedChunk, StoreError> {
        self.reader.chunk_chain(&self.memo, self.t, level, block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_codec::NullCodec;
    use hqmr_sz3::Sz3Codec;

    fn seq_field(n: usize, t: usize) -> Field3 {
        Field3::from_fn(Dims3::cube(n), |x, y, z| {
            ((x + 2 * y) as f32 * 0.1 + t as f32 * 0.5).sin() * 10.0 + (z as f32) * 0.02
        })
    }

    /// A frame-stable sequence: ROI selection runs on frame 0, later frames
    /// are poured into the same block structure (the in-situ usage).
    fn seq_frames(n: usize, steps: usize) -> Vec<MultiResData> {
        let template = hqmr_mr::to_adaptive(&seq_field(n, 0), &hqmr_mr::RoiConfig::new(8, 0.5));
        (0..steps)
            .map(|t| predict::resample_like(&template, &seq_field(n, t)))
            .collect()
    }

    fn write_temporal(
        dir: &Path,
        frames: &[MultiResData],
        cfg: &StoreConfig,
        prediction: Prediction,
        codec: &dyn Codec,
    ) -> TemporalManifest {
        std::fs::create_dir_all(dir).unwrap();
        let mut enc = TemporalEncoder::new(*cfg, prediction);
        let mut manifest = TemporalManifest::default();
        let mut buf = Vec::new();
        for (t, mr) in frames.iter().enumerate() {
            let flags = enc.encode_frame_into(mr, codec, &mut buf).unwrap();
            let file = format!("frame_{t:05}.hqst");
            std::fs::write(dir.join(&file), &buf).unwrap();
            manifest.frames.push(FrameMeta {
                step: t as u64,
                file,
                delta: flags,
            });
        }
        std::fs::write(dir.join(MANIFEST_NAME), manifest.to_bytes()).unwrap();
        manifest
    }

    #[test]
    fn manifest_roundtrips_and_rejects_damage() {
        let m = TemporalManifest {
            frames: vec![
                FrameMeta {
                    step: 0,
                    file: "frame_00000.hqst".into(),
                    delta: vec![vec![false; 3], vec![false; 1]],
                },
                FrameMeta {
                    step: 7,
                    file: "frame_00001.hqst".into(),
                    delta: vec![vec![true, false, true], vec![true]],
                },
            ],
        };
        let bytes = m.to_bytes();
        assert_eq!(TemporalManifest::from_bytes(&bytes).unwrap(), m);
        assert!(matches!(
            TemporalManifest::from_bytes(&bytes[..5]),
            Err(StoreError::Truncated)
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            TemporalManifest::from_bytes(&bad),
            Err(StoreError::BadMagic)
        ));
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 1] ^= 0xFF;
        assert!(matches!(
            TemporalManifest::from_bytes(&bad),
            Err(StoreError::CorruptTable)
        ));
        assert!(m.frames[0].is_keyframe());
        assert!(!m.frames[1].is_keyframe());
        assert_eq!(m.frames[1].delta_chunks(), 3);
        assert!(m.frames[1].is_delta(0, 2));
        assert!(!m.frames[1].is_delta(0, 1));
        assert!(!m.frames[1].is_delta(9, 9), "out of range reads keyframe");
    }

    #[test]
    fn delta_chain_reconstructs_within_bound() {
        let frames = seq_frames(16, 5);
        let eb = 0.05;
        let cfg = StoreConfig::new(eb).with_chunk_blocks(2);
        let dir = std::env::temp_dir().join("hqmr_temporal_chain_test");
        std::fs::remove_dir_all(&dir).ok();
        write_temporal(
            &dir,
            &frames,
            &cfg,
            Prediction::delta(),
            &Sz3Codec::default(),
        );
        let tr = TemporalReader::open(&dir).unwrap();
        assert_eq!(tr.frame_count(), 5);
        // Some chunk beyond frame 0 must actually be a delta on this
        // correlated sequence.
        assert!(
            (1..5).any(|t| tr.manifest().frames[t].delta_chunks() > 0),
            "correlated frames should pick delta chunks"
        );
        for (t, mr) in frames.iter().enumerate() {
            let back = tr.read_frame(t).unwrap();
            assert_eq!(back.levels.len(), mr.levels.len());
            for (bl, ol) in back.levels.iter().zip(&mr.levels) {
                for (bb, ob) in bl.blocks.iter().zip(&ol.blocks) {
                    assert_eq!(bb.origin, ob.origin);
                    for (a, b) in bb.data.iter().zip(&ob.data) {
                        assert!(
                            (a - b).abs() as f64 <= eb * 1.0001,
                            "frame {t}: {a} vs {b} exceeds eb {eb}"
                        );
                    }
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn window_reads_match_per_frame_and_progressive_refines_through_chains() {
        let frames = seq_frames(16, 4);
        let cfg = StoreConfig::new(0.02).with_chunk_blocks(2);
        let dir = std::env::temp_dir().join("hqmr_temporal_window_test");
        std::fs::remove_dir_all(&dir).ok();
        write_temporal(
            &dir,
            &frames,
            &cfg,
            Prediction::delta(),
            &Sz3Codec::default(),
        );
        let tr = TemporalReader::open(&dir).unwrap();
        // Window reads and per-frame reads decode the same stored data, so
        // they must be bit-equal regardless of codec lossiness — and the
        // window path walks each chain once through the shared memo.
        let d = tr.frame_reader(0).unwrap().meta().levels[0].dims;
        let (lo, hi) = ([0, 0, 0], [d.nx, d.ny / 2, d.nz]);
        let window = tr.read_roi_window(0, 3, 0, lo, hi, 0.0).unwrap();
        assert_eq!(window.len(), 4);
        for (t, w) in window.iter().enumerate() {
            let single = tr.read_roi(t, 0, lo, hi, 0.0).unwrap();
            assert_eq!(*w, single, "window read differs from per-frame at t={t}");
        }
        // Progressive through the delta chains refines to the same full
        // reconstruction a direct frame read produces.
        let view = tr.frame(3).unwrap();
        let steps: Vec<_> = view
            .progressive(Upsample::Nearest)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(
            steps.last().unwrap().field,
            tr.read_frame(3).unwrap().reconstruct(Upsample::Nearest)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn structure_change_forces_keyframe() {
        let mut frames = seq_frames(16, 3);
        // Frame 2 drops a block: structure changes, so it must be a keyframe.
        frames[2].levels[0].blocks.pop();
        let cfg = StoreConfig::new(0.02).with_chunk_blocks(2);
        let mut enc = TemporalEncoder::new(cfg, Prediction::delta());
        let mut buf = Vec::new();
        let mut per_frame = Vec::new();
        for mr in &frames {
            let flags = enc
                .encode_frame_into(mr, &Sz3Codec::default(), &mut buf)
                .unwrap();
            per_frame.push(flags.iter().flatten().filter(|&&d| d).count());
        }
        assert_eq!(per_frame[0], 0, "frame 0 is a keyframe");
        assert_eq!(per_frame[2], 0, "structure change forces keyframe");
    }

    #[test]
    fn open_rejects_flag_shape_mismatch_and_delta_frame_zero() {
        let frames = seq_frames(16, 2);
        let cfg = StoreConfig::new(0.0).with_chunk_blocks(2);
        let dir = std::env::temp_dir().join("hqmr_temporal_badflags_test");
        std::fs::remove_dir_all(&dir).ok();
        let mut manifest = write_temporal(&dir, &frames, &cfg, Prediction::Off, &NullCodec);
        // Claim frame 0 has a delta chunk: must be rejected.
        manifest.frames[0].delta = vec![vec![true]];
        std::fs::write(dir.join(MANIFEST_NAME), manifest.to_bytes()).unwrap();
        assert!(matches!(
            TemporalReader::open(&dir),
            Err(StoreError::Malformed(_))
        ));
        // Wrong flag shape on frame 1: rejected too.
        manifest.frames[0].delta = Vec::new();
        manifest.frames[1].delta = vec![vec![false; 1]];
        std::fs::write(dir.join(MANIFEST_NAME), manifest.to_bytes()).unwrap();
        assert!(matches!(
            TemporalReader::open(&dir),
            Err(StoreError::Malformed(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
