//! Provider-generic read paths: one implementation of level / ROI / isovalue
//! / progressive assembly, shared by the bare [`StoreReader`] and any caching
//! layer stacked on top of it (`hqmr-serve`'s `StoreServer`).
//!
//! The split is deliberate: *where decoded chunks come from* (the
//! [`ChunkSource`] trait — decode on demand, or serve from an LRU cache with
//! single-flight deduplication) is orthogonal to *how query results are
//! assembled from them* (the free functions in this module). Because both the
//! cached and the uncached reader funnel through the same assembly code,
//! byte-identical results across the two paths are a structural property,
//! not a testing aspiration — the differential suite in
//! `crates/serve/tests/` then pins it down anyway.
//!
//! [`StoreReader`]: crate::StoreReader

use crate::format::{LevelMeta, StoreError, StoreMeta};
use hqmr_grid::{Dims3, Field3};
use hqmr_mr::{LevelData, MultiResData, UnitBlock, Upsample};
use rayon::prelude::*;
use std::sync::Arc;

/// One chunk, decoded: every unit block of the chunk as one immutable,
/// cheaply shareable slab.
///
/// `data` holds `origins.len() × unit³` values — block `i`'s cube lives at
/// `data[i·unit³ .. (i+1)·unit³]`, in the chunk table's slot order (not
/// sorted by origin). Both payload and origin list sit behind `Arc`, so a
/// clone is two reference-count bumps: the decoded-chunk cache hands the
/// same allocation to every concurrent client instead of copying per
/// request.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedChunk {
    /// Unit block side length.
    pub unit: usize,
    /// Level-local origin of each block, in slot order.
    pub origins: Arc<[[usize; 3]]>,
    /// `origins.len() × unit³` values, one contiguous slab per block.
    pub data: Arc<[f32]>,
}

impl DecodedChunk {
    /// Number of unit blocks in the chunk.
    pub fn block_count(&self) -> usize {
        self.origins.len()
    }

    /// Block `i`'s `unit³` values (slot order).
    pub fn block_data(&self, i: usize) -> &[f32] {
        let n = self.unit.pow(3);
        &self.data[i * n..(i + 1) * n]
    }

    /// Materializes owned [`UnitBlock`]s (needed when the caller keeps a
    /// [`LevelData`]; ROI assembly reads the slab in place instead).
    pub fn to_blocks(&self) -> impl Iterator<Item = UnitBlock> + '_ {
        self.origins
            .iter()
            .enumerate()
            .map(|(i, &origin)| UnitBlock {
                origin,
                data: self.block_data(i).to_vec(),
            })
    }

    /// Heap footprint of the shared allocations, the unit a cache budget is
    /// charged in.
    pub fn resident_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
            + self.origins.len() * std::mem::size_of::<[usize; 3]>()
    }
}

/// Where decoded chunks come from.
///
/// [`StoreReader`] implements this by fetching and decoding on every call;
/// `hqmr-serve`'s `StoreServer` implements it with an LRU cache and
/// single-flight decode in front of the same reader. Every read path in this
/// module is generic over the trait, so a caching layer inherits level, ROI,
/// isovalue and progressive reads without duplicating any assembly logic.
///
/// [`StoreReader`]: crate::StoreReader
pub trait ChunkSource: Sync {
    /// The store's directory.
    fn store_meta(&self) -> &StoreMeta;

    /// Produces one decoded chunk.
    fn chunk(&self, level: usize, block: usize) -> Result<DecodedChunk, StoreError>;

    /// Produces many chunks of one level, result in `indices` order. The
    /// default fans out per chunk through the rayon shim; implementations
    /// with a cheaper bulk path (serial file fetch, bulk cache probe)
    /// override it.
    fn chunks(&self, level: usize, indices: &[usize]) -> Result<Vec<DecodedChunk>, StoreError> {
        let decoded: Vec<Result<DecodedChunk, StoreError>> =
            indices.par_iter().map(|&i| self.chunk(level, i)).collect();
        decoded.into_iter().collect()
    }
}

/// Looks up a level's directory entry.
pub(crate) fn level_meta(meta: &StoreMeta, level: usize) -> Result<&LevelMeta, StoreError> {
    meta.levels.get(level).ok_or(StoreError::NoSuchLevel(level))
}

/// Reads one whole resolution level from `src`.
pub fn read_level<S: ChunkSource + ?Sized>(src: &S, level: usize) -> Result<LevelData, StoreError> {
    let lm = level_meta(src.store_meta(), level)?;
    let indices: Vec<usize> = (0..lm.chunks.len()).collect();
    let (level_no, unit, dims) = (lm.level, lm.unit, lm.dims);
    let decoded = src.chunks(level, &indices)?;
    let mut blocks: Vec<UnitBlock> = decoded.iter().flat_map(DecodedChunk::to_blocks).collect();
    blocks.sort_by_key(|b| b.origin);
    Ok(LevelData {
        level: level_no,
        unit,
        dims,
        blocks,
    })
}

/// Reads every level of `src` (the store equivalent of `decompress_mr`).
pub fn read_all<S: ChunkSource + ?Sized>(src: &S) -> Result<MultiResData, StoreError> {
    let meta = src.store_meta();
    let levels = (0..meta.levels.len())
        .map(|l| read_level(src, l))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MultiResData {
        domain: meta.domain,
        levels,
    })
}

/// Indices of the chunks whose unit blocks intersect `[lo, hi)` (level cell
/// coordinates) — pure chunk-table accounting, no decoding. Also the query
/// planner's unit: a batched ROI request unions these sets across requests.
pub fn roi_chunk_indices(
    meta: &StoreMeta,
    level: usize,
    lo: [usize; 3],
    hi: [usize; 3],
) -> Result<Vec<usize>, StoreError> {
    let lm = level_meta(meta, level)?;
    let d = lm.dims;
    if hi[0] > d.nx || hi[1] > d.ny || hi[2] > d.nz || (0..3).any(|a| lo[a] >= hi[a]) {
        return Err(StoreError::RoiOutOfBounds);
    }
    Ok(lm
        .chunks
        .iter()
        .enumerate()
        .filter(|(_, c)| c.intersects(lo, hi))
        .map(|(i, _)| i)
        .collect())
}

/// Reads the axis-aligned box `[lo, hi)` of one level, decoding only the
/// intersecting chunks. Returns a dense field of dims `hi − lo`; cells not
/// covered by any unit block hold `fill`. Equals the same region cropped out
/// of `read_level(level).to_field(fill)`.
pub fn read_roi<S: ChunkSource + ?Sized>(
    src: &S,
    level: usize,
    lo: [usize; 3],
    hi: [usize; 3],
    fill: f32,
) -> Result<Field3, StoreError> {
    let indices = roi_chunk_indices(src.store_meta(), level, lo, hi)?;
    let u = level_meta(src.store_meta(), level)?.unit;
    let decoded = src.chunks(level, &indices)?;
    let dims = Dims3::new(hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]);
    let mut out = Field3::new(dims, fill);
    let bd = Dims3::cube(u);
    for c in &decoded {
        for (k, &origin) in c.origins.iter().enumerate() {
            // Clip the block to the ROI and copy the overlap.
            let data = c.block_data(k);
            let blo: [usize; 3] = std::array::from_fn(|a| origin[a].max(lo[a]));
            let bhi: [usize; 3] = std::array::from_fn(|a| (origin[a] + u).min(hi[a]));
            if (0..3).any(|a| blo[a] >= bhi[a]) {
                continue;
            }
            for x in blo[0]..bhi[0] {
                for y in blo[1]..bhi[1] {
                    for z in blo[2]..bhi[2] {
                        let v = data[bd.idx(x - origin[0], y - origin[1], z - origin[2])];
                        out.set(x - lo[0], y - lo[1], z - lo[2], v);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Indices of the chunks that *may* contain a crossing of `iso`, judged from
/// the chunk table's min/max widened by the stored error bound.
pub fn iso_chunk_indices(
    meta: &StoreMeta,
    level: usize,
    iso: f32,
) -> Result<Vec<usize>, StoreError> {
    let eb = meta.eb;
    Ok(level_meta(meta, level)?
        .chunks
        .iter()
        .enumerate()
        .filter(|(_, c)| c.may_cross(iso, eb))
        .map(|(i, _)| i)
        .collect())
}

/// Reads one level for an isovalue query: chunks provably on one side of
/// `iso` are skipped and their blocks synthesized as constants at the chunk's
/// same-side proxy value, so every cell-crossing of `iso` in the result
/// matches a full decode — while decoding strictly fewer bytes whenever any
/// chunk is skippable.
pub fn read_level_iso<S: ChunkSource + ?Sized>(
    src: &S,
    level: usize,
    iso: f32,
) -> Result<LevelData, StoreError> {
    let meta = src.store_meta();
    let keep = iso_chunk_indices(meta, level, iso)?;
    let lm = level_meta(meta, level)?;
    let (level_no, unit, dims) = (lm.level, lm.unit, lm.dims);
    let proxies: Vec<(f32, Vec<[usize; 3]>)> = {
        let kept: std::collections::HashSet<usize> = keep.iter().copied().collect();
        lm.chunks
            .iter()
            .enumerate()
            .filter(|(i, _)| !kept.contains(i))
            .map(|(_, c)| {
                (
                    c.proxy_value(iso),
                    c.slots.iter().map(|&(_, origin)| origin).collect(),
                )
            })
            .collect()
    };
    let decoded = src.chunks(level, &keep)?;
    let mut blocks: Vec<UnitBlock> = decoded.iter().flat_map(DecodedChunk::to_blocks).collect();
    for (proxy, origins) in proxies {
        blocks.extend(origins.into_iter().map(|origin| UnitBlock {
            origin,
            data: vec![proxy; unit.pow(3)],
        }));
    }
    blocks.sort_by_key(|b| b.origin);
    Ok(LevelData {
        level: level_no,
        unit,
        dims,
        blocks,
    })
}

/// One step of progressive refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementStep {
    /// Level index (refinement distance) decoded in this step; the remaining
    /// finer levels are not yet part of the reconstruction.
    pub level: usize,
    /// Cumulative reconstruction at full domain resolution. Regions owned by
    /// not-yet-decoded levels are still zero-filled.
    pub field: Field3,
}

/// Coarse→fine progressive refinement over any chunk source. Each step
/// decodes the next finer level and yields the cumulative dense
/// reconstruction at full domain resolution; the last step equals
/// `read_all(src).reconstruct(scheme)`.
pub fn progressive<S: ChunkSource + ?Sized>(src: &S, scheme: Upsample) -> Progressive<'_, S> {
    Progressive {
        src,
        scheme,
        // Refinement order: coarsest (highest level index) first.
        next: src.store_meta().levels.len(),
        acc: Field3::zeros(src.store_meta().domain),
    }
}

/// Iterator returned by [`progressive`] (and the `progressive` methods of
/// `StoreReader` / `StoreServer`).
pub struct Progressive<'a, S: ChunkSource + ?Sized> {
    src: &'a S,
    scheme: Upsample,
    /// `levels[next]` is the next level to decode, counting down to 0.
    next: usize,
    /// The cumulative reconstruction, refined in place: each step overlays
    /// only the newly decoded (finer) level's upsampled blocks, so blocks
    /// decoded in earlier steps are never copied or reconstructed again.
    acc: Field3,
}

impl<S: ChunkSource + ?Sized> Iterator for Progressive<'_, S> {
    type Item = Result<RefinementStep, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next == 0 {
            return None;
        }
        self.next -= 1;
        let level = self.next;
        match read_level(self.src, level) {
            Ok(lvl) => {
                // Coarse→fine order means in-place insertion matches
                // `MultiResData::reconstruct` exactly: finer blocks land
                // later and overwrite coarser ones.
                let factor = 1usize << lvl.level;
                for b in &lvl.blocks {
                    let origin = [
                        b.origin[0] * factor,
                        b.origin[1] * factor,
                        b.origin[2] * factor,
                    ];
                    if factor == 1 {
                        // Finest level: no upsampling, land the block data
                        // directly without a temporary field.
                        self.acc
                            .insert_box_from(origin, Dims3::cube(lvl.unit), &b.data);
                        continue;
                    }
                    let mut block = Field3::from_vec(Dims3::cube(lvl.unit), b.data.clone());
                    let mut f = factor;
                    while f > 1 {
                        let target = block.dims().scaled(2);
                        block = match self.scheme {
                            Upsample::Nearest => block.upsample2_nearest(target),
                            Upsample::Trilinear => block.upsample2_trilinear(target),
                        };
                        f /= 2;
                    }
                    self.acc.insert_box(origin, &block);
                }
                Some(Ok(RefinementStep {
                    level,
                    field: self.acc.clone(),
                }))
            }
            Err(e) => {
                self.next = 0; // poison: no further refinement after an error
                Some(Err(e))
            }
        }
    }
}
