//! `hqmr-store` — a seekable, block-indexed multi-resolution container.
//!
//! The monolithic MRC stream (`hqmr-core::mrc`) is one opaque blob: reading a
//! single coarse level — let alone a region of interest — means decompressing
//! everything. This crate is the random-access alternative, following the
//! EXR-style tiled/mip-mapped pattern: a [`format::StoreMeta`] directory up
//! front (per-level × per-chunk byte ranges, CRCs, value min/max) and an
//! append-only data region of independently compressed chunks. A reader
//! fetches and decodes *only* the chunks a query touches:
//!
//! * [`StoreReader::read_level`] — one resolution level, chunks decoded in
//!   parallel through the rayon shim;
//! * [`StoreReader::read_roi`] — an axis-aligned box, decoding only the
//!   chunks whose unit blocks intersect it;
//! * [`StoreReader::read_level_iso`] — an isovalue query that skips chunks
//!   whose `[min − eb, max + eb]` band provably misses the isovalue,
//!   substituting a same-side proxy value;
//! * [`StoreReader::progressive`] — a coarse→fine refinement iterator whose
//!   final step equals a full reconstruction.
//!
//! The writer runs the *same* pre-processing stage ([`hqmr_mr::prepare`]) as
//! the monolithic engine, so a store written with
//! [`StoreConfig::one_chunk_per_level`] produces byte-identical codec inputs
//! — and therefore bit-identical decoded blocks — to `compress_mr` /
//! `decompress_mr` under the same configuration.
//!
//! Every chunk payload carries a CRC-32 checked before the codec runs, so a
//! flipped bit surfaces as the typed
//! [`StoreError::CorruptChunk`]`{ level, block }` instead of garbage data.
//!
//! # Thread safety
//!
//! [`StoreReader`] is `Send + Sync` by contract (enforced at compile time
//! below) and every read method takes `&self`: one reader can serve many
//! client threads concurrently. In-memory readers fetch chunk bytes without
//! any locking; file-backed readers use positional reads (`pread` via
//! `FileExt::read_at` on unix), so concurrent chunk fetches do not
//! serialize on a file lock either (non-unix targets fall back to
//! seek + read behind a mutex). The read-accounting
//! counters ([`StoreReader::bytes_decoded`] / [`StoreReader::chunks_decoded`])
//! are independent monotonic tallies maintained with `Ordering::Relaxed`
//! throughout — including [`StoreReader::reset_counters`] — because they
//! carry no synchronization duty; see `reset_counters` for the exact
//! cross-counter consistency contract. Caching layers (`hqmr-serve`) share a
//! reader via `Arc<StoreReader>` and drive the borrowed per-chunk API
//! ([`StoreReader::fetch_chunk_bytes`] / [`StoreReader::decode_chunk`])
//! directly.

pub mod format;
pub mod read;
pub mod scrub;
pub mod temporal;

pub use format::{
    parse_head, ChunkMeta, LevelMeta, StoreError, StoreMeta, MAGIC, PREFIX_LEN, VERSION,
};
pub use read::{ChunkSource, DecodedChunk, Progressive, RefinementStep};
pub use scrub::{
    parity_path, repair_in_place, scrub_store, scrub_temporal, temporal_sidecars, ParitySidecar,
    ScrubReport, SidecarStatus, TemporalScrubReport, Throttle, DEFAULT_PARITY_GROUP, PARITY_MAGIC,
    PARITY_VERSION,
};
pub use temporal::{
    FrameMeta, FrameView, Prediction, TemporalEncoder, TemporalManifest, TemporalReader,
    MANIFEST_NAME, TEMPORAL_MAGIC, TEMPORAL_VERSION,
};

use hqmr_codec::kernels;
use hqmr_codec::{crc32, Codec, NullCodec, NULL_CODEC_ID};
use hqmr_grid::{Dims3, Field3};
use hqmr_mr::prepare::{prepare_blocks, PreparedLevel};
use hqmr_mr::{strip_padding, LevelData, MergeStrategy, MultiResData, PadKind, Upsample};
use hqmr_sz2::{Sz2Codec, SZ2_CODEC_ID};
use hqmr_sz3::{Sz3Codec, SZ3_CODEC_ID};
use hqmr_zfp::{ZfpCodec, ZFP_CODEC_ID};
use rayon::prelude::*;
use std::borrow::Cow;
use std::cell::RefCell;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(unix))]
use std::sync::Mutex;

// Compile-time thread-safety contract: `hqmr-serve` shares one reader across
// arbitrarily many client threads through `Arc<StoreReader>`, so losing
// `Send + Sync` (e.g. by storing an `Rc` or a raw pointer in a future
// refactor) must fail the build, not surface as a downstream type error.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StoreReader>();
    assert_send_sync::<StoreError>();
    assert_send_sync::<DecodedChunk>();
};

thread_local! {
    /// Per-thread chunk-decode scratch: `decompress_into` reshapes this one
    /// field per worker instead of allocating a fresh reconstruction buffer
    /// for every chunk — the store's ROI/progressive readers decode hundreds
    /// of chunks per query.
    static DECODE_SCRATCH: RefCell<Field3> = RefCell::new(Field3::zeros(Dims3::new(0, 0, 0)));
}

/// Minimum slab size (cells) before a chunk's per-slot extractions fan out
/// across the rayon shim; below this the spawn cost outweighs the copies.
const PAR_MIN_EXTRACT: usize = 1 << 16;

/// Decoder registry: the default codec able to decode chunks carrying `id`.
/// Chunk streams are self-describing, so decode needs no backend parameters.
pub fn codec_for_id(id: u32) -> Option<Box<dyn Codec>> {
    match id {
        SZ3_CODEC_ID => Some(Box::new(Sz3Codec::default())),
        SZ2_CODEC_ID => Some(Box::new(Sz2Codec::default())),
        ZFP_CODEC_ID => Some(Box::new(ZfpCodec)),
        NULL_CODEC_ID => Some(Box::new(NullCodec)),
        _ => None,
    }
}

/// Writer configuration: the arrangement axis (shared with the monolithic
/// engine), the error bound, and the tiling granularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Absolute error bound every chunk is compressed under.
    pub eb: f64,
    /// Unit-block arrangement within a chunk.
    pub merge: MergeStrategy,
    /// Padding for the small dims of linear merges (applied when `unit > 4`).
    pub pad: Option<PadKind>,
    /// Maximum unit blocks per chunk. Small values mean finer random access
    /// (ROI reads touch fewer bytes) at some compression-ratio cost;
    /// [`StoreConfig::one_chunk_per_level`] reproduces the monolithic
    /// engine's arrays exactly.
    pub chunk_blocks: usize,
    /// Chunks per XOR parity group in the `.hqpr` sidecar file-level
    /// writers emit beside each store (`0` disables sidecars). Smaller
    /// groups mean more repairable damage per store at proportionally more
    /// parity bytes — overhead ≈ `1/parity_group` of the compressed size.
    pub parity_group: usize,
}

/// Default chunk granularity: enough blocks for the codec to find structure,
/// small enough that ROI reads skip most of a level.
pub const DEFAULT_CHUNK_BLOCKS: usize = 16;

impl StoreConfig {
    /// Paper-default arrangement (linear merge + padding) at bound `eb`,
    /// tiled every [`DEFAULT_CHUNK_BLOCKS`] unit blocks.
    pub fn new(eb: f64) -> Self {
        StoreConfig {
            eb,
            merge: MergeStrategy::Linear,
            pad: Some(PadKind::Linear),
            chunk_blocks: DEFAULT_CHUNK_BLOCKS,
            parity_group: scrub::DEFAULT_PARITY_GROUP,
        }
    }

    /// Tiling granularity in unit blocks per chunk.
    pub fn with_chunk_blocks(mut self, blocks: usize) -> Self {
        self.chunk_blocks = blocks.max(1);
        self
    }

    /// Chunks per parity group in the emitted `.hqpr` sidecar; `0` turns
    /// sidecars off.
    pub fn with_parity_group(mut self, group: usize) -> Self {
        self.parity_group = group;
        self
    }

    /// One chunk per level: codec inputs byte-identical to the monolithic
    /// `compress_mr` under the same merge/pad/eb — the parity configuration.
    pub fn one_chunk_per_level(mut self) -> Self {
        self.chunk_blocks = usize::MAX;
        self
    }
}

/// The prepared (pre-codec) form of one level: one [`PreparedLevel`] per
/// chunk group. Produced by [`prepare_store`], consumed by
/// [`encode_prepared_store`] — split so in-situ writers can time the two
/// stages separately (Table IV), mirroring `mrc::prepare_mr`/`encode_prepared`.
pub type PreparedStore = Vec<Vec<PreparedLevel>>;

/// Stage 1: merges and pads every chunk group of every level. Groups are
/// consecutive runs of the level's raster-ordered blocks, prepared straight
/// off the borrowed slices — no block data is copied before merging.
pub fn prepare_store(mr: &MultiResData, cfg: &StoreConfig) -> PreparedStore {
    mr.levels
        .iter()
        .map(|level| {
            level
                .blocks
                .chunks(cfg.chunk_blocks.max(1))
                .map(|group| prepare_blocks(group, level.unit, cfg.merge, cfg.pad))
                .collect()
        })
        .collect()
}

/// Stage 2: compresses every prepared chunk (in parallel) and frames the
/// store buffer. `prepared` must come from [`prepare_store`] with the same
/// `mr` and `cfg`.
///
/// The encode fan-out is *global*: every chunk of every level joins one
/// work list, so coarse levels with a single chunk can no longer serialize
/// a round of the thread pool per level (the read path's per-level decode
/// has had the same shape since the Cow-fetch refactor).
pub fn encode_prepared_store(
    mr: &MultiResData,
    prepared: &PreparedStore,
    cfg: &StoreConfig,
    codec: &dyn Codec,
) -> Vec<u8> {
    let mut out = Vec::new();
    encode_prepared_store_into(mr, prepared, cfg, codec, &mut out);
    out
}

/// [`encode_prepared_store`] serializing into a caller-owned buffer
/// (cleared first), so repeated in-situ snapshots reuse one store
/// allocation.
pub fn encode_prepared_store_into(
    mr: &MultiResData,
    prepared: &PreparedStore,
    cfg: &StoreConfig,
    codec: &dyn Codec,
    out: &mut Vec<u8>,
) {
    assert_eq!(prepared.len(), mr.levels.len(), "prepared levels mismatch");
    // One flat work list over all levels; compression fans out across it.
    let inputs: Vec<(&hqmr_mr::MergedArray, &Field3, bool)> = prepared
        .iter()
        .flat_map(|preps| {
            preps
                .iter()
                .flat_map(|p| p.blocks().map(move |(m, f)| (m, f, p.padded())))
        })
        .collect();
    let streams: Vec<Vec<u8>> = inputs
        .par_iter()
        .map(|(_, f, _)| {
            let mut stream = Vec::new();
            codec.compress_into(f, cfg.eb, &mut stream);
            stream
        })
        .collect();

    let mut levels = Vec::with_capacity(mr.levels.len());
    let mut data = Vec::new();
    let mut it = inputs.into_iter().zip(streams);
    for (level, preps) in mr.levels.iter().zip(prepared) {
        let n_chunks: usize = preps.iter().map(|p| p.array_count()).sum();
        let mut chunks = Vec::with_capacity(n_chunks);
        for ((m, f, padded), stream) in it.by_ref().take(n_chunks) {
            let (min, max) = m.field.min_max();
            chunks.push(ChunkMeta {
                offset: data.len() as u64,
                len: stream.len(),
                crc: crc32(&stream),
                min,
                max,
                enc_dims: f.dims(),
                padded,
                unit: m.unit,
                slots: m.slots.clone(),
            });
            data.extend_from_slice(&stream);
        }
        levels.push(LevelMeta {
            level: level.level,
            unit: level.unit,
            dims: level.dims,
            chunks,
        });
    }
    let meta = StoreMeta {
        domain: mr.domain,
        codec_id: codec.id(),
        eb: cfg.eb,
        levels,
    };
    format::frame_into(&meta, &data, out);
}

/// Writes `mr` into a complete in-memory store buffer (both stages).
pub fn write_store(mr: &MultiResData, cfg: &StoreConfig, codec: &dyn Codec) -> Vec<u8> {
    let prepared = prepare_store(mr, cfg);
    encode_prepared_store(mr, &prepared, cfg, codec)
}

/// [`write_store`] plus the matching `.hqpr` parity sidecar bytes
/// (`None` when `cfg.parity_group == 0`). The sidecar is computed off the
/// just-framed buffer, so it is consistent with the store by construction;
/// file-level writers persist both through their crash-safe path.
pub fn write_store_with_parity(
    mr: &MultiResData,
    cfg: &StoreConfig,
    codec: &dyn Codec,
) -> (Vec<u8>, Option<Vec<u8>>) {
    let buf = write_store(mr, cfg, codec);
    let parity = sidecar_bytes_for(&buf, cfg.parity_group);
    (buf, parity)
}

/// The serialized parity sidecar for a complete store buffer, or `None`
/// when parity is disabled. Building parity over bytes we just framed
/// cannot fail; the expect documents that invariant.
pub fn sidecar_bytes_for(store_buf: &[u8], parity_group: usize) -> Option<Vec<u8>> {
    if parity_group == 0 {
        return None;
    }
    let sc = scrub::ParitySidecar::from_store_bytes(store_buf, parity_group)
        .expect("parity over a freshly framed store");
    Some(sc.to_bytes())
}

/// [`write_store`] into a caller-owned buffer (cleared first): an in-situ
/// writer emitting one store per timestep reuses a single output
/// allocation instead of growing a fresh one per snapshot.
pub fn write_store_into(
    mr: &MultiResData,
    cfg: &StoreConfig,
    codec: &dyn Codec,
    out: &mut Vec<u8>,
) {
    let prepared = prepare_store(mr, cfg);
    encode_prepared_store_into(mr, &prepared, cfg, codec, out);
}

/// Where a reader's chunk bytes come from.
enum Source {
    /// The whole store buffer in memory (data region addressed by range).
    Mem(Vec<u8>),
    /// An open file, read with positional reads — concurrent chunk fetches
    /// (e.g. from `hqmr-serve` client threads) do not serialize on a lock.
    File(PositionalFile),
}

/// A read-only file accessed at explicit offsets. On unix this is a bare
/// `File` driven through `FileExt::read_at` (`pread`), which takes `&self`
/// and never touches the shared cursor — concurrent chunk fetches proceed
/// in parallel. Elsewhere it falls back to seek + read behind a mutex.
///
/// The file's path is kept so every I/O error names the store it came from:
/// a multi-store server returns an attributable error frame instead of an
/// anonymous `io::Error` (or worse, a panic).
struct PositionalFile {
    #[cfg(unix)]
    file: std::fs::File,
    #[cfg(not(unix))]
    file: Mutex<std::fs::File>,
    path: std::path::PathBuf,
}

/// Adds path context to a non-EOF I/O error, preserving its kind.
/// `UnexpectedEof` passes through untouched so the `From<io::Error>`
/// conversion keeps mapping it to the typed [`StoreError::Truncated`].
fn with_path_context(e: std::io::Error, path: &Path) -> std::io::Error {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        return e;
    }
    std::io::Error::new(e.kind(), format!("{}: {e}", path.display()))
}

impl PositionalFile {
    fn new(file: std::fs::File, path: std::path::PathBuf) -> Self {
        #[cfg(unix)]
        {
            PositionalFile { file, path }
        }
        #[cfg(not(unix))]
        {
            PositionalFile {
                file: Mutex::new(file),
                path,
            }
        }
    }

    /// Size of the underlying file in bytes.
    fn len(&self) -> std::io::Result<u64> {
        #[cfg(unix)]
        {
            self.file
                .metadata()
                .map(|m| m.len())
                .map_err(|e| with_path_context(e, &self.path))
        }
        #[cfg(not(unix))]
        {
            self.file
                .lock()
                .expect("store file lock poisoned")
                .metadata()
                .map(|m| m.len())
                .map_err(|e| with_path_context(e, &self.path))
        }
    }

    /// Fills `buf` from the absolute file `offset` (EOF ⇒ error, matching
    /// `read_exact`). Non-EOF failures carry the store's path.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file
                .read_exact_at(buf, offset)
                .map_err(|e| with_path_context(e, &self.path))
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = self.file.lock().expect("store file lock poisoned");
            f.seek(SeekFrom::Start(offset))
                .and_then(|_| f.read_exact(buf))
                .map_err(|e| with_path_context(e, &self.path))
        }
    }
}

/// Random-access reader over a store buffer or file.
///
/// Every chunk fetch verifies the chunk's CRC-32 before the codec touches
/// the bytes ([`StoreError::CorruptChunk`] on mismatch) and adds the chunk's
/// compressed length to a running counter ([`StoreReader::bytes_decoded`]) —
/// the accounting that proves ROI and isovalue reads touch strictly fewer
/// bytes than full reads.
pub struct StoreReader {
    meta: StoreMeta,
    data_start: u64,
    source: Source,
    codec: Box<dyn Codec>,
    bytes_decoded: AtomicU64,
    chunks_decoded: AtomicU64,
}

impl StoreReader {
    /// Opens an in-memory store buffer.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self, StoreError> {
        let (meta, data_start) = parse_head(&buf)?;
        Self::with_source(meta, data_start, Source::Mem(buf))
    }

    /// Opens a store file. Only the prefix and directory are read here; chunk
    /// bytes are fetched on demand per query.
    ///
    /// Failures before any store structure is parsed — the path does not
    /// exist, is not readable, or stat fails — surface as the typed
    /// [`StoreError::Open`] carrying the path, so a multi-store server can
    /// answer "which store?" in its error frame. A file that opens but ends
    /// mid-prefix/mid-directory is [`StoreError::Truncated`], and damaged
    /// structure keeps its existing typed variants ([`StoreError::BadMagic`]
    /// etc.). Nothing on this path panics on I/O.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        use std::io::Read;
        let path = path.as_ref();
        let open_err = |source: std::io::Error| {
            if source.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::Truncated
            } else {
                StoreError::Open {
                    path: path.to_path_buf(),
                    source,
                }
            }
        };
        let mut file = std::fs::File::open(path).map_err(open_err)?;
        let mut prefix = [0u8; PREFIX_LEN];
        file.read_exact(&mut prefix).map_err(open_err)?;
        if &prefix[..4] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        if prefix[4] != VERSION {
            return Err(StoreError::BadVersion(prefix[4]));
        }
        let meta_len = u32::from_le_bytes(prefix[5..9].try_into().unwrap()) as usize;
        let mut head = prefix.to_vec();
        head.resize(PREFIX_LEN + meta_len, 0);
        file.read_exact(&mut head[PREFIX_LEN..]).map_err(open_err)?;
        let (meta, data_start) = parse_head(&head)?;
        Self::with_source(
            meta,
            data_start,
            Source::File(PositionalFile::new(file, path.to_path_buf())),
        )
    }

    fn with_source(meta: StoreMeta, data_start: u64, source: Source) -> Result<Self, StoreError> {
        let codec = codec_for_id(meta.codec_id).ok_or(StoreError::UnknownCodec(meta.codec_id))?;
        // The chunk table is untrusted input (its CRC is integrity, not
        // authentication): validate every byte range against the actual data
        // region up front, so fetches can never overflow, over-allocate, or
        // run past the end.
        let data_len = match &source {
            Source::Mem(buf) => (buf.len() as u64).saturating_sub(data_start),
            Source::File(file) => file.len()?.saturating_sub(data_start),
        };
        for lm in &meta.levels {
            for c in &lm.chunks {
                let end = c
                    .offset
                    .checked_add(c.len as u64)
                    .ok_or(StoreError::Truncated)?;
                if end > data_len {
                    return Err(StoreError::Truncated);
                }
            }
        }
        Ok(StoreReader {
            meta,
            data_start,
            source,
            codec,
            bytes_decoded: AtomicU64::new(0),
            chunks_decoded: AtomicU64::new(0),
        })
    }

    /// Recovers the in-memory buffer this reader was opened over
    /// ([`StoreReader::from_bytes`]); `None` for file-backed readers.
    pub fn into_buffer(self) -> Option<Vec<u8>> {
        match self.source {
            Source::Mem(buf) => Some(buf),
            Source::File(_) => None,
        }
    }

    /// The store's directory (levels, chunk table, codec id, error bound).
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Name of the codec decoding this store's chunks.
    pub fn codec_name(&self) -> &'static str {
        self.codec.name()
    }

    /// Compressed bytes fetched + decoded since the last
    /// [`StoreReader::reset_counters`].
    pub fn bytes_decoded(&self) -> u64 {
        self.bytes_decoded.load(Ordering::Relaxed)
    }

    /// Chunks fetched + decoded since the last counter reset.
    pub fn chunks_decoded(&self) -> u64 {
        self.chunks_decoded.load(Ordering::Relaxed)
    }

    /// Zeroes the read-accounting counters.
    ///
    /// Ordering contract: both counters are plain monotonic tallies — every
    /// load, increment and this reset use `Ordering::Relaxed`, deliberately
    /// and consistently, because the counters never guard other memory.
    /// Each counter is individually exact: increments from any thread are
    /// never lost. What Relaxed (or indeed any ordering, short of locking
    /// both counters together) does *not* give you is a consistent snapshot
    /// **across** the two counters, or a reset that is atomic with respect
    /// to a fetch happening on another thread — a concurrent fetch may land
    /// its byte count before the reset and its chunk count after. Callers
    /// that want exact accounting for a specific set of reads (as the tests
    /// and benches do) must quiesce readers around the reset; callers that
    /// just watch throughput can ignore the skew, which is bounded by one
    /// in-flight fetch per thread.
    pub fn reset_counters(&self) {
        self.bytes_decoded.store(0, Ordering::Relaxed);
        self.chunks_decoded.store(0, Ordering::Relaxed);
    }

    fn level_meta(&self, level: usize) -> Result<&LevelMeta, StoreError> {
        self.meta
            .levels
            .get(level)
            .ok_or(StoreError::NoSuchLevel(level))
    }

    /// Fetches one chunk's compressed bytes and verifies its CRC. In-memory
    /// stores hand out a borrowed slice (no copy); only file-backed stores
    /// materialize an owned buffer. Byte ranges were validated against the
    /// data region at open time, so the only runtime surprise left is a file
    /// shrinking underneath us.
    ///
    /// This is the raw half of the borrowed per-chunk API caching layers
    /// drive; [`StoreReader::decode_chunk`] is the decoded half.
    pub fn fetch_chunk_bytes(
        &self,
        level: usize,
        block: usize,
    ) -> Result<Cow<'_, [u8]>, StoreError> {
        let c = self
            .level_meta(level)?
            .chunks
            .get(block)
            .ok_or(StoreError::Malformed("chunk index out of range"))?;
        let bytes: Cow<'_, [u8]> = match &self.source {
            Source::Mem(buf) => {
                let start = (self.data_start + c.offset) as usize;
                Cow::Borrowed(
                    buf.get(start..start.saturating_add(c.len))
                        .ok_or(StoreError::Truncated)?,
                )
            }
            Source::File(file) => {
                let mut out = vec![0u8; c.len];
                file.read_exact_at(&mut out, self.data_start + c.offset)?;
                Cow::Owned(out)
            }
        };
        if crc32(&bytes) != c.crc {
            return Err(StoreError::CorruptChunk { level, block });
        }
        self.bytes_decoded
            .fetch_add(c.len as u64, Ordering::Relaxed);
        self.chunks_decoded.fetch_add(1, Ordering::Relaxed);
        Ok(bytes)
    }

    /// Decodes one CRC-verified chunk payload into its decoded form.
    fn decode_one(
        &self,
        level: usize,
        lm: &LevelMeta,
        block: usize,
        bytes: &[u8],
    ) -> Result<DecodedChunk, StoreError> {
        let c = &lm.chunks[block];
        let codec_err = |source| StoreError::Codec {
            level,
            block,
            source,
        };
        DECODE_SCRATCH.with(|scratch| {
            let mut field = scratch.borrow_mut();
            self.codec
                .decompress_into(bytes, &mut field)
                .map_err(codec_err)?;
            if field.dims() != c.enc_dims {
                return Err(StoreError::Malformed("decoded dims mismatch chunk table"));
            }
            let stripped;
            let data: &Field3 = if c.padded {
                if c.enc_dims.nx < 2 || c.enc_dims.ny < 2 {
                    return Err(StoreError::Malformed("padded chunk too small"));
                }
                stripped = strip_padding(&field);
                &stripped
            } else {
                &field
            };
            let d = data.dims();
            // Slot origins and the unit come from the untrusted chunk
            // table; checked math keeps a crafted store a typed error
            // instead of a debug-build overflow panic.
            let oob = StoreError::Malformed("chunk slot out of array bounds");
            for &(slot, _) in &c.slots {
                let inside = |o: usize, dim: usize| o.checked_add(c.unit).is_some_and(|e| e <= dim);
                if !(inside(slot[0], d.nx) && inside(slot[1], d.ny) && inside(slot[2], d.nz)) {
                    return Err(oob);
                }
            }
            // One contiguous slab for the whole chunk: the unit a cache can
            // share across clients with a single refcount bump. Per-slot
            // extractions write disjoint slab ranges, so large chunks fan
            // them across the rayon shim (one tile per slot) unless tile
            // parallelism is disabled. The slot check above bounds `unit`
            // by the decoded dims whenever a slot exists; an absurd unit on
            // a slotless chunk must still not overflow the slab size.
            let n = c
                .unit
                .checked_pow(3)
                .ok_or(StoreError::Malformed("chunk unit overflows"))?;
            let size = Dims3::cube(c.unit);
            let slab_len = c
                .slots
                .len()
                .checked_mul(n)
                .ok_or(StoreError::Malformed("chunk slab overflows"))?;
            let mut slab = vec![0f32; slab_len];
            if kernels::tile_parallel() && c.slots.len() >= 2 && slab.len() >= PAR_MIN_EXTRACT {
                slab.par_chunks_mut(n).enumerate().for_each(|(k, out)| {
                    let (slot, _) = c.slots[k];
                    data.extract_box_into(slot, size, out);
                });
            } else {
                for (k, &(slot, _)) in c.slots.iter().enumerate() {
                    data.extract_box_into(slot, size, &mut slab[k * n..(k + 1) * n]);
                }
            }
            Ok(DecodedChunk {
                unit: c.unit,
                origins: c.slots.iter().map(|&(_, origin)| origin).collect(),
                data: slab.into(),
            })
        })
    }

    /// Fetches, CRC-checks and decodes one chunk — the decoded half of the
    /// borrowed per-chunk API. `hqmr-serve`'s cache calls this exactly once
    /// per miss; the reader's own `read_*` methods funnel through it (via
    /// [`ChunkSource`]) as well, so cached and uncached reads share one code
    /// path. Decoding reuses a per-thread scratch field, so a client thread
    /// issuing many chunk decodes allocates one reconstruction buffer, not
    /// one per chunk.
    pub fn decode_chunk(&self, level: usize, block: usize) -> Result<DecodedChunk, StoreError> {
        let lm = self.level_meta(level)?;
        let bytes = self.fetch_chunk_bytes(level, block)?;
        self.decode_one(level, lm, block, &bytes)
    }

    /// Decodes a caller-supplied compressed payload as chunk
    /// `(level, block)` — the entry point for parity-repaired bytes. The
    /// payload is verified against the chunk table's stored length and CRC
    /// first, so a bad reconstruction is the same typed
    /// [`StoreError::CorruptChunk`] a damaged fetch would be; a payload
    /// that passes decodes identically to the original chunk.
    pub fn decode_chunk_bytes(
        &self,
        level: usize,
        block: usize,
        bytes: &[u8],
    ) -> Result<DecodedChunk, StoreError> {
        let lm = self.level_meta(level)?;
        let c = lm
            .chunks
            .get(block)
            .ok_or(StoreError::Malformed("chunk index out of range"))?;
        if bytes.len() != c.len || crc32(bytes) != c.crc {
            return Err(StoreError::CorruptChunk { level, block });
        }
        self.decode_one(level, lm, block, bytes)
    }

    /// Reads one whole resolution level.
    pub fn read_level(&self, level: usize) -> Result<LevelData, StoreError> {
        read::read_level(self, level)
    }

    /// Reads every level (the store equivalent of `decompress_mr`).
    pub fn read_all(&self) -> Result<MultiResData, StoreError> {
        read::read_all(self)
    }

    /// Indices of the chunks whose unit blocks intersect `[lo, hi)` (level
    /// cell coordinates) — the chunk-table accounting behind
    /// [`StoreReader::read_roi`].
    pub fn roi_chunk_indices(
        &self,
        level: usize,
        lo: [usize; 3],
        hi: [usize; 3],
    ) -> Result<Vec<usize>, StoreError> {
        read::roi_chunk_indices(&self.meta, level, lo, hi)
    }

    /// Reads the axis-aligned box `[lo, hi)` of one level, decoding only the
    /// intersecting chunks. Returns a dense field of dims `hi − lo`; cells
    /// not covered by any unit block hold `fill`. Equals the same region
    /// cropped out of `read_level(level).to_field(fill)`.
    pub fn read_roi(
        &self,
        level: usize,
        lo: [usize; 3],
        hi: [usize; 3],
        fill: f32,
    ) -> Result<Field3, StoreError> {
        read::read_roi(self, level, lo, hi, fill)
    }

    /// Indices of the chunks that *may* contain a crossing of `iso`, judged
    /// from the chunk table's min/max widened by the stored error bound.
    pub fn iso_chunk_indices(&self, level: usize, iso: f32) -> Result<Vec<usize>, StoreError> {
        read::iso_chunk_indices(&self.meta, level, iso)
    }

    /// Reads one level for an isovalue query: chunks provably on one side of
    /// `iso` are skipped and their blocks synthesized as constants at the
    /// chunk's same-side proxy value, so every cell-crossing of `iso` in the
    /// result matches a full decode — while decoding strictly fewer bytes
    /// whenever any chunk is skippable.
    pub fn read_level_iso(&self, level: usize, iso: f32) -> Result<LevelData, StoreError> {
        read::read_level_iso(self, level, iso)
    }

    /// Coarse→fine progressive refinement. Each step decodes the next finer
    /// level and yields the cumulative dense reconstruction at full domain
    /// resolution; the last step equals `read_all().reconstruct(scheme)`.
    pub fn progressive(&self, scheme: Upsample) -> Progressive<'_, Self> {
        read::progressive(self, scheme)
    }
}

impl ChunkSource for StoreReader {
    fn store_meta(&self) -> &StoreMeta {
        &self.meta
    }

    fn chunk(&self, level: usize, block: usize) -> Result<DecodedChunk, StoreError> {
        self.decode_chunk(level, block)
    }

    /// Bulk override: fetching is serial (one pass over the file, friendly
    /// to the file-backed mutex); decoding fans out per chunk.
    fn chunks(&self, level: usize, indices: &[usize]) -> Result<Vec<DecodedChunk>, StoreError> {
        let lm = self.level_meta(level)?;
        let payloads: Vec<(usize, Cow<'_, [u8]>)> = indices
            .iter()
            .map(|&i| Ok((i, self.fetch_chunk_bytes(level, i)?)))
            .collect::<Result<_, StoreError>>()?;
        let decoded: Vec<Result<DecodedChunk, StoreError>> = payloads
            .par_iter()
            .map(|(i, bytes)| self.decode_one(level, lm, *i, bytes))
            .collect();
        decoded.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::synth;
    use hqmr_mr::{to_adaptive, RoiConfig};

    fn test_mr() -> MultiResData {
        let f = synth::nyx_like(32, 9);
        to_adaptive(&f, &RoiConfig::new(8, 0.5))
    }

    fn eb() -> f64 {
        1e6 // nyx-scale values ~1e8
    }

    #[test]
    fn roundtrip_through_memory() {
        let mr = test_mr();
        let cfg = StoreConfig::new(eb()).with_chunk_blocks(4);
        let buf = write_store(&mr, &cfg, &NullCodec);
        let r = StoreReader::from_bytes(buf).unwrap();
        assert_eq!(r.codec_name(), "null");
        let back = r.read_all().unwrap();
        assert_eq!(back, mr, "null codec must round-trip losslessly");
    }

    #[test]
    fn write_into_reuses_buffer_and_matches() {
        let mr = test_mr();
        let cfg = StoreConfig::new(eb()).with_chunk_blocks(4);
        let codec = Sz3Codec::default();
        let fresh = write_store(&mr, &cfg, &codec);
        // Pre-dirty the buffer: `write_store_into` must clear and reproduce
        // the exact same bytes while keeping the allocation.
        let mut buf = vec![0xABu8; 1 << 20];
        let cap = buf.capacity();
        write_store_into(&mr, &cfg, &codec, &mut buf);
        assert_eq!(buf, fresh, "buffer-reuse write drifted from write_store");
        assert!(buf.capacity() >= cap.min(fresh.len()), "allocation reused");
    }

    #[test]
    fn roundtrip_through_file() {
        let mr = test_mr();
        let cfg = StoreConfig::new(eb());
        let codec = Sz3Codec::default();
        let buf = write_store(&mr, &cfg, &codec);
        let path = std::env::temp_dir().join("hqmr_store_file_test.hqst");
        std::fs::write(&path, &buf).unwrap();
        let from_file = StoreReader::open(&path).unwrap().read_all().unwrap();
        let from_mem = StoreReader::from_bytes(buf).unwrap().read_all().unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(from_file, from_mem);
    }

    #[test]
    fn chunking_follows_config() {
        let mr = test_mr();
        let fine_blocks = mr.levels[0].blocks.len();
        assert!(fine_blocks > 4, "need a multi-block level");
        let one = write_store(
            &mr,
            &StoreConfig::new(eb()).one_chunk_per_level(),
            &NullCodec,
        );
        let many = write_store(
            &mr,
            &StoreConfig::new(eb()).with_chunk_blocks(1),
            &NullCodec,
        );
        let one = StoreReader::from_bytes(one).unwrap();
        let many = StoreReader::from_bytes(many).unwrap();
        assert_eq!(one.meta().levels[0].chunks.len(), 1);
        assert_eq!(many.meta().levels[0].chunks.len(), fine_blocks);
    }

    #[test]
    fn reader_counts_bytes() {
        let mr = test_mr();
        let cfg = StoreConfig::new(eb()).with_chunk_blocks(2);
        let r = StoreReader::from_bytes(write_store(&mr, &cfg, &NullCodec)).unwrap();
        assert_eq!(r.bytes_decoded(), 0);
        r.read_level(0).unwrap();
        assert_eq!(
            r.bytes_decoded(),
            r.meta().levels[0].compressed_bytes(),
            "a full level read decodes exactly the level's chunk bytes"
        );
        r.reset_counters();
        assert_eq!(r.bytes_decoded(), 0);
        assert_eq!(r.chunks_decoded(), 0);
    }

    #[test]
    fn open_failures_are_typed_with_path_context() {
        let missing = std::env::temp_dir().join("hqmr_store_definitely_missing.hqst");
        std::fs::remove_file(&missing).ok();
        let err = StoreReader::open(&missing)
            .map(|_| ())
            .expect_err("missing file must not open");
        match err {
            StoreError::Open { path, source } => {
                assert_eq!(path, missing);
                assert_eq!(source.kind(), std::io::ErrorKind::NotFound);
                let msg = format!("{}", StoreError::Open { path, source });
                assert!(msg.contains("hqmr_store_definitely_missing"), "{msg}");
            }
            other => panic!("expected typed Open error, got {other:?}"),
        }
        // A file that ends mid-prefix is Truncated, not a panic.
        let stub = std::env::temp_dir().join("hqmr_store_stub_prefix.hqst");
        std::fs::write(&stub, b"HQ").unwrap();
        assert!(matches!(
            StoreReader::open(&stub),
            Err(StoreError::Truncated)
        ));
        std::fs::remove_file(&stub).ok();
    }

    #[test]
    fn no_such_level_and_bad_roi_are_typed() {
        let mr = test_mr();
        let r =
            StoreReader::from_bytes(write_store(&mr, &StoreConfig::new(eb()), &NullCodec)).unwrap();
        assert!(matches!(r.read_level(99), Err(StoreError::NoSuchLevel(99))));
        let d = r.meta().levels[0].dims;
        assert!(matches!(
            r.read_roi(0, [0; 3], [d.nx + 1, d.ny, d.nz], 0.0),
            Err(StoreError::RoiOutOfBounds)
        ));
        assert!(matches!(
            r.read_roi(0, [3, 0, 0], [3, d.ny, d.nz], 0.0),
            Err(StoreError::RoiOutOfBounds)
        ));
    }

    #[test]
    fn progressive_refines_to_full_reconstruction() {
        let mr = test_mr();
        let cfg = StoreConfig::new(eb()).with_chunk_blocks(4);
        let r = StoreReader::from_bytes(write_store(&mr, &cfg, &NullCodec)).unwrap();
        let steps: Vec<RefinementStep> = r
            .progressive(Upsample::Nearest)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(steps.len(), mr.levels.len());
        // Coarse→fine order.
        for w in steps.windows(2) {
            assert!(w[0].level > w[1].level);
        }
        let full = r.read_all().unwrap().reconstruct(Upsample::Nearest);
        assert_eq!(steps.last().unwrap().field, full);
    }

    #[test]
    fn iso_read_skips_chunks_but_keeps_crossings() {
        // A smooth ramp field: most chunks are provably far from the isovalue.
        let f = Field3::from_fn(Dims3::new(8, 8, 64), |x, y, z| (x + y + z) as f32);
        let mr = to_adaptive(&f, &RoiConfig::new(8, 1.0));
        let cfg = StoreConfig {
            eb: 0.01,
            merge: MergeStrategy::Linear,
            pad: None,
            chunk_blocks: 1,
            parity_group: 0,
        };
        let r = StoreReader::from_bytes(write_store(&mr, &cfg, &Sz3Codec::default())).unwrap();
        let iso = 40.0f32;
        let kept = r.iso_chunk_indices(0, iso).unwrap();
        let total = r.meta().levels[0].chunks.len();
        assert!(
            !kept.is_empty() && kept.len() < total,
            "{}/{total}",
            kept.len()
        );

        r.reset_counters();
        let full = r.read_level(0).unwrap();
        let full_bytes = r.bytes_decoded();
        r.reset_counters();
        let skim = r.read_level_iso(0, iso).unwrap();
        let skim_bytes = r.bytes_decoded();
        assert!(skim_bytes < full_bytes, "{skim_bytes} !< {full_bytes}");
        assert_eq!(skim.blocks.len(), full.blocks.len(), "proxy blocks present");
        let (cd, a) = hqmr_vis::cell_crossings(&full.to_field(0.0), iso);
        let (_, b) = hqmr_vis::cell_crossings(&skim.to_field(0.0), iso);
        assert_eq!(a, b, "crossings must survive chunk skipping ({cd})");
    }
}
