//! Parity sidecars, scrubbing and in-place repair for `HQST`/`HQTM` stores.
//!
//! The store's CRC machinery (PR 8) *detects* a flipped bit and serves a
//! typed [`StoreError::CorruptChunk`]; this module adds the redundancy to
//! *undo* it. A `.hqpr` sidecar holds one XOR parity block per fixed-size
//! group of compressed chunks (RAID-5 style, shorter members zero-padded to
//! the group's longest), so any single damaged chunk per group is
//! reconstructible bit-exactly from its siblings plus the parity block.
//!
//! ```text
//! "HQPR" | version u8 | header_len u32le | header_crc u32le | header | parity
//!
//! header: group_size uvarint | chunk_count uvarint | store_tag u32le
//!         | n_groups uvarint | per group { parity_len uvarint, crc u32le }
//! parity: the groups' parity blocks, concatenated in order
//! ```
//!
//! Groups run over the *flat* chunk list — levels in directory order, chunks
//! in write order — so a group may span levels; `store_tag` fingerprints the
//! store's chunk-CRC table, rejecting a sidecar paired with the wrong store
//! ([`StoreError::SidecarMismatch`]) before it can "repair" chunks into
//! garbage. The sidecar carries its own header CRC and per-group parity
//! CRCs, so sidecar damage is itself typed ([`StoreError::CorruptSidecar`])
//! and only ever withdraws redundancy — it cannot poison intact data.
//!
//! [`scrub_store`]/[`scrub_temporal`] walk every chunk verifying stored
//! CRCs under an optional byte/sec [`Throttle`] (so scrubbing coexists with
//! serving), heal what parity can reach, rewrite healed chunks atomically
//! ([`repair_in_place`]), and rebuild a damaged sidecar whenever the store
//! itself verifies clean.

use crate::format::{parse_head, StoreError, StoreMeta};
use crate::temporal::{TemporalManifest, TemporalReader};
use crate::StoreReader;
use hqmr_codec::{crc32, read_uvarint, write_uvarint};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Parity sidecar magic.
pub const PARITY_MAGIC: &[u8; 4] = b"HQPR";
/// Current sidecar format version.
pub const PARITY_VERSION: u8 = 1;
/// Bytes before the header: magic + version + header_len + header_crc.
pub const PARITY_PREFIX_LEN: usize = 4 + 1 + 4 + 4;
/// Default chunks per parity group: ~1/8 byte overhead, one repairable
/// chunk per 8.
pub const DEFAULT_PARITY_GROUP: usize = 8;

/// The sidecar path conventionally paired with a store file:
/// `foo.hqst` → `foo.hqpr` (any extension is replaced).
pub fn parity_path(store: &Path) -> PathBuf {
    store.with_extension("hqpr")
}

/// One parity group: the XOR of its member chunks' compressed payloads,
/// each zero-padded to the longest member, plus the block's own CRC.
#[derive(Debug, Clone, PartialEq)]
struct ParityGroup {
    crc: u32,
    parity: Vec<u8>,
}

/// An in-memory `.hqpr` sidecar: XOR parity over fixed-size groups of a
/// store's compressed chunks.
#[derive(Debug, Clone, PartialEq)]
pub struct ParitySidecar {
    group: usize,
    chunk_count: usize,
    store_tag: u32,
    groups: Vec<ParityGroup>,
}

/// Fingerprint of a store's chunk-CRC table (flat order): ties a sidecar to
/// the exact chunk payloads it was computed over.
fn store_tag(meta: &StoreMeta) -> u32 {
    let mut crcs = Vec::with_capacity(meta.chunk_count() * 4);
    for lm in &meta.levels {
        for c in &lm.chunks {
            crcs.extend_from_slice(&c.crc.to_le_bytes());
        }
    }
    crc32(&crcs)
}

/// The flat `(level, block)` chunk list in directory order — the order
/// parity groups are formed over.
pub fn flat_chunks(meta: &StoreMeta) -> Vec<(usize, usize)> {
    meta.levels
        .iter()
        .enumerate()
        .flat_map(|(l, lm)| (0..lm.chunks.len()).map(move |b| (l, b)))
        .collect()
}

/// Flat index of `(level, block)`, if it exists in `meta`.
fn flat_index(meta: &StoreMeta, level: usize, block: usize) -> Option<usize> {
    let lm = meta.levels.get(level)?;
    if block >= lm.chunks.len() {
        return None;
    }
    let before: usize = meta.levels[..level].iter().map(|l| l.chunks.len()).sum();
    Some(before + block)
}

fn xor_into(acc: &mut [u8], bytes: &[u8]) {
    for (a, b) in acc.iter_mut().zip(bytes) {
        *a ^= b;
    }
}

impl ParitySidecar {
    /// Chunks per parity group.
    pub fn group_size(&self) -> usize {
        self.group
    }

    /// Total parity payload bytes (the sidecar's storage overhead, modulo
    /// the small header).
    pub fn parity_bytes(&self) -> u64 {
        self.groups.iter().map(|g| g.parity.len() as u64).sum()
    }

    /// Whether this sidecar describes `meta`'s exact chunk payloads.
    pub fn matches(&self, meta: &StoreMeta) -> bool {
        self.chunk_count == meta.chunk_count() && self.store_tag == store_tag(meta)
    }

    /// Builds parity over a complete in-memory store buffer. `group == 0`
    /// is rejected as malformed; pass [`DEFAULT_PARITY_GROUP`] for the
    /// stock trade-off.
    pub fn from_store_bytes(buf: &[u8], group: usize) -> Result<ParitySidecar, StoreError> {
        let (meta, data_start) = parse_head(buf)?;
        let data = buf
            .get(data_start as usize..)
            .ok_or(StoreError::Truncated)?;
        Self::build(&meta, group, |level, block| {
            let c = &meta.levels[level].chunks[block];
            let start = c.offset as usize;
            data.get(start..start.saturating_add(c.len))
                .map(<[u8]>::to_vec)
                .ok_or(StoreError::Truncated)
        })
    }

    /// Builds parity by fetching (and CRC-verifying) every chunk through
    /// `reader` — the file-backed form used when rebuilding a lost sidecar.
    pub fn from_reader(reader: &StoreReader, group: usize) -> Result<ParitySidecar, StoreError> {
        let meta = reader.meta().clone();
        Self::build(&meta, group, |level, block| {
            reader
                .fetch_chunk_bytes(level, block)
                .map(|b| b.into_owned())
        })
    }

    fn build(
        meta: &StoreMeta,
        group: usize,
        mut fetch: impl FnMut(usize, usize) -> Result<Vec<u8>, StoreError>,
    ) -> Result<ParitySidecar, StoreError> {
        if group == 0 {
            return Err(StoreError::CorruptSidecar("group size zero"));
        }
        let flat = flat_chunks(meta);
        let mut groups = Vec::with_capacity(flat.len().div_ceil(group));
        for members in flat.chunks(group) {
            let longest = members
                .iter()
                .map(|&(l, b)| meta.levels[l].chunks[b].len)
                .max()
                .unwrap_or(0);
            let mut parity = vec![0u8; longest];
            for &(l, b) in members {
                xor_into(&mut parity, &fetch(l, b)?);
            }
            groups.push(ParityGroup {
                crc: crc32(&parity),
                parity,
            });
        }
        Ok(ParitySidecar {
            group,
            chunk_count: flat.len(),
            store_tag: store_tag(meta),
            groups,
        })
    }

    /// Serializes the sidecar (prefix + CRC-guarded header + parity
    /// payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut header = Vec::new();
        write_uvarint(&mut header, self.group as u64);
        write_uvarint(&mut header, self.chunk_count as u64);
        header.extend_from_slice(&self.store_tag.to_le_bytes());
        write_uvarint(&mut header, self.groups.len() as u64);
        for g in &self.groups {
            write_uvarint(&mut header, g.parity.len() as u64);
            header.extend_from_slice(&g.crc.to_le_bytes());
        }
        let mut out = Vec::with_capacity(PARITY_PREFIX_LEN + header.len());
        out.extend_from_slice(PARITY_MAGIC);
        out.push(PARITY_VERSION);
        out.extend_from_slice(&(header.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&header).to_le_bytes());
        out.extend_from_slice(&header);
        for g in &self.groups {
            out.extend_from_slice(&g.parity);
        }
        out
    }

    /// Parses [`Self::to_bytes`] output. Every structural defect — bad
    /// magic/version, truncation, header CRC failure, internal
    /// inconsistency, trailing bytes — is the typed
    /// [`StoreError::CorruptSidecar`]; hostile input never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<ParitySidecar, StoreError> {
        let bad = StoreError::CorruptSidecar;
        if bytes.len() < PARITY_PREFIX_LEN {
            return Err(bad("truncated prefix"));
        }
        if &bytes[..4] != PARITY_MAGIC {
            return Err(bad("bad magic"));
        }
        if bytes[4] != PARITY_VERSION {
            return Err(bad("unsupported version"));
        }
        let header_len = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
        let header_crc = u32::from_le_bytes(bytes[9..13].try_into().unwrap());
        let header = bytes
            .get(PARITY_PREFIX_LEN..PARITY_PREFIX_LEN.saturating_add(header_len))
            .ok_or(bad("truncated header"))?;
        if crc32(header) != header_crc {
            return Err(bad("header failed CRC"));
        }
        let mut pos = 0usize;
        let rd = |pos: &mut usize| -> Result<usize, StoreError> {
            read_uvarint(header, pos)
                .map(|v| v as usize)
                .ok_or(bad("varint"))
        };
        let group = rd(&mut pos)?;
        if group == 0 {
            return Err(bad("group size zero"));
        }
        let chunk_count = rd(&mut pos)?;
        let tag_bytes = header
            .get(pos..pos.saturating_add(4))
            .ok_or(bad("store tag"))?;
        let store_tag = u32::from_le_bytes(tag_bytes.try_into().unwrap());
        pos += 4;
        let n_groups = rd(&mut pos)?;
        if n_groups != chunk_count.div_ceil(group) {
            return Err(bad("group count inconsistent with chunk count"));
        }
        let mut lens = Vec::with_capacity(n_groups.min(1 << 16));
        let mut crcs = Vec::with_capacity(n_groups.min(1 << 16));
        let mut total: usize = 0;
        for _ in 0..n_groups {
            let len = rd(&mut pos)?;
            total = total
                .checked_add(len)
                .ok_or(bad("parity length overflow"))?;
            let crc_bytes = header
                .get(pos..pos.saturating_add(4))
                .ok_or(bad("group crc"))?;
            crcs.push(u32::from_le_bytes(crc_bytes.try_into().unwrap()));
            pos += 4;
            lens.push(len);
        }
        if pos != header.len() {
            return Err(bad("trailing header bytes"));
        }
        let payload = &bytes[PARITY_PREFIX_LEN + header_len..];
        if payload.len() != total {
            return Err(bad("parity payload length mismatch"));
        }
        let mut groups = Vec::with_capacity(n_groups.min(1 << 16));
        let mut off = 0usize;
        for (len, crc) in lens.into_iter().zip(crcs) {
            groups.push(ParityGroup {
                crc,
                parity: payload[off..off + len].to_vec(),
            });
            off += len;
        }
        Ok(ParitySidecar {
            group,
            chunk_count,
            store_tag,
            groups,
        })
    }

    /// Reads and parses the sidecar conventionally paired with `store`
    /// (see [`parity_path`]). `Ok(None)` when no sidecar file exists;
    /// parse failures and mismatches are typed errors.
    pub fn open_for(store: &Path, meta: &StoreMeta) -> Result<Option<ParitySidecar>, StoreError> {
        let path = parity_path(store);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let sidecar = Self::from_bytes(&bytes)?;
        if !sidecar.matches(meta) {
            return Err(StoreError::SidecarMismatch);
        }
        Ok(Some(sidecar))
    }

    /// Rebuilds the compressed payload of chunk `(level, block)` from its
    /// group siblings and the parity block, verifying the result against
    /// the chunk table's stored CRC — a returned buffer is bit-exact by
    /// construction. Fails typed when the redundancy is exhausted: a
    /// damaged sibling or parity block is
    /// [`StoreError::Unrepairable`]`{ level, block }`.
    pub fn reconstruct(
        &self,
        reader: &StoreReader,
        level: usize,
        block: usize,
    ) -> Result<Vec<u8>, StoreError> {
        let meta = reader.meta();
        if !self.matches(meta) {
            return Err(StoreError::SidecarMismatch);
        }
        let unrepairable = || StoreError::Unrepairable { level, block };
        let target = flat_index(meta, level, block)
            .ok_or(StoreError::Malformed("chunk index out of range"))?;
        let grp = self
            .groups
            .get(target / self.group)
            .ok_or_else(unrepairable)?;
        if crc32(&grp.parity) != grp.crc {
            // The parity block itself rotted: typed redundancy exhaustion,
            // never a silent mis-repair.
            return Err(unrepairable());
        }
        let flat = flat_chunks(meta);
        let lo = (target / self.group) * self.group;
        let hi = (lo + self.group).min(flat.len());
        let mut acc = grp.parity.clone();
        for &(l, b) in &flat[lo..hi] {
            if (l, b) == (level, block) {
                continue;
            }
            // A sibling failing its own CRC means two damaged chunks share
            // the group — XOR parity cannot recover either.
            let bytes = reader.fetch_chunk_bytes(l, b).map_err(|_| unrepairable())?;
            if bytes.len() > acc.len() {
                return Err(StoreError::SidecarMismatch);
            }
            xor_into(&mut acc, &bytes);
        }
        let c = &meta.levels[level].chunks[block];
        if c.len > acc.len() {
            return Err(StoreError::SidecarMismatch);
        }
        acc.truncate(c.len);
        if crc32(&acc) != c.crc {
            return Err(unrepairable());
        }
        Ok(acc)
    }
}

/// A byte/sec rate limiter pacing scrub I/O so a background scrubber
/// coexists with foreground serving instead of saturating the device.
///
/// Accounting is cumulative with a one-second idle rebase: after the
/// scrubber sleeps between passes, the budget does not accumulate into an
/// unbounded burst.
#[derive(Debug)]
pub struct Throttle {
    bytes_per_sec: u64,
    start: Instant,
    consumed: u64,
}

impl Throttle {
    /// A limiter at `bytes_per_sec`; `0` disables pacing entirely.
    pub fn new(bytes_per_sec: u64) -> Self {
        Throttle {
            bytes_per_sec,
            start: Instant::now(),
            consumed: 0,
        }
    }

    /// Accounts `bytes` of scrub I/O, sleeping whatever keeps the
    /// cumulative rate at or under the configured limit.
    pub fn consume(&mut self, bytes: u64) {
        if self.bytes_per_sec == 0 {
            return;
        }
        self.consumed = self.consumed.saturating_add(bytes);
        let due = Duration::from_secs_f64(self.consumed as f64 / self.bytes_per_sec as f64);
        let elapsed = self.start.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        } else if elapsed > due + Duration::from_secs(1) {
            // Idle long enough to bank a burst: rebase so the limit stays a
            // rate, not a long-run average.
            self.start = Instant::now();
            self.consumed = 0;
        }
    }
}

/// The health of a store's parity sidecar as a scrub found it.
#[derive(Debug, Clone, PartialEq)]
pub enum SidecarStatus {
    /// Present, parsed, and matching the store.
    Present,
    /// No sidecar file exists — the store is unprotected.
    Missing,
    /// The sidecar file exists but is damaged or describes another store;
    /// the message is the typed parse failure.
    Damaged(String),
}

/// What one scrub pass over a store found and did.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubReport {
    /// Chunks whose stored CRC verified.
    pub verified: usize,
    /// Chunks that failed CRC and were reconstructed bit-exactly from
    /// parity.
    pub repaired: usize,
    /// `(level, block)` of chunks that failed CRC with no redundancy left.
    pub unrepairable: Vec<(usize, usize)>,
    /// Compressed bytes read (the quantity the [`Throttle`] paces).
    pub bytes_scanned: u64,
    /// Sidecar health at scrub time.
    pub sidecar: SidecarStatus,
    /// Whether the scrub rewrote the sidecar (after healing chunks, or to
    /// replace a damaged sidecar over a clean store).
    pub sidecar_rebuilt: bool,
}

impl ScrubReport {
    /// Whether every chunk is (now) servable bit-exactly.
    pub fn all_exact(&self) -> bool {
        self.unrepairable.is_empty()
    }
}

/// Verifies every chunk of the store at `path` against its stored CRC,
/// reconstructing damaged chunks from the paired `.hqpr` sidecar (when one
/// exists and matches) and rewriting healed chunks atomically via
/// [`repair_in_place`]. A damaged sidecar over a fully-verified store is
/// rebuilt in place; a damaged store with no usable sidecar reports its
/// casualties as `unrepairable` rather than failing the scrub. `throttle`
/// paces the compressed bytes read.
pub fn scrub_store(
    path: &Path,
    mut throttle: Option<&mut Throttle>,
) -> Result<ScrubReport, StoreError> {
    let reader = StoreReader::open(path)?;
    let (sidecar, mut status) = match ParitySidecar::open_for(path, reader.meta()) {
        Ok(Some(s)) => (Some(s), SidecarStatus::Present),
        Ok(None) => (None, SidecarStatus::Missing),
        Err(e) => (None, SidecarStatus::Damaged(e.to_string())),
    };
    let mut report = ScrubReport {
        verified: 0,
        repaired: 0,
        unrepairable: Vec::new(),
        bytes_scanned: 0,
        sidecar: SidecarStatus::Missing,
        sidecar_rebuilt: false,
    };
    let mut healed: Vec<(usize, usize, Vec<u8>)> = Vec::new();
    for (level, block) in flat_chunks(reader.meta()) {
        let len = reader.meta().levels[level].chunks[block].len as u64;
        match reader.fetch_chunk_bytes(level, block) {
            Ok(_) => report.verified += 1,
            Err(StoreError::CorruptChunk { .. }) => {
                match sidecar
                    .as_ref()
                    .map(|s| s.reconstruct(&reader, level, block))
                {
                    Some(Ok(bytes)) => {
                        report.repaired += 1;
                        healed.push((level, block, bytes));
                    }
                    _ => report.unrepairable.push((level, block)),
                }
            }
            Err(e) => return Err(e),
        }
        report.bytes_scanned += len;
        if let Some(t) = throttle.as_deref_mut() {
            t.consume(len);
        }
    }
    if !healed.is_empty() {
        repair_in_place(path, &healed)?;
    }
    // A sidecar that rotted (or never matched) is itself repairable as long
    // as every chunk now verifies: rebuild it from the healed store.
    let parity_ok = match (&status, &sidecar) {
        (SidecarStatus::Present, Some(s)) => s.groups.iter().all(|g| crc32(&g.parity) == g.crc),
        _ => false,
    };
    if !parity_ok && report.unrepairable.is_empty() && !matches!(status, SidecarStatus::Missing) {
        let group = sidecar.as_ref().map_or(DEFAULT_PARITY_GROUP, |s| s.group);
        let reopened = StoreReader::open(path)?;
        let fresh = ParitySidecar::from_reader(&reopened, group)?;
        write_atomic(&parity_path(path), &fresh.to_bytes())?;
        report.sidecar_rebuilt = true;
        status = SidecarStatus::Present;
    }
    report.sidecar = status;
    Ok(report)
}

/// Rewrites the store at `path` with `healed` chunk payloads patched into
/// the data region, through a temp-sibling + rename + parent-fsync path —
/// a crash leaves either the old store or the fully repaired one, never a
/// half-patched file. Every healed payload must match the chunk table's
/// recorded length and CRC (which parity reconstruction guarantees).
pub fn repair_in_place(path: &Path, healed: &[(usize, usize, Vec<u8>)]) -> Result<(), StoreError> {
    let mut buf = std::fs::read(path).map_err(|source| StoreError::Open {
        path: path.to_path_buf(),
        source,
    })?;
    let (meta, data_start) = parse_head(&buf)?;
    for (level, block, bytes) in healed {
        let c = meta
            .levels
            .get(*level)
            .and_then(|lm| lm.chunks.get(*block))
            .ok_or(StoreError::Malformed("healed chunk index out of range"))?;
        if bytes.len() != c.len || crc32(bytes) != c.crc {
            return Err(StoreError::Malformed("healed payload fails chunk table"));
        }
        let start = data_start as usize + c.offset as usize;
        buf.get_mut(start..start + c.len)
            .ok_or(StoreError::Truncated)?
            .copy_from_slice(bytes);
    }
    write_atomic(path, &buf)?;
    Ok(())
}

/// Scrub outcome of one temporal (`HQTM`) run: the manifest's verdict plus
/// one per-frame [`ScrubReport`] (or the typed error that stopped that
/// frame's scrub — a frame whose very head is unreadable cannot be walked).
#[derive(Debug)]
pub struct TemporalScrubReport {
    /// Per frame: the frame's file name and its scrub outcome.
    pub frames: Vec<(String, Result<ScrubReport, StoreError>)>,
}

impl TemporalScrubReport {
    /// Total chunks verified across frames.
    pub fn verified(&self) -> usize {
        self.reports().map(|r| r.verified).sum()
    }

    /// Total chunks repaired across frames.
    pub fn repaired(&self) -> usize {
        self.reports().map(|r| r.repaired).sum()
    }

    /// Total unrepairable chunks across scrubable frames, plus one per
    /// frame that could not be scrubbed at all.
    pub fn unrepairable(&self) -> usize {
        self.frames
            .iter()
            .map(|(_, r)| match r {
                Ok(rep) => rep.unrepairable.len(),
                Err(_) => 1,
            })
            .sum()
    }

    /// Whether every frame scrubbed and every chunk is servable exactly.
    pub fn all_exact(&self) -> bool {
        self.frames
            .iter()
            .all(|(_, r)| matches!(r, Ok(rep) if rep.all_exact()))
    }

    fn reports(&self) -> impl Iterator<Item = &ScrubReport> {
        self.frames.iter().filter_map(|(_, r)| r.as_ref().ok())
    }
}

/// Scrubs every frame of the temporal run at `dir` (see [`scrub_store`] for
/// per-frame semantics); the shared `throttle` paces the whole walk. The
/// manifest itself is read and CRC-validated first — a corrupt manifest is
/// a typed error, since without it the frame list is unknown.
pub fn scrub_temporal(
    dir: &Path,
    mut throttle: Option<&mut Throttle>,
) -> Result<TemporalScrubReport, StoreError> {
    let manifest = TemporalReader::read_manifest(dir)?;
    let mut frames = Vec::with_capacity(manifest.frames.len());
    for fm in &manifest.frames {
        let outcome = scrub_store(&dir.join(&fm.file), throttle.as_deref_mut());
        frames.push((fm.file.clone(), outcome));
    }
    Ok(TemporalScrubReport { frames })
}

/// Loads the per-frame parity sidecars of a temporal run for serve-layer
/// auto-repair: index `t` holds frame `t`'s sidecar, `None` where the
/// sidecar is absent, damaged, or paired with the wrong frame (serving then
/// simply has no redundancy for that frame — never a hard failure).
pub fn temporal_sidecars(dir: &Path, manifest: &TemporalManifest) -> Vec<Option<ParitySidecar>> {
    manifest
        .frames
        .iter()
        .map(|fm| {
            let frame_path = dir.join(&fm.file);
            let head = StoreReader::open(&frame_path).ok()?;
            ParitySidecar::open_for(&frame_path, head.meta())
                .ok()
                .flatten()
        })
        .collect()
}

/// Atomic replace: write a temp sibling, flush it to the device, rename
/// over the target, then fsync the parent directory (unix) so the rename
/// itself is durable. The store crate cannot reuse `hqmr-core`'s private
/// writer (dependency direction), so the idiom is kept here in parallel.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    let parent = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = parent.join(format!(
        ".{}.{}.{}.tmp",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("hqpr"),
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    let write = (|| {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        f.write_all(bytes)?;
        f.into_inner().map_err(std::io::Error::other)?.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if write.is_err() {
        std::fs::remove_file(&tmp).ok();
        return write;
    }
    #[cfg(unix)]
    {
        if let Ok(dirf) = std::fs::File::open(parent) {
            let _ = dirf.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{write_store, StoreConfig};
    use hqmr_codec::NullCodec;
    use hqmr_grid::synth;
    use hqmr_mr::{to_adaptive, RoiConfig};

    fn store() -> Vec<u8> {
        let f = synth::nyx_like(16, 77);
        let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
        write_store(&mr, &StoreConfig::new(1e6).with_chunk_blocks(1), &NullCodec)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hqmr_scrub_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn sidecar_roundtrips_and_binds_to_store() {
        let buf = store();
        let sc = ParitySidecar::from_store_bytes(&buf, 4).unwrap();
        let back = ParitySidecar::from_bytes(&sc.to_bytes()).unwrap();
        assert_eq!(back, sc);
        let (meta, _) = parse_head(&buf).unwrap();
        assert!(back.matches(&meta));
        assert!(back.parity_bytes() > 0);

        // A different store's sidecar is rejected wholesale.
        let f = synth::nyx_like(16, 78);
        let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
        let other = write_store(&mr, &StoreConfig::new(1e6).with_chunk_blocks(1), &NullCodec);
        let (other_meta, _) = parse_head(&other).unwrap();
        assert!(!back.matches(&other_meta));
    }

    #[test]
    fn single_flip_reconstructs_bit_exactly() {
        let clean = store();
        let sc = ParitySidecar::from_store_bytes(&clean, 4).unwrap();
        let (meta, data_start) = parse_head(&clean).unwrap();
        let c = meta.levels[0].chunks[0].clone();
        assert!(c.len > 0);
        let original = clean[data_start as usize + c.offset as usize
            ..data_start as usize + c.offset as usize + c.len]
            .to_vec();

        let mut dirty = clean.clone();
        dirty[data_start as usize + c.offset as usize] ^= 0x40;
        let reader = StoreReader::from_bytes(dirty).unwrap();
        assert!(matches!(
            reader.fetch_chunk_bytes(0, 0),
            Err(StoreError::CorruptChunk { level: 0, block: 0 })
        ));
        let rebuilt = sc.reconstruct(&reader, 0, 0).unwrap();
        assert_eq!(rebuilt, original, "reconstruction must be bit-exact");
    }

    #[test]
    fn two_flips_in_one_group_are_typed_unrepairable() {
        let clean = store();
        let sc = ParitySidecar::from_store_bytes(&clean, 4).unwrap();
        let (meta, data_start) = parse_head(&clean).unwrap();
        let flat = flat_chunks(&meta);
        assert!(flat.len() >= 2, "need two chunks in group 0");
        let mut dirty = clean.clone();
        for &(l, b) in &flat[..2] {
            let c = &meta.levels[l].chunks[b];
            dirty[data_start as usize + c.offset as usize] ^= 0x01;
        }
        let reader = StoreReader::from_bytes(dirty).unwrap();
        let (l0, b0) = flat[0];
        assert!(matches!(
            sc.reconstruct(&reader, l0, b0),
            Err(StoreError::Unrepairable { .. })
        ));
    }

    #[test]
    fn damaged_sidecar_bytes_are_typed_never_panic() {
        let buf = store();
        let sc = ParitySidecar::from_store_bytes(&buf, 4).unwrap();
        let bytes = sc.to_bytes();
        for cut in [0, 3, PARITY_PREFIX_LEN - 1, bytes.len() - 1] {
            assert!(matches!(
                ParitySidecar::from_bytes(&bytes[..cut]),
                Err(StoreError::CorruptSidecar(_))
            ));
        }
        for i in 0..PARITY_PREFIX_LEN + 8 {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            // Any outcome but a panic is fine; structural damage must stay
            // typed (a payload flip parses but fails at reconstruct time).
            let _ = ParitySidecar::from_bytes(&bad);
        }
    }

    #[test]
    fn scrub_heals_file_in_place() {
        let dir = tmp_dir("heal");
        let clean = store();
        let sc = ParitySidecar::from_store_bytes(&clean, DEFAULT_PARITY_GROUP).unwrap();
        let path = dir.join("a.hqst");
        let (meta, data_start) = parse_head(&clean).unwrap();
        let c = meta.levels[0].chunks[0].clone();
        let mut dirty = clean.clone();
        dirty[data_start as usize + c.offset as usize] ^= 0xFF;
        std::fs::write(&path, &dirty).unwrap();
        std::fs::write(parity_path(&path), sc.to_bytes()).unwrap();

        let report = scrub_store(&path, None).unwrap();
        assert_eq!(report.repaired, 1);
        assert!(report.all_exact());
        assert_eq!(report.sidecar, SidecarStatus::Present);
        assert_eq!(std::fs::read(&path).unwrap(), clean, "healed bit-exactly");

        // Second pass: everything verifies, nothing to do.
        let again = scrub_store(&path, None).unwrap();
        assert_eq!(again.repaired, 0);
        assert_eq!(again.verified, meta.chunk_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scrub_without_sidecar_reports_unrepairable() {
        let dir = tmp_dir("bare");
        let clean = store();
        let path = dir.join("b.hqst");
        let (meta, data_start) = parse_head(&clean).unwrap();
        let c = meta.levels[0].chunks[0].clone();
        let mut dirty = clean;
        dirty[data_start as usize + c.offset as usize] ^= 0xFF;
        std::fs::write(&path, &dirty).unwrap();
        let report = scrub_store(&path, None).unwrap();
        assert_eq!(report.sidecar, SidecarStatus::Missing);
        assert_eq!(report.unrepairable, vec![(0, 0)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scrub_rebuilds_rotted_sidecar_over_clean_store() {
        let dir = tmp_dir("rebuild");
        let clean = store();
        let sc = ParitySidecar::from_store_bytes(&clean, DEFAULT_PARITY_GROUP).unwrap();
        let path = dir.join("c.hqst");
        std::fs::write(&path, &clean).unwrap();
        let mut rotten = sc.to_bytes();
        rotten[6] ^= 0xFF; // header length byte → typed CorruptSidecar
        std::fs::write(parity_path(&path), &rotten).unwrap();

        let report = scrub_store(&path, None).unwrap();
        assert!(report.sidecar_rebuilt);
        assert_eq!(report.sidecar, SidecarStatus::Present);
        let restored =
            ParitySidecar::from_bytes(&std::fs::read(parity_path(&path)).unwrap()).unwrap();
        assert_eq!(restored, sc);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn throttle_paces_consumption() {
        let mut t = Throttle::new(1 << 20); // 1 MiB/s
        let t0 = Instant::now();
        t.consume(1 << 18); // 256 KiB → ≥ ~250ms
        assert!(t0.elapsed() >= Duration::from_millis(200));
        let mut unlimited = Throttle::new(0);
        let t1 = Instant::now();
        unlimited.consume(u64::MAX / 2);
        assert!(t1.elapsed() < Duration::from_millis(50));
    }
}
