//! Workspace-local stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so the data-parallel
//! surface the workspace uses — `par_chunks_mut(..).for_each`, optionally
//! `.enumerate()`, and `par_iter().map(..).collect()` — is reimplemented on
//! `std::thread::scope`. Work is split into one contiguous group per
//! available core; results of `collect` preserve input order. Single-item or
//! single-core inputs run inline with zero thread overhead.
//!
//! Swapping the real rayon back in is a per-crate `Cargo.toml` change; call
//! sites don't move.

/// Number of worker threads for `n` independent items.
fn threads_for(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1))
}

/// Runs `f(index, item)` over all items, fanning out across cores.
fn parallel_indexed<I: Send, F: Fn(usize, I) + Sync>(items: Vec<I>, f: F) {
    let nt = threads_for(items.len());
    if nt <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let per = items.len().div_ceil(nt);
    let mut groups: Vec<Vec<(usize, I)>> = Vec::with_capacity(nt);
    let mut it = items.into_iter().enumerate();
    loop {
        let g: Vec<(usize, I)> = it.by_ref().take(per).collect();
        if g.is_empty() {
            break;
        }
        groups.push(g);
    }
    let f = &f;
    std::thread::scope(|s| {
        for g in groups {
            s.spawn(move || {
                for (i, item) in g {
                    f(i, item);
                }
            });
        }
    });
}

/// `slice.par_chunks_mut(n)` entry point.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel equivalent of [`slice::chunks_mut`].
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Pending parallel iteration over mutable chunks.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Attaches chunk indices, matching rayon's `enumerate()`.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut(self)
    }

    /// Applies `f` to every chunk, in parallel.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        let chunks: Vec<&mut [T]> = self.slice.chunks_mut(self.size).collect();
        parallel_indexed(chunks, |_, c| f(c));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumerateChunksMut<'a, T>(ParChunksMut<'a, T>);

impl<T: Send> EnumerateChunksMut<'_, T> {
    /// Applies `f` to every `(index, chunk)` pair, in parallel.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        let chunks: Vec<&mut [T]> = self.0.slice.chunks_mut(self.0.size).collect();
        parallel_indexed(chunks, |i, c| f((i, c)));
    }
}

/// `collection.par_iter()` entry point.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: 'a;
    /// Parallel equivalent of `.iter()`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every item through `f` (lazily; drive with `collect`).
    pub fn map<R, F: Fn(&'a T) -> R>(self, f: F) -> ParMap<'a, T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Mapped parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Evaluates in parallel, preserving input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let n = self.items.len();
        let nt = threads_for(n);
        if nt <= 1 {
            return self.items.iter().map(&self.f).collect::<Vec<R>>().into();
        }
        let per = n.div_ceil(nt);
        let f = &self.f;
        let out: Vec<R> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .items
                .chunks(per)
                .map(|chunk| s.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                .collect();
            let mut all = Vec::with_capacity(n);
            for h in handles {
                all.extend(h.join().expect("rayon-shim worker panicked"));
            }
            all
        });
        out.into()
    }
}

/// Drop-in for `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_touches_every_chunk() {
        let mut v = vec![0u64; 1000];
        v.par_chunks_mut(7).for_each(|c| {
            for x in c {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn enumerate_matches_sequential_indices() {
        let mut v = vec![0usize; 64];
        v.par_chunks_mut(8).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i;
            }
        });
        let expect: Vec<usize> = (0..64).map(|k| k / 8).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u32> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x as u64 * 2).collect();
        assert_eq!(doubled, (0..1000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let mut one = [5u8];
        one.par_chunks_mut(3).for_each(|c| c[0] += 1);
        assert_eq!(one[0], 6);
    }
}
