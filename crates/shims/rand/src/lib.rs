//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the small
//! slice of `rand` 0.8 this workspace actually uses is reimplemented here and
//! wired in via a path dependency. The API mirrors `rand` closely enough that
//! swapping the real crate back in is a one-line `Cargo.toml` change per
//! crate; the statistical quality (SplitMix64) is more than sufficient for
//! the seeded, reproducible streams the workspace needs (synthetic fields,
//! sampling, SGD shuffling).
//!
//! Implemented surface: `rngs::StdRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open and inclusive ranges of the common
//! numeric types, and [`seq::SliceRandom::shuffle`].

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` convenience seeder is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// A range that knows how to draw a uniform sample of `T` from it.
///
/// Mirroring real `rand`, the implementations are blanket impls over
/// [`SampleUniform`] so that `R = Range<T>` structurally pins `T` — type
/// inference at `gen_range(0.0..0.6)` call sites then behaves exactly like
/// the real crate (float literals fall back to `f64`).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Types `gen_range` can sample uniformly.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from the half-open interval `[lo, hi)`.
    fn sample_half_open<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self;
    /// Uniform sample from the closed interval `[lo, hi]`.
    fn sample_inclusive<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        debug_assert!(self.start < self.end, "empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        debug_assert!(lo <= hi, "empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
    fn sample_inclusive<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + u * (hi - lo)
    }
    fn sample_inclusive<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )+};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stands in for `rand`'s
    /// `StdRng`; same name so call sites don't change.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1234_5678_9ABC_DEF0,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice utilities.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen_range(0u64..u64::MAX), c.gen_range(0u64..u64::MAX));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(0.5f32..0.8);
            assert!((0.5..0.8).contains(&g));
            let i = rng.gen_range(1..=4);
            assert!((1..=4).contains(&i));
            let u = rng.gen_range(0usize..17);
            assert!(u < 17);
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "50 elements staying put is astronomically unlikely"
        );
    }
}
