//! Workspace-local stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of criterion's API the workspace benches use — `criterion_group!`,
//! `criterion_main!`, benchmark groups with `sample_size`/`throughput`, and
//! `Bencher::iter` — backed by a plain wall-clock loop. No statistics, plots,
//! or outlier rejection: each bench runs a warm-up pass plus `sample_size`
//! timed samples and prints min/mean per iteration (and MiB/s when a byte
//! throughput is set). Benches must set `harness = false` (the usual
//! criterion arrangement), which they already do.

use std::fmt::Display;
use std::hint::black_box as bb;
use std::time::{Duration, Instant};

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {
    /// `--test` mode (mirroring real criterion's `cargo bench -- --test`):
    /// each benchmark runs exactly once, untimed, so CI can prove the bench
    /// binaries still build and execute without paying for measurement.
    test_mode: bool,
}

impl Criterion {
    /// Context honouring the process arguments (`--test` recognized).
    pub fn from_args() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
            test_mode,
        }
    }
}

/// Throughput annotation for a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("sz3", 64)` renders as `sz3/64`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A group of benchmarks sharing sample count and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each bench collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if self.test_mode {
            let mut b = Bencher {
                samples: Vec::new(),
                sample_size: 0,
            };
            f(&mut b);
            println!("{}/{}: ok (test mode)", self.name, id.label);
            return self;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let (min, mean) = b.summarize();
        let mut line = format!(
            "{}/{}: min {} mean {} ({} samples)",
            self.name,
            id.label,
            fmt_duration(min),
            fmt_duration(mean),
            b.samples.len()
        );
        if let Some(Throughput::Bytes(n)) = self.throughput {
            let mibs = n as f64 / (1 << 20) as f64 / mean.as_secs_f64().max(1e-12);
            line.push_str(&format!(" [{mibs:.1} MiB/s]"));
        }
        println!("{line}");
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        bb(routine());
        for _ in 0..self.sample_size {
            let t = Instant::now();
            bb(routine());
            self.samples.push(t.elapsed());
        }
    }

    fn summarize(&self) -> (Duration, Duration) {
        if self.samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let total: Duration = self.samples.iter().sum();
        (min, total / self.samples.len() as u32)
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    bb(x)
}

/// Declares a bench entry function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Bytes(1024));
        let mut runs = 0u32;
        g.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        // One warm-up + three samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with(" ms"));
        assert!(fmt_duration(Duration::from_micros(7)).ends_with(" µs"));
    }
}
