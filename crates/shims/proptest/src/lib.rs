//! Workspace-local stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the slice of proptest
//! this workspace's property tests use is reimplemented here: the
//! `proptest! { ... }` macro (with an optional `#![proptest_config(...)]`
//! header), range and `any::<T>()` strategies, `collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from the real crate, deliberately accepted: no shrinking (a
//! failing case reports its values via the assertion message only), and the
//! case stream is a fixed deterministic sequence per test name, so failures
//! reproduce exactly across runs.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// Per-test configuration. Only the case count is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator driving a test's case stream.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from the test name, so each test has a stable, independent
    /// stream.
    pub fn deterministic(test_name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Produces uniformly random values over a type's whole domain.
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types [`any`] can generate.
pub trait Arbitrary {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a range.
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(!r.is_empty(), "empty vec size range");
            SizeRange(r)
        }
    }

    /// Strategy generating `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len)` where `len` is a `usize` or `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.size.0.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Assertion with proptest's name; panics like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Equality assertion with proptest's name; panics like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// The `proptest! { ... }` block: expands each contained
/// `fn name(arg in strategy, ...) { body }` into a `#[test]`-able function
/// that draws `cases` argument tuples and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!{ cfg = ($cfg); $($rest)* }
    };
}

/// Drop-in for `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges honour their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u32..17, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        /// Vec strategies honour length specs, fixed and ranged.
        #[test]
        fn vec_lengths(fixed in collection::vec(any::<u8>(), 27),
                       ranged in collection::vec(0u32..5, 0..12)) {
            prop_assert_eq!(fixed.len(), 27);
            prop_assert!(ranged.len() < 12);
            prop_assert!(ranged.iter().all(|&v| v < 5));
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut a = TestRng::deterministic("alpha");
        let mut b = TestRng::deterministic("alpha");
        let mut c = TestRng::deterministic("beta");
        let s = 0u64..u64::MAX;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
        assert_ne!(s.generate(&mut a), s.generate(&mut c));
    }
}
