//! Dedicated coverage for `hqmr_mr::adaptive` — the uniform → adaptive
//! conversion (`to_adaptive`), the Fig. 4 ROI visualization helper
//! (`roi_only_field`) and the paper-default configuration
//! (`RoiConfig::paper_default`), exercised as an integration surface rather
//! than through the module's own unit tests: ROI blocks must survive at full
//! resolution bit-for-bit, off-ROI blocks must be the exact 2× average
//! downsample, and reconstruction error off-ROI must be bounded by the
//! field's local variation.

use hqmr_grid::{BlockGrid, Dims3, Field3};
use hqmr_mr::{roi_only_field, to_adaptive, RoiConfig, Upsample};

/// A field whose value range concentrates in one octant: a linear ramp
/// background (gentle, low range per block) plus a high-frequency spike
/// region (high range) in the low corner.
fn corner_spike_field(n: usize) -> Field3 {
    Field3::from_fn(Dims3::cube(n), |x, y, z| {
        let ramp = 0.02 * (x + 2 * y + 3 * z) as f32;
        if x < n / 2 && y < n / 2 && z < n / 2 {
            ramp + ((x * 31 + y * 17 + z * 11) % 23) as f32
        } else {
            ramp
        }
    })
}

#[test]
fn paper_default_is_b16_top_half() {
    let cfg = RoiConfig::paper_default();
    assert_eq!(cfg.block, 16);
    assert!((cfg.frac - 0.5).abs() < 1e-12);
    // And it runs end to end on a b-divisible domain.
    let f = corner_spike_field(32);
    let mr = to_adaptive(&f, &cfg);
    assert_eq!(mr.levels.len(), 2);
    assert_eq!(mr.levels[0].unit, 16);
    assert_eq!(mr.levels[1].unit, 8);
    assert_eq!(mr.coverage_defects(), 0);
    let total = 8; // (32/16)³ blocks
    assert_eq!(mr.levels[0].blocks.len() + mr.levels[1].blocks.len(), total);
}

#[test]
fn roi_blocks_are_kept_at_full_resolution_verbatim() {
    let f = corner_spike_field(32);
    // 8/64 blocks: exactly the spike octant's 2×2×2 block group, whose
    // ranges dwarf the ramp background's.
    let cfg = RoiConfig::new(8, 0.125);
    let mr = to_adaptive(&f, &cfg);
    assert_eq!(mr.levels[0].blocks.len(), 8);
    let b = cfg.block;
    for blk in &mr.levels[0].blocks {
        // Every cell of every fine block equals the original field exactly.
        for dx in 0..b {
            for dy in 0..b {
                for dz in 0..b {
                    assert_eq!(
                        blk.data[Dims3::cube(b).idx(dx, dy, dz)],
                        f.get(blk.origin[0] + dx, blk.origin[1] + dy, blk.origin[2] + dz),
                        "fine block at {:?} differs at +({dx},{dy},{dz})",
                        blk.origin
                    );
                }
            }
        }
    }
    // The spike octant has the top block ranges: every fine block sits
    // inside it.
    for blk in &mr.levels[0].blocks {
        assert!(
            blk.origin.iter().all(|&o| o < 16),
            "ROI block escaped the spike octant: {:?}",
            blk.origin
        );
    }
}

#[test]
fn off_roi_blocks_are_exact_2x_average_downsamples() {
    let f = corner_spike_field(32);
    let cfg = RoiConfig::new(8, 0.25);
    let mr = to_adaptive(&f, &cfg);
    let b = cfg.block;
    for blk in &mr.levels[1].blocks {
        // Coarse origins are fine origins halved; recover the fine box and
        // downsample it independently.
        let fine_origin = [blk.origin[0] * 2, blk.origin[1] * 2, blk.origin[2] * 2];
        let expect = f.extract_box(fine_origin, Dims3::cube(b)).downsample2();
        assert_eq!(
            blk.data,
            expect.into_vec(),
            "coarse block at {:?} is not the exact average downsample",
            blk.origin
        );
    }
}

#[test]
fn reconstruction_is_exact_on_roi_and_bounded_off_roi() {
    let f = corner_spike_field(32);
    let cfg = RoiConfig::new(8, 0.25);
    let mr = to_adaptive(&f, &cfg);
    let r = mr.reconstruct(Upsample::Nearest);
    assert_eq!(r.dims(), f.dims());
    let d = f.dims();
    // Off-ROI cells: 2× averaging + nearest upsampling can err by at most
    // the value spread of the 2×2×2 fine-cell group the cell was averaged
    // with — for the ramp background (slope 0.02/0.04/0.06 per axis) that
    // spread is ≤ 0.02 + 0.04 + 0.06.
    let bound = 0.121f32;
    let in_roi = |x: usize, y: usize, z: usize| {
        mr.levels[0].blocks.iter().any(|b| {
            (b.origin[0]..b.origin[0] + 8).contains(&x)
                && (b.origin[1]..b.origin[1] + 8).contains(&y)
                && (b.origin[2]..b.origin[2] + 8).contains(&z)
        })
    };
    let mut checked_roi = 0usize;
    let mut max_off = 0f32;
    for x in 0..d.nx {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let err = (r.get(x, y, z) - f.get(x, y, z)).abs();
                if in_roi(x, y, z) {
                    assert_eq!(err, 0.0, "ROI cell ({x},{y},{z}) not exact");
                    checked_roi += 1;
                } else {
                    max_off = max_off.max(err);
                }
            }
        }
    }
    assert!(checked_roi > 0, "ROI must be non-empty");
    assert!(
        max_off <= bound,
        "off-ROI reconstruction error {max_off} exceeds smoothness bound {bound}"
    );
}

#[test]
fn roi_only_field_zeroes_exactly_the_complement() {
    let f = corner_spike_field(32);
    let cfg = RoiConfig::new(8, 0.25);
    let (roi, frac) = roi_only_field(&f, &cfg);
    assert!((frac - 0.25).abs() < 1e-12);
    // Rebuild the ROI membership from the same selection the extractor uses
    // and check both directions: kept cells verbatim, dropped cells zero.
    let grid = BlockGrid::new(f.dims(), cfg.block);
    let top = grid.top_range_blocks(&f, cfg.frac);
    let blocks: Vec<_> = grid.iter().collect();
    let mut kept = vec![false; blocks.len()];
    for &i in &top {
        kept[i] = true;
    }
    for (i, blk) in blocks.iter().enumerate() {
        for dx in 0..cfg.block {
            for dy in 0..cfg.block {
                for dz in 0..cfg.block {
                    let (x, y, z) = (blk.origin[0] + dx, blk.origin[1] + dy, blk.origin[2] + dz);
                    if kept[i] {
                        assert_eq!(roi.get(x, y, z), f.get(x, y, z));
                    } else {
                        assert_eq!(roi.get(x, y, z), 0.0, "off-ROI cell ({x},{y},{z}) kept");
                    }
                }
            }
        }
    }
}

#[test]
fn frac_extremes_degenerate_cleanly() {
    let f = corner_spike_field(16);
    // frac 1.0: everything fine, reconstruction is the identity.
    let all = to_adaptive(&f, &RoiConfig::new(8, 1.0));
    assert_eq!(all.levels[0].blocks.len(), 8);
    assert!(all.levels[1].blocks.is_empty());
    assert_eq!(all.reconstruct(Upsample::Nearest), f);
    assert_eq!(all.coverage_defects(), 0);
    // frac 0.0: everything coarse, storage ratio is the full 8×.
    let none = to_adaptive(&f, &RoiConfig::new(8, 0.0));
    assert!(none.levels[0].blocks.is_empty());
    assert_eq!(none.levels[1].blocks.len(), 8);
    assert_eq!(none.coverage_defects(), 0);
    assert!((none.storage_ratio() - 8.0).abs() < 1e-9);
}

#[test]
fn non_cubic_domains_partition_cleanly() {
    let f = Field3::from_fn(Dims3::new(16, 24, 8), |x, y, z| {
        (x as f32).mul_add(1.5, (y % 5) as f32) + if z < 4 { 40.0 } else { 0.0 }
    });
    let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
    assert_eq!(mr.coverage_defects(), 0);
    assert_eq!(mr.levels[1].dims, Dims3::new(8, 12, 4));
    // The partition preserves the total cell budget: fine cells + 8× coarse
    // cells cover the domain exactly once.
    let fine = mr.levels[0].blocks.len() * 8usize.pow(3);
    let coarse = mr.levels[1].blocks.len() * 4usize.pow(3);
    assert_eq!(fine + coarse * 8, f.len());
}
