//! Inter-frame temporal prediction for multi-timestep sequences.
//!
//! In-situ runs emit one [`MultiResData`] per simulation timestep, and
//! consecutive frames of a smoothly evolving field are highly correlated: a
//! chunk's values at step *t* are mostly the values at *t−1* plus a small
//! residual. The temporal store (`hqmr-store::temporal`) exploits that by
//! compressing, per chunk, either the raw values (a *keyframe* chunk) or the
//! element-wise residual against the **decoded** previous frame (a *delta*
//! chunk, the temporal analogue of a Lorenzo predictor along the time axis).
//!
//! Predicting from the decoded frame — not the raw one — closes the loop:
//! the decoder reconstructs `x̂_t = x̂_{t−1} + r̂_t`, so with `|r̂ − r| ≤ eb`
//! every frame's absolute error stays ≤ eb with **no drift**, however long
//! the delta chain runs.
//!
//! This module holds the predictor primitives (residual/restore over block
//! slabs), a naive [`mod@reference`] oracle the differential tests pin the
//! optimized loops against, the structure predicate that decides whether two
//! frames' block layouts line up at all, and [`resample_like`] — re-sampling
//! a new timestep's field under a previous frame's block structure so a
//! sequence keeps a stable layout between regrids.

use crate::types::{LevelData, MultiResData, UnitBlock};
use hqmr_grid::{Dims3, Field3};

/// Writes the element-wise residual `cur − prev` into `out` (cleared first).
///
/// # Panics
/// Panics if the slices differ in length — callers gate on
/// [`structure_matches`], which makes unequal lengths a logic error, not a
/// data condition.
pub fn residual_into(cur: &[f32], prev: &[f32], out: &mut Vec<f32>) {
    assert_eq!(cur.len(), prev.len(), "temporal residual length mismatch");
    out.clear();
    out.extend(cur.iter().zip(prev).map(|(c, p)| c - p));
}

/// Allocating form of [`residual_into`].
pub fn residual(cur: &[f32], prev: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(cur.len());
    residual_into(cur, prev, &mut out);
    out
}

/// Reconstructs actual values in place: `residual[i] += prev[i]`.
///
/// # Panics
/// Panics if the slices differ in length (see [`residual_into`]).
pub fn restore_in_place(residual: &mut [f32], prev: &[f32]) {
    assert_eq!(
        residual.len(),
        prev.len(),
        "temporal restore length mismatch"
    );
    for (r, p) in residual.iter_mut().zip(prev) {
        *r += p;
    }
}

/// Naive per-index reference implementations, kept as the oracle the
/// differential tests compare the slice-zip loops above against (the same
/// contract `engine::reference` serves for the SIMD kernels).
pub mod reference {
    /// Indexed-loop residual.
    pub fn residual(cur: &[f32], prev: &[f32]) -> Vec<f32> {
        assert_eq!(cur.len(), prev.len());
        let mut out = vec![0f32; cur.len()];
        for i in 0..cur.len() {
            out[i] = cur[i] - prev[i];
        }
        out
    }

    /// Indexed-loop restore.
    pub fn restore(residual: &[f32], prev: &[f32]) -> Vec<f32> {
        assert_eq!(residual.len(), prev.len());
        let mut out = vec![0f32; residual.len()];
        for i in 0..residual.len() {
            out[i] = residual[i] + prev[i];
        }
        out
    }
}

/// Whether two frames have identical multi-resolution structure: same
/// domain, same level count, and per level the same `level`/`unit`/`dims`
/// and the same block origins in the same order. Only structurally matching
/// frames can be delta-predicted chunk-for-chunk; a mismatch (an AMR regrid,
/// a moved ROI) forces a keyframe.
pub fn structure_matches(a: &MultiResData, b: &MultiResData) -> bool {
    a.domain == b.domain
        && a.levels.len() == b.levels.len()
        && a.levels.iter().zip(&b.levels).all(|(la, lb)| {
            la.level == lb.level
                && la.unit == lb.unit
                && la.dims == lb.dims
                && la.blocks.len() == lb.blocks.len()
                && la
                    .blocks
                    .iter()
                    .zip(&lb.blocks)
                    .all(|(x, y)| x.origin == y.origin)
        })
}

/// Re-samples `field` under `template`'s block structure: every block keeps
/// its level, unit and origin but takes its values from `field` (fine blocks
/// copy, coarser blocks average-downsample `2^level`×). This is how a
/// temporal sequence keeps a frame-stable layout — the ROI selection runs
/// once, then each subsequent timestep is poured into the same blocks so
/// delta chunks line up.
///
/// # Panics
/// Panics if `field`'s dims differ from the template's domain.
pub fn resample_like(template: &MultiResData, field: &Field3) -> MultiResData {
    assert_eq!(
        field.dims(),
        template.domain,
        "resample_like: field dims must match the template domain"
    );
    let levels = template
        .levels
        .iter()
        .map(|lvl| {
            let factor = 1usize << lvl.level;
            let fine_side = lvl.unit * factor;
            let blocks = lvl
                .blocks
                .iter()
                .map(|b| {
                    let fine_origin = [
                        b.origin[0] * factor,
                        b.origin[1] * factor,
                        b.origin[2] * factor,
                    ];
                    let mut cube = field.extract_box(fine_origin, Dims3::cube(fine_side));
                    for _ in 0..lvl.level {
                        cube = cube.downsample2();
                    }
                    UnitBlock {
                        origin: b.origin,
                        data: cube.into_vec(),
                    }
                })
                .collect();
            LevelData {
                level: lvl.level,
                unit: lvl.unit,
                dims: lvl.dims,
                blocks,
            }
        })
        .collect();
    MultiResData {
        domain: template.domain,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::{to_adaptive, RoiConfig};

    fn wavy(n: usize, phase: f32) -> Field3 {
        Field3::from_fn(Dims3::cube(n), |x, y, z| {
            ((x as f32 * 0.3 + phase).sin() + (y as f32 * 0.2).cos()) * (1.0 + z as f32 * 0.01)
        })
    }

    #[test]
    fn residual_matches_reference_and_roundtrips() {
        let cur: Vec<f32> = (0..513).map(|i| (i as f32 * 0.37).sin() * 50.0).collect();
        let prev: Vec<f32> = (0..513).map(|i| (i as f32 * 0.36).sin() * 50.0).collect();
        let r = residual(&cur, &prev);
        assert_eq!(r, reference::residual(&cur, &prev));
        let mut back = r.clone();
        restore_in_place(&mut back, &prev);
        assert_eq!(back, reference::restore(&r, &prev));
        for (b, c) in back.iter().zip(&cur) {
            assert!((b - c).abs() < 1e-4, "{b} vs {c}");
        }
    }

    #[test]
    fn structure_predicate_detects_layout_changes() {
        let a = to_adaptive(&wavy(32, 0.0), &RoiConfig::new(8, 0.5));
        let b = resample_like(&a, &wavy(32, 1.0));
        assert!(structure_matches(&a, &b));
        let mut moved = b.clone();
        moved.levels[0].blocks[0].origin[0] += 8;
        assert!(!structure_matches(&a, &moved));
        let mut fewer = b;
        fewer.levels[0].blocks.pop();
        assert!(!structure_matches(&a, &fewer));
    }

    #[test]
    fn resample_preserves_structure_and_fine_values() {
        let f0 = wavy(32, 0.0);
        let f1 = wavy(32, 2.0);
        let template = to_adaptive(&f0, &RoiConfig::new(8, 0.5));
        let mr1 = resample_like(&template, &f1);
        assert!(structure_matches(&template, &mr1));
        // Fine blocks carry f1 verbatim.
        for b in &mr1.levels[0].blocks {
            let cube = f1.extract_box(b.origin, Dims3::cube(8));
            assert_eq!(b.data, cube.into_vec());
        }
        // Coarse blocks (unit = b/2 = 4, level 1) are 2× downsampled f1,
        // same as to_adaptive would produce for the same (non-ROI) block.
        for b in &mr1.levels[1].blocks {
            let fine_origin = [b.origin[0] * 2, b.origin[1] * 2, b.origin[2] * 2];
            let down = f1.extract_box(fine_origin, Dims3::cube(8)).downsample2();
            assert_eq!(b.data, down.into_vec());
        }
    }
}
