//! Multi-resolution data model (§III "ROI selection and preprocessing").
//!
//! Two producers build [`MultiResData`]:
//!
//! * [`adaptive::to_adaptive`] converts a *uniform* field into two levels via
//!   the paper's range-threshold ROI selector (top `x%` of `b³` blocks by
//!   value range stay fine; the rest are 2× downsampled);
//! * [`amr::to_amr`] builds a 2–3 level AMR-style hierarchy with target
//!   per-level densities, standing in for Nyx/IAMR refinement output.
//!
//! One consumer prepares levels for 3-D compression: [`merge`] arranges each
//! level's unit blocks into dense arrays (linear baseline, AMRIC's cubic
//! stacking, TAC's adjacency-preserving boxes) and [`padding`] adds the single
//! extrapolated layer on the two small dimensions that SZ3MR needs.

pub mod adaptive;
pub mod amr;
pub mod merge;
pub mod padding;
pub mod prepare;
pub mod temporal;
mod types;

pub use adaptive::{roi_only_field, to_adaptive, RoiConfig};
pub use amr::{to_amr, AmrConfig};
pub use merge::{
    merge_blocks, merge_discontinuity, merge_level, split_blocks, unsplit_level, MergeStrategy,
    MergedArray,
};
pub use padding::{pad_small_dims, strip_padding, PadKind};
pub use prepare::{
    decode_layout, encode_layout, prepare_blocks, prepare_level, LayoutSlots, PreparedLevel,
};
pub use temporal::{resample_like, structure_matches};
pub use types::{LevelData, MultiResData, UnitBlock, Upsample};
