//! Padding for linearized merges (§III-A, Improvement 1).
//!
//! A linear merge has shape `(u, u, u·n)`: the two small dimensions leave the
//! interpolator one point short of a full `2^k + 1` grid, forcing the
//! extrapolations of Fig. 7. Padding appends **one extrapolated layer** to
//! each small dimension (`(u+1, u+1, u·n)`), which removes every inner
//! extrapolation (Fig. 8) at a size overhead of `(u+1)²/u²` — 13% for
//! `u = 16`, but 56% for `u = 4`, which is why the workflow only pads when
//! `u > 4`.
//!
//! The pad value matters: the paper tested constant, linear and quadratic
//! extrapolation and found linear best overall; all three are implemented for
//! the ablation bench.

use hqmr_grid::{Dims3, Field3};

/// Extrapolation used for the padded layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PadKind {
    /// Repeat the outermost layer.
    Constant,
    /// `2·f[n−1] − f[n−2]` (the paper's choice).
    Linear,
    /// `3·f[n−1] − 3·f[n−2] + f[n−3]`.
    Quadratic,
}

impl PadKind {
    /// Extrapolates from up to three trailing samples `(last, prev, prev2)`.
    #[inline]
    fn extrapolate(self, last: f32, prev: Option<f32>, prev2: Option<f32>) -> f32 {
        match (self, prev, prev2) {
            (PadKind::Constant, _, _) => last,
            (PadKind::Linear, Some(p), _) => 2.0 * last - p,
            (PadKind::Quadratic, Some(p), Some(p2)) => 3.0 * last - 3.0 * p + p2,
            // Degenerate extents fall back to lower orders.
            (PadKind::Quadratic, Some(p), None) => 2.0 * last - p,
            (_, None, _) => last,
        }
    }
}

/// Pads the two small dimensions (`x`, `y`) of a merged array by one layer:
/// `(nx, ny, nz) → (nx+1, ny+1, nz)`.
///
/// Each z-column belongs to a single unit block, so the extrapolation is
/// block-local by construction. The corner column `(nx, ny, ·)` is
/// extrapolated from the padded `x` layer along `y`.
pub fn pad_small_dims(field: &Field3, kind: PadKind) -> Field3 {
    let d = field.dims();
    let pd = Dims3::new(d.nx + 1, d.ny + 1, d.nz);
    let mut out = Field3::zeros(pd);
    // Copy the original data.
    for x in 0..d.nx {
        for y in 0..d.ny {
            for z in 0..d.nz {
                out.set(x, y, z, field.get(x, y, z));
            }
        }
    }
    // Pad x = nx from the last two/three x layers.
    for y in 0..d.ny {
        for z in 0..d.nz {
            let last = field.get(d.nx - 1, y, z);
            let prev = (d.nx >= 2).then(|| field.get(d.nx - 2, y, z));
            let prev2 = (d.nx >= 3).then(|| field.get(d.nx - 3, y, z));
            out.set(d.nx, y, z, kind.extrapolate(last, prev, prev2));
        }
    }
    // Pad y = ny over the extended x range (covers the corner).
    for x in 0..pd.nx {
        for z in 0..d.nz {
            let last = out.get(x, d.ny - 1, z);
            let prev = (d.ny >= 2).then(|| out.get(x, d.ny - 2, z));
            let prev2 = (d.ny >= 3).then(|| out.get(x, d.ny - 3, z));
            out.set(x, d.ny, z, kind.extrapolate(last, prev, prev2));
        }
    }
    out
}

/// Drops the padded layers: `(nx+1, ny+1, nz) → (nx, ny, nz)`.
///
/// # Panics
/// Panics if the field is too small to have been padded.
pub fn strip_padding(field: &Field3) -> Field3 {
    let d = field.dims();
    assert!(d.nx >= 2 && d.ny >= 2, "field {d} cannot carry padding");
    field.extract_box([0, 0, 0], Dims3::new(d.nx - 1, d.ny - 1, d.nz))
}

/// Size overhead of padding a `(u, u, ·)` merge: `(u+1)²/u²`.
pub fn pad_overhead(unit: usize) -> f64 {
    let u = unit as f64;
    (u + 1.0) * (u + 1.0) / (u * u)
}

/// The workflow's padding policy: pad only when the overhead is worth it
/// (`u > 4`, §III-A).
pub fn should_pad(unit: usize) -> bool {
    unit > 4
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(d: Dims3) -> Field3 {
        Field3::from_fn(d, |x, y, z| (3 * x + 2 * y) as f32 + z as f32 * 0.5)
    }

    #[test]
    fn pad_strip_roundtrip() {
        let f = ramp(Dims3::new(8, 8, 24));
        for kind in [PadKind::Constant, PadKind::Linear, PadKind::Quadratic] {
            let p = pad_small_dims(&f, kind);
            assert_eq!(p.dims(), Dims3::new(9, 9, 24));
            assert_eq!(strip_padding(&p), f, "{kind:?}");
        }
    }

    #[test]
    fn linear_pad_extends_ramps_exactly() {
        let f = ramp(Dims3::new(4, 4, 8));
        let p = pad_small_dims(&f, PadKind::Linear);
        // x-pad continues the slope-3 ramp.
        assert_eq!(p.get(4, 2, 3), (3 * 4 + 2 * 2) as f32 + 1.5);
        // y-pad continues slope 2, including the corner.
        assert_eq!(p.get(2, 4, 0), (3 * 2 + 2 * 4) as f32);
        assert_eq!(p.get(4, 4, 0), (3 * 4 + 2 * 4) as f32);
    }

    #[test]
    fn quadratic_pad_extends_parabola_exactly() {
        let f = Field3::from_fn(Dims3::new(5, 5, 2), |x, _, _| (x * x) as f32);
        let p = pad_small_dims(&f, PadKind::Quadratic);
        assert_eq!(p.get(5, 1, 0), 25.0);
    }

    #[test]
    fn constant_pad_repeats_edge() {
        let f = ramp(Dims3::new(3, 3, 2));
        let p = pad_small_dims(&f, PadKind::Constant);
        assert_eq!(p.get(3, 1, 1), f.get(2, 1, 1));
        assert_eq!(p.get(1, 3, 1), f.get(1, 2, 1));
    }

    #[test]
    fn degenerate_one_layer_field() {
        let f = Field3::new(Dims3::new(1, 1, 4), 2.0);
        for kind in [PadKind::Constant, PadKind::Linear, PadKind::Quadratic] {
            let p = pad_small_dims(&f, kind);
            assert_eq!(p.get(1, 0, 0), 2.0);
            assert_eq!(p.get(1, 1, 3), 2.0);
        }
    }

    #[test]
    fn overhead_matches_paper_numbers() {
        // §III-A: u = 4 ⇒ 56% overhead; the workflow pads only above that.
        assert!((pad_overhead(4) - 1.5625).abs() < 1e-12);
        assert!((pad_overhead(16) - 1.12890625).abs() < 1e-12);
        assert!(!should_pad(4));
        assert!(should_pad(8));
        assert!(should_pad(16));
    }

    #[test]
    fn padded_dims_are_interpolation_friendly() {
        // u = 16 → 17 = 2^4 + 1: a full interpolation grid.
        let f = ramp(Dims3::new(16, 16, 32));
        let p = pad_small_dims(&f, PadKind::Linear);
        assert_eq!(p.dims().nx, 17);
        assert_eq!(p.dims().ny, 17);
    }
}
