//! Uniform → adaptive conversion via range-threshold ROI extraction (§III).
//!
//! The paper partitions the domain into `b³` blocks (`b = 2ⁿ, n > 2`), ranks
//! blocks by value range, keeps the top `x%` at full resolution and stores the
//! rest 2× downsampled. The result has the same structure as 2-level AMR data
//! and flows into the same merge/pad/compress pipeline.

use crate::types::{LevelData, MultiResData, UnitBlock};
use hqmr_grid::{BlockGrid, Dims3, Field3};

/// ROI extraction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoiConfig {
    /// ROI block side `b` (must be a power of two > 4, per the paper).
    pub block: usize,
    /// Fraction of blocks kept at full resolution (paper default 0.5).
    pub frac: f64,
}

impl RoiConfig {
    /// Creates a config, validating the block-size constraint.
    ///
    /// # Panics
    /// Panics if `block` is not a power of two greater than 4.
    pub fn new(block: usize, frac: f64) -> Self {
        assert!(
            block.is_power_of_two() && block > 4,
            "ROI block must be a power of two > 4 (b = 2^n, n > 2), got {block}"
        );
        RoiConfig { block, frac }
    }

    /// The paper's default: `b = 16`, top 50% of blocks.
    pub fn paper_default() -> Self {
        Self::new(16, 0.5)
    }
}

/// Converts a uniform field into 2-level adaptive data.
///
/// Level 0 holds the ROI blocks verbatim (`unit = b`); level 1 holds every
/// non-ROI block 2× average-downsampled (`unit = b/2`).
///
/// # Panics
/// Panics if any domain extent is not a multiple of `cfg.block` (the paper's
/// datasets are powers of two; edge-partial ROI blocks are out of scope).
pub fn to_adaptive(field: &Field3, cfg: &RoiConfig) -> MultiResData {
    let domain = field.dims();
    assert!(
        domain.nx.is_multiple_of(cfg.block)
            && domain.ny.is_multiple_of(cfg.block)
            && domain.nz.is_multiple_of(cfg.block),
        "domain {domain} not divisible by ROI block {}",
        cfg.block
    );
    let grid = BlockGrid::new(domain, cfg.block);
    let roi: Vec<usize> = grid.top_range_blocks(field, cfg.frac);
    let mut is_roi = vec![false; grid.num_blocks()];
    for &i in &roi {
        is_roi[i] = true;
    }

    let mut fine_blocks = Vec::with_capacity(roi.len());
    let mut coarse_blocks = Vec::with_capacity(grid.num_blocks() - roi.len());
    for (i, blk) in grid.iter().enumerate() {
        let cube = field.extract_box(blk.origin, Dims3::cube(cfg.block));
        if is_roi[i] {
            fine_blocks.push(UnitBlock {
                origin: blk.origin,
                data: cube.into_vec(),
            });
        } else {
            let down = cube.downsample2();
            coarse_blocks.push(UnitBlock {
                origin: [blk.origin[0] / 2, blk.origin[1] / 2, blk.origin[2] / 2],
                data: down.into_vec(),
            });
        }
    }

    MultiResData {
        domain,
        levels: vec![
            LevelData {
                level: 0,
                unit: cfg.block,
                dims: domain,
                blocks: fine_blocks,
            },
            LevelData {
                level: 1,
                unit: cfg.block / 2,
                dims: domain.div_ceil(2),
                blocks: coarse_blocks,
            },
        ],
    }
}

/// Builds the "ROI only" field of Fig. 4: ROI blocks keep their data, the rest
/// of the domain is zeroed. Returns the field and the ROI volume fraction.
pub fn roi_only_field(field: &Field3, cfg: &RoiConfig) -> (Field3, f64) {
    let grid = BlockGrid::new(field.dims(), cfg.block);
    let roi = grid.top_range_blocks(field, cfg.frac);
    let mut out = Field3::zeros(field.dims());
    let blocks: Vec<_> = grid.iter().collect();
    for &i in &roi {
        let blk = blocks[i];
        let cube = field.extract_box(blk.origin, blk.size);
        out.insert_box(blk.origin, &cube);
    }
    let frac = roi.len() as f64 / grid.num_blocks() as f64;
    (out, frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Upsample;

    /// A field with a sharp hot corner and a smooth background.
    fn hotspot_field(n: usize) -> Field3 {
        Field3::from_fn(Dims3::cube(n), |x, y, z| {
            let base = 0.01 * (x + y + z) as f32;
            let spike = if x < n / 4 && y < n / 4 && z < n / 4 {
                ((x * 13 + y * 7 + z * 3) % 17) as f32
            } else {
                0.0
            };
            base + spike
        })
    }

    #[test]
    fn adaptive_partitions_domain_exactly() {
        let f = hotspot_field(32);
        let mr = to_adaptive(&f, &RoiConfig::new(8, 0.25));
        assert_eq!(mr.coverage_defects(), 0);
        assert_eq!(mr.levels.len(), 2);
        assert_eq!(mr.levels[0].unit, 8);
        assert_eq!(mr.levels[1].unit, 4);
        // 25% of 64 blocks = 16 fine blocks, 48 coarse.
        assert_eq!(mr.levels[0].blocks.len(), 16);
        assert_eq!(mr.levels[1].blocks.len(), 48);
    }

    #[test]
    fn roi_captures_high_range_region() {
        let f = hotspot_field(32);
        let mr = to_adaptive(&f, &RoiConfig::new(8, 0.25));
        // The hot corner occupies the first 4³=64 cells of block space; the
        // 8³-block grid is 4³ so the corner spans 1 block... it spans blocks
        // with origin < 8 in every axis: exactly 1. All selected blocks must
        // include it.
        let has_corner = mr.levels[0].blocks.iter().any(|b| b.origin == [0, 0, 0]);
        assert!(has_corner);
    }

    #[test]
    fn reconstruction_is_exact_inside_roi() {
        let f = hotspot_field(32);
        let mr = to_adaptive(&f, &RoiConfig::new(8, 0.25));
        let r = mr.reconstruct(Upsample::Nearest);
        // Fine blocks reproduce original data exactly.
        for b in &mr.levels[0].blocks {
            for dx in 0..8 {
                assert_eq!(
                    r.get(b.origin[0] + dx, b.origin[1], b.origin[2]),
                    f.get(b.origin[0] + dx, b.origin[1], b.origin[2])
                );
            }
        }
    }

    #[test]
    fn reconstruction_error_is_bounded_by_smoothness_outside_roi() {
        let f = hotspot_field(32);
        let mr = to_adaptive(&f, &RoiConfig::new(8, 0.25));
        let r = mr.reconstruct(Upsample::Nearest);
        // Background is a gentle ramp (slope 0.01/cell): 2× averaging then
        // nearest upsampling errs by at most ~ 3 cells of slope.
        let mut max_err = 0f32;
        for (a, b) in f.data().iter().zip(r.data()) {
            max_err = max_err.max((a - b).abs());
        }
        assert!(max_err < 0.05, "max_err = {max_err}");
    }

    #[test]
    fn storage_savings_match_roi_fraction() {
        let f = hotspot_field(32);
        let mr = to_adaptive(&f, &RoiConfig::new(8, 0.25));
        // 25% full + 75%/8 = 0.34375 of original cells.
        let expect = 1.0 / 0.34375;
        assert!((mr.storage_ratio() - expect).abs() < 1e-9);
    }

    #[test]
    fn roi_only_field_fraction() {
        let f = hotspot_field(32);
        let (roi, frac) = roi_only_field(&f, &RoiConfig::new(8, 0.25));
        assert!((frac - 0.25).abs() < 1e-12);
        // Non-ROI area is zeroed.
        let zeros = roi.data().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros >= 32 * 32 * 32 * 3 / 5);
    }

    #[test]
    #[should_panic(expected = "power of two > 4")]
    fn rejects_small_block() {
        RoiConfig::new(4, 0.5);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_unaligned_domain() {
        let f = Field3::zeros(Dims3::new(20, 32, 32));
        to_adaptive(&f, &RoiConfig::new(8, 0.5));
    }
}
