//! Unit-block arrangements for 3-D compression (§III-A, Fig. 6).
//!
//! A resolution level is a sparse set of `u³` unit blocks; global compressors
//! need a dense array. Three arrangements are implemented:
//!
//! * [`MergeStrategy::Linear`] — the baseline (and the paper's choice):
//!   concatenate blocks along `z` into a `(u, u, u·n)` array. Two small
//!   dimensions, one long one.
//! * [`MergeStrategy::Stack`] — AMRIC's cubic stacking into a
//!   `(u·m)³` array, `m = ⌈n^{1/3}⌉`. Balanced dimensions, but non-adjacent
//!   blocks become neighbours (the bold red line of Fig. 6-2b).
//! * [`MergeStrategy::Tac`] — TAC's adjacency-preserving merge: greedy runs
//!   along `z`, then `y`, then `x` produce variable-shaped boxes, each
//!   compressed separately (encoding overhead per box, §IV-C).

use crate::types::{LevelData, UnitBlock};
use hqmr_grid::{Dims3, Field3};
use std::collections::BTreeMap;

/// Block arrangement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Linear merge along `z` (baseline; what SZ3MR pads).
    Linear,
    /// AMRIC-style cubic stacking.
    Stack,
    /// TAC-style adjacency-preserving boxes.
    Tac,
}

/// One dense array produced by merging, with enough layout to split it back.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedArray {
    /// The dense merged field.
    pub field: Field3,
    /// Unit block side.
    pub unit: usize,
    /// `(array-local origin, level-local origin)` for every real block.
    pub slots: Vec<([usize; 3], [usize; 3])>,
}

impl MergedArray {
    /// Extracts unit blocks back out of a (possibly decompressed) array with
    /// the same dims as `self.field`.
    ///
    /// # Panics
    /// Panics if `data` dims differ from the merged field's dims.
    pub fn split(&self, data: &Field3) -> Vec<UnitBlock> {
        assert_eq!(data.dims(), self.field.dims(), "split dims mismatch");
        split_blocks(data, self.unit, &self.slots)
    }
}

/// [`MergedArray::split`] from the raw layout — unit side plus
/// `(array slot, level origin)` pairs — so readers that reconstruct the
/// layout from a directory (`hqmr-store`) can split a decoded array without
/// materializing a throwaway [`MergedArray`] (and its zero-filled field).
pub fn split_blocks(
    data: &Field3,
    unit: usize,
    slots: &[([usize; 3], [usize; 3])],
) -> Vec<UnitBlock> {
    let size = Dims3::cube(unit);
    slots
        .iter()
        .map(|&(slot, origin)| {
            let mut block = vec![0f32; size.len()];
            data.extract_box_into(slot, size, &mut block);
            UnitBlock {
                origin,
                data: block,
            }
        })
        .collect()
}

/// Merges a level's blocks under `strategy`. Returns one array for
/// `Linear`/`Stack`, and one per box for `Tac`. Empty levels yield no arrays.
pub fn merge_level(level: &LevelData, strategy: MergeStrategy) -> Vec<MergedArray> {
    merge_blocks(&level.blocks, level.unit, strategy)
}

/// [`merge_level`] over a borrowed block slice — lets callers that tile a
/// level into chunk groups (`hqmr-store`) merge each group without cloning
/// the block data into a temporary [`LevelData`].
pub fn merge_blocks(
    blocks: &[UnitBlock],
    unit: usize,
    strategy: MergeStrategy,
) -> Vec<MergedArray> {
    if blocks.is_empty() {
        return Vec::new();
    }
    match strategy {
        MergeStrategy::Linear => vec![merge_linear(blocks, unit)],
        MergeStrategy::Stack => vec![merge_stack(blocks, unit)],
        MergeStrategy::Tac => merge_tac(blocks, unit),
    }
}

/// Reassembles a level from merged arrays and their decompressed data.
///
/// `pairs` associates each layout with the decompressed array contents;
/// blocks are returned in the concatenated slot order.
pub fn unsplit_level(pairs: &[(&MergedArray, &Field3)]) -> Vec<UnitBlock> {
    let mut blocks: Vec<UnitBlock> = pairs.iter().flat_map(|(m, f)| m.split(f)).collect();
    blocks.sort_by_key(|b| (b.origin[0], b.origin[1], b.origin[2]));
    blocks
}

fn merge_linear(blocks: &[UnitBlock], u: usize) -> MergedArray {
    let n = blocks.len();
    let mut field = Field3::zeros(Dims3::new(u, u, u * n));
    let mut slots = Vec::with_capacity(n);
    for (i, b) in blocks.iter().enumerate() {
        let slot = [0, 0, i * u];
        field.insert_box_from(slot, Dims3::cube(u), &b.data);
        slots.push((slot, b.origin));
    }
    MergedArray {
        field,
        unit: u,
        slots,
    }
}

fn merge_stack(blocks: &[UnitBlock], u: usize) -> MergedArray {
    let n = blocks.len();
    let m = (1..).find(|&m: &usize| m * m * m >= n).unwrap();
    let mut field = Field3::zeros(Dims3::cube(u * m));
    let mut slots = Vec::with_capacity(n);
    for i in 0..m * m * m {
        // Real blocks fill the first n slots; the rest replicate the last
        // block so the filler does not create artificial discontinuities
        // beyond those inherent to stacking.
        let src = i.min(n - 1);
        let slot = [(i / (m * m)) * u, ((i / m) % m) * u, (i % m) * u];
        let b = &blocks[src];
        field.insert_box_from(slot, Dims3::cube(u), &b.data);
        if i < n {
            slots.push((slot, b.origin));
        }
    }
    MergedArray {
        field,
        unit: u,
        slots,
    }
}

/// Greedy adjacency-preserving box merge: maximal runs along `z`, rods merged
/// along `y`, plates merged along `x`.
fn merge_tac(blocks: &[UnitBlock], u: usize) -> Vec<MergedArray> {
    // Block coordinates in units, mapped to their index in `blocks`.
    let mut by_coord: BTreeMap<(usize, usize, usize), usize> = BTreeMap::new();
    for (i, b) in blocks.iter().enumerate() {
        by_coord.insert((b.origin[0] / u, b.origin[1] / u, b.origin[2] / u), i);
    }
    // Rods: (x, y, z0, lz).
    let mut rods: Vec<(usize, usize, usize, usize)> = Vec::new();
    {
        let mut it = by_coord.keys().copied().peekable();
        while let Some((x, y, z0)) = it.next() {
            let mut lz = 1usize;
            while let Some(&(nx2, ny2, nz2)) = it.peek() {
                if nx2 == x && ny2 == y && nz2 == z0 + lz {
                    it.next();
                    lz += 1;
                } else {
                    break;
                }
            }
            rods.push((x, y, z0, lz));
        }
    }
    // Plates: merge rods with equal (x, z0, lz) and consecutive y.
    let mut plate_map: BTreeMap<(usize, usize, usize), Vec<(usize, usize)>> = BTreeMap::new();
    for (x, y, z0, lz) in rods {
        plate_map.entry((x, z0, lz)).or_default().push((y, 1));
    }
    // (x, y0, ly, z0, lz)
    let mut plates: Vec<(usize, usize, usize, usize, usize)> = Vec::new();
    for ((x, z0, lz), mut ys) in plate_map {
        ys.sort_unstable();
        let mut i = 0;
        while i < ys.len() {
            let y0 = ys[i].0;
            let mut ly = 1usize;
            while i + 1 < ys.len() && ys[i + 1].0 == y0 + ly {
                ly += 1;
                i += 1;
            }
            plates.push((x, y0, ly, z0, lz));
            i += 1;
        }
    }
    // Boxes: merge plates with equal (y0, ly, z0, lz) and consecutive x.
    let mut box_map: BTreeMap<(usize, usize, usize, usize), Vec<usize>> = BTreeMap::new();
    for (x, y0, ly, z0, lz) in plates {
        box_map.entry((y0, ly, z0, lz)).or_default().push(x);
    }
    let mut boxes: Vec<([usize; 3], [usize; 3])> = Vec::new(); // (coord origin, extent in units)
    for ((y0, ly, z0, lz), mut xs) in box_map {
        xs.sort_unstable();
        let mut i = 0;
        while i < xs.len() {
            let x0 = xs[i];
            let mut lx = 1usize;
            while i + 1 < xs.len() && xs[i + 1] == x0 + lx {
                lx += 1;
                i += 1;
            }
            boxes.push(([x0, y0, z0], [lx, ly, lz]));
            i += 1;
        }
    }

    boxes
        .into_iter()
        .map(|(bo, ext)| {
            let dims = Dims3::new(ext[0] * u, ext[1] * u, ext[2] * u);
            let mut field = Field3::zeros(dims);
            let mut slots = Vec::new();
            for cx in 0..ext[0] {
                for cy in 0..ext[1] {
                    for cz in 0..ext[2] {
                        let coord = (bo[0] + cx, bo[1] + cy, bo[2] + cz);
                        let bi = by_coord[&coord];
                        let b = &blocks[bi];
                        let slot = [cx * u, cy * u, cz * u];
                        field.insert_box_from(slot, Dims3::cube(u), &b.data);
                        slots.push((slot, b.origin));
                    }
                }
            }
            MergedArray {
                field,
                unit: u,
                slots,
            }
        })
        .collect()
}

/// Mean absolute jump across block-join faces inside merged arrays — the
/// "unsmoothness" Fig. 6 depicts (bold red lines). Lower is smoother.
pub fn merge_discontinuity(arrays: &[MergedArray]) -> f64 {
    let mut acc = 0.0f64;
    let mut count = 0u64;
    for m in arrays {
        let d = m.field.dims();
        let u = m.unit;
        // Faces normal to each axis at multiples of u (interior joins only).
        for (axis, n) in [(0usize, d.nx), (1, d.ny), (2, d.nz)] {
            let mut cut = u;
            while cut < n {
                for a in 0..if axis == 0 { d.ny } else { d.nx } {
                    for b in 0..if axis == 2 { d.ny } else { d.nz } {
                        let (lo, hi) = match axis {
                            0 => (m.field.get(cut - 1, a, b), m.field.get(cut, a, b)),
                            1 => (m.field.get(a, cut - 1, b), m.field.get(a, cut, b)),
                            _ => (m.field.get(a, b, cut - 1), m.field.get(a, b, cut)),
                        };
                        acc += (hi - lo).abs() as f64;
                        count += 1;
                    }
                }
                cut += u;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        acc / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A level whose blocks tile an `nb³` region of a smooth ramp field.
    fn ramp_level(nb: usize, u: usize, keep: impl Fn(usize, usize, usize) -> bool) -> LevelData {
        let mut blocks = Vec::new();
        for bx in 0..nb {
            for by in 0..nb {
                for bz in 0..nb {
                    if !keep(bx, by, bz) {
                        continue;
                    }
                    let origin = [bx * u, by * u, bz * u];
                    let data = Field3::from_fn(Dims3::cube(u), |x, y, z| {
                        ((origin[0] + x) + (origin[1] + y) + (origin[2] + z)) as f32
                    });
                    blocks.push(UnitBlock {
                        origin,
                        data: data.into_vec(),
                    });
                }
            }
        }
        LevelData {
            level: 0,
            unit: u,
            dims: Dims3::cube(nb * u),
            blocks,
        }
    }

    #[test]
    fn linear_merge_shape_and_roundtrip() {
        let lvl = ramp_level(2, 4, |_, _, _| true); // 8 blocks
        let merged = merge_level(&lvl, MergeStrategy::Linear);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].field.dims(), Dims3::new(4, 4, 32));
        let back = unsplit_level(&[(&merged[0], &merged[0].field.clone())]);
        assert_eq!(back, lvl.blocks);
    }

    #[test]
    fn stack_merge_shape_and_roundtrip() {
        let lvl = ramp_level(2, 4, |bx, by, bz| !(bx == 1 && by == 1 && bz == 1)); // 7 blocks
        let merged = merge_level(&lvl, MergeStrategy::Stack);
        assert_eq!(merged.len(), 1);
        // ceil(7^(1/3)) = 2 → 8³ array.
        assert_eq!(merged[0].field.dims(), Dims3::cube(8));
        assert_eq!(merged[0].slots.len(), 7);
        let back = unsplit_level(&[(&merged[0], &merged[0].field.clone())]);
        assert_eq!(back, lvl.blocks);
    }

    #[test]
    fn tac_merges_full_region_into_one_box() {
        let lvl = ramp_level(2, 4, |_, _, _| true);
        let merged = merge_level(&lvl, MergeStrategy::Tac);
        assert_eq!(merged.len(), 1, "a full cube should merge into one box");
        assert_eq!(merged[0].field.dims(), Dims3::cube(8));
        let pairs: Vec<_> = merged.iter().map(|m| (m, &m.field)).collect();
        let back = unsplit_level(&pairs.iter().map(|(m, f)| (*m, *f)).collect::<Vec<_>>());
        assert_eq!(back, lvl.blocks);
    }

    #[test]
    fn tac_sparse_produces_multiple_boxes_preserving_adjacency() {
        // Two separated slabs → at least 2 boxes, never mixing them.
        let lvl = ramp_level(4, 4, |bx, _, _| bx == 0 || bx == 3);
        let merged = merge_level(&lvl, MergeStrategy::Tac);
        assert_eq!(merged.len(), 2);
        let pairs: Vec<_> = merged.iter().map(|m| (m, &m.field)).collect();
        let back = unsplit_level(&pairs);
        assert_eq!(back.len(), lvl.blocks.len());
        assert_eq!(back, lvl.blocks);
    }

    #[test]
    fn empty_level_merges_to_nothing() {
        let lvl = LevelData {
            level: 0,
            unit: 4,
            dims: Dims3::cube(8),
            blocks: vec![],
        };
        for s in [
            MergeStrategy::Linear,
            MergeStrategy::Stack,
            MergeStrategy::Tac,
        ] {
            assert!(merge_level(&lvl, s).is_empty());
        }
    }

    #[test]
    fn single_block_all_strategies() {
        let lvl = ramp_level(1, 4, |_, _, _| true);
        for s in [
            MergeStrategy::Linear,
            MergeStrategy::Stack,
            MergeStrategy::Tac,
        ] {
            let merged = merge_level(&lvl, s);
            let pairs: Vec<_> = merged.iter().map(|m| (m, &m.field)).collect();
            assert_eq!(unsplit_level(&pairs), lvl.blocks, "{s:?}");
        }
    }

    #[test]
    fn stack_is_less_smooth_than_tac_on_scattered_blocks() {
        // A checkerboard of blocks from a smooth ramp: stacking juxtaposes
        // non-neighbours (large jumps); TAC keeps physical neighbours together.
        let lvl = ramp_level(4, 4, |bx, by, bz| (bx + by + bz) % 2 == 0);
        let stack = merge_level(&lvl, MergeStrategy::Stack);
        let tac = merge_level(&lvl, MergeStrategy::Tac);
        let ds = merge_discontinuity(&stack);
        let dt = merge_discontinuity(&tac);
        assert!(
            dt <= ds,
            "tac ({dt}) should be at least as smooth as stack ({ds})"
        );
    }
}
