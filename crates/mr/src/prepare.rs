//! The compression-prep stage shared by every container format.
//!
//! Both the monolithic MRC stream (`hqmr-core::mrc`) and the block-indexed
//! store (`hqmr-store`) feed levels through the same two steps before any
//! codec runs: arrange unit blocks into dense arrays ([`crate::merge_level`])
//! and
//! pad the two small dimensions of linear merges when the unit is large
//! enough to make the overhead worthwhile ([`should_pad`], §III-A).
//! Keeping the stage here — below both containers — guarantees the two
//! formats produce byte-identical codec inputs for the same configuration,
//! which is what makes the store's per-chunk streams bit-for-bit comparable
//! with the monolithic stream's per-array streams.
//!
//! The layout sidecar ([`encode_layout`] / [`decode_layout`]) records, per
//! merged array, whether it was padded plus every `(array slot, level
//! origin)` placement pair, so a decoder can split a decompressed array back
//! into unit blocks without any external context.

use crate::merge::{merge_blocks, MergeStrategy, MergedArray};
use crate::padding::{pad_small_dims, should_pad, PadKind};
use crate::types::{LevelData, UnitBlock};
use hqmr_codec::{read_uvarint, write_uvarint};
use hqmr_grid::Field3;

/// One level's compression-ready arrays — the output of the pre-processing
/// stage (merge + pad), before any codec runs.
///
/// Unpadded levels do not duplicate their data: the compression-ready field
/// *is* the merged array, borrowed in place. Only padded levels materialize
/// separate (padded) fields.
#[derive(Debug, Clone)]
pub struct PreparedLevel {
    arrays: Vec<MergedArray>,
    /// Padded variants of `arrays[i].field`; empty when `!padded`.
    padded_fields: Vec<Field3>,
    padded: bool,
}

impl PreparedLevel {
    /// Number of dense arrays this level produced.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Whether padding was applied.
    pub fn padded(&self) -> bool {
        self.padded
    }

    /// The merged arrays (layout + original, unpadded data).
    pub fn arrays(&self) -> &[MergedArray] {
        &self.arrays
    }

    /// The compression-ready field of array `i`: the padded variant when
    /// [`Self::padded`], the merged array itself otherwise.
    pub fn field(&self, i: usize) -> &Field3 {
        if self.padded {
            &self.padded_fields[i]
        } else {
            &self.arrays[i].field
        }
    }

    /// Iterates the compression-ready fields, aligned index-wise with
    /// [`Self::arrays`].
    pub fn fields(&self) -> impl Iterator<Item = &Field3> {
        (0..self.arrays.len()).map(move |i| self.field(i))
    }

    /// Iterates `(layout, compression-ready field)` pairs — one per block a
    /// container writer would compress independently.
    pub fn blocks(&self) -> impl Iterator<Item = (&MergedArray, &Field3)> {
        self.arrays
            .iter()
            .enumerate()
            .map(move |(i, m)| (m, self.field(i)))
    }
}

/// Whether this merge × pad × unit combination pads (linear merges only, and
/// only above the `u = 4` overhead cutoff).
pub fn pads(merge: MergeStrategy, pad: Option<PadKind>, unit: usize) -> bool {
    pad.is_some() && merge == MergeStrategy::Linear && should_pad(unit)
}

/// Pre-processing stage: merge (and pad) one level into compression-ready
/// arrays. Split out from encoding so in-situ writers can time it separately
/// (Table IV) and so block-indexed containers can compress each array
/// independently.
pub fn prepare_level(
    level: &LevelData,
    merge: MergeStrategy,
    pad: Option<PadKind>,
) -> PreparedLevel {
    prepare_blocks(&level.blocks, level.unit, merge, pad)
}

/// [`prepare_level`] over a borrowed block slice — the entry point for
/// chunked containers (`hqmr-store`), which tile a level into groups and
/// prepare each group without copying the block data into a temporary
/// [`LevelData`].
pub fn prepare_blocks(
    blocks: &[UnitBlock],
    unit: usize,
    merge: MergeStrategy,
    pad: Option<PadKind>,
) -> PreparedLevel {
    let arrays = merge_blocks(blocks, unit, merge);
    let padded = pads(merge, pad, unit);
    let padded_fields = if padded {
        arrays
            .iter()
            .map(|m| pad_small_dims(&m.field, pad.unwrap_or(PadKind::Linear)))
            .collect()
    } else {
        // Unpadded: codecs read the merged arrays directly — no copy.
        Vec::new()
    };
    PreparedLevel {
        arrays,
        padded_fields,
        padded,
    }
}

/// `(slot, origin)` placement pairs of a merged array.
pub type LayoutSlots = Vec<([usize; 3], [usize; 3])>;

/// Serializes a merged array's layout: padded flag, unit, and every
/// `(slot, origin)` pair.
pub fn encode_layout(m: &MergedArray, padded: bool) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(padded as u8);
    write_uvarint(&mut out, m.unit as u64);
    write_uvarint(&mut out, m.slots.len() as u64);
    for (slot, origin) in &m.slots {
        for v in slot.iter().chain(origin.iter()) {
            write_uvarint(&mut out, *v as u64);
        }
    }
    out
}

/// Parses [`encode_layout`] output: `(padded, unit, slots)`. `None` on any
/// structural defect.
pub fn decode_layout(bytes: &[u8]) -> Option<(bool, usize, LayoutSlots)> {
    let mut pos = 0usize;
    let padded = *bytes.first()? != 0;
    pos += 1;
    let unit = read_uvarint(bytes, &mut pos)? as usize;
    let n = read_uvarint(bytes, &mut pos)? as usize;
    let mut slots = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let mut vals = [0usize; 6];
        for v in &mut vals {
            *v = read_uvarint(bytes, &mut pos)? as usize;
        }
        slots.push(([vals[0], vals[1], vals[2]], [vals[3], vals[4], vals[5]]));
    }
    Some((padded, unit, slots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::UnitBlock;
    use hqmr_grid::Dims3;

    fn level(unit: usize, n: usize) -> LevelData {
        LevelData {
            level: 0,
            unit,
            dims: Dims3::new(unit, unit, unit * n),
            blocks: (0..n)
                .map(|i| UnitBlock {
                    origin: [0, 0, i * unit],
                    data: (0..unit.pow(3)).map(|k| (i * 1000 + k) as f32).collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn pad_cutoff_follows_unit_and_strategy() {
        assert!(pads(MergeStrategy::Linear, Some(PadKind::Linear), 8));
        assert!(!pads(MergeStrategy::Linear, Some(PadKind::Linear), 4));
        assert!(!pads(MergeStrategy::Stack, Some(PadKind::Linear), 8));
        assert!(!pads(MergeStrategy::Linear, None, 8));
    }

    #[test]
    fn prepared_fields_carry_padding() {
        let lvl = level(8, 3);
        let prep = prepare_level(&lvl, MergeStrategy::Linear, Some(PadKind::Linear));
        assert!(prep.padded());
        assert_eq!(prep.array_count(), 1);
        assert_eq!(prep.field(0).dims(), Dims3::new(9, 9, 24));
        assert_eq!(prep.arrays()[0].field.dims(), Dims3::new(8, 8, 24));
        assert_eq!(prep.blocks().count(), 1);
    }

    #[test]
    fn layout_roundtrip() {
        let lvl = level(4, 5);
        let prep = prepare_level(&lvl, MergeStrategy::Linear, None);
        let m = &prep.arrays()[0];
        let bytes = encode_layout(m, prep.padded());
        let (padded, unit, slots) = decode_layout(&bytes).unwrap();
        assert!(!padded);
        assert_eq!(unit, 4);
        assert_eq!(slots, m.slots);
        // Truncation never panics.
        for cut in 0..bytes.len() {
            let _ = decode_layout(&bytes[..cut]);
        }
        assert!(decode_layout(&[]).is_none());
    }
}
