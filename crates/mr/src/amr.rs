//! Synthetic AMR hierarchies with target per-level densities.
//!
//! The paper's AMR datasets come out of AMReX-based codes (Nyx, IAMR). Our
//! substitute assigns each `unit³` region of a fine uniform field to a
//! refinement level by value range — the same refinement criterion family AMR
//! codes use ("the mesh is refined … when the average value of a block
//! exceeds predefined thresholds", §II-B) — with quantile thresholds chosen to
//! hit the Table III densities (e.g. Nyx-T1: fine 18% / coarse 82%;
//! RT: 15/31/54).

use crate::types::{LevelData, MultiResData, UnitBlock};
use hqmr_grid::{BlockGrid, Dims3, Field3};

/// AMR generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AmrConfig {
    /// Fine-level unit block side (power of two; coarser levels halve it).
    pub unit: usize,
    /// Target fraction of the domain per level, fine → coarse. Must sum to 1.
    pub densities: Vec<f64>,
}

impl AmrConfig {
    /// Creates a config.
    ///
    /// # Panics
    /// Panics if densities don't sum to ~1, if there are fewer than 2 levels,
    /// or if the coarsest unit block would drop below 2 cells.
    pub fn new(unit: usize, densities: Vec<f64>) -> Self {
        assert!(densities.len() >= 2, "AMR needs at least 2 levels");
        let sum: f64 = densities.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "densities must sum to 1, got {sum}"
        );
        assert!(unit.is_power_of_two(), "unit must be a power of two");
        assert!(
            unit >> (densities.len() - 1) >= 2,
            "unit {unit} too small for {} levels",
            densities.len()
        );
        AmrConfig { unit, densities }
    }

    /// Nyx-T1-like: 2 levels, fine 18% / coarse 82% (Table III).
    pub fn nyx_t1() -> Self {
        Self::new(16, vec![0.18, 0.82])
    }

    /// Nyx-T2-like: 2 levels, fine 58% / coarse 42%.
    pub fn nyx_t2() -> Self {
        Self::new(16, vec![0.58, 0.42])
    }

    /// RT-like: 3 levels, 15% / 31% / 54%.
    pub fn rt() -> Self {
        Self::new(16, vec![0.15, 0.31, 0.54])
    }
}

/// Builds an AMR hierarchy from a fine uniform field.
///
/// Blocks are ranked by value range; the top `densities[0]` fraction becomes
/// level 0 (stored verbatim), the next `densities[1]` fraction level 1
/// (2× downsampled), and so on.
///
/// # Panics
/// Panics if the domain is not divisible by `cfg.unit`.
pub fn to_amr(field: &Field3, cfg: &AmrConfig) -> MultiResData {
    let domain = field.dims();
    assert!(
        domain.nx.is_multiple_of(cfg.unit)
            && domain.ny.is_multiple_of(cfg.unit)
            && domain.nz.is_multiple_of(cfg.unit),
        "domain {domain} not divisible by unit {}",
        cfg.unit
    );
    let grid = BlockGrid::new(domain, cfg.unit);
    let ranges = grid.block_ranges(field);
    let mut order: Vec<usize> = (0..ranges.len()).collect();
    order.sort_by(|&a, &b| {
        ranges[b]
            .partial_cmp(&ranges[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    // Split the ranked blocks into per-level index sets by target density.
    let n_levels = cfg.densities.len();
    let n_blocks = grid.num_blocks();
    let mut level_of = vec![0usize; n_blocks];
    let mut cursor = 0usize;
    for (lvl, &d) in cfg.densities.iter().enumerate() {
        let take = if lvl + 1 == n_levels {
            n_blocks - cursor
        } else {
            ((n_blocks as f64) * d).round() as usize
        };
        for &bi in order.iter().skip(cursor).take(take) {
            level_of[bi] = lvl;
        }
        cursor += take;
    }

    let blocks: Vec<_> = grid.iter().collect();
    let mut levels: Vec<LevelData> = (0..n_levels)
        .map(|lvl| LevelData {
            level: lvl,
            unit: cfg.unit >> lvl,
            dims: Dims3::new(domain.nx >> lvl, domain.ny >> lvl, domain.nz >> lvl),
            blocks: Vec::new(),
        })
        .collect();
    for (bi, blk) in blocks.iter().enumerate() {
        let lvl = level_of[bi];
        let mut cube = field.extract_box(blk.origin, Dims3::cube(cfg.unit));
        for _ in 0..lvl {
            cube = cube.downsample2();
        }
        let f = 1usize << lvl;
        levels[lvl].blocks.push(UnitBlock {
            origin: [blk.origin[0] / f, blk.origin[1] / f, blk.origin[2] / f],
            data: cube.into_vec(),
        });
    }
    MultiResData { domain, levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Upsample;

    fn structured_field(n: usize) -> Field3 {
        // Range concentrates around a spherical shell: a natural "refine here".
        let c = n as f32 / 2.0;
        Field3::from_fn(Dims3::cube(n), |x, y, z| {
            let r =
                ((x as f32 - c).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2)).sqrt();
            (-(r - n as f32 / 4.0).powi(2) / 8.0).exp() * 100.0 + 0.001 * (x + y) as f32
        })
    }

    #[test]
    fn two_level_partition_valid() {
        let f = structured_field(64);
        let mr = to_amr(&f, &AmrConfig::nyx_t1());
        assert_eq!(mr.coverage_defects(), 0);
        assert_eq!(mr.levels.len(), 2);
        // Fine-level fraction ≈ 18% of blocks.
        let total = 64usize.pow(3) / 16usize.pow(3);
        let got = mr.levels[0].blocks.len() as f64 / total as f64;
        assert!((got - 0.18).abs() < 0.05, "fine density {got}");
    }

    #[test]
    fn three_level_partition_valid() {
        let f = structured_field(64);
        let mr = to_amr(&f, &AmrConfig::rt());
        assert_eq!(mr.coverage_defects(), 0);
        assert_eq!(mr.levels.len(), 3);
        assert_eq!(mr.levels[2].unit, 4);
        let total: usize = mr.levels.iter().map(|l| l.blocks.len()).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn fine_level_holds_high_range_blocks() {
        let f = structured_field(64);
        let mr = to_amr(&f, &AmrConfig::nyx_t1());
        let grid = BlockGrid::new(f.dims(), 16);
        let ranges = grid.block_ranges(&f);
        let mut fine_min = f32::INFINITY;
        for b in &mr.levels[0].blocks {
            let bi = (b.origin[0] / 16 * 4 + b.origin[1] / 16) * 4 + b.origin[2] / 16;
            fine_min = fine_min.min(ranges[bi]);
        }
        let mut coarse_max = 0f32;
        for b in &mr.levels[1].blocks {
            let bi = (b.origin[0] / 8 * 4 + b.origin[1] / 8) * 4 + b.origin[2] / 8;
            coarse_max = coarse_max.max(ranges[bi]);
        }
        assert!(
            fine_min >= coarse_max,
            "fine_min {fine_min} < coarse_max {coarse_max}"
        );
    }

    #[test]
    fn reconstruction_exact_on_fine_level() {
        let f = structured_field(32);
        let mr = to_amr(&f, &AmrConfig::new(8, vec![0.25, 0.75]));
        let r = mr.reconstruct(Upsample::Nearest);
        for b in &mr.levels[0].blocks {
            assert_eq!(
                r.get(b.origin[0], b.origin[1], b.origin[2]),
                f.get(b.origin[0], b.origin[1], b.origin[2])
            );
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_densities() {
        AmrConfig::new(16, vec![0.5, 0.2]);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_too_many_levels() {
        AmrConfig::new(4, vec![0.2, 0.3, 0.5]);
    }
}
