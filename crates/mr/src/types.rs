//! Core multi-resolution types.

use hqmr_grid::{Dims3, Field3};

/// One `u³` unit block of a resolution level, in level-local cell coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitBlock {
    /// Low corner in level-resolution cell coordinates (multiple of `unit`).
    pub origin: [usize; 3],
    /// `unit³` values, row-major (`z` fastest).
    pub data: Vec<f32>,
}

/// All unit blocks of one resolution level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelData {
    /// Refinement distance from the finest level (0 = finest). Cell size
    /// doubles per level, so level `k` coordinates scale by `2^k`.
    pub level: usize,
    /// Unit block side length in this level's coordinates.
    pub unit: usize,
    /// Domain extents at this level's resolution.
    pub dims: Dims3,
    /// Occupied unit blocks, sorted by raster order of `origin`.
    pub blocks: Vec<UnitBlock>,
}

impl LevelData {
    /// Fraction of this level's domain covered by blocks (Table III "density"),
    /// measured against the *fine* domain: a level-k block covers `2^k`-scaled
    /// volume.
    pub fn covered_cells(&self) -> usize {
        self.blocks.len() * self.unit.pow(3)
    }

    /// Fraction of the level-resolution domain covered by its blocks.
    pub fn density(&self) -> f64 {
        if self.dims.is_empty() {
            return 0.0;
        }
        self.covered_cells() as f64 / self.dims.len() as f64
    }

    /// Builds a dense field of this level's resolution holding the block data
    /// (uncovered cells = `fill`). Useful for visualization (Fig. 2).
    pub fn to_field(&self, fill: f32) -> Field3 {
        let mut f = Field3::new(self.dims, fill);
        let u = self.unit;
        for b in &self.blocks {
            f.insert_box_from(b.origin, Dims3::cube(u), &b.data);
        }
        f
    }
}

/// Upsampling scheme used when reconstructing coarse regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Upsample {
    /// Piecewise-constant (each coarse cell fills its `2^k` children).
    Nearest,
    /// Trilinear within each coarse block.
    Trilinear,
}

/// A hierarchical multi-resolution dataset: AMR output or ROI-derived
/// adaptive data. Levels partition the domain — each fine-domain cell is
/// covered by exactly one level.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiResData {
    /// Fine-level (level 0) domain extents.
    pub domain: Dims3,
    /// Levels, index = refinement distance (0 = finest). Every level present
    /// even if empty.
    pub levels: Vec<LevelData>,
}

impl MultiResData {
    /// Total stored cells across levels (the storage the format actually
    /// keeps; the basis of multi-resolution storage savings).
    pub fn total_cells(&self) -> usize {
        self.levels.iter().map(|l| l.covered_cells()).sum()
    }

    /// Storage reduction versus the uniform fine grid.
    pub fn storage_ratio(&self) -> f64 {
        self.domain.len() as f64 / self.total_cells().max(1) as f64
    }

    /// Reconstructs a dense fine-resolution field: coarser levels are
    /// upsampled `2^k`× block-by-block, finer levels overwrite coarser ones.
    pub fn reconstruct(&self, scheme: Upsample) -> Field3 {
        let mut out = Field3::zeros(self.domain);
        for lvl in self.levels.iter().rev() {
            let factor = 1usize << lvl.level;
            let u = lvl.unit;
            for b in &lvl.blocks {
                let origin = [
                    b.origin[0] * factor,
                    b.origin[1] * factor,
                    b.origin[2] * factor,
                ];
                if factor == 1 {
                    // Finest level: land the block data directly, no
                    // temporary field or upsample pipeline.
                    out.insert_box_from(origin, Dims3::cube(u), &b.data);
                } else {
                    let block = Field3::from_vec(Dims3::cube(u), b.data.clone());
                    let fine = upsample_block(&block, factor, scheme);
                    out.insert_box(origin, &fine);
                }
            }
        }
        out
    }

    /// Checks the partition invariant: every fine cell covered exactly once.
    /// Returns the number of cells covered ≠ 1 (0 ⇒ valid).
    pub fn coverage_defects(&self) -> usize {
        let mut cover = vec![0u8; self.domain.len()];
        for lvl in &self.levels {
            let factor = 1usize << lvl.level;
            let u = lvl.unit * factor;
            for b in &lvl.blocks {
                let o = [
                    b.origin[0] * factor,
                    b.origin[1] * factor,
                    b.origin[2] * factor,
                ];
                for x in o[0]..(o[0] + u).min(self.domain.nx) {
                    for y in o[1]..(o[1] + u).min(self.domain.ny) {
                        for z in o[2]..(o[2] + u).min(self.domain.nz) {
                            cover[self.domain.idx(x, y, z)] += 1;
                        }
                    }
                }
            }
        }
        cover.iter().filter(|&&c| c != 1).count()
    }
}

/// Upsamples one isolated block by `factor` (a power of two).
fn upsample_block(block: &Field3, factor: usize, scheme: Upsample) -> Field3 {
    let mut cur = block.clone();
    let mut f = factor;
    while f > 1 {
        let target = cur.dims().scaled(2);
        cur = match scheme {
            Upsample::Nearest => cur.upsample2_nearest(target),
            Upsample::Trilinear => cur.upsample2_trilinear(target),
        };
        f /= 2;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_block_level(level: usize, unit: usize, dims: Dims3, origin: [usize; 3]) -> LevelData {
        LevelData {
            level,
            unit,
            dims,
            blocks: vec![UnitBlock {
                origin,
                data: vec![1.0; unit.pow(3)],
            }],
        }
    }

    #[test]
    fn density_and_cells() {
        let l = one_block_level(0, 4, Dims3::cube(8), [0, 0, 0]);
        assert_eq!(l.covered_cells(), 64);
        assert!((l.density() - 64.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruct_two_levels() {
        // Fine block covers the low corner octant; coarse block covers the rest
        // coarsely (here: one coarse block spanning the whole coarse domain
        // would double-cover, so use a 4³ coarse block covering the other 8³ —
        // for the test we just verify values land in the right place).
        let fine = LevelData {
            level: 0,
            unit: 4,
            dims: Dims3::cube(8),
            blocks: vec![UnitBlock {
                origin: [0, 0, 0],
                data: vec![5.0; 64],
            }],
        };
        let coarse = LevelData {
            level: 1,
            unit: 2,
            dims: Dims3::cube(4),
            blocks: vec![UnitBlock {
                origin: [2, 2, 2],
                data: vec![3.0; 8],
            }],
        };
        let mr = MultiResData {
            domain: Dims3::cube(8),
            levels: vec![fine, coarse],
        };
        let f = mr.reconstruct(Upsample::Nearest);
        assert_eq!(f.get(0, 0, 0), 5.0);
        assert_eq!(f.get(3, 3, 3), 5.0);
        assert_eq!(f.get(4, 4, 4), 3.0);
        assert_eq!(f.get(7, 7, 7), 3.0);
        // Uncovered corner stays zero.
        assert_eq!(f.get(7, 0, 0), 0.0);
    }

    #[test]
    fn finer_levels_overwrite_coarser() {
        let fine = LevelData {
            level: 0,
            unit: 2,
            dims: Dims3::cube(4),
            blocks: vec![UnitBlock {
                origin: [0, 0, 0],
                data: vec![9.0; 8],
            }],
        };
        let coarse = LevelData {
            level: 1,
            unit: 2,
            dims: Dims3::cube(2),
            blocks: vec![UnitBlock {
                origin: [0, 0, 0],
                data: vec![1.0; 8],
            }],
        };
        let mr = MultiResData {
            domain: Dims3::cube(4),
            levels: vec![fine, coarse],
        };
        let f = mr.reconstruct(Upsample::Nearest);
        // Fine data wins where both exist.
        assert_eq!(f.get(0, 0, 0), 9.0);
        assert_eq!(f.get(1, 1, 1), 9.0);
        // Coarse fills the remainder.
        assert_eq!(f.get(3, 3, 3), 1.0);
    }

    #[test]
    fn coverage_defects_detects_gaps_and_overlaps() {
        let ok = MultiResData {
            domain: Dims3::cube(4),
            levels: vec![LevelData {
                level: 1,
                unit: 2,
                dims: Dims3::cube(2),
                blocks: vec![UnitBlock {
                    origin: [0, 0, 0],
                    data: vec![0.0; 8],
                }],
            }],
        };
        assert_eq!(ok.coverage_defects(), 0);

        let gap = MultiResData {
            domain: Dims3::cube(8),
            levels: ok.levels.clone(),
        };
        assert!(gap.coverage_defects() > 0);
    }

    #[test]
    fn to_field_places_blocks() {
        let l = one_block_level(0, 2, Dims3::cube(4), [2, 0, 0]);
        let f = l.to_field(-1.0);
        assert_eq!(f.get(2, 0, 0), 1.0);
        assert_eq!(f.get(0, 0, 0), -1.0);
    }

    #[test]
    fn storage_ratio_reflects_savings() {
        // Half the domain fine + half coarse (2× down ⇒ 1/8 cells).
        let mr = MultiResData {
            domain: Dims3::cube(8),
            levels: vec![
                LevelData {
                    level: 0,
                    unit: 4,
                    dims: Dims3::cube(8),
                    blocks: (0..4)
                        .map(|i| UnitBlock {
                            origin: [4 * (i % 2), 4 * (i / 2), 0],
                            data: vec![0.0; 64],
                        })
                        .collect(),
                },
                LevelData {
                    level: 1,
                    unit: 2,
                    dims: Dims3::cube(4),
                    blocks: (0..4)
                        .map(|i| UnitBlock {
                            origin: [2 * (i % 2), 2 * (i / 2), 2],
                            data: vec![0.0; 8],
                        })
                        .collect(),
                },
            ],
        };
        assert_eq!(mr.coverage_defects(), 0);
        let expect = 512.0 / (4.0 * 64.0 + 4.0 * 8.0);
        assert!((mr.storage_ratio() - expect).abs() < 1e-12);
    }
}
