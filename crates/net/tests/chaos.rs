//! Chaos suite: a real fleet with fault injection armed must degrade, not
//! collapse. Under a seeded storm of injected disconnects, stalls, partial
//! writes, wire bit-flips and chunk corruption, every operation ends in
//! bounded time with either correct data, quality-flagged data, or a typed
//! error — and with chaos off, the degraded path is bit-identical to the
//! exact one.

use hqmr_core::MrcConfig;
use hqmr_core::TemporalWriter;
use hqmr_grid::{synth, Dims3};
use hqmr_mr::{resample_like, to_adaptive, RoiConfig};
use hqmr_net::{
    ChaosConfig, ClientConfig, DatasetSpec, ErrorFrame, NetClient, NetConfig, NetError, NetServer,
    WireStoreError,
};
use hqmr_serve::{Query, StoreServer, TemporalServer, UNBOUNDED};
use hqmr_store::temporal::{Prediction, TemporalReader};
use hqmr_store::{parse_head, write_store, StoreConfig, StoreError, StoreReader};
use hqmr_sz3::Sz3Codec;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn store_bytes(seed: u64) -> Vec<u8> {
    let f = synth::nyx_like(16, seed);
    let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
    write_store(
        &mr,
        &StoreConfig::new(1e6).with_chunk_blocks(2),
        &Sz3Codec::default(),
    )
}

fn spawn_fleet(buf: Vec<u8>, chaos: Option<ChaosConfig>) -> NetServer {
    NetServer::spawn(
        "127.0.0.1:0",
        NetConfig {
            workers: 2,
            chaos,
            read_timeout: Some(Duration::from_millis(500)),
            write_timeout: Some(Duration::from_secs(5)),
            request_deadline: Some(Duration::from_secs(5)),
            ..NetConfig::default()
        },
        vec![DatasetSpec {
            id: 0,
            name: "chaos".into(),
            reader: Arc::new(StoreReader::from_bytes(buf).expect("open store")),
        }],
    )
    .expect("spawn fleet")
}

fn storm_client_cfg() -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_secs(5)),
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        request_deadline: Some(Duration::from_secs(3)),
        backoff_base: Duration::from_micros(200),
        backoff_cap: Duration::from_millis(5),
        ..ClientConfig::default()
    }
}

/// With chaos off, the degraded read path over the wire is bit-identical
/// to the in-process exact path, and nothing is flagged.
#[test]
fn chaos_off_degraded_reads_are_bit_identical_to_exact() {
    let buf = store_bytes(400);
    let oracle = StoreServer::new(
        Arc::new(StoreReader::from_bytes(buf.clone()).unwrap()),
        UNBOUNDED,
    );
    let server = spawn_fleet(buf, None);
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let queries = vec![
        Query::Level { level: 0 },
        Query::Level { level: 1 },
        Query::Roi {
            level: 0,
            lo: [1, 2, 0],
            hi: [15, 10, 16],
            fill: -3.0,
        },
        Query::Iso { level: 0, iso: 5e7 },
    ];
    let remote = client.batch_degraded(0, &queries).unwrap();
    let direct = oracle.serve_batch(&queries).unwrap();
    assert!(
        remote.iter().all(|r| r.is_exact()),
        "nothing may be flagged"
    );
    let responses: Vec<_> = remote.into_iter().map(|r| r.response).collect();
    assert_eq!(responses, direct, "degraded path must serve exact bytes");
}

/// The acceptance storm: a fleet with every fault class armed, hammered by
/// concurrent retrying clients. Requirements: zero hangs (every operation
/// completes within its deadline envelope), every failure is typed, some
/// operations succeed, and degraded answers carry their quality flags.
#[test]
fn seeded_chaos_storm_completes_typed_with_zero_hangs() {
    let chaos =
        ChaosConfig::parse("drop:0.03,partial:0.03,wire:0.02,stall:1ms@0.15,flip:0.05,seed:4242")
            .unwrap();
    let server = spawn_fleet(store_bytes(410), Some(chaos));
    let addr = server.local_addr();

    const THREADS: usize = 8;
    const OPS: usize = 25;
    // Generous per-op bound: deadline (3s) + retries (12) × backoff cap.
    const HANG: Duration = Duration::from_secs(60);

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut cfg = storm_client_cfg();
                cfg.jitter_seed = 0x5EED ^ t as u64;
                // Chaos also shoots down handshakes; keep dialing until one
                // survives (typed transport failures only).
                let mut client = (0..100)
                    .find_map(|_| match NetClient::connect_with(addr, cfg.clone()) {
                        Ok(c) => Some(c),
                        Err(NetError::Io(_) | NetError::Protocol(_) | NetError::TimedOut) => {
                            std::thread::sleep(Duration::from_millis(2));
                            None
                        }
                        Err(e) => panic!("storm connect: {e:?}"),
                    })
                    .expect("no handshake survived 100 dials");
                let mut ok = 0u32;
                let mut degraded = 0u32;
                let mut gave_up = 0u32;
                for i in 0..OPS {
                    let queries = [Query::Level {
                        level: (i % 2) as u32 as usize,
                    }];
                    let t0 = Instant::now();
                    match client.batch_degraded_retry(0, &queries, 12) {
                        Ok(rs) => {
                            ok += 1;
                            if rs.iter().any(|r| !r.is_exact()) {
                                degraded += 1;
                            }
                        }
                        // Typed transport-level give-ups are acceptable
                        // storm outcomes; anything untyped is a bug and
                        // panics the thread.
                        Err(NetError::RetriesExhausted { .. }) => gave_up += 1,
                        Err(
                            e @ (NetError::Io(_)
                            | NetError::Protocol(_)
                            | NetError::TimedOut
                            | NetError::Busy
                            | NetError::DeadlineExceeded
                            | NetError::TooManyConnections
                            | NetError::UnexpectedResponse),
                        ) => panic!("retry wrapper must absorb or wrap, got {e:?}"),
                        Err(NetError::Remote(e)) => panic!("unexpected remote error: {e}"),
                    }
                    let elapsed = t0.elapsed();
                    assert!(elapsed < HANG, "op {i} on thread {t} hung for {elapsed:?}");
                }
                (ok, degraded, gave_up)
            })
        })
        .collect();

    let mut total_ok = 0u32;
    for h in handles {
        let (ok, _degraded, _gave_up) = h.join().expect("storm thread must not panic");
        total_ok += ok;
    }
    assert!(total_ok > 0, "the storm must make some progress");
}

/// End-to-end at-rest corruption: flip one byte inside a chunk's compressed
/// payload. The exact path fails the batch with the typed `CorruptChunk`;
/// the degraded path serves the batch and flags exactly that chunk.
#[test]
fn corrupt_store_chunk_fails_exact_and_flags_degraded() {
    let mut buf = store_bytes(420);
    let (meta, data_start) = parse_head(&buf).expect("parse store head");
    let cm = &meta.levels[0].chunks[0];
    assert!(cm.len > 0);
    let victim = data_start as usize + cm.offset as usize;
    buf[victim] ^= 0xFF;

    let server = spawn_fleet(buf, None);
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let queries = [Query::Level { level: 0 }];

    match client.batch(0, &queries) {
        Err(NetError::Remote(ErrorFrame::Store(
            WireStoreError::CorruptChunk { level: 0, block: 0 }
            | WireStoreError::Codec {
                level: 0, block: 0, ..
            },
        ))) => {}
        other => panic!("exact read of a corrupt chunk must fail typed, got {other:?}"),
    }

    let rs = client
        .batch_degraded(0, &queries)
        .expect("degraded read succeeds");
    assert_eq!(rs.len(), 1);
    assert_eq!(
        rs[0].degraded,
        vec![(0, 0)],
        "exactly the corrupt chunk is flagged"
    );
    // The filled data is usable: finite everywhere.
    match &rs[0].response {
        hqmr_serve::Response::Level(ld) => {
            assert!(ld
                .blocks
                .iter()
                .flat_map(|b| b.data.iter())
                .all(|v| v.is_finite()));
        }
        other => panic!("expected a Level response, got {other:?}"),
    }
}

/// With parity sidecars armed, chunk-rot chaos stops being degradation:
/// every faulted chunk is reconstructed from parity and served bit-exactly
/// through the *exact* path, and the wire stats report the repairs.
#[test]
fn flip_chaos_with_parity_serves_exact_over_the_wire() {
    let buf = store_bytes(430);
    let oracle = StoreServer::new(
        Arc::new(StoreReader::from_bytes(buf.clone()).unwrap()),
        UNBOUNDED,
    );
    // flip:1 faults every chunk on first fetch — the worst case rot —
    // while parity reconstruction reads the clean at-rest bytes.
    let chaos = ChaosConfig::parse("flip:1,seed:4242").unwrap();
    let server = NetServer::spawn(
        "127.0.0.1:0",
        NetConfig {
            workers: 2,
            chaos: Some(chaos),
            parity_group: 4,
            ..NetConfig::default()
        },
        vec![DatasetSpec {
            id: 0,
            name: "healed".into(),
            reader: Arc::new(StoreReader::from_bytes(buf).expect("open store")),
        }],
    )
    .expect("spawn fleet");
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    let queries = vec![Query::Level { level: 0 }, Query::Level { level: 1 }];
    let remote = client.batch(0, &queries).expect("exact batch heals");
    assert_eq!(remote, oracle.serve_batch(&queries).unwrap());

    // The degraded path flags nothing: repair beat the fill fallback.
    let rs = client.batch_degraded(0, &queries).unwrap();
    assert!(
        rs.iter().all(|r| r.is_exact()),
        "repairs must not be flagged"
    );

    let stats = client.stats(0, false).unwrap();
    assert!(stats.cache.repairs > 0, "repairs must be counted");
    assert_eq!(stats.cache.repair_failures, 0);
}

/// The background scrubber heals a faulted tenant before any client query:
/// after one pass completes, the wire stats show scrub activity and a
/// subsequent exact read needs no on-demand repair.
#[test]
fn background_scrubber_reports_progress_over_the_wire() {
    let buf = store_bytes(440);
    let server = NetServer::spawn(
        "127.0.0.1:0",
        NetConfig {
            workers: 1,
            parity_group: 4,
            scrub_rate: Some(u64::MAX), // no pacing: finish a pass promptly
            ..NetConfig::default()
        },
        vec![DatasetSpec {
            id: 0,
            name: "scrubbed".into(),
            reader: Arc::new(StoreReader::from_bytes(buf).expect("open store")),
        }],
    )
    .expect("spawn fleet");
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats(0, false).unwrap();
        if stats.scrub_passes > 0 {
            assert!(stats.scrub_verified > 0, "a pass verifies every chunk");
            assert_eq!(stats.scrub_unrepairable, 0, "the store is healthy");
            break;
        }
        assert!(Instant::now() < deadline, "scrubber made no pass in 30s");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Builds a short delta-predicted temporal run on disk (parity sidecars
/// included) and returns its directory.
fn temporal_run(name: &str, steps: usize) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    let frames = synth::advected_sequence(Dims3::cube(16), steps, [0.5, 0.25, 0.0], 33);
    let template = to_adaptive(&frames[0], &RoiConfig::new(8, 0.5));
    let cfg = MrcConfig::baseline(0.02);
    let mut writer = TemporalWriter::create(&dir, &cfg, Prediction::delta()).unwrap();
    for (t, f) in frames.iter().enumerate() {
        writer
            .append(t as u64, &resample_like(&template, f))
            .unwrap();
    }
    dir
}

/// The temporal storm: 8 threads hammer a [`TemporalServer`] whose every
/// stored-chunk fetch faults, with disk parity armed. Requirements mirror
/// the wire storm: zero hangs, every answer either bit-exact (healed) or a
/// typed error — and with parity in place, all of them heal.
#[test]
fn temporal_chaos_storm_heals_every_frame() {
    const STEPS: usize = 4;
    let dir = temporal_run("hqnw_chaos_temporal_storm", STEPS);
    let clean = TemporalReader::open(&dir).unwrap();
    let oracle: Vec<_> = (0..STEPS).map(|t| clean.read_frame(t).unwrap()).collect();

    let reader = Arc::new(TemporalReader::open(&dir).unwrap());
    let server = Arc::new(
        TemporalServer::unbounded(Arc::clone(&reader))
            .with_fault_hook(Arc::new(|_, _| true)) // every fetch rots
            .with_disk_parity()
            .expect("sidecars written by TemporalWriter"),
    );
    assert!(server.has_parity());

    const THREADS: usize = 8;
    const OPS: usize = 16;
    const HANG: Duration = Duration::from_secs(60);
    let oracle = Arc::new(oracle);
    let handles: Vec<_> = (0..THREADS)
        .map(|th| {
            let server = Arc::clone(&server);
            let oracle = Arc::clone(&oracle);
            std::thread::spawn(move || {
                for i in 0..OPS {
                    let t = (th + i) % STEPS;
                    let t0 = Instant::now();
                    let frame = server.read_frame(t).expect("parity heals every fault");
                    assert_eq!(frame, oracle[t], "healed frame {t} must be bit-exact");
                    let elapsed = t0.elapsed();
                    assert!(elapsed < HANG, "op {i} on thread {th} hung for {elapsed:?}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("storm thread must not panic");
    }

    let stats = server.stats();
    assert!(stats.repairs > 0, "faults were injected, repairs must show");
    assert_eq!(
        stats.repair_failures, 0,
        "single-fault rot is always healable"
    );

    // The same storm *without* parity must fail typed, not hang or panic.
    let bare = TemporalServer::unbounded(reader).with_fault_hook(Arc::new(|_, _| true));
    match bare.read_frame(0) {
        Err(StoreError::CorruptChunk { .. }) => {}
        other => panic!("unarmed server must fail typed, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
