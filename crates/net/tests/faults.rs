//! Fault-path suite: every way a server can fail a client must surface as
//! a *typed* [`NetError`] in bounded time — never a hang, never garbage
//! data — and the retry policy must recover whenever recovery is possible.
//!
//! These tests drive the real [`NetClient`] against small rogue servers
//! (plain listeners speaking just enough HQNW) so each failure shape is
//! exact and deterministic: a half-written response, a silent server, an
//! always-busy server, a server that answers with deadline errors.

use hqmr_net::proto::{read_frame, read_hello, write_frame, write_hello, ErrorFrame, NetResponse};
use hqmr_net::{ClientConfig, NetClient, NetError};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// A client config with test-scale timeouts: failures must be *observed*
/// within a second or two, not after the production 30 s.
fn fast_cfg() -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_secs(5)),
        read_timeout: Some(Duration::from_millis(500)),
        write_timeout: Some(Duration::from_secs(5)),
        backoff_base: Duration::from_micros(200),
        backoff_cap: Duration::from_millis(5),
        ..ClientConfig::default()
    }
}

/// Completes the server side of the hello exchange.
fn handshake(s: &mut TcpStream) {
    write_hello(s).unwrap();
    read_hello(s).unwrap();
}

/// Reads one request frame and answers it with `resp`.
fn answer(s: &mut TcpStream, resp: &NetResponse) {
    let (h, _body) = read_frame(&mut *s, 1 << 20).unwrap();
    let mut frame = Vec::new();
    write_frame(&mut frame, resp.kind(), h.req_id, &resp.encode()).unwrap();
    s.write_all(&frame).unwrap();
}

/// Satellite (d): a server that crashes after transmitting half a response
/// frame. The client must observe a typed error — not hang waiting for the
/// rest, not hand back a partial decode — and the retrying call must
/// transparently reconnect and succeed against the recovered server.
#[test]
fn half_written_response_is_typed_and_reconnect_recovers() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let rogue = std::thread::spawn(move || {
        // Connection 1: half a response, then die.
        let (mut s, _) = listener.accept().unwrap();
        handshake(&mut s);
        let (h, _body) = read_frame(&mut s, 1 << 20).unwrap();
        let resp = NetResponse::Batch(vec![]);
        let mut frame = Vec::new();
        write_frame(&mut frame, resp.kind(), h.req_id, &resp.encode()).unwrap();
        s.write_all(&frame[..frame.len() / 2]).unwrap();
        s.flush().unwrap();
        drop(s);
        // Connection 2 (the reconnect): serve properly.
        let (mut s, _) = listener.accept().unwrap();
        handshake(&mut s);
        answer(&mut s, &NetResponse::Batch(vec![]));
    });

    let mut client = NetClient::connect_with(addr, fast_cfg()).unwrap();
    let t0 = Instant::now();
    match client.batch(0, &[]) {
        // Half a frame then EOF: the framing layer reports it truncated.
        Err(NetError::Protocol(_)) | Err(NetError::Io(_)) | Err(NetError::TimedOut) => {}
        other => panic!("half-written response must fail typed, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "failure must be prompt, took {:?}",
        t0.elapsed()
    );

    // The retry policy re-dials (Batch is idempotent) and gets the answer.
    let rs = client.batch_retry(0, &[], 4).expect("reconnect recovers");
    assert!(rs.is_empty());
    rogue.join().unwrap();
}

/// A server that completes the handshake and then goes silent: the read
/// timeout turns the would-be hang into a typed, promptly-delivered
/// [`NetError::TimedOut`].
#[test]
fn silent_server_times_out_typed_and_bounded() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let rogue = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        handshake(&mut s);
        // Hold the socket open, answer nothing, until the test ends.
        let _ = done_rx.recv();
        drop(s);
    });

    let mut client = NetClient::connect_with(addr, fast_cfg()).unwrap();
    let t0 = Instant::now();
    match client.batch(0, &[]) {
        Err(NetError::TimedOut) => {}
        other => panic!("expected TimedOut, got {other:?}"),
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed >= Duration::from_millis(400) && elapsed < Duration::from_secs(5),
        "timeout must fire near the configured 500ms, took {elapsed:?}"
    );
    done_tx.send(()).unwrap();
    rogue.join().unwrap();
}

/// The per-request deadline is tighter than the socket timeout and wins.
#[test]
fn request_deadline_beats_read_timeout() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let rogue = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        handshake(&mut s);
        let _ = done_rx.recv();
        drop(s);
    });

    let cfg = ClientConfig {
        read_timeout: Some(Duration::from_secs(30)),
        request_deadline: Some(Duration::from_millis(200)),
        ..fast_cfg()
    };
    let mut client = NetClient::connect_with(addr, cfg).unwrap();
    let t0 = Instant::now();
    match client.batch(0, &[]) {
        Err(NetError::TimedOut) => {}
        other => panic!("expected TimedOut, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "the 200ms deadline must override the 30s socket timeout, took {:?}",
        t0.elapsed()
    );
    done_tx.send(()).unwrap();
    rogue.join().unwrap();
}

/// A persistently-busy server exhausts the retry budget into the typed
/// give-up, with the attempt count and the underlying cause attached.
#[test]
fn persistent_busy_exhausts_retries_typed() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let rogue = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        handshake(&mut s);
        // Busy on the same connection, as many times as asked; exit when
        // the client hangs up.
        while let Ok((h, _body)) = read_frame(&mut s, 1 << 20) {
            let resp = NetResponse::Error(ErrorFrame::Busy);
            let mut frame = Vec::new();
            write_frame(&mut frame, resp.kind(), h.req_id, &resp.encode()).unwrap();
            if s.write_all(&frame).is_err() {
                break;
            }
        }
    });

    let mut client = NetClient::connect_with(addr, fast_cfg()).unwrap();
    match client.batch_retry(0, &[], 3) {
        Err(NetError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 4, "3 retries = 4 attempts");
            assert!(matches!(*last, NetError::Busy), "last cause: {last:?}");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    drop(client); // closes the socket; the rogue loop errors out and exits
    rogue.join().unwrap();
}

/// A remote `DeadlineExceeded` frame maps to the typed client error, the
/// connection stays usable, and the retry policy treats it as transient:
/// two deadline answers followed by a real one succeed within budget.
#[test]
fn remote_deadline_is_typed_and_retryable() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let rogue = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        handshake(&mut s);
        answer(&mut s, &NetResponse::Error(ErrorFrame::DeadlineExceeded));
        // Same connection: the client must not have hung up.
        answer(&mut s, &NetResponse::Error(ErrorFrame::DeadlineExceeded));
        answer(&mut s, &NetResponse::Batch(vec![]));
        answer(&mut s, &NetResponse::Error(ErrorFrame::DeadlineExceeded));
    });

    let mut client = NetClient::connect_with(addr, fast_cfg()).unwrap();
    let rs = client
        .batch_retry(0, &[], 4)
        .expect("third attempt succeeds");
    assert!(rs.is_empty());
    match client.batch(0, &[]) {
        Err(NetError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    rogue.join().unwrap();
}
