//! Loopback differential suite: a real TCP round-trip through [`NetServer`]
//! must be *bit-identical* to calling the in-process `StoreServer` — for
//! every codec backend, every query shape, and progressive refinement —
//! and server-side failures must arrive as the same typed variants the
//! in-process API returns.

use hqmr_codec::{Codec, NullCodec};
use hqmr_grid::{synth, Dims3};
use hqmr_mr::{to_adaptive, RoiConfig, Upsample};
use hqmr_net::{
    DatasetSpec, ErrorFrame, NetClient, NetConfig, NetError, NetServer, WireStoreError,
};
use hqmr_serve::{Query, StoreServer, UNBOUNDED};
use hqmr_store::{write_store, StoreConfig, StoreReader};
use hqmr_sz2::Sz2Codec;
use hqmr_sz3::Sz3Codec;
use hqmr_zfp::ZfpCodec;
use std::sync::Arc;

/// Every registered backend, as (name, codec).
fn all_codecs() -> Vec<(&'static str, Box<dyn Codec>)> {
    vec![
        ("sz3", Box::new(Sz3Codec::default())),
        ("sz2", Box::new(Sz2Codec::MULTIRES)),
        ("zfp", Box::new(ZfpCodec)),
        ("null", Box::new(NullCodec)),
    ]
}

fn store_bytes(seed: u64, codec: &dyn Codec) -> Vec<u8> {
    let f = synth::nyx_like(16, seed);
    let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
    // nyx-scale values are ~1e8; eb 1e6 keeps the test fast.
    write_store(&mr, &StoreConfig::new(1e6).with_chunk_blocks(2), codec)
}

fn query_mix(dims: Dims3) -> Vec<Query> {
    vec![
        Query::Level { level: 0 },
        Query::Level { level: 1 },
        Query::Roi {
            level: 0,
            lo: [1, 2, 0],
            hi: [dims.nx - 1, dims.ny / 2 + 2, dims.nz],
            fill: -3.0,
        },
        Query::Roi {
            level: 1,
            lo: [0, 0, 0],
            hi: [dims.nx / 2, dims.ny / 2, dims.nz / 2],
            fill: 0.0,
        },
        Query::Iso { level: 0, iso: 5e7 },
        Query::Iso { level: 1, iso: 1e8 },
    ]
}

/// The acceptance criterion: all four backends, all query shapes, remote ==
/// in-process, bit for bit.
#[test]
fn remote_batch_is_bit_identical_to_in_process_across_backends() {
    for (i, (name, codec)) in all_codecs().into_iter().enumerate() {
        let buf = store_bytes(200 + i as u64, codec.as_ref());
        let oracle = StoreServer::new(
            Arc::new(StoreReader::from_bytes(buf.clone()).unwrap()),
            UNBOUNDED,
        );
        let server = NetServer::spawn(
            "127.0.0.1:0",
            NetConfig {
                workers: 2,
                ..NetConfig::default()
            },
            vec![DatasetSpec {
                id: 0,
                name: name.into(),
                reader: Arc::new(StoreReader::from_bytes(buf).unwrap()),
            }],
        )
        .unwrap();

        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let queries = query_mix(oracle.meta().domain);
        // Twice: a cold pass (decodes) and a warm pass (cache hits) must
        // serve the same bytes.
        for pass in ["cold", "warm"] {
            let remote = client.batch(0, &queries).unwrap();
            let direct = oracle.serve_batch(&queries).unwrap();
            assert_eq!(remote, direct, "backend {name}, {pass} pass");
        }
    }
}

/// Progressive refinement over the wire matches the in-process iterator
/// step by step, both upsampling schemes.
#[test]
fn remote_progressive_matches_in_process() {
    let buf = store_bytes(300, &Sz3Codec::default());
    let oracle = StoreServer::new(
        Arc::new(StoreReader::from_bytes(buf.clone()).unwrap()),
        UNBOUNDED,
    );
    let server = NetServer::spawn(
        "127.0.0.1:0",
        NetConfig::default(),
        vec![DatasetSpec {
            id: 4,
            name: "prog".into(),
            reader: Arc::new(StoreReader::from_bytes(buf).unwrap()),
        }],
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for scheme in [Upsample::Nearest, Upsample::Trilinear] {
        let remote = client.progressive(4, scheme).unwrap();
        let direct: Vec<_> = oracle
            .progressive(scheme)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(remote, direct, "{scheme:?}");
    }
}

/// The catalog reflects the hosted stores, and stats round-trip with the
/// snapshot identity intact; `take` drains the window remotely.
#[test]
fn catalog_and_stats_round_trip() {
    let buf_a = store_bytes(310, &Sz3Codec::default());
    let buf_b = store_bytes(311, &NullCodec);
    let server = NetServer::spawn(
        "127.0.0.1:0",
        NetConfig::default(),
        vec![
            DatasetSpec {
                id: 2,
                name: "alpha".into(),
                reader: Arc::new(StoreReader::from_bytes(buf_a).unwrap()),
            },
            DatasetSpec {
                id: 5,
                name: "beta".into(),
                reader: Arc::new(StoreReader::from_bytes(buf_b).unwrap()),
            },
        ],
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    let list = client.datasets().unwrap();
    assert_eq!(list.len(), 2);
    assert_eq!((list[0].id, list[0].name.as_str()), (2, "alpha"));
    assert_eq!((list[1].id, list[1].name.as_str()), (5, "beta"));
    assert!(list.iter().all(|d| d.levels > 0 && d.chunks > 0));

    client.batch(2, &[Query::Level { level: 0 }]).unwrap();
    let s = client.stats(2, true).unwrap();
    assert!(s.cache.requests > 0);
    assert_eq!(s.cache.requests, s.cache.hits + s.cache.misses);
    // No scrubber configured, no faults injected: the global counters sit
    // at zero.
    assert_eq!((s.scrub_passes, s.cache.repairs), (0, 0));
    // The take drained the window; an untouched peek is now empty.
    let s2 = client.stats(2, false).unwrap();
    assert_eq!(s2.cache.requests, 0);
    // The other tenant's counters are isolated.
    let sb = client.stats(5, false).unwrap();
    assert_eq!(sb.cache.requests, 0);
}

/// In-process error variants come back over the wire as the same typed
/// story: `NoSuchLevel` and `RoiOutOfBounds` from the store, plus the
/// net-level `NoSuchDataset`.
#[test]
fn typed_errors_cross_the_wire() {
    let buf = store_bytes(320, &Sz3Codec::default());
    let server = NetServer::spawn(
        "127.0.0.1:0",
        NetConfig::default(),
        vec![DatasetSpec {
            id: 0,
            name: "err".into(),
            reader: Arc::new(StoreReader::from_bytes(buf).unwrap()),
        }],
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    match client.batch(0, &[Query::Level { level: 42 }]) {
        Err(NetError::Remote(ErrorFrame::Store(WireStoreError::NoSuchLevel(42)))) => {}
        other => panic!("expected NoSuchLevel(42), got {other:?}"),
    }
    match client.batch(
        0,
        &[Query::Roi {
            level: 0,
            lo: [0, 0, 0],
            hi: [usize::MAX, 1, 1],
            fill: 0.0,
        }],
    ) {
        Err(NetError::Remote(ErrorFrame::Store(WireStoreError::RoiOutOfBounds))) => {}
        other => panic!("expected RoiOutOfBounds, got {other:?}"),
    }
    match client.batch(9, &[Query::Level { level: 0 }]) {
        Err(NetError::Remote(ErrorFrame::NoSuchDataset(9))) => {}
        other => panic!("expected NoSuchDataset(9), got {other:?}"),
    }
    // The connection survives typed errors: a valid request still works.
    assert!(client.batch(0, &[Query::Level { level: 0 }]).is_ok());
}

/// A corrupted frame (bad CRC) is answered with a typed error frame before
/// the server hangs up — corruption is a protocol answer, not a dropped
/// connection with no explanation.
#[test]
fn corrupt_frames_get_a_typed_error_frame() {
    use hqmr_net::proto::{
        read_frame, read_hello, write_frame, write_hello, Kind, NetResponse, Request,
    };
    use std::io::Write;

    let buf = store_bytes(330, &NullCodec);
    let server = NetServer::spawn(
        "127.0.0.1:0",
        NetConfig::default(),
        vec![DatasetSpec {
            id: 0,
            name: "crc".into(),
            reader: Arc::new(StoreReader::from_bytes(buf).unwrap()),
        }],
    )
    .unwrap();

    // Raw socket: handshake, then a deliberately corrupted frame.
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    write_hello(&mut stream).unwrap();
    read_hello(&mut stream).unwrap();
    let req = Request::Batch {
        dataset: 0,
        queries: vec![Query::Level { level: 0 }],
    };
    let mut frame = Vec::new();
    write_frame(&mut frame, req.kind(), 1, &req.encode()).unwrap();
    let last = frame.len() - 1;
    frame[last] ^= 0xFF; // flip body bits → CRC mismatch at the server
    stream.write_all(&frame).unwrap();

    let (header, body) = read_frame(&mut stream, 1 << 20).unwrap();
    assert_eq!(header.kind, Kind::RError);
    match NetResponse::decode(header.kind, &body).unwrap() {
        NetResponse::Error(ErrorFrame::BadRequest(msg)) => {
            assert!(msg.contains("CRC"), "unexpected message: {msg}");
        }
        other => panic!("expected BadRequest error frame, got {other:?}"),
    }
    // After answering, the server hangs up (the stream is desynced).
    assert!(matches!(
        read_frame(&mut stream, 1 << 20),
        Err(hqmr_net::ProtocolError::Truncated | hqmr_net::ProtocolError::Io(_))
    ));
}

/// Admission control: over the connection cap, a client gets the typed
/// `TooManyConnections` answer instead of a hang, and capacity frees up
/// when a connection closes.
#[test]
fn connection_cap_is_typed_and_recovers() {
    let buf = store_bytes(340, &NullCodec);
    let server = NetServer::spawn(
        "127.0.0.1:0",
        NetConfig {
            max_connections: 2,
            ..NetConfig::default()
        },
        vec![DatasetSpec {
            id: 0,
            name: "cap".into(),
            reader: Arc::new(StoreReader::from_bytes(buf).unwrap()),
        }],
    )
    .unwrap();
    let addr = server.local_addr();

    let mut a = NetClient::connect(addr).unwrap();
    let mut b = NetClient::connect(addr).unwrap();
    assert!(a.datasets().is_ok());
    assert!(b.datasets().is_ok());

    // Third connection: handshake completes, first call is answered typed.
    let mut c = NetClient::connect(addr).unwrap();
    match c.datasets() {
        Err(NetError::TooManyConnections) => {}
        other => panic!("expected TooManyConnections, got {other:?}"),
    }
    assert_eq!(server.admission_rejections(), 1);

    // Close one; a new connection must be admitted. The guard decrements
    // after the conn thread winds down, so poll briefly.
    drop(a);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let mut d = NetClient::connect(addr).unwrap();
        match d.datasets() {
            Ok(_) => break,
            Err(NetError::TooManyConnections) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            other => panic!("expected recovery, got {other:?}"),
        }
    }
}

/// Concurrent clients hammering a tiny fleet (1 worker, depth-1 queue, zero
/// cache budget) either get correct answers or typed Busy — never a hang,
/// never a protocol error, never a panic.
#[test]
fn saturation_yields_busy_or_correct_answers() {
    let buf = store_bytes(350, &Sz3Codec::default());
    let oracle = StoreServer::new(
        Arc::new(StoreReader::from_bytes(buf.clone()).unwrap()),
        UNBOUNDED,
    );
    let expected = Arc::new(oracle.serve_batch(&[Query::Level { level: 1 }]).unwrap());
    let server = NetServer::spawn(
        "127.0.0.1:0",
        NetConfig {
            workers: 1,
            queue_depth: 1,
            cache_budget: 0,
            ..NetConfig::default()
        },
        vec![DatasetSpec {
            id: 0,
            name: "storm".into(),
            reader: Arc::new(StoreReader::from_bytes(buf).unwrap()),
        }],
    )
    .unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                let mut ok = 0u32;
                let mut busy = 0u32;
                for _ in 0..30 {
                    match client.batch(0, &[Query::Level { level: 1 }]) {
                        Ok(resp) => {
                            assert_eq!(resp, *expected);
                            ok += 1;
                        }
                        Err(NetError::Busy) => busy += 1,
                        Err(other) => panic!("unexpected failure under load: {other}"),
                    }
                }
                (ok, busy)
            })
        })
        .collect();

    let mut total_ok = 0;
    for h in handles {
        let (ok, _busy) = h.join().expect("load thread panicked");
        total_ok += ok;
    }
    // Progress is mandatory; Busy counts are load-dependent and asserted
    // deterministically in the server's unit test instead.
    assert!(total_ok > 0, "no request ever succeeded");
}
