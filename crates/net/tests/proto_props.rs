//! Adversarial property suite for the HQNW wire protocol: random bytes,
//! truncated frames, and bit-flipped frames must always produce a typed
//! [`ProtocolError`] — never a panic, never an over-allocation — and every
//! request/response variant round-trips bit-identically.

use hqmr_grid::{Dims3, Field3};
use hqmr_mr::{LevelData, UnitBlock, Upsample};
use hqmr_net::proto::{
    read_frame, read_hello, write_frame, Kind, NetResponse, ProtocolError, Request, ServerStats,
};
use hqmr_net::{DatasetInfo, ErrorFrame, WireStoreError};
use hqmr_serve::{CacheStats, Query, QueryResult, Response};
use hqmr_store::RefinementStep;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

// The offline rand shim exposes `next_u64` + `gen_range` only; these cover
// the handful of other draws this suite needs.
fn fill(rng: &mut StdRng, buf: &mut [u8]) {
    for b in buf.iter_mut() {
        *b = rng.next_u64() as u8;
    }
}

fn ru32(rng: &mut StdRng) -> u32 {
    rng.next_u64() as u32
}

fn rbool(rng: &mut StdRng) -> bool {
    rng.next_u64() & 1 == 1
}

const REQUEST_KINDS: [Kind; 5] = [
    Kind::List,
    Kind::Batch,
    Kind::BatchDegraded,
    Kind::Progressive,
    Kind::Stats,
];
const RESPONSE_KINDS: [Kind; 6] = [
    Kind::RDatasets,
    Kind::RBatch,
    Kind::RBatchDegraded,
    Kind::RProgressive,
    Kind::RStats,
    Kind::RError,
];

/// Decoding must be total: typed result out, whatever bytes go in. The
/// assertion is simply that this returns (no panic) and that `Ok` implies a
/// clean re-encode cycle.
fn decode_any(kind: Kind, body: &[u8]) {
    let round = |req: &Request| {
        let enc = req.encode();
        assert_eq!(&Request::decode(req.kind(), &enc).unwrap(), req);
    };
    match kind {
        Kind::List | Kind::Batch | Kind::BatchDegraded | Kind::Progressive | Kind::Stats => {
            if let Ok(req) = Request::decode(kind, body) {
                round(&req);
            }
        }
        _ => {
            if let Ok(resp) = NetResponse::decode(kind, body) {
                let enc = resp.encode();
                assert_eq!(NetResponse::decode(resp.kind(), &enc).unwrap(), resp);
            }
        }
    }
}

#[test]
fn random_bodies_never_panic() {
    let mut rng = StdRng::seed_from_u64(0x4e45_5457);
    for case in 0..4000 {
        let len = rng.gen_range(0usize..256);
        let mut body = vec![0u8; len];
        fill(&mut rng, &mut body);
        for kind in REQUEST_KINDS.into_iter().chain(RESPONSE_KINDS) {
            decode_any(kind, &body);
        }
        // Also feed the raw bytes to the frame reader itself.
        let _ = read_frame(&mut body.as_slice(), 1 << 16);
        let _ = read_hello(&mut body.as_slice());
        if case % 1000 == 0 {
            // Occasionally go bigger to cross varint/count boundaries.
            let mut big = vec![0u8; rng.gen_range(256..4096)];
            fill(&mut rng, &mut big);
            for kind in REQUEST_KINDS.into_iter().chain(RESPONSE_KINDS) {
                decode_any(kind, &big);
            }
        }
    }
}

fn sample_level(rng: &mut StdRng) -> LevelData {
    let unit = *[1usize, 2, 4].get(rng.gen_range(0..3)).unwrap();
    let blocks = (0..rng.gen_range(0..4))
        .map(|i| UnitBlock {
            origin: [i * unit, 0, rng.gen_range(0..8)],
            data: (0..unit.pow(3)).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        })
        .collect();
    LevelData {
        level: rng.gen_range(0..4),
        unit,
        dims: Dims3::new(8, 8, 8),
        blocks,
    }
}

fn sample_field(rng: &mut StdRng) -> Field3 {
    let dims = Dims3::new(
        rng.gen_range(1..5),
        rng.gen_range(1..5),
        rng.gen_range(1..5),
    );
    Field3::from_fn(dims, |_, _, _| rng.gen_range(-10.0..10.0))
}

fn sample_queries(rng: &mut StdRng) -> Vec<Query> {
    (0..rng.gen_range(0..6))
        .map(|_| match rng.gen_range(0..3) {
            0 => Query::Level {
                level: rng.gen_range(0..8),
            },
            1 => {
                let lo = [
                    rng.gen_range(0..4),
                    rng.gen_range(0..4),
                    rng.gen_range(0..4),
                ];
                Query::Roi {
                    level: rng.gen_range(0..8),
                    lo,
                    hi: [lo[0] + rng.gen_range(1..9), lo[1] + 1, lo[2] + 3],
                    fill: rng.gen_range(-1.0..1.0),
                }
            }
            _ => Query::Iso {
                level: rng.gen_range(0..8),
                iso: rng.gen_range(-5.0..5.0),
            },
        })
        .collect()
}

fn sample_request(rng: &mut StdRng) -> Request {
    match rng.gen_range(0..5) {
        0 => Request::List,
        1 => Request::Batch {
            dataset: ru32(rng),
            queries: sample_queries(rng),
        },
        4 => Request::BatchDegraded {
            dataset: ru32(rng),
            queries: sample_queries(rng),
        },
        2 => Request::Progressive {
            dataset: ru32(rng),
            scheme: if rbool(rng) {
                Upsample::Nearest
            } else {
                Upsample::Trilinear
            },
        },
        _ => Request::Stats {
            dataset: ru32(rng),
            take: rbool(rng),
        },
    }
}

fn sample_store_error(rng: &mut StdRng) -> WireStoreError {
    match rng.gen_range(0..12) {
        0 => WireStoreError::Io("io broke".into()),
        1 => WireStoreError::Open {
            path: "/tmp/x.hqst".into(),
            message: "denied".into(),
        },
        2 => WireStoreError::BadMagic,
        3 => WireStoreError::BadVersion(rng.next_u64() as u8),
        4 => WireStoreError::Truncated,
        5 => WireStoreError::CorruptTable,
        6 => WireStoreError::Malformed("meta".into()),
        7 => WireStoreError::UnknownCodec(ru32(rng)),
        8 => WireStoreError::CorruptChunk {
            level: rng.gen_range(0..9),
            block: rng.gen_range(0..999),
        },
        9 => WireStoreError::Codec {
            level: rng.gen_range(0..9),
            block: rng.gen_range(0..999),
            message: "huff".into(),
        },
        10 => WireStoreError::NoSuchLevel(rng.gen_range(0..99)),
        _ => WireStoreError::RoiOutOfBounds,
    }
}

fn sample_query_response(rng: &mut StdRng) -> Response {
    match rng.gen_range(0..3) {
        0 => Response::Level(sample_level(rng)),
        1 => Response::Roi(sample_field(rng)),
        _ => Response::Iso(sample_level(rng)),
    }
}

fn sample_response(rng: &mut StdRng) -> NetResponse {
    match rng.gen_range(0..6) {
        5 => NetResponse::BatchDegraded(
            (0..rng.gen_range(0..4))
                .map(|_| QueryResult {
                    response: sample_query_response(rng),
                    degraded: (0..rng.gen_range(0..4))
                        .map(|_| (rng.gen_range(0..8), rng.gen_range(0..999)))
                        .collect(),
                })
                .collect(),
        ),
        0 => NetResponse::Datasets(
            (0..rng.gen_range(0..4))
                .map(|i| DatasetInfo {
                    id: i,
                    name: format!("ds-{i}"),
                    codec_id: ru32(rng),
                    eb: rng.gen_range(1e-6..1e6),
                    domain: Dims3::new(
                        rng.gen_range(1..64),
                        rng.gen_range(1..64),
                        rng.gen_range(1..64),
                    ),
                    levels: rng.gen_range(1..5),
                    chunks: rng.gen_range(1..999),
                    compressed_bytes: rng.next_u64(),
                })
                .collect(),
        ),
        1 => NetResponse::Batch(
            (0..rng.gen_range(0..4))
                .map(|_| sample_query_response(rng))
                .collect(),
        ),
        2 => NetResponse::Progressive(
            (0..rng.gen_range(0..4))
                .map(|l| RefinementStep {
                    level: l,
                    field: sample_field(rng),
                })
                .collect(),
        ),
        3 => {
            let (hits, shared, misses) = (
                rng.gen_range(0..1000),
                rng.gen_range(0..10),
                rng.gen_range(0..1000),
            );
            NetResponse::Stats(ServerStats {
                cache: CacheStats {
                    requests: hits + shared + misses, // keep the identity plausible
                    hits,
                    shared,
                    misses,
                    evictions: rng.next_u64(),
                    resident_bytes: rng.next_u64(),
                    peak_resident_bytes: rng.next_u64(),
                    budget_bytes: rng.next_u64(),
                    repairs: rng.gen_range(0..100),
                    repair_failures: rng.gen_range(0..100),
                },
                busy_rejections: rng.next_u64(),
                admission_rejections: rng.next_u64(),
                deadline_rejections: rng.next_u64(),
                scrub_passes: rng.gen_range(0..1000),
                scrub_verified: rng.next_u64(),
                scrub_repaired: rng.gen_range(0..1000),
                scrub_unrepairable: rng.gen_range(0..1000),
            })
        }
        _ => NetResponse::Error(match rng.gen_range(0..6) {
            0 => ErrorFrame::Busy,
            1 => ErrorFrame::TooManyConnections,
            2 => ErrorFrame::NoSuchDataset(ru32(rng)),
            3 => ErrorFrame::BadRequest("q".into()),
            4 => ErrorFrame::DeadlineExceeded,
            _ => ErrorFrame::Store(sample_store_error(rng)),
        }),
    }
}

/// Round-trip: randomized instances of every variant survive
/// encode→frame→read_frame→decode bit-identically.
#[test]
fn every_variant_roundtrips_through_frames() {
    let mut rng = StdRng::seed_from_u64(0xf4a3);
    for i in 0..400 {
        let req = sample_request(&mut rng);
        let mut wire = Vec::new();
        write_frame(&mut wire, req.kind(), i, &req.encode()).unwrap();
        let (h, body) = read_frame(&mut wire.as_slice(), 1 << 24).unwrap();
        assert_eq!((h.kind, h.req_id), (req.kind(), i));
        assert_eq!(Request::decode(h.kind, &body).unwrap(), req);

        let resp = sample_response(&mut rng);
        let mut wire = Vec::new();
        write_frame(&mut wire, resp.kind(), i, &resp.encode()).unwrap();
        let (h, body) = read_frame(&mut wire.as_slice(), 1 << 24).unwrap();
        assert_eq!(NetResponse::decode(h.kind, &body).unwrap(), resp);
    }
}

/// Every proper prefix of a valid frame is a typed error (Truncated via the
/// io path), and never a success.
#[test]
fn truncated_frames_are_typed() {
    let mut rng = StdRng::seed_from_u64(77);
    let req = sample_request(&mut rng);
    let mut wire = Vec::new();
    write_frame(&mut wire, req.kind(), 9, &req.encode()).unwrap();
    for cut in 0..wire.len() {
        let err = read_frame(&mut &wire[..cut], 1 << 24)
            .map(|_| ())
            .expect_err("prefix must not parse");
        assert!(
            matches!(err, ProtocolError::Truncated | ProtocolError::Io(_)),
            "cut at {cut}: {err}"
        );
    }
}

/// Any single bit flip anywhere in a frame — header or body — is caught
/// with a typed error. The frame CRC covers both parts, so even a kind
/// byte flipping into another *valid* kind cannot slip through.
#[test]
fn every_single_bit_flip_is_rejected_typed() {
    let mut rng = StdRng::seed_from_u64(4242);
    for _ in 0..40 {
        let resp = sample_response(&mut rng);
        let mut wire = Vec::new();
        write_frame(&mut wire, resp.kind(), 3, &resp.encode()).unwrap();
        for bit in 0..wire.len() * 8 {
            let mut bad = wire.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let err = read_frame(&mut bad.as_slice(), 1 << 24)
                .map(|_| ())
                .expect_err("flipped frame must not parse");
            assert!(
                matches!(
                    err,
                    ProtocolError::BadCrc
                        | ProtocolError::Truncated
                        | ProtocolError::Io(_)
                        | ProtocolError::UnknownKind(_)
                        | ProtocolError::FrameTooLarge { .. }
                ),
                "flip at bit {bit}: unexpected {err}"
            );
        }
    }
}

/// The frame reader refuses to allocate for bodies beyond its cap, and the
/// decoders refuse counts that exceed the actual bytes present.
#[test]
fn hostile_lengths_are_rejected_before_allocation() {
    // 4 GiB body announcement in a 21-byte message.
    let mut wire = Vec::new();
    wire.extend_from_slice(&u32::MAX.to_le_bytes());
    wire.extend_from_slice(&[0x02]); // Batch
    wire.extend_from_slice(&7u64.to_le_bytes());
    wire.extend_from_slice(&0u32.to_le_bytes());
    match read_frame(&mut wire.as_slice(), 1 << 20) {
        Err(ProtocolError::FrameTooLarge { len, max }) => {
            assert_eq!(len, u32::MAX as u64);
            assert_eq!(max, 1 << 20);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}
