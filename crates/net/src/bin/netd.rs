//! `netd` — the HQNW serving daemon.
//!
//! Hosts one or more `.hqst` stores behind the wire protocol:
//!
//! ```text
//! netd [--addr HOST:PORT] [--workers N] [--queue N] [--max-conns N]
//!      [--budget BYTES] [--parity GROUP] [--scrub BYTES/SEC]
//!      (--demo SCALE | STORE.hqst ...)
//! ```
//!
//! Dataset ids are assigned in argument order. `--demo SCALE` hosts two
//! synthetic stores (SCALE³ cells each) instead of files, for smoke tests
//! and load generation without data on disk.
//!
//! `--parity GROUP` builds in-memory XOR parity sidecars over every hosted
//! store (group size GROUP, e.g. 8), arming online repair: a corrupt chunk
//! is reconstructed and served bit-exactly instead of answered degraded.
//! `--scrub RATE` additionally spawns a background scrubber that cycles the
//! datasets at RATE compressed bytes/second, healing silent corruption
//! before a client ever touches it; its counters export via wire `Stats`.
//!
//! Startup is degraded, not brittle: a store that fails to open is logged
//! and skipped (its argument-order id stays reserved, so the surviving ids
//! are stable); the daemon only refuses to start when *no* store loads.
//! Setting `HQMR_CHAOS` (see `hqmr_net::chaos`) arms fault injection.

use hqmr_mr::{to_adaptive, RoiConfig};
use hqmr_net::{ChaosConfig, DatasetSpec, NetConfig, NetServer};
use hqmr_store::{write_store, StoreConfig, StoreReader};
use hqmr_sz3::Sz3Codec;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: netd [--addr HOST:PORT] [--workers N] [--queue N] [--max-conns N] \
         [--budget BYTES] [--parity GROUP] [--scrub BYTES/SEC] \
         (--demo SCALE | STORE.hqst ...)"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("netd: {flag} needs a value");
        usage()
    })
}

fn demo_datasets(scale: usize) -> Vec<DatasetSpec> {
    ["nyx-demo", "shell-demo"]
        .iter()
        .enumerate()
        .map(|(i, name)| {
            // The synthetic field generator is FFT-based: power-of-two only.
            let n = scale.max(8).next_power_of_two();
            let f = hqmr_grid::synth::nyx_like(n, 41 + i as u64);
            let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
            let buf = write_store(&mr, &StoreConfig::new(1e-3), &Sz3Codec::default());
            DatasetSpec {
                id: i as u32,
                name: (*name).to_string(),
                reader: Arc::new(StoreReader::from_bytes(buf).expect("encode demo store")),
            }
        })
        .collect()
}

fn main() {
    let mut addr = "127.0.0.1:7745".to_string();
    let mut cfg = NetConfig::default();
    let mut demo: Option<usize> = None;
    let mut paths: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse("--addr", args.next()),
            "--workers" => cfg.workers = parse("--workers", args.next()),
            "--queue" => cfg.queue_depth = parse("--queue", args.next()),
            "--max-conns" => cfg.max_connections = parse("--max-conns", args.next()),
            "--budget" => cfg.cache_budget = parse("--budget", args.next()),
            "--parity" => cfg.parity_group = parse("--parity", args.next()),
            "--scrub" => cfg.scrub_rate = Some(parse("--scrub", args.next())),
            "--demo" => demo = Some(parse("--demo", args.next())),
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => {
                eprintln!("netd: unknown flag {arg}");
                usage();
            }
            path => paths.push(path.to_string()),
        }
    }

    match ChaosConfig::from_env() {
        Ok(None) => {}
        Ok(Some(chaos)) => {
            eprintln!("netd: WARNING: fault injection armed via HQMR_CHAOS ({chaos:?})");
            cfg.chaos = Some(chaos);
        }
        Err(e) => {
            // A typo'd chaos string must not silently run a clean server
            // where a chaos run was intended.
            eprintln!("netd: {e}");
            std::process::exit(2);
        }
    }

    let datasets = match (demo, paths.is_empty()) {
        (Some(scale), true) => demo_datasets(scale),
        (None, false) => {
            // Degraded startup: skip stores that fail to open, serve the
            // rest. Ids stay tied to argument order so a flaky path does
            // not renumber its healthy neighbours.
            let mut loaded = Vec::new();
            for (i, p) in paths.iter().enumerate() {
                // The typed `Open` variant carries the path; print it as-is.
                match StoreReader::open(p) {
                    Err(e) => eprintln!("netd: skipping dataset {i}: {e}"),
                    Ok(reader) => {
                        let name = std::path::Path::new(p)
                            .file_stem()
                            .map_or_else(|| p.clone(), |s| s.to_string_lossy().into_owned());
                        loaded.push(DatasetSpec {
                            id: i as u32,
                            name,
                            reader: Arc::new(reader),
                        });
                    }
                }
            }
            if loaded.is_empty() {
                eprintln!("netd: no store could be opened ({} given)", paths.len());
                std::process::exit(1);
            }
            if loaded.len() < paths.len() {
                eprintln!(
                    "netd: serving degraded: {}/{} stores loaded",
                    loaded.len(),
                    paths.len()
                );
            }
            loaded
        }
        _ => usage(),
    };

    let cfg2 = cfg.clone();
    let server = NetServer::spawn(&addr, cfg, datasets).unwrap_or_else(|e| {
        eprintln!("netd: bind {addr}: {e}");
        std::process::exit(1);
    });
    println!("netd: serving on {}", server.local_addr());
    if cfg2.parity_group > 0 {
        println!("netd: parity armed (group size {})", cfg2.parity_group);
    }
    match cfg2.scrub_rate {
        Some(rate) if cfg2.parity_group > 0 => {
            println!("netd: background scrubber at {rate} bytes/sec");
        }
        Some(rate) => {
            println!("netd: background scrubber at {rate} bytes/sec (detect-only: no --parity)");
        }
        None => {}
    }
    // Self-describing catalog, one line per dataset.
    let mut client =
        hqmr_net::NetClient::connect(server.local_addr()).expect("loopback catalog connection");
    for d in client.datasets().expect("catalog") {
        println!(
            "  [{}] {} — {} levels, {} chunks, {} compressed bytes, domain {}×{}×{}",
            d.id,
            d.name,
            d.levels,
            d.chunks,
            d.compressed_bytes,
            d.domain.nx,
            d.domain.ny,
            d.domain.nz
        );
    }
    drop(client);
    server.join();
}
