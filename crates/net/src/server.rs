//! The serving fleet: one TCP listener, a thread-per-core worker pool, and
//! stores sharded across workers by dataset id.
//!
//! # Architecture
//!
//! ```text
//!                    ┌ worker 0 ── tenants {0, W, 2W, …}
//! accept ─ conn ─┐   ├ worker 1 ── tenants {1, W+1, …}
//! accept ─ conn ─┼──▶│   …          (bounded sync_channel per worker)
//! accept ─ conn ─┘   └ worker W−1
//! ```
//!
//! Each connection gets its own thread that parses frames and answers
//! catalog/stats requests inline (they never decode). Decode-bearing work —
//! [`Request::Batch`] and [`Request::Progressive`] — is routed to the worker
//! that owns the target dataset (`id % workers`) through a *bounded* queue:
//! a full queue is an immediate [`ErrorFrame::Busy`] response, never an
//! unbounded backlog. The same shard always serves the same dataset, so its
//! [`StoreServer`] cache stays hot and two shards never duplicate a chunk.
//!
//! Admission control is a hard connection cap: over the limit, the server
//! completes the handshake, sends [`ErrorFrame::TooManyConnections`], and
//! closes — clients get a typed answer, not a hang.
//!
//! Per-tenant cache budgets are carved from one global byte budget with
//! [`partition_budget`], weighted by each
//! store's compressed size, so co-hosted datasets cannot collectively
//! exceed the machine's memory plan.

use crate::chaos::{chunk_fault_hook, ChaosConfig, ChaosStream};
use crate::proto::{
    parse_header, read_hello, write_frame, write_hello, DatasetInfo, ErrorFrame, NetResponse,
    ProtocolError, Request, ServerStats, HEADER_LEN,
};
use hqmr_mr::Upsample;
use hqmr_serve::{partition_budget, Query, StoreServer};
use hqmr_store::{StoreReader, Throttle};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the accept loop re-checks the shutdown flag while no
/// connection is pending. Bounds shutdown latency without a wake
/// connection (which can fail and then hang the old blocking accept).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// One dataset to host: an id (the addressing and sharding key), a
/// human-readable name, and an opened store.
pub struct DatasetSpec {
    /// Dataset id, unique within the server.
    pub id: u32,
    /// Catalog name.
    pub name: String,
    /// The opened store.
    pub reader: Arc<StoreReader>,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Worker (shard) count; `0` means one per available core.
    pub workers: usize,
    /// Bound of each worker's job queue. A full queue produces
    /// [`ErrorFrame::Busy`] responses instead of queueing without limit.
    pub queue_depth: usize,
    /// Hard cap on concurrent connections (admission control).
    pub max_connections: usize,
    /// Global decoded-chunk cache budget in bytes, carved across tenants
    /// weighted by compressed store size. [`hqmr_serve::UNBOUNDED`] turns
    /// eviction off everywhere.
    pub cache_budget: usize,
    /// Largest frame body this server will read.
    pub max_frame_len: usize,
    /// Socket read timeout. Between frames a timeout is just an idle tick
    /// (connections may legitimately sit quiet); *mid-frame* it means the
    /// peer is feeding bytes too slowly (slow-loris) and is answered with
    /// [`ErrorFrame::DeadlineExceeded`] and disconnected. `None` waits
    /// forever.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout: a client that stops reading its responses
    /// cannot pin a connection thread forever.
    pub write_timeout: Option<Duration>,
    /// Per-request deadline from dispatch to worker reply (queue wait
    /// included). On expiry the client gets a typed
    /// [`ErrorFrame::DeadlineExceeded`] and the worker's eventual result
    /// is discarded. `None` waits forever.
    pub request_deadline: Option<Duration>,
    /// Fault injection; `None` (the default) injects nothing.
    pub chaos: Option<ChaosConfig>,
    /// Parity group size for in-memory sidecars built over each tenant at
    /// spawn. `0` (the default) hosts stores without parity — corrupt
    /// chunks stay typed errors / degraded fills. `>0` arms
    /// [`StoreServer`] auto-repair for every tenant.
    pub parity_group: usize,
    /// Background scrubber budget in bytes/second. `None` (the default)
    /// runs no scrubber; `Some(rate)` spawns one thread that cycles the
    /// hosted datasets under that throttle, repairing what parity can heal
    /// and exporting counters through wire `Stats`.
    pub scrub_rate: Option<u64>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 0,
            queue_depth: 32,
            max_connections: 256,
            cache_budget: hqmr_serve::UNBOUNDED,
            max_frame_len: crate::proto::DEFAULT_MAX_FRAME,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            request_deadline: Some(Duration::from_secs(60)),
            chaos: None,
            parity_group: 0,
            scrub_rate: None,
        }
    }
}

/// One hosted dataset: its caching server plus the shard that owns it.
struct Tenant {
    id: u32,
    name: String,
    serve: StoreServer,
    worker: usize,
}

/// Decode-bearing work routed to a shard.
enum Work {
    Batch(Vec<Query>),
    BatchDegraded(Vec<Query>),
    Progressive(Upsample),
    /// Test hook: parks the worker on a barrier so queue-full behaviour can
    /// be exercised deterministically.
    #[cfg(test)]
    Park(Arc<std::sync::Barrier>),
}

struct Job {
    tenant: usize,
    work: Work,
    reply: mpsc::SyncSender<NetResponse>,
}

struct Shared {
    cfg: NetConfig,
    tenants: Vec<Tenant>,
    by_id: HashMap<u32, usize>,
    worker_tx: Vec<mpsc::SyncSender<Job>>,
    live_conns: AtomicUsize,
    busy_rejections: AtomicU64,
    admission_rejections: AtomicU64,
    deadline_rejections: AtomicU64,
    scrub_passes: AtomicU64,
    scrub_verified: AtomicU64,
    scrub_repaired: AtomicU64,
    scrub_unrepairable: AtomicU64,
    stop: AtomicBool,
}

impl Shared {
    fn tenant(&self, dataset: u32) -> Result<usize, ErrorFrame> {
        self.by_id
            .get(&dataset)
            .copied()
            .ok_or(ErrorFrame::NoSuchDataset(dataset))
    }

    fn catalog(&self) -> NetResponse {
        NetResponse::Datasets(
            self.tenants
                .iter()
                .map(|t| {
                    let m = t.serve.meta();
                    DatasetInfo {
                        id: t.id,
                        name: t.name.clone(),
                        codec_id: m.codec_id,
                        eb: m.eb,
                        domain: m.domain,
                        levels: m.levels.len(),
                        chunks: m.chunk_count(),
                        compressed_bytes: m.compressed_bytes(),
                    }
                })
                .collect(),
        )
    }

    /// Routes one parsed request to its answer. Decode-bearing work goes
    /// through the owning shard's bounded queue; everything else is answered
    /// inline. This is the single choke point the Busy path runs through,
    /// for both real connections and the deterministic unit test.
    fn route(&self, req: Request) -> NetResponse {
        match req {
            Request::List => self.catalog(),
            Request::Stats { dataset, take } => match self.tenant(dataset) {
                Err(e) => NetResponse::Error(e),
                Ok(t) => {
                    let serve = &self.tenants[t].serve;
                    let cache = if take {
                        serve.take_stats()
                    } else {
                        serve.stats()
                    };
                    // Rejection and scrub counters are server-global; they
                    // are *peeked* (never drained) regardless of `take`.
                    NetResponse::Stats(ServerStats {
                        cache,
                        busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
                        admission_rejections: self.admission_rejections.load(Ordering::Relaxed),
                        deadline_rejections: self.deadline_rejections.load(Ordering::Relaxed),
                        scrub_passes: self.scrub_passes.load(Ordering::Relaxed),
                        scrub_verified: self.scrub_verified.load(Ordering::Relaxed),
                        scrub_repaired: self.scrub_repaired.load(Ordering::Relaxed),
                        scrub_unrepairable: self.scrub_unrepairable.load(Ordering::Relaxed),
                    })
                }
            },
            Request::Batch { dataset, queries } => self.dispatch(dataset, Work::Batch(queries)),
            Request::BatchDegraded { dataset, queries } => {
                self.dispatch(dataset, Work::BatchDegraded(queries))
            }
            Request::Progressive { dataset, scheme } => {
                self.dispatch(dataset, Work::Progressive(scheme))
            }
        }
    }

    fn dispatch(&self, dataset: u32, work: Work) -> NetResponse {
        let tenant = match self.tenant(dataset) {
            Ok(t) => t,
            Err(e) => return NetResponse::Error(e),
        };
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let job = Job {
            tenant,
            work,
            reply: reply_tx,
        };
        match self.worker_tx[self.tenants[tenant].worker].try_send(job) {
            Ok(()) => {}
            Err(mpsc::TrySendError::Full(_)) | Err(mpsc::TrySendError::Disconnected(_)) => {
                // Full queue is backpressure by design; a disconnected
                // worker means shutdown is in progress — same client-side
                // answer: come back later.
                self.busy_rejections.fetch_add(1, Ordering::Relaxed);
                return NetResponse::Error(ErrorFrame::Busy);
            }
        }
        match self.cfg.request_deadline {
            // The deadline covers queue wait + decode; on expiry the
            // receiver is dropped, so the worker's late `send` fails
            // harmlessly and the client holds a typed answer instead of a
            // hang.
            Some(d) => match reply_rx.recv_timeout(d) {
                Ok(resp) => resp,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    self.deadline_rejections.fetch_add(1, Ordering::Relaxed);
                    NetResponse::Error(ErrorFrame::DeadlineExceeded)
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => NetResponse::Error(ErrorFrame::Busy),
            },
            None => match reply_rx.recv() {
                Ok(resp) => resp,
                Err(_) => NetResponse::Error(ErrorFrame::Busy),
            },
        }
    }
}

/// How long the background scrubber idles between full passes over the
/// hosted datasets, polled in small slices so shutdown stays prompt.
const SCRUB_CYCLE_PAUSE: Duration = Duration::from_millis(200);

/// Background scrubber: cycles every tenant's cache-level scrub under the
/// configured byte/second throttle until shutdown. Each full cycle bumps
/// `scrub_passes`; per-chunk outcomes accumulate into the shared counters
/// that wire `Stats` exports.
fn scrub_loop(shared: &Shared, rate: u64) {
    let mut throttle = Throttle::new(rate);
    while !shared.stop.load(Ordering::Acquire) {
        for tenant in &shared.tenants {
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            let report = tenant.serve.scrub_pass(Some(&mut throttle));
            shared
                .scrub_verified
                .fetch_add(report.verified as u64, Ordering::Relaxed);
            shared
                .scrub_repaired
                .fetch_add(report.repaired as u64, Ordering::Relaxed);
            shared
                .scrub_unrepairable
                .fetch_add(report.unrepairable.len() as u64, Ordering::Relaxed);
        }
        shared.scrub_passes.fetch_add(1, Ordering::Relaxed);
        // Idle between cycles without going deaf to the stop flag.
        let mut slept = Duration::ZERO;
        while slept < SCRUB_CYCLE_PAUSE && !shared.stop.load(Ordering::Acquire) {
            std::thread::sleep(ACCEPT_POLL);
            slept += ACCEPT_POLL;
        }
    }
}

fn worker_loop(shared: &Shared, rx: &mpsc::Receiver<Job>) {
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(job) => {
                let serve = &shared.tenants[job.tenant].serve;
                let resp = match job.work {
                    Work::Batch(queries) => match serve.serve_batch(&queries) {
                        Ok(rs) => NetResponse::Batch(rs),
                        Err(e) => NetResponse::Error(ErrorFrame::Store((&e).into())),
                    },
                    Work::BatchDegraded(queries) => match serve.serve_batch_degraded(&queries) {
                        Ok(rs) => NetResponse::BatchDegraded(rs),
                        Err(e) => NetResponse::Error(ErrorFrame::Store((&e).into())),
                    },
                    Work::Progressive(scheme) => {
                        match serve.progressive(scheme).collect::<Result<Vec<_>, _>>() {
                            Ok(steps) => NetResponse::Progressive(steps),
                            Err(e) => NetResponse::Error(ErrorFrame::Store((&e).into())),
                        }
                    }
                    #[cfg(test)]
                    Work::Park(barrier) => {
                        barrier.wait();
                        NetResponse::Error(ErrorFrame::Busy)
                    }
                };
                // A vanished client is not the worker's problem.
                let _ = job.reply.send(resp);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Decrements the live-connection gauge however the connection ends.
struct ConnGuard<'a>(&'a AtomicUsize);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn send_response(w: &mut impl Write, req_id: u64, resp: &NetResponse) -> Result<(), ProtocolError> {
    write_frame(w, resp.kind(), req_id, &resp.encode())?;
    w.flush()?;
    Ok(())
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// How a patient exact-length read ended.
enum ReadOutcome {
    /// The buffer is full.
    Full,
    /// Clean EOF before the first byte.
    Closed,
    /// Socket timeout with zero bytes read — the peer is merely quiet.
    Idle,
    /// Timeout (or EOF) partway through — the peer stalled or died
    /// mid-frame.
    Stalled,
    /// A real socket error.
    Err,
}

/// Reads exactly `buf.len()` bytes, classifying timeouts by position: a
/// timeout before the first byte is idleness, a timeout after it means the
/// sender stalled inside a frame (the slow-loris shape the read timeout
/// exists to catch).
fn read_patient(r: &mut impl Read, buf: &mut [u8]) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return ReadOutcome::Closed,
            Ok(0) => return ReadOutcome::Stalled,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                return if filled == 0 {
                    ReadOutcome::Idle
                } else {
                    ReadOutcome::Stalled
                };
            }
            Err(_) => return ReadOutcome::Err,
        }
    }
    ReadOutcome::Full
}

/// Serves one connection to completion. Returns on client close, socket
/// error, or a framing-level corruption (after answering it with a typed
/// error frame — once CRC or length sync is lost, the stream cannot be
/// trusted further). Generic over the stream halves so the chaos wrapper
/// slots in without a separate code path.
fn connection_loop<R: Read, W: Write>(
    shared: &Shared,
    mut reader: R,
    mut writer: W,
) -> Result<(), ProtocolError> {
    write_hello(&mut writer)?;
    writer.flush()?;
    read_hello(&mut reader)?;
    let mut header = [0u8; HEADER_LEN];
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return Ok(());
        }
        // Between frames, a read timeout is just an idle tick: loop around
        // and re-check the stop flag. Once the first header byte lands the
        // peer owes us a whole frame promptly; a timeout after that is
        // answered with a typed deadline error and a hangup.
        match read_patient(&mut reader, &mut header) {
            ReadOutcome::Full => {}
            ReadOutcome::Idle => continue,
            ReadOutcome::Closed | ReadOutcome::Err => return Ok(()),
            ReadOutcome::Stalled => {
                let resp = NetResponse::Error(ErrorFrame::DeadlineExceeded);
                let _ = send_response(&mut writer, 0, &resp);
                return Ok(());
            }
        }
        let raw = match parse_header(&header, shared.cfg.max_frame_len) {
            Ok(raw) => raw,
            // Framing-level corruption: answer typed, then hang up (the
            // byte stream is no longer trustworthy).
            Err(e) => {
                let resp = NetResponse::Error(ErrorFrame::BadRequest(e.to_string()));
                let _ = send_response(&mut writer, 0, &resp);
                return Err(e);
            }
        };
        let mut body = vec![0u8; raw.body_len];
        match read_patient(&mut reader, &mut body) {
            ReadOutcome::Full => {}
            ReadOutcome::Closed | ReadOutcome::Err => return Ok(()),
            ReadOutcome::Idle | ReadOutcome::Stalled => {
                let resp = NetResponse::Error(ErrorFrame::DeadlineExceeded);
                let _ = send_response(&mut writer, raw.header.req_id, &resp);
                return Ok(());
            }
        }
        if let Err(e) = raw.verify(&body) {
            let resp = NetResponse::Error(ErrorFrame::BadRequest(e.to_string()));
            let _ = send_response(&mut writer, raw.header.req_id, &resp);
            return Err(e);
        }
        let resp = match Request::decode(raw.header.kind, &body) {
            // Body-level malformation: the frame boundary held, so answer
            // typed and keep the connection.
            Err(e) => NetResponse::Error(ErrorFrame::BadRequest(e.to_string())),
            Ok(req) => shared.route(req),
        };
        send_response(&mut writer, raw.header.req_id, &resp)?;
    }
}

/// Applies the per-connection socket policy (nodelay, read/write timeouts,
/// optional chaos wrapping) and runs the frame loop.
fn serve_connection(shared: &Shared, stream: TcpStream, conn_id: u64) -> Result<(), ProtocolError> {
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(shared.cfg.read_timeout)
        .map_err(ProtocolError::Io)?;
    stream
        .set_write_timeout(shared.cfg.write_timeout)
        .map_err(ProtocolError::Io)?;
    match shared.cfg.chaos.as_ref().filter(|c| c.wire_active()) {
        Some(chaos) => {
            let stream = ChaosStream::new(stream, chaos.clone(), conn_id);
            let reader = BufReader::new(stream.try_clone().map_err(ProtocolError::Io)?);
            connection_loop(shared, reader, BufWriter::new(stream))
        }
        None => {
            let reader = BufReader::new(stream.try_clone().map_err(ProtocolError::Io)?);
            connection_loop(shared, reader, BufWriter::new(stream))
        }
    }
}

/// Tells an over-limit client why it is being dropped.
fn reject_connection(stream: TcpStream) {
    let mut writer = BufWriter::new(stream);
    let resp = NetResponse::Error(ErrorFrame::TooManyConnections);
    if write_hello(&mut writer).is_ok() {
        let _ = send_response(&mut writer, 0, &resp);
    }
}

/// A running serving fleet. Dropping (or [`shutdown`](NetServer::shutdown))
/// stops the accept loop and the workers.
pub struct NetServer {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    scrubber: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` and spawns the fleet: one accept thread, `cfg.workers`
    /// shard workers, and a per-tenant [`StoreServer`] with its slice of
    /// the global cache budget.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        cfg: NetConfig,
        datasets: Vec<DatasetSpec>,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            cfg.workers
        };
        let queue_depth = cfg.queue_depth.max(1);

        let weights: Vec<u64> = datasets
            .iter()
            .map(|d| d.reader.meta().compressed_bytes())
            .collect();
        let budgets = partition_budget(cfg.cache_budget, &weights);

        let mut tenants = Vec::with_capacity(datasets.len());
        let mut by_id = HashMap::new();
        let fault_hook = cfg.chaos.as_ref().and_then(chunk_fault_hook);
        for (i, (spec, budget)) in datasets.into_iter().zip(budgets).enumerate() {
            assert!(
                by_id.insert(spec.id, i).is_none(),
                "duplicate dataset id {}",
                spec.id
            );
            let mut serve = StoreServer::new(spec.reader, budget);
            if let Some(hook) = &fault_hook {
                serve = serve.with_fault_hook(Arc::clone(hook));
            }
            if cfg.parity_group > 0 {
                serve = serve
                    .with_built_parity(cfg.parity_group)
                    .map_err(std::io::Error::other)?;
            }
            tenants.push(Tenant {
                id: spec.id,
                name: spec.name,
                serve,
                worker: spec.id as usize % workers,
            });
        }

        let mut worker_tx = Vec::with_capacity(workers);
        let mut worker_rx = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::sync_channel(queue_depth);
            worker_tx.push(tx);
            worker_rx.push(rx);
        }

        let shared = Arc::new(Shared {
            cfg,
            tenants,
            by_id,
            worker_tx,
            live_conns: AtomicUsize::new(0),
            busy_rejections: AtomicU64::new(0),
            admission_rejections: AtomicU64::new(0),
            deadline_rejections: AtomicU64::new(0),
            scrub_passes: AtomicU64::new(0),
            scrub_verified: AtomicU64::new(0),
            scrub_repaired: AtomicU64::new(0),
            scrub_unrepairable: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });

        let scrubber = shared.cfg.scrub_rate.map(|rate| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hqnw-scrub".into())
                .spawn(move || scrub_loop(&shared, rate))
                .expect("spawn scrubber")
        });

        let worker_handles: Vec<JoinHandle<()>> = worker_rx
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hqnw-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hqnw-accept".into())
                .spawn(move || {
                    // Non-blocking accept + poll: shutdown never depends on
                    // one more connection arriving to wake the loop.
                    let _ = listener.set_nonblocking(true);
                    let mut conn_id: u64 = 0;
                    loop {
                        if shared.stop.load(Ordering::Acquire) {
                            return;
                        }
                        let stream = match listener.accept() {
                            Ok((s, _)) => s,
                            Err(e) if is_timeout(&e) => {
                                std::thread::sleep(ACCEPT_POLL);
                                continue;
                            }
                            // Transient accept errors (e.g. the peer reset
                            // before we got to it) are not fatal to the
                            // listener.
                            Err(_) => {
                                std::thread::sleep(ACCEPT_POLL);
                                continue;
                            }
                        };
                        // Some platforms let accepted sockets inherit the
                        // listener's non-blocking mode; the frame loop
                        // relies on blocking reads with timeouts.
                        let _ = stream.set_nonblocking(false);
                        conn_id += 1;
                        let prev = shared.live_conns.fetch_add(1, Ordering::AcqRel);
                        if prev >= shared.cfg.max_connections {
                            shared.live_conns.fetch_sub(1, Ordering::AcqRel);
                            shared.admission_rejections.fetch_add(1, Ordering::Relaxed);
                            reject_connection(stream);
                            continue;
                        }
                        let shared = Arc::clone(&shared);
                        let _ =
                            std::thread::Builder::new()
                                .name("hqnw-conn".into())
                                .spawn(move || {
                                    let _guard = ConnGuard(&shared.live_conns);
                                    let _ = serve_connection(&shared, stream, conn_id);
                                });
                    }
                })
                .expect("spawn accept loop")
        };

        Ok(NetServer {
            shared,
            addr: local,
            accept: Some(accept),
            workers: worker_handles,
            scrubber,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Requests answered with [`ErrorFrame::Busy`] because the owning
    /// shard's queue was full.
    pub fn busy_rejections(&self) -> u64 {
        self.shared.busy_rejections.load(Ordering::Relaxed)
    }

    /// Connections refused at the admission cap.
    pub fn admission_rejections(&self) -> u64 {
        self.shared.admission_rejections.load(Ordering::Relaxed)
    }

    /// Requests answered with [`ErrorFrame::DeadlineExceeded`] because the
    /// worker did not reply within [`NetConfig::request_deadline`].
    pub fn deadline_rejections(&self) -> u64 {
        self.shared.deadline_rejections.load(Ordering::Relaxed)
    }

    /// Completed background-scrub cycles over all hosted datasets
    /// (`0` when [`NetConfig::scrub_rate`] is `None`).
    pub fn scrub_passes(&self) -> u64 {
        self.shared.scrub_passes.load(Ordering::Relaxed)
    }

    /// Chunks the background scrubber repaired from parity.
    pub fn scrub_repaired(&self) -> u64 {
        self.shared.scrub_repaired.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains the workers, and joins them. Live
    /// connections see their next request answered as Busy (workers gone)
    /// and then close from the client side. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // The accept loop polls the stop flag every ACCEPT_POLL, so no
        // wake-up connection is needed (and none can fail).
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Dropping the senders is not possible while `Shared` is alive;
        // the workers exit on their shutdown poll instead.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.scrubber.take() {
            let _ = h.join();
        }
    }

    /// Blocks until the accept loop exits (i.e. forever, absent
    /// [`shutdown`](NetServer::shutdown) from another thread or an
    /// unrecoverable listener error). Used by the `netd` binary.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shutdown();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::synth;
    use hqmr_mr::{to_adaptive, RoiConfig};
    use hqmr_store::{write_store, StoreConfig};
    use hqmr_sz3::Sz3Codec;

    fn demo_reader(seed: u64) -> Arc<StoreReader> {
        let f = synth::nyx_like(16, seed);
        let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
        let buf = write_store(
            &mr,
            &StoreConfig::new(1e-3).with_chunk_blocks(2),
            &Sz3Codec::default(),
        );
        Arc::new(StoreReader::from_bytes(buf).expect("open demo store"))
    }

    fn fleet(cfg: NetConfig) -> NetServer {
        let datasets = vec![
            DatasetSpec {
                id: 0,
                name: "alpha".into(),
                reader: demo_reader(1),
            },
            DatasetSpec {
                id: 1,
                name: "beta".into(),
                reader: demo_reader(2),
            },
        ];
        NetServer::spawn("127.0.0.1:0", cfg, datasets).expect("spawn fleet")
    }

    #[test]
    fn route_answers_catalog_and_stats_inline() {
        let server = fleet(NetConfig {
            workers: 2,
            ..NetConfig::default()
        });
        let NetResponse::Datasets(list) = server.shared.route(Request::List) else {
            panic!("expected catalog");
        };
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].name, "alpha");
        assert!(list[0].compressed_bytes > 0);

        let NetResponse::Stats(stats) = server.shared.route(Request::Stats {
            dataset: 1,
            take: false,
        }) else {
            panic!("expected stats");
        };
        assert_eq!(stats.cache.requests, 0);
        assert_eq!(stats.scrub_passes, 0);

        let resp = server.shared.route(Request::Stats {
            dataset: 99,
            take: false,
        });
        assert_eq!(resp, NetResponse::Error(ErrorFrame::NoSuchDataset(99)));
    }

    #[test]
    fn batch_routes_through_shard_and_matches_direct_serve() {
        let server = fleet(NetConfig {
            workers: 2,
            ..NetConfig::default()
        });
        let queries = vec![
            Query::Level { level: 1 },
            Query::Roi {
                level: 0,
                lo: [2, 2, 2],
                hi: [10, 9, 8],
                fill: 0.0,
            },
        ];
        let NetResponse::Batch(via_net) = server.shared.route(Request::Batch {
            dataset: 0,
            queries: queries.clone(),
        }) else {
            panic!("expected batch response");
        };
        let direct = server.shared.tenants[0]
            .serve
            .serve_batch(&queries)
            .unwrap();
        assert_eq!(via_net, direct);
    }

    #[test]
    fn store_errors_travel_as_typed_error_frames() {
        let server = fleet(NetConfig {
            workers: 1,
            ..NetConfig::default()
        });
        let resp = server.shared.route(Request::Batch {
            dataset: 0,
            queries: vec![Query::Level { level: 99 }],
        });
        assert_eq!(
            resp,
            NetResponse::Error(ErrorFrame::Store(
                crate::proto::WireStoreError::NoSuchLevel(99)
            ))
        );
    }

    /// The acceptance-critical backpressure property, deterministically:
    /// park the single worker, fill its depth-1 queue, and the next
    /// dispatch must answer Busy instead of blocking or queueing.
    #[test]
    fn full_queue_answers_busy() {
        let server = fleet(NetConfig {
            workers: 1,
            queue_depth: 1,
            ..NetConfig::default()
        });
        let shared = &server.shared;

        // Park the worker: it pulls this job and blocks on the barrier.
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let (park_tx, _park_rx) = mpsc::sync_channel(1);
        shared.worker_tx[0]
            .send(Job {
                tenant: 0,
                work: Work::Park(Arc::clone(&barrier)),
                reply: park_tx,
            })
            .unwrap();

        // Occupy the queue slot. `send` (blocking) is fine: the slot is
        // free until the parked job is pulled off.
        let (fill_tx, fill_rx) = mpsc::sync_channel(1);
        shared.worker_tx[0]
            .send(Job {
                tenant: 0,
                work: Work::Batch(vec![Query::Level { level: 0 }]),
                reply: fill_tx,
            })
            .unwrap();

        // Queue full, worker parked → immediate Busy, counted.
        let before = shared.busy_rejections.load(Ordering::Relaxed);
        let resp = shared.route(Request::Batch {
            dataset: 0,
            queries: vec![Query::Level { level: 0 }],
        });
        assert_eq!(resp, NetResponse::Error(ErrorFrame::Busy));
        assert_eq!(shared.busy_rejections.load(Ordering::Relaxed), before + 1);

        // Release the worker; the queued job must still complete.
        barrier.wait();
        let queued = fill_rx.recv().expect("queued job completes");
        assert!(matches!(queued, NetResponse::Batch(_)));
    }

    #[test]
    fn degraded_batch_routes_through_shard() {
        let server = fleet(NetConfig {
            workers: 2,
            ..NetConfig::default()
        });
        let queries = vec![Query::Level { level: 0 }];
        let NetResponse::BatchDegraded(results) = server.shared.route(Request::BatchDegraded {
            dataset: 0,
            queries: queries.clone(),
        }) else {
            panic!("expected degraded batch response");
        };
        // A healthy store serves the degraded path exactly.
        assert!(results.iter().all(|r| r.is_exact()));
        let direct = server.shared.tenants[0]
            .serve
            .serve_batch(&queries)
            .unwrap();
        let via_net: Vec<_> = results.into_iter().map(|r| r.response).collect();
        assert_eq!(via_net, direct);
    }

    /// A parked worker cannot hold a request hostage: the dispatcher's
    /// reply wait expires into a typed DeadlineExceeded and the counter
    /// ticks.
    #[test]
    fn slow_worker_hits_request_deadline() {
        let server = fleet(NetConfig {
            workers: 1,
            queue_depth: 4,
            request_deadline: Some(Duration::from_millis(50)),
            ..NetConfig::default()
        });
        let shared = &server.shared;

        let barrier = Arc::new(std::sync::Barrier::new(2));
        let (park_tx, _park_rx) = mpsc::sync_channel(1);
        shared.worker_tx[0]
            .send(Job {
                tenant: 0,
                work: Work::Park(Arc::clone(&barrier)),
                reply: park_tx,
            })
            .unwrap();

        let before = shared.deadline_rejections.load(Ordering::Relaxed);
        let resp = shared.route(Request::Batch {
            dataset: 0,
            queries: vec![Query::Level { level: 0 }],
        });
        assert_eq!(resp, NetResponse::Error(ErrorFrame::DeadlineExceeded));
        assert_eq!(
            shared.deadline_rejections.load(Ordering::Relaxed),
            before + 1
        );

        // Release the worker; its late reply to the dropped receiver must
        // be harmless (shutdown on drop would hang otherwise).
        barrier.wait();
    }

    #[test]
    fn budget_is_carved_across_tenants() {
        let server = fleet(NetConfig {
            workers: 2,
            cache_budget: 1 << 20,
            ..NetConfig::default()
        });
        let budgets: Vec<u64> = server
            .shared
            .tenants
            .iter()
            .map(|t| t.serve.stats().budget_bytes)
            .collect();
        assert_eq!(budgets.iter().sum::<u64>(), 1 << 20);
        assert!(budgets.iter().all(|&b| b > 0));
    }
}
