//! The serving fleet: one TCP listener, a thread-per-core worker pool, and
//! stores sharded across workers by dataset id.
//!
//! # Architecture
//!
//! ```text
//!                    ┌ worker 0 ── tenants {0, W, 2W, …}
//! accept ─ conn ─┐   ├ worker 1 ── tenants {1, W+1, …}
//! accept ─ conn ─┼──▶│   …          (bounded sync_channel per worker)
//! accept ─ conn ─┘   └ worker W−1
//! ```
//!
//! Each connection gets its own thread that parses frames and answers
//! catalog/stats requests inline (they never decode). Decode-bearing work —
//! [`Request::Batch`] and [`Request::Progressive`] — is routed to the worker
//! that owns the target dataset (`id % workers`) through a *bounded* queue:
//! a full queue is an immediate [`ErrorFrame::Busy`] response, never an
//! unbounded backlog. The same shard always serves the same dataset, so its
//! [`StoreServer`] cache stays hot and two shards never duplicate a chunk.
//!
//! Admission control is a hard connection cap: over the limit, the server
//! completes the handshake, sends [`ErrorFrame::TooManyConnections`], and
//! closes — clients get a typed answer, not a hang.
//!
//! Per-tenant cache budgets are carved from one global byte budget with
//! [`partition_budget`], weighted by each
//! store's compressed size, so co-hosted datasets cannot collectively
//! exceed the machine's memory plan.

use crate::proto::{
    read_frame, read_hello, write_frame, write_hello, DatasetInfo, ErrorFrame, NetResponse,
    ProtocolError, Request,
};
use hqmr_mr::Upsample;
use hqmr_serve::{partition_budget, Query, StoreServer};
use hqmr_store::StoreReader;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// One dataset to host: an id (the addressing and sharding key), a
/// human-readable name, and an opened store.
pub struct DatasetSpec {
    /// Dataset id, unique within the server.
    pub id: u32,
    /// Catalog name.
    pub name: String,
    /// The opened store.
    pub reader: Arc<StoreReader>,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Worker (shard) count; `0` means one per available core.
    pub workers: usize,
    /// Bound of each worker's job queue. A full queue produces
    /// [`ErrorFrame::Busy`] responses instead of queueing without limit.
    pub queue_depth: usize,
    /// Hard cap on concurrent connections (admission control).
    pub max_connections: usize,
    /// Global decoded-chunk cache budget in bytes, carved across tenants
    /// weighted by compressed store size. [`hqmr_serve::UNBOUNDED`] turns
    /// eviction off everywhere.
    pub cache_budget: usize,
    /// Largest frame body this server will read.
    pub max_frame_len: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 0,
            queue_depth: 32,
            max_connections: 256,
            cache_budget: hqmr_serve::UNBOUNDED,
            max_frame_len: crate::proto::DEFAULT_MAX_FRAME,
        }
    }
}

/// One hosted dataset: its caching server plus the shard that owns it.
struct Tenant {
    id: u32,
    name: String,
    serve: StoreServer,
    worker: usize,
}

/// Decode-bearing work routed to a shard.
enum Work {
    Batch(Vec<Query>),
    Progressive(Upsample),
    /// Test hook: parks the worker on a barrier so queue-full behaviour can
    /// be exercised deterministically.
    #[cfg(test)]
    Park(Arc<std::sync::Barrier>),
}

struct Job {
    tenant: usize,
    work: Work,
    reply: mpsc::SyncSender<NetResponse>,
}

struct Shared {
    cfg: NetConfig,
    tenants: Vec<Tenant>,
    by_id: HashMap<u32, usize>,
    worker_tx: Vec<mpsc::SyncSender<Job>>,
    live_conns: AtomicUsize,
    busy_rejections: AtomicU64,
    admission_rejections: AtomicU64,
    stop: AtomicBool,
}

impl Shared {
    fn tenant(&self, dataset: u32) -> Result<usize, ErrorFrame> {
        self.by_id
            .get(&dataset)
            .copied()
            .ok_or(ErrorFrame::NoSuchDataset(dataset))
    }

    fn catalog(&self) -> NetResponse {
        NetResponse::Datasets(
            self.tenants
                .iter()
                .map(|t| {
                    let m = t.serve.meta();
                    DatasetInfo {
                        id: t.id,
                        name: t.name.clone(),
                        codec_id: m.codec_id,
                        eb: m.eb,
                        domain: m.domain,
                        levels: m.levels.len(),
                        chunks: m.chunk_count(),
                        compressed_bytes: m.compressed_bytes(),
                    }
                })
                .collect(),
        )
    }

    /// Routes one parsed request to its answer. Decode-bearing work goes
    /// through the owning shard's bounded queue; everything else is answered
    /// inline. This is the single choke point the Busy path runs through,
    /// for both real connections and the deterministic unit test.
    fn route(&self, req: Request) -> NetResponse {
        match req {
            Request::List => self.catalog(),
            Request::Stats { dataset, take } => match self.tenant(dataset) {
                Err(e) => NetResponse::Error(e),
                Ok(t) => {
                    let serve = &self.tenants[t].serve;
                    NetResponse::Stats(if take {
                        serve.take_stats()
                    } else {
                        serve.stats()
                    })
                }
            },
            Request::Batch { dataset, queries } => self.dispatch(dataset, Work::Batch(queries)),
            Request::Progressive { dataset, scheme } => {
                self.dispatch(dataset, Work::Progressive(scheme))
            }
        }
    }

    fn dispatch(&self, dataset: u32, work: Work) -> NetResponse {
        let tenant = match self.tenant(dataset) {
            Ok(t) => t,
            Err(e) => return NetResponse::Error(e),
        };
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let job = Job {
            tenant,
            work,
            reply: reply_tx,
        };
        match self.worker_tx[self.tenants[tenant].worker].try_send(job) {
            Ok(()) => {}
            Err(mpsc::TrySendError::Full(_)) | Err(mpsc::TrySendError::Disconnected(_)) => {
                // Full queue is backpressure by design; a disconnected
                // worker means shutdown is in progress — same client-side
                // answer: come back later.
                self.busy_rejections.fetch_add(1, Ordering::Relaxed);
                return NetResponse::Error(ErrorFrame::Busy);
            }
        }
        match reply_rx.recv() {
            Ok(resp) => resp,
            Err(_) => NetResponse::Error(ErrorFrame::Busy),
        }
    }
}

fn worker_loop(shared: &Shared, rx: &mpsc::Receiver<Job>) {
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(job) => {
                let serve = &shared.tenants[job.tenant].serve;
                let resp = match job.work {
                    Work::Batch(queries) => match serve.serve_batch(&queries) {
                        Ok(rs) => NetResponse::Batch(rs),
                        Err(e) => NetResponse::Error(ErrorFrame::Store((&e).into())),
                    },
                    Work::Progressive(scheme) => {
                        match serve.progressive(scheme).collect::<Result<Vec<_>, _>>() {
                            Ok(steps) => NetResponse::Progressive(steps),
                            Err(e) => NetResponse::Error(ErrorFrame::Store((&e).into())),
                        }
                    }
                    #[cfg(test)]
                    Work::Park(barrier) => {
                        barrier.wait();
                        NetResponse::Error(ErrorFrame::Busy)
                    }
                };
                // A vanished client is not the worker's problem.
                let _ = job.reply.send(resp);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Decrements the live-connection gauge however the connection ends.
struct ConnGuard<'a>(&'a AtomicUsize);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn send_response(w: &mut impl Write, req_id: u64, resp: &NetResponse) -> Result<(), ProtocolError> {
    write_frame(w, resp.kind(), req_id, &resp.encode())?;
    w.flush()?;
    Ok(())
}

/// Serves one connection to completion. Returns on client close, socket
/// error, or a framing-level corruption (after answering it with a typed
/// error frame — once CRC or length sync is lost, the stream cannot be
/// trusted further).
fn connection_loop(shared: &Shared, stream: TcpStream) -> Result<(), ProtocolError> {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().map_err(ProtocolError::Io)?);
    let mut writer = BufWriter::new(stream);
    write_hello(&mut writer)?;
    writer.flush()?;
    read_hello(&mut reader)?;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let (header, body) = match read_frame(&mut reader, shared.cfg.max_frame_len) {
            Ok(fb) => fb,
            // Client closed (or died) — a normal end of conversation.
            Err(ProtocolError::Truncated) | Err(ProtocolError::Io(_)) => return Ok(()),
            // Framing-level corruption: answer typed, then hang up (the
            // byte stream is no longer trustworthy).
            Err(e) => {
                let resp = NetResponse::Error(ErrorFrame::BadRequest(e.to_string()));
                let _ = send_response(&mut writer, 0, &resp);
                return Err(e);
            }
        };
        let resp = match Request::decode(header.kind, &body) {
            // Body-level malformation: the frame boundary held, so answer
            // typed and keep the connection.
            Err(e) => NetResponse::Error(ErrorFrame::BadRequest(e.to_string())),
            Ok(req) => shared.route(req),
        };
        send_response(&mut writer, header.req_id, &resp)?;
    }
}

/// Tells an over-limit client why it is being dropped.
fn reject_connection(stream: TcpStream) {
    let mut writer = BufWriter::new(stream);
    let resp = NetResponse::Error(ErrorFrame::TooManyConnections);
    if write_hello(&mut writer).is_ok() {
        let _ = send_response(&mut writer, 0, &resp);
    }
}

/// A running serving fleet. Dropping (or [`shutdown`](NetServer::shutdown))
/// stops the accept loop and the workers.
pub struct NetServer {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` and spawns the fleet: one accept thread, `cfg.workers`
    /// shard workers, and a per-tenant [`StoreServer`] with its slice of
    /// the global cache budget.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        cfg: NetConfig,
        datasets: Vec<DatasetSpec>,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            cfg.workers
        };
        let queue_depth = cfg.queue_depth.max(1);

        let weights: Vec<u64> = datasets
            .iter()
            .map(|d| d.reader.meta().compressed_bytes())
            .collect();
        let budgets = partition_budget(cfg.cache_budget, &weights);

        let mut tenants = Vec::with_capacity(datasets.len());
        let mut by_id = HashMap::new();
        for (i, (spec, budget)) in datasets.into_iter().zip(budgets).enumerate() {
            assert!(
                by_id.insert(spec.id, i).is_none(),
                "duplicate dataset id {}",
                spec.id
            );
            tenants.push(Tenant {
                id: spec.id,
                name: spec.name,
                serve: StoreServer::new(spec.reader, budget),
                worker: spec.id as usize % workers,
            });
        }

        let mut worker_tx = Vec::with_capacity(workers);
        let mut worker_rx = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::sync_channel(queue_depth);
            worker_tx.push(tx);
            worker_rx.push(rx);
        }

        let shared = Arc::new(Shared {
            cfg,
            tenants,
            by_id,
            worker_tx,
            live_conns: AtomicUsize::new(0),
            busy_rejections: AtomicU64::new(0),
            admission_rejections: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });

        let worker_handles: Vec<JoinHandle<()>> = worker_rx
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hqnw-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hqnw-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.stop.load(Ordering::Acquire) {
                            return;
                        }
                        let Ok(stream) = stream else { continue };
                        let prev = shared.live_conns.fetch_add(1, Ordering::AcqRel);
                        if prev >= shared.cfg.max_connections {
                            shared.live_conns.fetch_sub(1, Ordering::AcqRel);
                            shared.admission_rejections.fetch_add(1, Ordering::Relaxed);
                            reject_connection(stream);
                            continue;
                        }
                        let shared = Arc::clone(&shared);
                        let _ =
                            std::thread::Builder::new()
                                .name("hqnw-conn".into())
                                .spawn(move || {
                                    let _guard = ConnGuard(&shared.live_conns);
                                    let _ = connection_loop(&shared, stream);
                                });
                    }
                })
                .expect("spawn accept loop")
        };

        Ok(NetServer {
            shared,
            addr: local,
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Requests answered with [`ErrorFrame::Busy`] because the owning
    /// shard's queue was full.
    pub fn busy_rejections(&self) -> u64 {
        self.shared.busy_rejections.load(Ordering::Relaxed)
    }

    /// Connections refused at the admission cap.
    pub fn admission_rejections(&self) -> u64 {
        self.shared.admission_rejections.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains the workers, and joins them. Live
    /// connections see their next request answered as Busy (workers gone)
    /// and then close from the client side. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop: it re-checks `stop` per connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Dropping the senders is not possible while `Shared` is alive;
        // the workers exit on their shutdown poll instead.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Blocks until the accept loop exits (i.e. forever, absent
    /// [`shutdown`](NetServer::shutdown) from another thread or an
    /// unrecoverable listener error). Used by the `netd` binary.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shutdown();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::synth;
    use hqmr_mr::{to_adaptive, RoiConfig};
    use hqmr_store::{write_store, StoreConfig};
    use hqmr_sz3::Sz3Codec;

    fn demo_reader(seed: u64) -> Arc<StoreReader> {
        let f = synth::nyx_like(16, seed);
        let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
        let buf = write_store(
            &mr,
            &StoreConfig::new(1e-3).with_chunk_blocks(2),
            &Sz3Codec::default(),
        );
        Arc::new(StoreReader::from_bytes(buf).expect("open demo store"))
    }

    fn fleet(cfg: NetConfig) -> NetServer {
        let datasets = vec![
            DatasetSpec {
                id: 0,
                name: "alpha".into(),
                reader: demo_reader(1),
            },
            DatasetSpec {
                id: 1,
                name: "beta".into(),
                reader: demo_reader(2),
            },
        ];
        NetServer::spawn("127.0.0.1:0", cfg, datasets).expect("spawn fleet")
    }

    #[test]
    fn route_answers_catalog_and_stats_inline() {
        let server = fleet(NetConfig {
            workers: 2,
            ..NetConfig::default()
        });
        let NetResponse::Datasets(list) = server.shared.route(Request::List) else {
            panic!("expected catalog");
        };
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].name, "alpha");
        assert!(list[0].compressed_bytes > 0);

        let NetResponse::Stats(stats) = server.shared.route(Request::Stats {
            dataset: 1,
            take: false,
        }) else {
            panic!("expected stats");
        };
        assert_eq!(stats.requests, 0);

        let resp = server.shared.route(Request::Stats {
            dataset: 99,
            take: false,
        });
        assert_eq!(resp, NetResponse::Error(ErrorFrame::NoSuchDataset(99)));
    }

    #[test]
    fn batch_routes_through_shard_and_matches_direct_serve() {
        let server = fleet(NetConfig {
            workers: 2,
            ..NetConfig::default()
        });
        let queries = vec![
            Query::Level { level: 1 },
            Query::Roi {
                level: 0,
                lo: [2, 2, 2],
                hi: [10, 9, 8],
                fill: 0.0,
            },
        ];
        let NetResponse::Batch(via_net) = server.shared.route(Request::Batch {
            dataset: 0,
            queries: queries.clone(),
        }) else {
            panic!("expected batch response");
        };
        let direct = server.shared.tenants[0]
            .serve
            .serve_batch(&queries)
            .unwrap();
        assert_eq!(via_net, direct);
    }

    #[test]
    fn store_errors_travel_as_typed_error_frames() {
        let server = fleet(NetConfig {
            workers: 1,
            ..NetConfig::default()
        });
        let resp = server.shared.route(Request::Batch {
            dataset: 0,
            queries: vec![Query::Level { level: 99 }],
        });
        assert_eq!(
            resp,
            NetResponse::Error(ErrorFrame::Store(
                crate::proto::WireStoreError::NoSuchLevel(99)
            ))
        );
    }

    /// The acceptance-critical backpressure property, deterministically:
    /// park the single worker, fill its depth-1 queue, and the next
    /// dispatch must answer Busy instead of blocking or queueing.
    #[test]
    fn full_queue_answers_busy() {
        let server = fleet(NetConfig {
            workers: 1,
            queue_depth: 1,
            ..NetConfig::default()
        });
        let shared = &server.shared;

        // Park the worker: it pulls this job and blocks on the barrier.
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let (park_tx, _park_rx) = mpsc::sync_channel(1);
        shared.worker_tx[0]
            .send(Job {
                tenant: 0,
                work: Work::Park(Arc::clone(&barrier)),
                reply: park_tx,
            })
            .unwrap();

        // Occupy the queue slot. `send` (blocking) is fine: the slot is
        // free until the parked job is pulled off.
        let (fill_tx, fill_rx) = mpsc::sync_channel(1);
        shared.worker_tx[0]
            .send(Job {
                tenant: 0,
                work: Work::Batch(vec![Query::Level { level: 0 }]),
                reply: fill_tx,
            })
            .unwrap();

        // Queue full, worker parked → immediate Busy, counted.
        let before = shared.busy_rejections.load(Ordering::Relaxed);
        let resp = shared.route(Request::Batch {
            dataset: 0,
            queries: vec![Query::Level { level: 0 }],
        });
        assert_eq!(resp, NetResponse::Error(ErrorFrame::Busy));
        assert_eq!(shared.busy_rejections.load(Ordering::Relaxed), before + 1);

        // Release the worker; the queued job must still complete.
        barrier.wait();
        let queued = fill_rx.recv().expect("queued job completes");
        assert!(matches!(queued, NetResponse::Batch(_)));
    }

    #[test]
    fn budget_is_carved_across_tenants() {
        let server = fleet(NetConfig {
            workers: 2,
            cache_budget: 1 << 20,
            ..NetConfig::default()
        });
        let budgets: Vec<u64> = server
            .shared
            .tenants
            .iter()
            .map(|t| t.serve.stats().budget_bytes)
            .collect();
        assert_eq!(budgets.iter().sum::<u64>(), 1 << 20);
        assert!(budgets.iter().all(|&b| b > 0));
    }
}
