//! Blocking client for the HQNW protocol.
//!
//! One [`NetClient`] owns one connection. Calls are synchronous — send a
//! frame, wait for the matching response — which is exactly the shape the
//! load-generator bench needs (each client thread measures its own
//! request latency). Backpressure surfaces as the typed [`NetError::Busy`]
//! so callers can implement their own retry policy; every other remote
//! failure arrives as [`NetError::Remote`] carrying the server's typed
//! error frame.

use crate::proto::{
    read_frame, read_hello, write_frame, write_hello, DatasetInfo, ErrorFrame, Kind, NetResponse,
    ProtocolError, Request, DEFAULT_MAX_FRAME,
};
use hqmr_mr::Upsample;
use hqmr_serve::{CacheStats, Query, Response};
use hqmr_store::RefinementStep;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Wire-level failure (framing, CRC, malformed body).
    Protocol(ProtocolError),
    /// The server's owning shard had a full queue — retry later.
    Busy,
    /// The server refused the connection at its admission cap.
    TooManyConnections,
    /// Any other typed error the server returned.
    Remote(ErrorFrame),
    /// The server answered with a well-formed frame of the wrong kind or id.
    UnexpectedResponse,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Protocol(e) => write!(f, "protocol: {e}"),
            NetError::Busy => write!(f, "server busy, retry"),
            NetError::TooManyConnections => write!(f, "server at connection limit"),
            NetError::Remote(e) => write!(f, "server error: {e}"),
            NetError::UnexpectedResponse => write!(f, "unexpected response frame"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<ProtocolError> for NetError {
    fn from(e: ProtocolError) -> Self {
        match e {
            ProtocolError::Io(io) => NetError::Io(io),
            other => NetError::Protocol(other),
        }
    }
}

fn remote(e: ErrorFrame) -> NetError {
    match e {
        ErrorFrame::Busy => NetError::Busy,
        ErrorFrame::TooManyConnections => NetError::TooManyConnections,
        other => NetError::Remote(other),
    }
}

/// A blocking connection to a [`NetServer`](crate::NetServer).
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    max_frame_len: usize,
}

impl NetClient {
    /// Connects and performs the mutual hello. An over-limit server
    /// completes the hello and answers the *first frame read* with
    /// [`NetError::TooManyConnections`]; the handshake itself stays cheap.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = NetClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            next_id: 1,
            max_frame_len: DEFAULT_MAX_FRAME,
        };
        write_hello(&mut client.writer)?;
        client.writer.flush()?;
        read_hello(&mut client.reader)?;
        Ok(client)
    }

    /// Caps the response frames this client will accept.
    pub fn set_max_frame_len(&mut self, max: usize) {
        self.max_frame_len = max;
    }

    /// Sends one request and waits for its response frame.
    fn call(&mut self, req: &Request) -> Result<NetResponse, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        // A server that already hung up (e.g. admission refusal) makes the
        // write fail — but its typed error frame is still sitting in the
        // receive buffer. Always try the read; prefer its answer over the
        // raw broken-pipe error.
        let wrote = write_frame(&mut self.writer, req.kind(), id, &req.encode())
            .and_then(|()| self.writer.flush());
        let (header, body) = match (read_frame(&mut self.reader, self.max_frame_len), wrote) {
            (Ok(frame), _) => frame,
            (Err(_), Err(io)) => return Err(NetError::Io(io)),
            (Err(e), Ok(())) => return Err(e.into()),
        };
        // Responses echo the request id; id 0 is reserved for
        // connection-scoped errors (admission refusal, desynced stream).
        if header.req_id != id && !(header.req_id == 0 && header.kind == Kind::RError) {
            return Err(NetError::UnexpectedResponse);
        }
        let resp = NetResponse::decode(header.kind, &body)?;
        match resp {
            NetResponse::Error(e) => Err(remote(e)),
            other => Ok(other),
        }
    }

    /// The server's dataset catalog.
    pub fn datasets(&mut self) -> Result<Vec<DatasetInfo>, NetError> {
        match self.call(&Request::List)? {
            NetResponse::Datasets(list) => Ok(list),
            _ => Err(NetError::UnexpectedResponse),
        }
    }

    /// Runs a batch of queries against `dataset` — the remote form of
    /// [`StoreServer::serve_batch`](hqmr_serve::StoreServer::serve_batch),
    /// answers in request order.
    pub fn batch(&mut self, dataset: u32, queries: &[Query]) -> Result<Vec<Response>, NetError> {
        let req = Request::Batch {
            dataset,
            queries: queries.to_vec(),
        };
        match self.call(&req)? {
            NetResponse::Batch(rs) => Ok(rs),
            _ => Err(NetError::UnexpectedResponse),
        }
    }

    /// Like [`batch`](NetClient::batch), but retries [`NetError::Busy`] up
    /// to `retries` times, yielding the thread between attempts. The bench
    /// and storm clients use this as their standard backoff loop.
    pub fn batch_retry(
        &mut self,
        dataset: u32,
        queries: &[Query],
        retries: usize,
    ) -> Result<Vec<Response>, NetError> {
        let mut attempt = 0;
        loop {
            match self.batch(dataset, queries) {
                Err(NetError::Busy) if attempt < retries => {
                    attempt += 1;
                    std::thread::yield_now();
                }
                other => return other,
            }
        }
    }

    /// Full coarse→fine refinement of `dataset`.
    pub fn progressive(
        &mut self,
        dataset: u32,
        scheme: Upsample,
    ) -> Result<Vec<RefinementStep>, NetError> {
        let req = Request::Progressive { dataset, scheme };
        match self.call(&req)? {
            NetResponse::Progressive(steps) => Ok(steps),
            _ => Err(NetError::UnexpectedResponse),
        }
    }

    /// Per-tenant cache stats; `take` drains the counter window
    /// (snapshot-and-reset) like
    /// [`StoreServer::take_stats`](hqmr_serve::StoreServer::take_stats).
    pub fn stats(&mut self, dataset: u32, take: bool) -> Result<CacheStats, NetError> {
        let req = Request::Stats { dataset, take };
        match self.call(&req)? {
            NetResponse::Stats(s) => Ok(s),
            _ => Err(NetError::UnexpectedResponse),
        }
    }
}
