//! Blocking, self-healing client for the HQNW protocol.
//!
//! One [`NetClient`] owns one connection plus the address list to rebuild
//! it from. Calls are synchronous — send a frame, wait for the matching
//! response — which is exactly the shape the load-generator bench needs
//! (each client thread measures its own request latency).
//!
//! # Fault behavior
//!
//! Every socket carries the [`ClientConfig`] timeouts, so a dead or
//! wedged server surfaces as the typed [`NetError::TimedOut`] instead of
//! a hang. The `*_retry` methods add the self-healing policy on top:
//!
//! * [`NetError::Busy`] and remote [`NetError::DeadlineExceeded`] retry on
//!   the same connection after a capped, jittered exponential backoff —
//!   the server answered, the connection is fine;
//! * broken or timed-out connections ([`NetError::Io`],
//!   [`NetError::TimedOut`], [`NetError::Protocol`]) reconnect and retry,
//!   but **only for idempotent requests** ([`Request::idempotent`]) — the
//!   server may or may not have executed the lost request;
//! * [`NetError::TooManyConnections`] reconnects and retries
//!   unconditionally (the request never ran);
//! * other remote errors (store faults, bad requests) are permanent and
//!   returned immediately.
//!
//! When the retry budget runs out the caller gets
//! [`NetError::RetriesExhausted`] wrapping the last underlying failure —
//! a typed give-up, not a silent one.

use crate::proto::{
    read_frame, read_hello, write_frame, write_hello, DatasetInfo, ErrorFrame, Kind, NetResponse,
    ProtocolError, Request, ServerStats, DEFAULT_MAX_FRAME,
};
use hqmr_mr::Upsample;
use hqmr_serve::{Query, QueryResult, Response};
use hqmr_store::RefinementStep;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failure.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Wire-level failure (framing, CRC, malformed body).
    Protocol(ProtocolError),
    /// The server's owning shard had a full queue — retry later.
    Busy,
    /// The server refused the connection at its admission cap.
    TooManyConnections,
    /// The server reported the per-request deadline elapsed before it
    /// could answer. The connection is still usable.
    DeadlineExceeded,
    /// A client-side timeout fired (connect, read or write, or the
    /// request deadline). The connection is desynced and is dropped.
    TimedOut,
    /// The retry budget ran out; `last` is the final underlying failure.
    RetriesExhausted {
        /// Attempts made (including the first).
        attempts: usize,
        /// The failure of the last attempt.
        last: Box<NetError>,
    },
    /// Any other typed error the server returned.
    Remote(ErrorFrame),
    /// The server answered with a well-formed frame of the wrong kind or id.
    UnexpectedResponse,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Protocol(e) => write!(f, "protocol: {e}"),
            NetError::Busy => write!(f, "server busy, retry"),
            NetError::TooManyConnections => write!(f, "server at connection limit"),
            NetError::DeadlineExceeded => write!(f, "server reported deadline exceeded"),
            NetError::TimedOut => write!(f, "request timed out"),
            NetError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            NetError::Remote(e) => write!(f, "server error: {e}"),
            NetError::UnexpectedResponse => write!(f, "unexpected response frame"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Protocol(e) => Some(e),
            NetError::RetriesExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        if is_timeout(&e) {
            NetError::TimedOut
        } else {
            NetError::Io(e)
        }
    }
}

impl From<ProtocolError> for NetError {
    fn from(e: ProtocolError) -> Self {
        match e {
            ProtocolError::Io(io) => io.into(),
            other => NetError::Protocol(other),
        }
    }
}

fn remote(e: ErrorFrame) -> NetError {
    match e {
        ErrorFrame::Busy => NetError::Busy,
        ErrorFrame::TooManyConnections => NetError::TooManyConnections,
        ErrorFrame::DeadlineExceeded => NetError::DeadlineExceeded,
        other => NetError::Remote(other),
    }
}

/// Unix read/write timeouts surface as `WouldBlock`, other platforms as
/// `TimedOut`; treat both as the timeout they are.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Connection, timeout and retry policy of a [`NetClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Timeout for establishing the TCP connection. `None` blocks.
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout — the longest a call waits on a silent server.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout.
    pub write_timeout: Option<Duration>,
    /// Per-request deadline across write + read. Tighter than
    /// `read_timeout` when both are set. `None` leaves only the socket
    /// timeouts.
    pub request_deadline: Option<Duration>,
    /// Retry budget of the `*_retry` methods: attempts beyond the first.
    pub retries: usize,
    /// First backoff sleep; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Whether broken connections are transparently re-dialed for
    /// idempotent requests.
    pub reconnect: bool,
    /// Seed for backoff jitter. Explicit seeds are honored verbatim
    /// (deterministic backoff for tests); [`ClientConfig::default`] derives
    /// a fresh seed per client so a fleet of default-config clients does not
    /// back off in lockstep.
    pub jitter_seed: u64,
}

/// Per-client default jitter seed: pid ⊕ a process-wide counter, scrambled.
/// A fixed default seed put every default-config client on the *same*
/// xorshift stream — after a shared fault (a server restart), the whole
/// fleet slept identical backoffs and retried in synchronized waves,
/// defeating the point of jitter. The pid decorrelates processes, the
/// counter decorrelates clients within a process, and the splitmix64
/// finalizer turns the near-identical raw inputs into well-spread streams.
fn default_jitter_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let raw = (std::process::id() as u64)
        ^ NEXT.fetch_add(1, Ordering::Relaxed).wrapping_shl(32)
        ^ 0x5EED;
    // splitmix64 finalizer.
    let mut z = raw.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(10)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            request_deadline: None,
            retries: 8,
            backoff_base: Duration::from_micros(500),
            backoff_cap: Duration::from_millis(50),
            reconnect: true,
            jitter_seed: default_jitter_seed(),
        }
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Extra handle for adjusting socket options mid-call (dup'd FDs share
    /// them, so setting the timeout here covers reader and writer).
    ctrl: TcpStream,
}

/// A blocking connection to a [`NetServer`](crate::NetServer), with
/// timeouts on every socket and optional transparent reconnect.
pub struct NetClient {
    addrs: Vec<SocketAddr>,
    cfg: ClientConfig,
    conn: Option<Conn>,
    next_id: u64,
    max_frame_len: usize,
    jitter: u64,
}

impl NetClient {
    /// Connects with [`ClientConfig::default`] and performs the mutual
    /// hello. An over-limit server completes the hello and answers the
    /// *first frame read* with [`NetError::TooManyConnections`]; the
    /// handshake itself stays cheap.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, NetError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with an explicit config. The resolved addresses are kept
    /// for reconnects.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        cfg: ClientConfig,
    ) -> Result<NetClient, NetError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )));
        }
        let conn = Self::dial(&addrs, &cfg)?;
        let jitter = cfg.jitter_seed | 1; // xorshift must not start at 0
        Ok(NetClient {
            addrs,
            cfg,
            conn: Some(conn),
            next_id: 1,
            max_frame_len: DEFAULT_MAX_FRAME,
            jitter,
        })
    }

    fn dial(addrs: &[SocketAddr], cfg: &ClientConfig) -> Result<Conn, NetError> {
        let mut last: Option<std::io::Error> = None;
        for addr in addrs {
            let dialed = match cfg.connect_timeout {
                Some(t) => TcpStream::connect_timeout(addr, t),
                None => TcpStream::connect(addr),
            };
            match dialed {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    stream.set_read_timeout(cfg.read_timeout)?;
                    stream.set_write_timeout(cfg.write_timeout)?;
                    let ctrl = stream.try_clone()?;
                    let mut conn = Conn {
                        reader: BufReader::new(stream.try_clone()?),
                        writer: BufWriter::new(stream),
                        ctrl,
                    };
                    write_hello(&mut conn.writer)?;
                    conn.writer.flush()?;
                    read_hello(&mut conn.reader)?;
                    return Ok(conn);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("addrs nonempty").into())
    }

    /// Caps the response frames this client will accept.
    pub fn set_max_frame_len(&mut self, max: usize) {
        self.max_frame_len = max;
    }

    /// The active config.
    pub fn config(&self) -> &ClientConfig {
        &self.cfg
    }

    /// Drops the current connection; the next call re-dials.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    /// Sends one request and waits for its response frame — one attempt,
    /// no retry policy.
    fn call(&mut self, req: &Request) -> Result<NetResponse, NetError> {
        let deadline = self.cfg.request_deadline.map(|d| Instant::now() + d);
        if self.conn.is_none() {
            self.conn = Some(Self::dial(&self.addrs, &self.cfg)?);
        }
        let conn = self.conn.as_mut().expect("just dialed");
        let id = self.next_id;
        self.next_id += 1;
        // A server that already hung up (e.g. admission refusal) makes the
        // write fail — but its typed error frame is still sitting in the
        // receive buffer. Always try the read; prefer its answer over the
        // raw broken-pipe error.
        let wrote = write_frame(&mut conn.writer, req.kind(), id, &req.encode())
            .and_then(|()| conn.writer.flush());
        // The read honors whatever is tighter: the socket timeout or what
        // remains of the request deadline.
        if let Some(dl) = deadline {
            let remaining = dl.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                self.conn = None;
                return Err(NetError::TimedOut);
            }
            let t = match self.cfg.read_timeout {
                Some(rt) => rt.min(remaining),
                None => remaining,
            };
            let _ = conn.ctrl.set_read_timeout(Some(t));
        }
        let read = read_frame(&mut conn.reader, self.max_frame_len);
        if deadline.is_some() {
            let _ = conn.ctrl.set_read_timeout(self.cfg.read_timeout);
        }
        let (header, body) = match (read, wrote) {
            (Ok(frame), _) => frame,
            (Err(e), wrote) => {
                // Whatever the cause, the stream position is unknown now —
                // a late response would desync every later call.
                self.conn = None;
                return Err(match (e, wrote) {
                    (ProtocolError::Io(io), _) if is_timeout(&io) => NetError::TimedOut,
                    (_, Err(io)) => io.into(),
                    (e, Ok(())) => e.into(),
                });
            }
        };
        // Responses echo the request id; id 0 is reserved for
        // connection-scoped errors (admission refusal, desynced stream).
        if header.req_id != id && !(header.req_id == 0 && header.kind == Kind::RError) {
            self.conn = None;
            return Err(NetError::UnexpectedResponse);
        }
        let resp = NetResponse::decode(header.kind, &body)?;
        match resp {
            NetResponse::Error(e) => {
                if matches!(e, ErrorFrame::TooManyConnections) {
                    // The server hangs up after an admission refusal.
                    self.conn = None;
                }
                Err(remote(e))
            }
            other => Ok(other),
        }
    }

    /// [`call`](Self::call) under the retry policy: jittered exponential
    /// backoff, transparent reconnect for idempotent requests, typed
    /// give-up after `budget` retries.
    fn call_retrying(&mut self, req: &Request, budget: usize) -> Result<NetResponse, NetError> {
        let mut attempt = 0usize;
        loop {
            match self.call(req) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    if !self.retryable(&e, req) {
                        return Err(e);
                    }
                    if attempt >= budget {
                        return Err(NetError::RetriesExhausted {
                            attempts: attempt + 1,
                            last: Box::new(e),
                        });
                    }
                    // `call` already dropped the connection where needed;
                    // a retryable error leaves either a usable connection
                    // (Busy, DeadlineExceeded) or none (re-dialed next
                    // attempt).
                    self.backoff(attempt as u32);
                    attempt += 1;
                }
            }
        }
    }

    /// Whether the policy may retry after `e`.
    fn retryable(&self, e: &NetError, req: &Request) -> bool {
        match e {
            // The server answered; the request did not run (Busy) or was
            // abandoned (deadline). Same connection, try again.
            NetError::Busy | NetError::DeadlineExceeded => true,
            // Admission refusal: the request never ran; reconnect is
            // always safe (if permitted).
            NetError::TooManyConnections => self.cfg.reconnect,
            // Ambiguous failures: the server may have executed the
            // request. Only idempotent requests may be replayed.
            NetError::Io(_)
            | NetError::TimedOut
            | NetError::Protocol(_)
            | NetError::UnexpectedResponse => self.cfg.reconnect && req.idempotent(),
            // Permanent answers.
            NetError::Remote(_) | NetError::RetriesExhausted { .. } => false,
        }
    }

    /// Sleeps `min(cap, base·2^attempt)`, jittered to 50–100% — capped
    /// exponential backoff that decorrelates colliding clients instead of
    /// spinning the scheduler.
    fn backoff(&mut self, attempt: u32) {
        let base = self.cfg.backoff_base.max(Duration::from_micros(10));
        let exp = base.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.cfg.backoff_cap).max(Duration::from_micros(10));
        // xorshift64: cheap, deterministic per jitter_seed.
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let frac = 0.5 + 0.5 * ((self.jitter >> 11) as f64 / (1u64 << 53) as f64);
        std::thread::sleep(capped.mul_f64(frac));
    }

    /// The server's dataset catalog.
    pub fn datasets(&mut self) -> Result<Vec<DatasetInfo>, NetError> {
        match self.call(&Request::List)? {
            NetResponse::Datasets(list) => Ok(list),
            _ => Err(NetError::UnexpectedResponse),
        }
    }

    /// Runs a batch of queries against `dataset` — the remote form of
    /// [`StoreServer::serve_batch`](hqmr_serve::StoreServer::serve_batch),
    /// answers in request order. One attempt; see
    /// [`batch_retry`](Self::batch_retry) for the self-healing form.
    pub fn batch(&mut self, dataset: u32, queries: &[Query]) -> Result<Vec<Response>, NetError> {
        let req = Request::Batch {
            dataset,
            queries: queries.to_vec(),
        };
        match self.call(&req)? {
            NetResponse::Batch(rs) => Ok(rs),
            _ => Err(NetError::UnexpectedResponse),
        }
    }

    /// [`batch`](Self::batch) under the full retry policy: capped jittered
    /// backoff on [`NetError::Busy`]/[`NetError::DeadlineExceeded`],
    /// transparent reconnect on broken or timed-out connections, typed
    /// [`NetError::RetriesExhausted`] after `retries` retries. The bench
    /// and storm clients use this as their standard loop.
    pub fn batch_retry(
        &mut self,
        dataset: u32,
        queries: &[Query],
        retries: usize,
    ) -> Result<Vec<Response>, NetError> {
        let req = Request::Batch {
            dataset,
            queries: queries.to_vec(),
        };
        match self.call_retrying(&req, retries)? {
            NetResponse::Batch(rs) => Ok(rs),
            _ => Err(NetError::UnexpectedResponse),
        }
    }

    /// Degraded-mode batch — the remote form of
    /// [`StoreServer::serve_batch_degraded`](hqmr_serve::StoreServer::serve_batch_degraded):
    /// corrupt chunks are filled and flagged per query instead of failing
    /// the batch. One attempt.
    pub fn batch_degraded(
        &mut self,
        dataset: u32,
        queries: &[Query],
    ) -> Result<Vec<QueryResult>, NetError> {
        let req = Request::BatchDegraded {
            dataset,
            queries: queries.to_vec(),
        };
        match self.call(&req)? {
            NetResponse::BatchDegraded(rs) => Ok(rs),
            _ => Err(NetError::UnexpectedResponse),
        }
    }

    /// [`batch_degraded`](Self::batch_degraded) under the retry policy —
    /// the most available read the client offers: degraded chunks are
    /// filled server-side, transport faults are retried here.
    pub fn batch_degraded_retry(
        &mut self,
        dataset: u32,
        queries: &[Query],
        retries: usize,
    ) -> Result<Vec<QueryResult>, NetError> {
        let req = Request::BatchDegraded {
            dataset,
            queries: queries.to_vec(),
        };
        match self.call_retrying(&req, retries)? {
            NetResponse::BatchDegraded(rs) => Ok(rs),
            _ => Err(NetError::UnexpectedResponse),
        }
    }

    /// Full coarse→fine refinement of `dataset`.
    pub fn progressive(
        &mut self,
        dataset: u32,
        scheme: Upsample,
    ) -> Result<Vec<RefinementStep>, NetError> {
        let req = Request::Progressive { dataset, scheme };
        match self.call(&req)? {
            NetResponse::Progressive(steps) => Ok(steps),
            _ => Err(NetError::UnexpectedResponse),
        }
    }

    /// Server stats for one tenant: its cache window plus the
    /// server-global rejection and background-scrub counters. `take`
    /// drains the tenant's cache window (snapshot-and-reset) like
    /// [`StoreServer::take_stats`](hqmr_serve::StoreServer::take_stats);
    /// the global counters are always a peek.
    /// Deliberately not offered in a `_retry` form: `take: true` is not
    /// idempotent, and the policy would refuse to replay it anyway.
    pub fn stats(&mut self, dataset: u32, take: bool) -> Result<ServerStats, NetError> {
        let req = Request::Stats { dataset, take };
        match self.call(&req)? {
            NetResponse::Stats(s) => Ok(s),
            _ => Err(NetError::UnexpectedResponse),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_jitter_seeds_are_decorrelated_per_client() {
        // Every default config in one process draws a distinct seed — two
        // clients built from defaults must not share a backoff stream.
        let seeds: Vec<u64> = (0..8)
            .map(|_| ClientConfig::default().jitter_seed)
            .collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b, "default-config clients share a jitter stream");
            }
        }
    }

    #[test]
    fn explicit_jitter_seed_is_preserved() {
        // Tests that pin backoff behavior rely on explicit seeds staying
        // byte-exact through the config.
        let cfg = ClientConfig {
            jitter_seed: 0x5EED,
            ..Default::default()
        };
        assert_eq!(cfg.jitter_seed, 0x5EED);
        let again = cfg.clone();
        assert_eq!(again.jitter_seed, 0x5EED);
    }
}
