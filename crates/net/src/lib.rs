//! `hqmr-net` — the wire-protocol serving fleet.
//!
//! `hqmr-serve` answers post-hoc analysis queries in process; this crate
//! puts that capability on a socket. Three pieces:
//!
//! * [`proto`] — the HQNW length-framed binary protocol: versioned hello,
//!   CRC-guarded frames, request ids, and body encodings that mirror the
//!   serve layer's query/response enums bit-for-bit. Every decoder treats
//!   input as untrusted and fails typed ([`ProtocolError`]), never panics.
//! * [`NetServer`] — one TCP listener feeding a thread-per-core worker
//!   pool; datasets are sharded across workers by id so each store's cache
//!   stays hot on one shard. Bounded per-worker queues answer overload
//!   with typed [`ErrorFrame::Busy`] frames (backpressure, not backlog);
//!   a hard connection cap answers with
//!   [`ErrorFrame::TooManyConnections`]. Per-tenant cache budgets are
//!   carved from one global byte budget.
//! * [`NetClient`] — a blocking client whose results are bit-identical to
//!   calling [`StoreServer::serve_batch`](hqmr_serve::StoreServer::serve_batch)
//!   in process (the loopback differential tests pin this down per codec
//!   backend).
//!
//! Everything is built on `std::net` — no external dependencies.

pub mod chaos;
pub mod client;
pub mod proto;
pub mod server;

pub use chaos::ChaosConfig;
pub use client::{ClientConfig, NetClient, NetError};
pub use proto::{
    DatasetInfo, ErrorFrame, NetResponse, ProtocolError, Request, ServerStats, WireStoreError,
};
pub use server::{DatasetSpec, NetConfig, NetServer};

// The server handle crosses threads in the bench harness; the client is
// moved into per-thread load generators.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<NetServer>();
    assert_send::<NetClient>();
};
