//! The HQNW wire protocol: length-framed, CRC-guarded, versioned.
//!
//! # Connection handshake
//!
//! Both sides open with an 8-byte hello — `"HQNW" | version u8 | 3 zero
//! bytes` — and reject anything else with a typed error. The version byte
//! follows the store's rule: any layout change bumps [`WIRE_VERSION`] and
//! peers refuse versions they don't know instead of guessing.
//!
//! # Frames
//!
//! ```text
//! body_len u32le | kind u8 | req_id u64le | frame_crc u32le | body
//! ```
//!
//! `body_len` counts only `body`; the 17-byte header is fixed. `frame_crc`
//! guards the header *and* the body (CRC-32 of the first 13 header bytes
//! XOR CRC-32 of the body), so a flipped bit anywhere on the wire —
//! including a kind byte flipping into another valid kind — surfaces as
//! the typed [`ProtocolError::BadCrc`] instead of a mis-parse. Frames above the
//! receiver's limit are rejected *before* any allocation
//! ([`ProtocolError::FrameTooLarge`]). Request ids are chosen by the
//! client and echoed verbatim in the response, so one connection can carry
//! batched traffic without ambiguity.
//!
//! # Bodies
//!
//! Requests mirror `hqmr-serve`'s query surface: a [`Request::Batch`]
//! carries any mix of Level/Roi/Iso queries (the same
//! [`Query`] enum the in-process planner unions), and
//! [`Request::Progressive`] streams the coarse→fine refinement steps.
//! Responses reuse the serve layer's [`Response`]
//! payloads, so a loopback differential test can compare wire results
//! against `serve_batch` with plain `==`. Failures travel as the typed
//! [`ErrorFrame`] — including every [`StoreError`] variant (a corrupt
//! chunk's `(level, block)` survives the trip) and the serving-fleet
//! conditions ([`ErrorFrame::Busy`] backpressure,
//! [`ErrorFrame::TooManyConnections`] admission control).
//!
//! Every decoder treats its input as untrusted: lengths are checked against
//! the remaining bytes before any allocation, arithmetic is checked, and
//! malformed input yields a typed [`ProtocolError`] — never a panic. The
//! fuzz/property suite in `tests/proto_props.rs` pins this down.

use hqmr_codec::{crc32, read_uvarint, write_uvarint};
use hqmr_grid::{Dims3, Field3};
use hqmr_mr::{LevelData, UnitBlock, Upsample};
use hqmr_serve::{CacheStats, Query, QueryResult, Response};
use hqmr_store::{RefinementStep, StoreError};
use std::io::{Read, Write};

/// Wire magic exchanged in the connection hello.
pub const WIRE_MAGIC: &[u8; 4] = b"HQNW";
/// Current protocol version; peers reject anything else. Version 2 added
/// the degraded-batch frames and the deadline-exceeded error tag; version
/// 3 widened the stats frame from the 8 cache counters to the 17-counter
/// [`ServerStats`] (repair, rejection, and scrub visibility).
pub const WIRE_VERSION: u8 = 3;
/// Hello length: magic + version + 3 reserved zero bytes.
pub const HELLO_LEN: usize = 8;
/// Frame header length: body_len + kind + req_id + body_crc.
pub const HEADER_LEN: usize = 4 + 1 + 8 + 4;
/// Default cap on a single frame body (sender and receiver side).
pub const DEFAULT_MAX_FRAME: usize = 256 << 20;

/// Frame kinds. Requests have the high bit clear, responses set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    /// Dataset catalog request.
    List = 0x01,
    /// Batched Level/Roi/Iso queries against one dataset.
    Batch = 0x02,
    /// Progressive refinement of one dataset.
    Progressive = 0x03,
    /// Per-tenant cache stats (peek or take-window).
    Stats = 0x04,
    /// Batched queries answered in degraded mode: corrupt chunks are
    /// filled and flagged instead of failing the batch.
    BatchDegraded = 0x05,
    /// Catalog response.
    RDatasets = 0x81,
    /// Batch response (one payload per query, request order).
    RBatch = 0x82,
    /// Progressive response (coarse→fine steps).
    RProgressive = 0x83,
    /// Stats response.
    RStats = 0x84,
    /// Degraded-batch response (payload + per-chunk quality flags).
    RBatchDegraded = 0x85,
    /// Typed error response.
    RError = 0xEE,
}

impl Kind {
    fn from_u8(b: u8) -> Result<Kind, ProtocolError> {
        Ok(match b {
            0x01 => Kind::List,
            0x02 => Kind::Batch,
            0x03 => Kind::Progressive,
            0x04 => Kind::Stats,
            0x05 => Kind::BatchDegraded,
            0x81 => Kind::RDatasets,
            0x82 => Kind::RBatch,
            0x83 => Kind::RProgressive,
            0x84 => Kind::RStats,
            0x85 => Kind::RBatchDegraded,
            0xEE => Kind::RError,
            other => return Err(ProtocolError::UnknownKind(other)),
        })
    }
}

/// Protocol-level failures. Every decoder returns these instead of
/// panicking, whatever the input.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying socket failure (includes clean EOF mid-frame).
    Io(std::io::Error),
    /// The hello did not start with [`WIRE_MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a version we don't.
    BadVersion(u8),
    /// A frame body or structure ended early.
    Truncated,
    /// The frame announces a body larger than the configured cap.
    FrameTooLarge {
        /// Announced body length.
        len: u64,
        /// The receiver's configured cap.
        max: u64,
    },
    /// The body failed its CRC — bytes were corrupted in flight.
    BadCrc,
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// Structurally invalid body.
    Malformed(&'static str),
    /// The body decoded cleanly but bytes were left over.
    TrailingBytes,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "io: {e}"),
            ProtocolError::BadMagic(m) => write!(f, "bad wire magic {m:?}"),
            ProtocolError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            ProtocolError::Truncated => write!(f, "truncated frame"),
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame body {len} B exceeds cap {max} B")
            }
            ProtocolError::BadCrc => write!(f, "frame body failed CRC"),
            ProtocolError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtocolError::Malformed(m) => write!(f, "malformed frame body: {m}"),
            ProtocolError::TrailingBytes => write!(f, "trailing bytes after frame body"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated
        } else {
            ProtocolError::Io(e)
        }
    }
}

/// One dataset's catalog entry.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetInfo {
    /// Dataset id — the sharding and addressing key.
    pub id: u32,
    /// Human-readable name (file stem or registry label).
    pub name: String,
    /// Codec id of the dataset's chunks.
    pub codec_id: u32,
    /// Error bound the store was written under.
    pub eb: f64,
    /// Fine-level domain extents.
    pub domain: Dims3,
    /// Number of resolution levels.
    pub levels: usize,
    /// Total chunks across levels.
    pub chunks: usize,
    /// Total compressed bytes across levels.
    pub compressed_bytes: u64,
}

/// A client→server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Dataset catalog.
    List,
    /// Batched queries against `dataset` — the wire form of `serve_batch`.
    Batch {
        /// Target dataset id.
        dataset: u32,
        /// Queries, answered in order.
        queries: Vec<Query>,
    },
    /// Full coarse→fine progressive refinement of `dataset`.
    Progressive {
        /// Target dataset id.
        dataset: u32,
        /// Upsampling scheme for the refinement.
        scheme: Upsample,
    },
    /// Per-tenant cache stats.
    Stats {
        /// Target dataset id.
        dataset: u32,
        /// `true` drains the counter window (snapshot-and-reset);
        /// `false` peeks.
        take: bool,
    },
    /// [`Request::Batch`] in degraded mode — the wire form of
    /// `serve_batch_degraded`: corrupt chunks are filled from coarser data
    /// and flagged per query instead of failing the batch.
    BatchDegraded {
        /// Target dataset id.
        dataset: u32,
        /// Queries, answered in order.
        queries: Vec<Query>,
    },
}

impl Request {
    /// Whether retrying this request after an ambiguous failure (broken or
    /// timed-out connection, where the server may or may not have executed
    /// it) is safe. Everything here is a pure read except
    /// [`Request::Stats`] with `take` — draining the counter window twice
    /// loses a window, so the self-healing client never blind-retries it.
    pub fn idempotent(&self) -> bool {
        !matches!(self, Request::Stats { take: true, .. })
    }
}

/// Per-tenant server statistics exported through the wire `Stats` frame:
/// the cache ledger plus the serving fleet's health counters. Encoded as a
/// fixed run of 17 `u64le` words (cache first, then rejections, then
/// scrub), so the frame layout is versioned by [`WIRE_VERSION`] alone.
///
/// The rejection counters are server-global (one accept loop, one worker
/// pool), repeated identically in every tenant's snapshot; the cache and
/// scrub counters are the addressed tenant's own. `take = true` drains the
/// tenant's cache window but only *peeks* the global and scrub counters —
/// they are cumulative gauges shared across tenants, which one tenant's
/// drain must not zero for the others.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// The tenant's cache ledger (including `repairs`/`repair_failures`).
    pub cache: CacheStats,
    /// Requests bounced because the owning worker's queue was full.
    pub busy_rejections: u64,
    /// Connections refused at the admission cap.
    pub admission_rejections: u64,
    /// Requests answered with `DeadlineExceeded` instead of data.
    pub deadline_rejections: u64,
    /// Completed background scrub passes over this tenant's store.
    pub scrub_passes: u64,
    /// Chunks whose stored CRC verified across all passes.
    pub scrub_verified: u64,
    /// Corrupt chunks the scrubber healed from parity.
    pub scrub_repaired: u64,
    /// Corrupt chunks the scrubber could not heal.
    pub scrub_unrepairable: u64,
}

/// A server→client response.
#[derive(Debug, Clone, PartialEq)]
pub enum NetResponse {
    /// Catalog.
    Datasets(Vec<DatasetInfo>),
    /// One payload per query, request order.
    Batch(Vec<Response>),
    /// Coarse→fine refinement steps.
    Progressive(Vec<RefinementStep>),
    /// Per-tenant server stats snapshot.
    Stats(ServerStats),
    /// One [`QueryResult`] per degraded-batch query, request order; each
    /// carries the `(level, chunk)` pairs it was served degraded on.
    BatchDegraded(Vec<QueryResult>),
    /// Typed failure.
    Error(ErrorFrame),
}

/// Typed error frame. `Busy` and `TooManyConnections` are the serving
/// fleet's backpressure/admission signals; `Store` carries the full
/// [`StoreError`] taxonomy across the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum ErrorFrame {
    /// The owning worker's queue is full — retry later (backpressure, not
    /// failure).
    Busy,
    /// The server is at its connection limit.
    TooManyConnections,
    /// No dataset with this id is registered.
    NoSuchDataset(u32),
    /// The request was structurally invalid at the server.
    BadRequest(String),
    /// A store-layer failure, variant-preserving.
    Store(WireStoreError),
    /// The per-request deadline elapsed before an answer was produced —
    /// a timeout surfaced as an answer instead of a hang.
    DeadlineExceeded,
}

impl std::fmt::Display for ErrorFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorFrame::Busy => write!(f, "server busy (queue full), retry"),
            ErrorFrame::TooManyConnections => write!(f, "server connection limit reached"),
            ErrorFrame::NoSuchDataset(id) => write!(f, "no dataset {id}"),
            ErrorFrame::BadRequest(m) => write!(f, "bad request: {m}"),
            ErrorFrame::Store(e) => write!(f, "store: {e}"),
            ErrorFrame::DeadlineExceeded => write!(f, "request deadline exceeded"),
        }
    }
}

/// [`StoreError`] flattened for the wire: every variant keeps its
/// discriminating payload (so `CorruptChunk { level, block }` survives the
/// trip bit-for-bit), with non-`Clone` payloads (`io::Error`, paths,
/// codec sources) carried as rendered strings.
#[derive(Debug, Clone, PartialEq)]
pub enum WireStoreError {
    /// `StoreError::Io`, message-preserving.
    Io(String),
    /// `StoreError::Open`, path and message preserved.
    Open {
        /// Path of the store that failed to open.
        path: String,
        /// Rendered underlying error.
        message: String,
    },
    /// `StoreError::BadMagic`.
    BadMagic,
    /// `StoreError::BadVersion`.
    BadVersion(u8),
    /// `StoreError::Truncated`.
    Truncated,
    /// `StoreError::CorruptTable`.
    CorruptTable,
    /// `StoreError::Malformed`, message preserved.
    Malformed(String),
    /// `StoreError::UnknownCodec`.
    UnknownCodec(u32),
    /// `StoreError::CorruptChunk` — the addressable damage report.
    CorruptChunk {
        /// Level index of the damaged chunk.
        level: usize,
        /// Chunk index within the level.
        block: usize,
    },
    /// `StoreError::Codec`, source rendered.
    Codec {
        /// Level index of the failing chunk.
        level: usize,
        /// Chunk index within the level.
        block: usize,
        /// Rendered codec error.
        message: String,
    },
    /// `StoreError::NoSuchLevel`.
    NoSuchLevel(usize),
    /// `StoreError::RoiOutOfBounds`.
    RoiOutOfBounds,
}

impl std::fmt::Display for WireStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireStoreError::Io(m) => write!(f, "io: {m}"),
            WireStoreError::Open { path, message } => write!(f, "open {path}: {message}"),
            WireStoreError::BadMagic => write!(f, "bad store magic"),
            WireStoreError::BadVersion(v) => write!(f, "unsupported store version {v}"),
            WireStoreError::Truncated => write!(f, "truncated store"),
            WireStoreError::CorruptTable => write!(f, "store chunk table failed CRC"),
            WireStoreError::Malformed(m) => write!(f, "malformed store: {m}"),
            WireStoreError::UnknownCodec(id) => write!(f, "unknown codec id {id:#x}"),
            WireStoreError::CorruptChunk { level, block } => {
                write!(f, "chunk (level {level}, block {block}) failed CRC")
            }
            WireStoreError::Codec {
                level,
                block,
                message,
            } => write!(f, "chunk (level {level}, block {block}) codec: {message}"),
            WireStoreError::NoSuchLevel(l) => write!(f, "no level {l} in store"),
            WireStoreError::RoiOutOfBounds => write!(f, "ROI exceeds level extents"),
        }
    }
}

impl From<&StoreError> for WireStoreError {
    fn from(e: &StoreError) -> Self {
        match e {
            StoreError::Io(io) => WireStoreError::Io(io.to_string()),
            StoreError::Open { path, source } => WireStoreError::Open {
                path: path.display().to_string(),
                message: source.to_string(),
            },
            StoreError::BadMagic => WireStoreError::BadMagic,
            StoreError::BadVersion(v) => WireStoreError::BadVersion(*v),
            StoreError::Truncated => WireStoreError::Truncated,
            StoreError::CorruptTable => WireStoreError::CorruptTable,
            StoreError::Malformed(m) => WireStoreError::Malformed((*m).to_string()),
            StoreError::UnknownCodec(id) => WireStoreError::UnknownCodec(*id),
            StoreError::CorruptChunk { level, block } => WireStoreError::CorruptChunk {
                level: *level,
                block: *block,
            },
            StoreError::Codec {
                level,
                block,
                source,
            } => WireStoreError::Codec {
                level: *level,
                block: *block,
                message: source.to_string(),
            },
            StoreError::NoSuchLevel(l) => WireStoreError::NoSuchLevel(*l),
            // Temporal stores are not wire-served yet; carry the frame index
            // in the message rather than growing the wire enum.
            StoreError::NoSuchFrame(t) => {
                WireStoreError::Malformed(format!("no frame {t} in temporal store"))
            }
            StoreError::RoiOutOfBounds => WireStoreError::RoiOutOfBounds,
            // Sidecar/repair conditions are server-side durability detail;
            // like NoSuchFrame they travel as rendered messages rather than
            // growing the wire enum (clients can't act on the distinction).
            StoreError::CorruptSidecar(m) => {
                WireStoreError::Malformed(format!("corrupt parity sidecar: {m}"))
            }
            StoreError::SidecarMismatch => {
                WireStoreError::Malformed("parity sidecar describes a different store".into())
            }
            StoreError::Unrepairable { level, block } => WireStoreError::Malformed(format!(
                "chunk (level {level}, block {block}) unrepairable"
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// Writes the 8-byte hello.
pub fn write_hello(w: &mut impl Write) -> std::io::Result<()> {
    let mut hello = [0u8; HELLO_LEN];
    hello[..4].copy_from_slice(WIRE_MAGIC);
    hello[4] = WIRE_VERSION;
    w.write_all(&hello)
}

/// Reads and validates the peer's hello.
pub fn read_hello(r: &mut impl Read) -> Result<(), ProtocolError> {
    let mut hello = [0u8; HELLO_LEN];
    r.read_exact(&mut hello)?;
    if &hello[..4] != WIRE_MAGIC {
        return Err(ProtocolError::BadMagic(hello[..4].try_into().unwrap()));
    }
    if hello[4] != WIRE_VERSION {
        return Err(ProtocolError::BadVersion(hello[4]));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// A parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame kind.
    pub kind: Kind,
    /// Request id (echoed by responses).
    pub req_id: u64,
}

/// The frame guard: CRC-32 of the 13 leading header bytes XOR CRC-32 of
/// the body. Not the CRC of the concatenation, but it detects any
/// corruption confined to either part — including kind bytes flipping into
/// *other valid kinds*, which a body-only CRC would wave through — without
/// copying the body to checksum it.
fn frame_crc(header13: &[u8], body: &[u8]) -> u32 {
    crc32(header13) ^ crc32(body)
}

/// Writes one complete frame.
pub fn write_frame(
    w: &mut impl Write,
    kind: Kind,
    req_id: u64,
    body: &[u8],
) -> std::io::Result<()> {
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&(body.len() as u32).to_le_bytes());
    header[4] = kind as u8;
    header[5..13].copy_from_slice(&req_id.to_le_bytes());
    let crc = frame_crc(&header[..13], body);
    header[13..17].copy_from_slice(&crc.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(body)
}

/// A parsed but not yet CRC-verified frame header: what the server's
/// timeout-aware frame reader holds between reading the header bytes and
/// the body. [`RawHeader::verify`] completes the frame check once the body
/// has arrived.
#[derive(Debug, Clone, Copy)]
pub struct RawHeader {
    /// Kind and request id.
    pub header: FrameHeader,
    /// Announced body length (already checked against the receiver's cap).
    pub body_len: usize,
    crc: u32,
    raw13: [u8; 13],
}

impl RawHeader {
    /// Checks the frame CRC over header and body.
    pub fn verify(&self, body: &[u8]) -> Result<(), ProtocolError> {
        if frame_crc(&self.raw13, body) != self.crc {
            return Err(ProtocolError::BadCrc);
        }
        Ok(())
    }
}

/// Parses the fixed 17-byte frame header. `max_body` is enforced here, so
/// a hostile length is rejected before any body allocation.
pub fn parse_header(
    header: &[u8; HEADER_LEN],
    max_body: usize,
) -> Result<RawHeader, ProtocolError> {
    let body_len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    if body_len > max_body {
        return Err(ProtocolError::FrameTooLarge {
            len: body_len as u64,
            max: max_body as u64,
        });
    }
    let kind = Kind::from_u8(header[4])?;
    let req_id = u64::from_le_bytes(header[5..13].try_into().unwrap());
    let crc = u32::from_le_bytes(header[13..17].try_into().unwrap());
    Ok(RawHeader {
        header: FrameHeader { kind, req_id },
        body_len,
        crc,
        raw13: header[..13].try_into().unwrap(),
    })
}

/// Reads one complete frame, verifying length cap and CRC. `max_body` is
/// checked *before* the body is allocated.
pub fn read_frame(
    r: &mut impl Read,
    max_body: usize,
) -> Result<(FrameHeader, Vec<u8>), ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let raw = parse_header(&header, max_body)?;
    let mut body = vec![0u8; raw.body_len];
    r.read_exact(&mut body)?;
    raw.verify(&body)?;
    Ok((raw.header, body))
}

// ---------------------------------------------------------------------------
// Body encoding
// ---------------------------------------------------------------------------

/// Bounded cursor over an untrusted body.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cur { b, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(ProtocolError::Malformed("length overflow"))?;
        let s = self.b.get(self.pos..end).ok_or(ProtocolError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32le(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f32le(&mut self) -> Result<f32, ProtocolError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64le(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u64le(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn uvarint(&mut self) -> Result<u64, ProtocolError> {
        read_uvarint(self.b, &mut self.pos).ok_or(ProtocolError::Malformed("varint"))
    }

    fn usize(&mut self) -> Result<usize, ProtocolError> {
        usize::try_from(self.uvarint()?).map_err(|_| ProtocolError::Malformed("usize overflow"))
    }

    /// A count that is about to drive `count × min_bytes` of further reads:
    /// rejected up front if the body cannot possibly hold it, so crafted
    /// counts cannot trigger huge allocations.
    fn count(&mut self, min_bytes: usize) -> Result<usize, ProtocolError> {
        let n = self.usize()?;
        if n.checked_mul(min_bytes.max(1))
            .is_none_or(|need| need > self.remaining())
        {
            return Err(ProtocolError::Malformed("count exceeds body"));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::Malformed("utf8"))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, ProtocolError> {
        let need = n
            .checked_mul(4)
            .ok_or(ProtocolError::Malformed("length overflow"))?;
        let raw = self.take(need)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn done(self) -> Result<(), ProtocolError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(ProtocolError::TrailingBytes)
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    write_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_f32s(out: &mut Vec<u8>, data: &[f32]) {
    out.reserve(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_dims(out: &mut Vec<u8>, d: Dims3) {
    write_uvarint(out, d.nx as u64);
    write_uvarint(out, d.ny as u64);
    write_uvarint(out, d.nz as u64);
}

fn get_dims(c: &mut Cur) -> Result<Dims3, ProtocolError> {
    Ok(Dims3::new(c.usize()?, c.usize()?, c.usize()?))
}

fn put_field(out: &mut Vec<u8>, f: &Field3) {
    put_dims(out, f.dims());
    put_f32s(out, f.data());
}

fn get_field(c: &mut Cur) -> Result<Field3, ProtocolError> {
    let dims = get_dims(c)?;
    let n = dims
        .nx
        .checked_mul(dims.ny)
        .and_then(|p| p.checked_mul(dims.nz))
        .ok_or(ProtocolError::Malformed("field dims overflow"))?;
    // `f32s` bounds the allocation by the actual remaining bytes.
    Ok(Field3::from_vec(dims, c.f32s(n)?))
}

fn put_level_data(out: &mut Vec<u8>, l: &LevelData) {
    write_uvarint(out, l.level as u64);
    write_uvarint(out, l.unit as u64);
    put_dims(out, l.dims);
    write_uvarint(out, l.blocks.len() as u64);
    for b in &l.blocks {
        write_uvarint(out, b.origin[0] as u64);
        write_uvarint(out, b.origin[1] as u64);
        write_uvarint(out, b.origin[2] as u64);
        put_f32s(out, &b.data);
    }
}

fn get_level_data(c: &mut Cur) -> Result<LevelData, ProtocolError> {
    let level = c.usize()?;
    let unit = c.usize()?;
    let dims = get_dims(c)?;
    let cube = unit
        .checked_pow(3)
        .and_then(|n| n.checked_mul(4))
        .ok_or(ProtocolError::Malformed("unit overflow"))?;
    // Each block needs at least 3 origin bytes + unit³ f32s.
    let n_blocks = c.count(cube.saturating_add(3))?;
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let origin = [c.usize()?, c.usize()?, c.usize()?];
        let data = c.f32s(cube / 4)?;
        blocks.push(UnitBlock { origin, data });
    }
    Ok(LevelData {
        level,
        unit,
        dims,
        blocks,
    })
}

fn put_query(out: &mut Vec<u8>, q: &Query) {
    match *q {
        Query::Level { level } => {
            out.push(0);
            write_uvarint(out, level as u64);
        }
        Query::Roi {
            level,
            lo,
            hi,
            fill,
        } => {
            out.push(1);
            write_uvarint(out, level as u64);
            for v in lo.iter().chain(hi.iter()) {
                write_uvarint(out, *v as u64);
            }
            out.extend_from_slice(&fill.to_le_bytes());
        }
        Query::Iso { level, iso } => {
            out.push(2);
            write_uvarint(out, level as u64);
            out.extend_from_slice(&iso.to_le_bytes());
        }
    }
}

fn get_query(c: &mut Cur) -> Result<Query, ProtocolError> {
    Ok(match c.u8()? {
        0 => Query::Level { level: c.usize()? },
        1 => {
            let level = c.usize()?;
            let lo = [c.usize()?, c.usize()?, c.usize()?];
            let hi = [c.usize()?, c.usize()?, c.usize()?];
            let fill = c.f32le()?;
            Query::Roi {
                level,
                lo,
                hi,
                fill,
            }
        }
        2 => Query::Iso {
            level: c.usize()?,
            iso: c.f32le()?,
        },
        _ => return Err(ProtocolError::Malformed("query tag")),
    })
}

fn put_response(out: &mut Vec<u8>, r: &Response) {
    match r {
        Response::Level(l) => {
            out.push(0);
            put_level_data(out, l);
        }
        Response::Roi(f) => {
            out.push(1);
            put_field(out, f);
        }
        Response::Iso(l) => {
            out.push(2);
            put_level_data(out, l);
        }
    }
}

fn get_response(c: &mut Cur) -> Result<Response, ProtocolError> {
    Ok(match c.u8()? {
        0 => Response::Level(get_level_data(c)?),
        1 => Response::Roi(get_field(c)?),
        2 => Response::Iso(get_level_data(c)?),
        _ => return Err(ProtocolError::Malformed("response tag")),
    })
}

fn put_upsample(out: &mut Vec<u8>, s: Upsample) {
    out.push(match s {
        Upsample::Nearest => 0,
        Upsample::Trilinear => 1,
    });
}

fn get_upsample(c: &mut Cur) -> Result<Upsample, ProtocolError> {
    match c.u8()? {
        0 => Ok(Upsample::Nearest),
        1 => Ok(Upsample::Trilinear),
        _ => Err(ProtocolError::Malformed("upsample tag")),
    }
}

impl Request {
    /// The frame kind this request travels under.
    pub fn kind(&self) -> Kind {
        match self {
            Request::List => Kind::List,
            Request::Batch { .. } => Kind::Batch,
            Request::Progressive { .. } => Kind::Progressive,
            Request::Stats { .. } => Kind::Stats,
            Request::BatchDegraded { .. } => Kind::BatchDegraded,
        }
    }

    /// Serializes the request body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::List => {}
            Request::Batch { dataset, queries } | Request::BatchDegraded { dataset, queries } => {
                out.extend_from_slice(&dataset.to_le_bytes());
                write_uvarint(&mut out, queries.len() as u64);
                for q in queries {
                    put_query(&mut out, q);
                }
            }
            Request::Progressive { dataset, scheme } => {
                out.extend_from_slice(&dataset.to_le_bytes());
                put_upsample(&mut out, *scheme);
            }
            Request::Stats { dataset, take } => {
                out.extend_from_slice(&dataset.to_le_bytes());
                out.push(u8::from(*take));
            }
        }
        out
    }

    /// Parses a request body of the given kind. Malformed input yields a
    /// typed error, never a panic.
    pub fn decode(kind: Kind, body: &[u8]) -> Result<Request, ProtocolError> {
        let mut c = Cur::new(body);
        let req = match kind {
            Kind::List => Request::List,
            Kind::Batch | Kind::BatchDegraded => {
                let dataset = c.u32le()?;
                let n = c.count(1)?;
                let mut queries = Vec::with_capacity(n);
                for _ in 0..n {
                    queries.push(get_query(&mut c)?);
                }
                if kind == Kind::Batch {
                    Request::Batch { dataset, queries }
                } else {
                    Request::BatchDegraded { dataset, queries }
                }
            }
            Kind::Progressive => Request::Progressive {
                dataset: c.u32le()?,
                scheme: get_upsample(&mut c)?,
            },
            Kind::Stats => {
                let dataset = c.u32le()?;
                let take = match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(ProtocolError::Malformed("stats take flag")),
                };
                Request::Stats { dataset, take }
            }
            _ => return Err(ProtocolError::Malformed("response kind in request slot")),
        };
        c.done()?;
        Ok(req)
    }
}

impl NetResponse {
    /// The frame kind this response travels under.
    pub fn kind(&self) -> Kind {
        match self {
            NetResponse::Datasets(_) => Kind::RDatasets,
            NetResponse::Batch(_) => Kind::RBatch,
            NetResponse::Progressive(_) => Kind::RProgressive,
            NetResponse::Stats(_) => Kind::RStats,
            NetResponse::BatchDegraded(_) => Kind::RBatchDegraded,
            NetResponse::Error(_) => Kind::RError,
        }
    }

    /// Serializes the response body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            NetResponse::Datasets(list) => {
                write_uvarint(&mut out, list.len() as u64);
                for d in list {
                    out.extend_from_slice(&d.id.to_le_bytes());
                    put_string(&mut out, &d.name);
                    out.extend_from_slice(&d.codec_id.to_le_bytes());
                    out.extend_from_slice(&d.eb.to_le_bytes());
                    put_dims(&mut out, d.domain);
                    write_uvarint(&mut out, d.levels as u64);
                    write_uvarint(&mut out, d.chunks as u64);
                    write_uvarint(&mut out, d.compressed_bytes);
                }
            }
            NetResponse::Batch(responses) => {
                write_uvarint(&mut out, responses.len() as u64);
                for r in responses {
                    put_response(&mut out, r);
                }
            }
            NetResponse::BatchDegraded(results) => {
                write_uvarint(&mut out, results.len() as u64);
                for r in results {
                    put_response(&mut out, &r.response);
                    write_uvarint(&mut out, r.degraded.len() as u64);
                    for &(level, block) in &r.degraded {
                        write_uvarint(&mut out, level as u64);
                        write_uvarint(&mut out, block as u64);
                    }
                }
            }
            NetResponse::Progressive(steps) => {
                write_uvarint(&mut out, steps.len() as u64);
                for s in steps {
                    write_uvarint(&mut out, s.level as u64);
                    put_field(&mut out, &s.field);
                }
            }
            NetResponse::Stats(s) => {
                for v in [
                    s.cache.requests,
                    s.cache.hits,
                    s.cache.shared,
                    s.cache.misses,
                    s.cache.evictions,
                    s.cache.resident_bytes,
                    s.cache.peak_resident_bytes,
                    s.cache.budget_bytes,
                    s.cache.repairs,
                    s.cache.repair_failures,
                    s.busy_rejections,
                    s.admission_rejections,
                    s.deadline_rejections,
                    s.scrub_passes,
                    s.scrub_verified,
                    s.scrub_repaired,
                    s.scrub_unrepairable,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            NetResponse::Error(e) => {
                match e {
                    ErrorFrame::Busy => out.push(0),
                    ErrorFrame::TooManyConnections => out.push(1),
                    ErrorFrame::NoSuchDataset(id) => {
                        out.push(2);
                        out.extend_from_slice(&id.to_le_bytes());
                    }
                    ErrorFrame::BadRequest(m) => {
                        out.push(3);
                        put_string(&mut out, m);
                    }
                    ErrorFrame::Store(se) => {
                        out.push(4);
                        put_store_error(&mut out, se);
                    }
                    ErrorFrame::DeadlineExceeded => out.push(5),
                };
            }
        }
        out
    }

    /// Parses a response body of the given kind. Malformed input yields a
    /// typed error, never a panic.
    pub fn decode(kind: Kind, body: &[u8]) -> Result<NetResponse, ProtocolError> {
        let mut c = Cur::new(body);
        let resp = match kind {
            Kind::RDatasets => {
                // Smallest catalog entry: id(4) + name len(1) + codec(4) +
                // eb(8) + 3 dims + 3 counters ≥ 22 bytes.
                let n = c.count(22)?;
                let mut list = Vec::with_capacity(n);
                for _ in 0..n {
                    list.push(DatasetInfo {
                        id: c.u32le()?,
                        name: c.string()?,
                        codec_id: c.u32le()?,
                        eb: c.f64le()?,
                        domain: get_dims(&mut c)?,
                        levels: c.usize()?,
                        chunks: c.usize()?,
                        compressed_bytes: c.uvarint()?,
                    });
                }
                NetResponse::Datasets(list)
            }
            Kind::RBatch => {
                let n = c.count(1)?;
                let mut responses = Vec::with_capacity(n);
                for _ in 0..n {
                    responses.push(get_response(&mut c)?);
                }
                NetResponse::Batch(responses)
            }
            Kind::RBatchDegraded => {
                let n = c.count(1)?;
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    let response = get_response(&mut c)?;
                    let m = c.count(2)?;
                    let mut degraded = Vec::with_capacity(m);
                    for _ in 0..m {
                        degraded.push((c.usize()?, c.usize()?));
                    }
                    results.push(QueryResult { response, degraded });
                }
                NetResponse::BatchDegraded(results)
            }
            Kind::RProgressive => {
                let n = c.count(4)?;
                let mut steps = Vec::with_capacity(n);
                for _ in 0..n {
                    let level = c.usize()?;
                    let field = get_field(&mut c)?;
                    steps.push(RefinementStep { level, field });
                }
                NetResponse::Progressive(steps)
            }
            Kind::RStats => NetResponse::Stats(ServerStats {
                cache: CacheStats {
                    requests: c.u64le()?,
                    hits: c.u64le()?,
                    shared: c.u64le()?,
                    misses: c.u64le()?,
                    evictions: c.u64le()?,
                    resident_bytes: c.u64le()?,
                    peak_resident_bytes: c.u64le()?,
                    budget_bytes: c.u64le()?,
                    repairs: c.u64le()?,
                    repair_failures: c.u64le()?,
                },
                busy_rejections: c.u64le()?,
                admission_rejections: c.u64le()?,
                deadline_rejections: c.u64le()?,
                scrub_passes: c.u64le()?,
                scrub_verified: c.u64le()?,
                scrub_repaired: c.u64le()?,
                scrub_unrepairable: c.u64le()?,
            }),
            Kind::RError => {
                let e = match c.u8()? {
                    0 => ErrorFrame::Busy,
                    1 => ErrorFrame::TooManyConnections,
                    2 => ErrorFrame::NoSuchDataset(c.u32le()?),
                    3 => ErrorFrame::BadRequest(c.string()?),
                    4 => ErrorFrame::Store(get_store_error(&mut c)?),
                    5 => ErrorFrame::DeadlineExceeded,
                    _ => return Err(ProtocolError::Malformed("error tag")),
                };
                NetResponse::Error(e)
            }
            _ => return Err(ProtocolError::Malformed("request kind in response slot")),
        };
        c.done()?;
        Ok(resp)
    }
}

fn put_store_error(out: &mut Vec<u8>, e: &WireStoreError) {
    match e {
        WireStoreError::Io(m) => {
            out.push(0);
            put_string(out, m);
        }
        WireStoreError::Open { path, message } => {
            out.push(1);
            put_string(out, path);
            put_string(out, message);
        }
        WireStoreError::BadMagic => out.push(2),
        WireStoreError::BadVersion(v) => {
            out.push(3);
            out.push(*v);
        }
        WireStoreError::Truncated => out.push(4),
        WireStoreError::CorruptTable => out.push(5),
        WireStoreError::Malformed(m) => {
            out.push(6);
            put_string(out, m);
        }
        WireStoreError::UnknownCodec(id) => {
            out.push(7);
            out.extend_from_slice(&id.to_le_bytes());
        }
        WireStoreError::CorruptChunk { level, block } => {
            out.push(8);
            write_uvarint(out, *level as u64);
            write_uvarint(out, *block as u64);
        }
        WireStoreError::Codec {
            level,
            block,
            message,
        } => {
            out.push(9);
            write_uvarint(out, *level as u64);
            write_uvarint(out, *block as u64);
            put_string(out, message);
        }
        WireStoreError::NoSuchLevel(l) => {
            out.push(10);
            write_uvarint(out, *l as u64);
        }
        WireStoreError::RoiOutOfBounds => out.push(11),
    }
}

fn get_store_error(c: &mut Cur) -> Result<WireStoreError, ProtocolError> {
    Ok(match c.u8()? {
        0 => WireStoreError::Io(c.string()?),
        1 => WireStoreError::Open {
            path: c.string()?,
            message: c.string()?,
        },
        2 => WireStoreError::BadMagic,
        3 => WireStoreError::BadVersion(c.u8()?),
        4 => WireStoreError::Truncated,
        5 => WireStoreError::CorruptTable,
        6 => WireStoreError::Malformed(c.string()?),
        7 => WireStoreError::UnknownCodec(c.u32le()?),
        8 => WireStoreError::CorruptChunk {
            level: c.usize()?,
            block: c.usize()?,
        },
        9 => WireStoreError::Codec {
            level: c.usize()?,
            block: c.usize()?,
            message: c.string()?,
        },
        10 => WireStoreError::NoSuchLevel(c.usize()?),
        11 => WireStoreError::RoiOutOfBounds,
        _ => return Err(ProtocolError::Malformed("store error tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip_and_rejection() {
        let mut buf = Vec::new();
        write_hello(&mut buf).unwrap();
        assert_eq!(buf.len(), HELLO_LEN);
        read_hello(&mut buf.as_slice()).unwrap();

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_hello(&mut bad.as_slice()),
            Err(ProtocolError::BadMagic(_))
        ));
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(
            read_hello(&mut bad.as_slice()),
            Err(ProtocolError::BadVersion(99))
        ));
        assert!(matches!(
            read_hello(&mut &buf[..3]),
            Err(ProtocolError::Truncated)
        ));
    }

    #[test]
    fn frame_roundtrip_crc_and_cap() {
        let body = b"the payload".to_vec();
        let mut wire = Vec::new();
        write_frame(&mut wire, Kind::Batch, 42, &body).unwrap();
        let (h, b) = read_frame(&mut wire.as_slice(), 1 << 20).unwrap();
        assert_eq!(
            h,
            FrameHeader {
                kind: Kind::Batch,
                req_id: 42
            }
        );
        assert_eq!(b, body);

        // Flip one body byte → BadCrc, not a mis-parse.
        let mut bad = wire.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x40;
        assert!(matches!(
            read_frame(&mut bad.as_slice(), 1 << 20),
            Err(ProtocolError::BadCrc)
        ));

        // Over-cap body length rejected before allocation.
        assert!(matches!(
            read_frame(&mut wire.as_slice(), 4),
            Err(ProtocolError::FrameTooLarge { len: 11, max: 4 })
        ));

        // Unknown kind byte.
        let mut bad = wire.clone();
        bad[4] = 0x77;
        assert!(matches!(
            read_frame(&mut bad.as_slice(), 1 << 20),
            Err(ProtocolError::UnknownKind(0x77))
        ));
    }

    #[test]
    fn request_bodies_roundtrip() {
        let reqs = [
            Request::List,
            Request::Batch {
                dataset: 7,
                queries: vec![
                    Query::Level { level: 2 },
                    Query::Roi {
                        level: 0,
                        lo: [1, 2, 3],
                        hi: [9, 8, 7],
                        fill: -0.5,
                    },
                    Query::Iso {
                        level: 1,
                        iso: 3.25,
                    },
                ],
            },
            Request::Progressive {
                dataset: 1,
                scheme: Upsample::Trilinear,
            },
            Request::Stats {
                dataset: 0,
                take: true,
            },
            Request::BatchDegraded {
                dataset: 7,
                queries: vec![Query::Level { level: 2 }, Query::Iso { level: 1, iso: 0.5 }],
            },
        ];
        for req in reqs {
            let body = req.encode();
            let back = Request::decode(req.kind(), &body).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn idempotency_flags() {
        assert!(Request::List.idempotent());
        assert!(Request::Batch {
            dataset: 0,
            queries: vec![]
        }
        .idempotent());
        assert!(Request::BatchDegraded {
            dataset: 0,
            queries: vec![]
        }
        .idempotent());
        assert!(Request::Stats {
            dataset: 0,
            take: false
        }
        .idempotent());
        // Draining the stats window twice would lose a window.
        assert!(!Request::Stats {
            dataset: 0,
            take: true
        }
        .idempotent());
    }

    #[test]
    fn response_bodies_roundtrip() {
        let level = LevelData {
            level: 1,
            unit: 2,
            dims: Dims3::new(4, 4, 4),
            blocks: vec![
                UnitBlock {
                    origin: [0, 0, 0],
                    data: vec![1.0; 8],
                },
                UnitBlock {
                    origin: [2, 0, 2],
                    data: vec![-2.5; 8],
                },
            ],
        };
        let field = Field3::from_fn(Dims3::new(3, 2, 4), |x, y, z| (x + 10 * y + 100 * z) as f32);
        let resps = [
            NetResponse::Datasets(vec![DatasetInfo {
                id: 3,
                name: "nyx-t1".into(),
                codec_id: 0x53_5A_33_53,
                eb: 1e-3,
                domain: Dims3::new(64, 64, 64),
                levels: 3,
                chunks: 17,
                compressed_bytes: 123_456,
            }]),
            NetResponse::Batch(vec![
                Response::Level(level.clone()),
                Response::Roi(field.clone()),
                Response::Iso(level.clone()),
            ]),
            NetResponse::Progressive(vec![RefinementStep {
                level: 2,
                field: field.clone(),
            }]),
            NetResponse::Stats(ServerStats {
                cache: CacheStats {
                    requests: 10,
                    hits: 6,
                    shared: 1,
                    misses: 4,
                    evictions: 2,
                    resident_bytes: 4096,
                    peak_resident_bytes: 8192,
                    budget_bytes: u64::MAX,
                    repairs: 3,
                    repair_failures: 1,
                },
                busy_rejections: 7,
                admission_rejections: 2,
                deadline_rejections: 5,
                scrub_passes: 4,
                scrub_verified: 900,
                scrub_repaired: 11,
                scrub_unrepairable: 1,
            }),
            NetResponse::BatchDegraded(vec![
                QueryResult {
                    response: Response::Level(level.clone()),
                    degraded: vec![(0, 3), (1, 0)],
                },
                QueryResult {
                    response: Response::Roi(field.clone()),
                    degraded: vec![],
                },
            ]),
            NetResponse::Error(ErrorFrame::Busy),
            NetResponse::Error(ErrorFrame::TooManyConnections),
            NetResponse::Error(ErrorFrame::NoSuchDataset(9)),
            NetResponse::Error(ErrorFrame::BadRequest("nope".into())),
            NetResponse::Error(ErrorFrame::DeadlineExceeded),
            NetResponse::Error(ErrorFrame::Store(WireStoreError::CorruptChunk {
                level: 1,
                block: 5,
            })),
        ];
        for resp in resps {
            let body = resp.encode();
            let back = NetResponse::decode(resp.kind(), &body).unwrap();
            assert_eq!(back, resp, "kind {:?}", resp.kind());
        }
    }

    #[test]
    fn store_error_variants_survive_the_wire() {
        let errors = [
            WireStoreError::Io("read failed".into()),
            WireStoreError::Open {
                path: "/data/a.hqst".into(),
                message: "No such file".into(),
            },
            WireStoreError::BadMagic,
            WireStoreError::BadVersion(9),
            WireStoreError::Truncated,
            WireStoreError::CorruptTable,
            WireStoreError::Malformed("bad layout".into()),
            WireStoreError::UnknownCodec(0xDEAD),
            WireStoreError::CorruptChunk {
                level: 3,
                block: 14,
            },
            WireStoreError::Codec {
                level: 0,
                block: 2,
                message: "entropy: bad prefix".into(),
            },
            WireStoreError::NoSuchLevel(12),
            WireStoreError::RoiOutOfBounds,
        ];
        for e in errors {
            let resp = NetResponse::Error(ErrorFrame::Store(e));
            let back = NetResponse::decode(Kind::RError, &resp.encode()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn crafted_counts_cannot_overallocate() {
        // A Batch response claiming 2^60 entries in a 12-byte body must be
        // rejected by the count guard, not attempted.
        let mut body = Vec::new();
        write_uvarint(&mut body, 1u64 << 60);
        body.extend_from_slice(&[0u8; 4]);
        assert!(matches!(
            NetResponse::decode(Kind::RBatch, &body),
            Err(ProtocolError::Malformed("count exceeds body"))
        ));
        // Same for a field with overflowing dims.
        let mut body = Vec::new();
        write_uvarint(&mut body, 1); // one response
        body.push(1); // Roi tag
        write_uvarint(&mut body, u64::MAX / 2);
        write_uvarint(&mut body, u64::MAX / 2);
        write_uvarint(&mut body, 4);
        assert!(NetResponse::decode(Kind::RBatch, &body).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Request::List.encode();
        body.push(0);
        assert!(matches!(
            Request::decode(Kind::List, &body),
            Err(ProtocolError::TrailingBytes)
        ));
    }
}
