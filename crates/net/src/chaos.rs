//! Deterministic fault injection for the serving fleet.
//!
//! Chaos is configuration, not test scaffolding: a [`ChaosConfig`] parsed
//! from the `HQMR_CHAOS` environment variable (or set directly on
//! `NetConfig::chaos`) makes the server wrap every accepted connection in a
//! [`ChaosStream`] that injects disconnects, partial writes, read stalls
//! and wire bit-flips, and installs a [`chunk_fault_hook`] on every
//! tenant's `StoreServer` that simulates at-rest chunk corruption. All
//! decisions derive from a seed through a counter-keyed splitmix chain, so
//! a failing run reproduces from its seed alone — no timing or OS state
//! feeds the draws.
//!
//! # Switch grammar
//!
//! ```text
//! HQMR_CHAOS=drop:0.05,stall:20ms,flip:0.01,partial:0.02,seed:42
//! ```
//!
//! * `drop:P` — with probability `P` per socket operation, shut the
//!   connection down mid-flight (the peer sees a reset/EOF);
//! * `stall:DUR[@P]` — with probability `P` (default `0.1`) per socket
//!   operation, sleep `DUR` (`ms`/`s`/`us` suffix) before performing it —
//!   the slow-peer simulator that exercises deadlines;
//! * `flip:P` — with probability `P` per chunk fetch, fail the fetch as
//!   `CorruptChunk` (bit rot behind the CRC check), feeding the degraded
//!   read path;
//! * `wire:P` — with probability `P` per write, flip one bit in the bytes
//!   on the wire (the frame CRC must catch it);
//! * `partial:P` — with probability `P` per write, transmit only a prefix
//!   and kill the connection — the half-written-frame crash;
//! * `seed:N` — the determinism root (default `0xC4A05`).

use hqmr_serve::FaultHook;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Environment variable holding the chaos switch string.
pub const CHAOS_ENV: &str = "HQMR_CHAOS";

/// Fault-injection switches. All probabilities are per-operation in
/// `[0, 1]`; the default config injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// P(connection torn down) per socket read/write.
    pub drop: f64,
    /// Injected stall length.
    pub stall: Duration,
    /// P(stall) per socket read/write.
    pub stall_p: f64,
    /// P(chunk fetch fails as `CorruptChunk`) per fetch.
    pub flip: f64,
    /// P(one bit flipped in the written bytes) per write.
    pub wire: f64,
    /// P(write truncated mid-buffer + connection killed) per write.
    pub partial: f64,
    /// Determinism root for every draw.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            drop: 0.0,
            stall: Duration::from_millis(10),
            stall_p: 0.0,
            flip: 0.0,
            wire: 0.0,
            partial: 0.0,
            seed: 0xC4A05,
        }
    }
}

impl ChaosConfig {
    /// Parses the switch grammar (see module docs). Unknown keys and
    /// malformed values are errors — a typo must not silently disable the
    /// harness.
    pub fn parse(s: &str) -> Result<ChaosConfig, String> {
        let mut cfg = ChaosConfig::default();
        let mut stall_p_explicit = false;
        for item in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, val) = item
                .split_once(':')
                .ok_or_else(|| format!("chaos switch `{item}` is not key:value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("chaos `{key}`: bad probability `{v}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("chaos `{key}`: probability {p} outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "drop" => cfg.drop = prob(val)?,
                "flip" => cfg.flip = prob(val)?,
                "wire" => cfg.wire = prob(val)?,
                "partial" => cfg.partial = prob(val)?,
                "seed" => {
                    cfg.seed = val
                        .parse()
                        .map_err(|_| format!("chaos `seed`: bad integer `{val}`"))?
                }
                "stall" => {
                    let (dur, p) = match val.split_once('@') {
                        Some((d, p)) => (d, Some(p)),
                        None => (val, None),
                    };
                    cfg.stall = parse_duration(dur)
                        .ok_or_else(|| format!("chaos `stall`: bad duration `{dur}`"))?;
                    if let Some(p) = p {
                        cfg.stall_p = prob(p)?;
                        stall_p_explicit = true;
                    } else if !stall_p_explicit {
                        cfg.stall_p = 0.1;
                    }
                }
                other => return Err(format!("unknown chaos switch `{other}`")),
            }
        }
        Ok(cfg)
    }

    /// Reads [`CHAOS_ENV`]; `Ok(None)` when unset or empty.
    pub fn from_env() -> Result<Option<ChaosConfig>, String> {
        match std::env::var(CHAOS_ENV) {
            Ok(s) if !s.trim().is_empty() => Self::parse(&s).map(Some),
            _ => Ok(None),
        }
    }

    /// Whether any wire-level fault (drop/stall/wire-flip/partial) is
    /// armed — the server only pays for stream wrapping when so.
    pub fn wire_active(&self) -> bool {
        self.drop > 0.0 || self.stall_p > 0.0 || self.wire > 0.0 || self.partial > 0.0
    }
}

/// `20ms` / `2s` / `500us` → `Duration`.
fn parse_duration(s: &str) -> Option<Duration> {
    let (num, unit) = s.split_at(s.find(|c: char| c.is_alphabetic())?);
    let n: u64 = num.parse().ok()?;
    match unit {
        "us" => Some(Duration::from_micros(n)),
        "ms" => Some(Duration::from_millis(n)),
        "s" => Some(Duration::from_secs(n)),
        _ => None,
    }
}

/// Counter-keyed deterministic RNG: each draw hashes `seed ‖ counter`
/// through splitmix64, so the stream depends only on the seed and how many
/// draws preceded it — never on time or thread identity.
#[derive(Debug)]
pub(crate) struct ChaosRng {
    seed: u64,
    counter: u64,
}

impl ChaosRng {
    pub(crate) fn new(seed: u64, stream: u64) -> Self {
        // Distinct streams (per connection, per hook) fold the stream id
        // into the seed so they do not replay each other's draws.
        ChaosRng {
            seed: splitmix64(seed ^ splitmix64(stream.wrapping_add(0x9E37_79B9_7F4A_7C15))),
            counter: 0,
        }
    }

    fn next(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        splitmix64(
            self.seed
                .wrapping_add(self.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.f64() < p
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What the dice said for one socket operation.
enum Fate {
    Pass,
    Stall(Duration),
    Drop,
    Partial,
    WireFlip,
}

struct Core {
    cfg: ChaosConfig,
    rng: ChaosRng,
    dead: bool,
}

impl Core {
    fn decide(&mut self, writing: bool) -> Fate {
        if self.dead {
            return Fate::Drop;
        }
        if self.rng.chance(self.cfg.drop) {
            self.dead = true;
            return Fate::Drop;
        }
        if writing && self.rng.chance(self.cfg.partial) {
            self.dead = true;
            return Fate::Partial;
        }
        if writing && self.rng.chance(self.cfg.wire) {
            return Fate::WireFlip;
        }
        if self.rng.chance(self.cfg.stall_p) {
            return Fate::Stall(self.cfg.stall);
        }
        Fate::Pass
    }
}

/// A `TcpStream` wrapper that injects faults per [`ChaosConfig`]. Reader
/// and writer halves made with [`ChaosStream::try_clone`] share one dice
/// state, so a connection dies exactly once and the draw sequence is a
/// single deterministic stream per connection.
pub struct ChaosStream {
    inner: TcpStream,
    core: Arc<Mutex<Core>>,
}

impl ChaosStream {
    /// Wraps `inner`; `stream_id` (e.g. a connection counter) decorrelates
    /// this connection's draws from every other's.
    pub fn new(inner: TcpStream, cfg: ChaosConfig, stream_id: u64) -> Self {
        let rng = ChaosRng::new(cfg.seed, stream_id);
        ChaosStream {
            inner,
            core: Arc::new(Mutex::new(Core {
                cfg,
                rng,
                dead: false,
            })),
        }
    }

    /// A second handle over the same socket and the same dice.
    pub fn try_clone(&self) -> std::io::Result<ChaosStream> {
        Ok(ChaosStream {
            inner: self.inner.try_clone()?,
            core: Arc::clone(&self.core),
        })
    }

    fn kill(&self) -> std::io::Error {
        let _ = self.inner.shutdown(Shutdown::Both);
        std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "chaos: injected disconnect",
        )
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let fate = self.core.lock().expect("chaos core").decide(false);
        match fate {
            Fate::Drop => Err(self.kill()),
            Fate::Stall(d) => {
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            _ => self.inner.read(buf),
        }
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let (fate, flip_at) = {
            let mut core = self.core.lock().expect("chaos core");
            let fate = core.decide(true);
            let at = core.rng.below(buf.len().max(1) * 8);
            (fate, at)
        };
        match fate {
            Fate::Drop => Err(self.kill()),
            Fate::Partial => {
                // Transmit a strict prefix, then die: the peer is left
                // holding a half-written frame.
                let _ = self.inner.write_all(&buf[..buf.len() / 2]);
                let _ = self.inner.flush();
                Err(self.kill())
            }
            Fate::WireFlip if !buf.is_empty() => {
                let mut damaged = buf.to_vec();
                damaged[flip_at / 8] ^= 1 << (flip_at % 8);
                self.inner.write_all(&damaged)?;
                Ok(buf.len())
            }
            Fate::Stall(d) => {
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Builds the serve-layer [`FaultHook`] for `flip:P`: each chunk fetch
/// rolls the dice on a shared deterministic stream; a hit fails the fetch
/// as `CorruptChunk`, which is observationally identical to the chunk's
/// CRC check rejecting real bit rot. Returns `None` when `flip` is off.
pub fn chunk_fault_hook(cfg: &ChaosConfig) -> Option<FaultHook> {
    if cfg.flip <= 0.0 {
        return None;
    }
    let (flip, seed) = (cfg.flip, cfg.seed);
    let counter = AtomicU64::new(0);
    Some(Arc::new(move |level, block| {
        let draw = counter.fetch_add(1, Ordering::Relaxed);
        let mut rng = ChaosRng::new(
            seed ^ ((level as u64) << 32) ^ block as u64,
            draw.wrapping_add(0xF11B),
        );
        rng.chance(flip)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_parses_and_rejects() {
        let c = ChaosConfig::parse("drop:0.05,stall:20ms,flip:0.01,partial:0.02,seed:42").unwrap();
        assert_eq!(c.drop, 0.05);
        assert_eq!(c.stall, Duration::from_millis(20));
        assert_eq!(c.stall_p, 0.1, "stall without @p defaults to 0.1");
        assert_eq!(c.flip, 0.01);
        assert_eq!(c.partial, 0.02);
        assert_eq!(c.seed, 42);
        assert!(c.wire_active());

        let c = ChaosConfig::parse("stall:2s@0.5,wire:1").unwrap();
        assert_eq!(c.stall, Duration::from_secs(2));
        assert_eq!(c.stall_p, 0.5);
        assert_eq!(c.wire, 1.0);

        assert_eq!(ChaosConfig::parse("").unwrap(), ChaosConfig::default());
        assert!(!ChaosConfig::default().wire_active());

        assert!(ChaosConfig::parse("drop:2.0").is_err(), "probability > 1");
        assert!(ChaosConfig::parse("drop:x").is_err());
        assert!(ChaosConfig::parse("stall:20").is_err(), "missing unit");
        assert!(ChaosConfig::parse("frobnicate:1").is_err(), "unknown key");
        assert!(ChaosConfig::parse("drop").is_err(), "missing value");
    }

    #[test]
    fn draws_are_deterministic_per_seed_and_stream() {
        let a: Vec<u64> = {
            let mut r = ChaosRng::new(7, 3);
            (0..32).map(|_| r.next()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaosRng::new(7, 3);
            (0..32).map(|_| r.next()).collect()
        };
        assert_eq!(a, b, "same seed+stream replays exactly");
        let c: Vec<u64> = {
            let mut r = ChaosRng::new(7, 4);
            (0..32).map(|_| r.next()).collect()
        };
        assert_ne!(a, c, "distinct streams decorrelate");
    }

    #[test]
    fn chance_respects_probability_extremes() {
        let mut r = ChaosRng::new(1, 1);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
        // A middling probability hits sometimes and misses sometimes.
        let hits = (0..1000).filter(|_| r.chance(0.3)).count();
        assert!(hits > 100 && hits < 600, "hits={hits}");
    }

    #[test]
    fn chunk_hook_fires_at_rate() {
        let cfg = ChaosConfig {
            flip: 0.5,
            ..ChaosConfig::default()
        };
        let hook = chunk_fault_hook(&cfg).unwrap();
        let hits = (0..1000).filter(|&i| hook(0, i)).count();
        assert!(hits > 300 && hits < 700, "hits={hits}");
        assert!(chunk_fault_hook(&ChaosConfig::default()).is_none());
    }
}
