//! Framed byte container for compressed artifacts.
//!
//! Every compressor in the workspace serializes to a `Container`: a magic +
//! version header followed by tagged, CRC-checked sections. This keeps the
//! compressed formats self-describing (error bound, dims, side channels) and
//! lets integration tests assert integrity end to end.

use crate::crc32;
use crate::varint::{read_uvarint, write_uvarint};

/// Container parse/validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Input ended mid-structure.
    Truncated,
    /// Section checksum mismatch.
    Corrupt { tag: u32 },
    /// A required section is absent.
    MissingSection { tag: u32 },
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::BadMagic => write!(f, "bad container magic"),
            ContainerError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            ContainerError::Truncated => write!(f, "truncated container"),
            ContainerError::Corrupt { tag } => write!(f, "section {tag:#x} failed CRC"),
            ContainerError::MissingSection { tag } => write!(f, "missing section {tag:#x}"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// One tagged byte payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Caller-defined tag (e.g. `b"QNTC"` as u32).
    pub tag: u32,
    /// Raw bytes.
    pub data: Vec<u8>,
}

/// A writable/readable container of sections.
#[derive(Debug, Clone, Default)]
pub struct Container {
    sections: Vec<Section>,
}

const MAGIC: &[u8; 4] = b"HQMR";
const VERSION: u8 = 1;

impl Container {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section (tags may repeat; lookup returns the first).
    pub fn push(&mut self, tag: u32, data: Vec<u8>) {
        self.sections.push(Section { tag, data });
    }

    /// Borrow the first section with `tag`.
    pub fn get(&self, tag: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.tag == tag)
            .map(|s| s.data.as_slice())
    }

    /// Borrow the first section with `tag` or fail with `MissingSection`.
    pub fn require(&self, tag: u32) -> Result<&[u8], ContainerError> {
        self.get(tag).ok_or(ContainerError::MissingSection { tag })
    }

    /// All sections with `tag`, in insertion order.
    pub fn get_all(&self, tag: u32) -> impl Iterator<Item = &[u8]> {
        self.sections
            .iter()
            .filter(move |s| s.tag == tag)
            .map(|s| s.data.as_slice())
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when no sections are present.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Serializes to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_into(&mut out);
        out
    }

    /// Serializes into a caller-owned buffer (appending), so per-chunk
    /// compressors can reuse one output allocation across calls.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        out.reserve(
            self.sections
                .iter()
                .map(|s| s.data.len() + 16)
                .sum::<usize>()
                + 8,
        );
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        write_uvarint(out, self.sections.len() as u64);
        for s in &self.sections {
            write_uvarint(out, s.tag as u64);
            write_uvarint(out, s.data.len() as u64);
            write_uvarint(out, crc32(&s.data) as u64);
            out.extend_from_slice(&s.data);
        }
    }

    /// Parses and CRC-validates a serialized container.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ContainerError> {
        if bytes.len() < 5 {
            return Err(ContainerError::Truncated);
        }
        if &bytes[..4] != MAGIC {
            return Err(ContainerError::BadMagic);
        }
        if bytes[4] != VERSION {
            return Err(ContainerError::BadVersion(bytes[4]));
        }
        let mut pos = 5usize;
        let count = read_uvarint(bytes, &mut pos).ok_or(ContainerError::Truncated)? as usize;
        let mut sections = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let tag = read_uvarint(bytes, &mut pos).ok_or(ContainerError::Truncated)? as u32;
            let len = read_uvarint(bytes, &mut pos).ok_or(ContainerError::Truncated)? as usize;
            let crc = read_uvarint(bytes, &mut pos).ok_or(ContainerError::Truncated)? as u32;
            let data = bytes
                .get(pos..pos + len)
                .ok_or(ContainerError::Truncated)?
                .to_vec();
            pos += len;
            if crc32(&data) != crc {
                return Err(ContainerError::Corrupt { tag });
            }
            sections.push(Section { tag, data });
        }
        Ok(Container { sections })
    }
}

/// Builds a section tag from a 4-byte mnemonic.
#[inline]
pub const fn tag(name: &[u8; 4]) -> u32 {
    u32::from_le_bytes(*name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut c = Container::new();
        c.push(tag(b"HEAD"), vec![1, 2, 3]);
        c.push(tag(b"DATA"), (0..255).collect());
        c.push(tag(b"DATA"), vec![9, 9]);
        let bytes = c.to_bytes();
        let back = Container::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get(tag(b"HEAD")), Some(&[1u8, 2, 3][..]));
        let all: Vec<_> = back.get_all(tag(b"DATA")).collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1], &[9u8, 9][..]);
    }

    #[test]
    fn corruption_detected() {
        let mut c = Container::new();
        c.push(tag(b"DATA"), vec![0u8; 100]);
        let mut bytes = c.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            Container::from_bytes(&bytes),
            Err(ContainerError::Corrupt { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version() {
        let c = Container::new();
        let mut bytes = c.to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Container::from_bytes(&bytes),
            Err(ContainerError::BadMagic)
        ));
        let mut bytes = Container::new().to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            Container::from_bytes(&bytes),
            Err(ContainerError::BadVersion(99))
        ));
    }

    #[test]
    fn truncation_detected() {
        let mut c = Container::new();
        c.push(tag(b"DATA"), vec![7u8; 64]);
        let bytes = c.to_bytes();
        for cut in [0, 3, 5, bytes.len() - 1] {
            assert!(Container::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn missing_section_error() {
        let c = Container::new();
        assert_eq!(
            c.require(tag(b"ABSN")),
            Err(ContainerError::MissingSection { tag: tag(b"ABSN") })
        );
    }
}
