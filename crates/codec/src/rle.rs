//! Byte-level run-length coding for sparse side channels.
//!
//! Used for predictor-selection flags (SZ2) and unit-block occupancy masks
//! (multi-resolution layout metadata), both of which are long runs of equal
//! bytes.

use crate::varint::{read_uvarint, write_uvarint};

/// Run-length encodes `data` as (uvarint run, byte value) pairs prefixed with
/// the total length.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    write_uvarint(&mut out, data.len() as u64);
    let mut i = 0usize;
    while i < data.len() {
        let v = data[i];
        let mut j = i + 1;
        while j < data.len() && data[j] == v {
            j += 1;
        }
        write_uvarint(&mut out, (j - i) as u64);
        out.push(v);
        i = j;
    }
    out
}

/// Decodes a buffer produced by [`rle_encode`]. `None` on malformed input.
pub fn rle_decode(bytes: &[u8]) -> Option<Vec<u8>> {
    let mut pos = 0usize;
    let total = read_uvarint(bytes, &mut pos)? as usize;
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let run = read_uvarint(bytes, &mut pos)? as usize;
        let v = *bytes.get(pos)?;
        pos += 1;
        if out.len() + run > total {
            return None;
        }
        out.resize(out.len() + run, v);
    }
    Some(out)
}

/// Wraps `bytes` with a 1-byte flag, applying RLE only when it shrinks the
/// payload. Entropy-coded streams of near-constant data (e.g. the all-zero
/// Huffman payload of a constant block) collapse by orders of magnitude.
pub fn pack_maybe_rle(bytes: &[u8]) -> Vec<u8> {
    let rle = rle_encode(bytes);
    let mut out = Vec::with_capacity(rle.len().min(bytes.len()) + 1);
    if rle.len() < bytes.len() {
        out.push(1);
        out.extend_from_slice(&rle);
    } else {
        out.push(0);
        out.extend_from_slice(bytes);
    }
    out
}

/// Inverse of [`pack_maybe_rle`]. `None` on malformed input.
pub fn unpack_maybe_rle(bytes: &[u8]) -> Option<Vec<u8>> {
    match bytes.first()? {
        0 => Some(bytes[1..].to_vec()),
        1 => rle_decode(&bytes[1..]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip_both_paths() {
        let repetitive = vec![0u8; 10_000];
        let packed = pack_maybe_rle(&repetitive);
        assert!(packed.len() < 20);
        assert_eq!(unpack_maybe_rle(&packed), Some(repetitive));

        let incompressible: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let packed = pack_maybe_rle(&incompressible);
        assert_eq!(packed.len(), 1001);
        assert_eq!(unpack_maybe_rle(&packed), Some(incompressible));

        assert_eq!(unpack_maybe_rle(&[]), None);
        assert_eq!(unpack_maybe_rle(&[7, 1, 2]), None);
    }

    #[test]
    fn roundtrip_runs() {
        let mut data = vec![0u8; 1000];
        data.extend(std::iter::repeat_n(1, 500));
        data.push(2);
        data.extend(std::iter::repeat_n(0, 123));
        let enc = rle_encode(&data);
        assert!(enc.len() < 20);
        assert_eq!(rle_decode(&enc), Some(data));
    }

    #[test]
    fn roundtrip_empty_and_single() {
        assert_eq!(rle_decode(&rle_encode(&[])), Some(vec![]));
        assert_eq!(rle_decode(&rle_encode(&[42])), Some(vec![42]));
    }

    #[test]
    fn roundtrip_alternating_worst_case() {
        let data: Vec<u8> = (0..256).map(|i| (i % 2) as u8).collect();
        assert_eq!(rle_decode(&rle_encode(&data)), Some(data));
    }

    #[test]
    fn truncation_rejected() {
        let enc = rle_encode(&[5u8; 100]);
        assert_eq!(rle_decode(&enc[..enc.len() - 1]), None);
    }
}
