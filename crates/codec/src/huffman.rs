//! Canonical Huffman coding for quantization-code streams.
//!
//! SZ2/SZ3 emit one `u32` quantization code per data point; the distribution
//! is sharply peaked at the zero-offset code, which is exactly where Huffman
//! earns the compression ratio. The encoded block is self-contained: it embeds
//! the code-length table (run-length compressed) followed by the bit payload.

use crate::bitio::{BitReader, BitWriter};
use crate::varint::{read_uvarint, write_uvarint};

/// Maximum admitted code length. Length-limiting keeps decode tables sane even
/// for adversarial frequency skews.
const MAX_CODE_LEN: u8 = 32;

/// Builds Huffman code lengths from symbol frequencies (freqs[i] = count of
/// symbol i). Zero-frequency symbols get length 0 (absent).
fn build_lengths(freqs: &[u64]) -> Vec<u8> {
    let present: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
    let mut lengths = vec![0u8; freqs.len()];
    match present.len() {
        0 => return lengths,
        1 => {
            lengths[present[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    // Heap-free O(n log n) two-queue construction after sorting by frequency.
    let mut leaves: Vec<(u64, usize)> = present.iter().map(|&i| (freqs[i], i)).collect();
    leaves.sort_unstable();
    // Internal nodes: (freq, left child, right child). Children index into a
    // combined id space: 0..n_leaves are leaves, n_leaves.. are internals.
    let n = leaves.len();
    let mut internal: Vec<(u64, usize, usize)> = Vec::with_capacity(n);
    let (mut li, mut ii) = (0usize, 0usize);
    let take = |li: &mut usize, ii: &mut usize, internal: &[(u64, usize, usize)]| -> (u64, usize) {
        let leaf_f = leaves.get(*li).map(|&(f, _)| f);
        let int_f = internal.get(*ii).map(|&(f, _, _)| f);
        match (leaf_f, int_f) {
            (Some(lf), Some(inf)) if lf <= inf => {
                *li += 1;
                (lf, *li - 1)
            }
            (Some(_), Some(_)) | (None, Some(_)) => {
                *ii += 1;
                (internal[*ii - 1].0, n + *ii - 1)
            }
            (Some(lf), None) => {
                *li += 1;
                (lf, *li - 1)
            }
            (None, None) => unreachable!("queues exhausted early"),
        }
    };
    for _ in 0..n - 1 {
        let (f1, a) = take(&mut li, &mut ii, &internal);
        let (f2, b) = take(&mut li, &mut ii, &internal);
        internal.push((f1 + f2, a, b));
    }
    // Depth-first depth assignment from the root (last internal node).
    let mut depth = vec![0u8; n + internal.len()];
    for idx in (0..internal.len()).rev() {
        let id = n + idx;
        let d = depth[id];
        let (_, a, b) = internal[idx];
        depth[a] = d + 1;
        depth[b] = d + 1;
    }
    for (leaf_idx, &(_, sym)) in leaves.iter().enumerate() {
        lengths[sym] = depth[leaf_idx].max(1);
    }
    limit_lengths(&mut lengths);
    lengths
}

/// Enforces `MAX_CODE_LEN` by the classic Kraft-sum fixup: overlong codes are
/// clamped, then lengths are increased greedily until Kraft ≤ 1, then shortened
/// where slack remains.
fn limit_lengths(lengths: &mut [u8]) {
    let over = lengths.iter().any(|&l| l > MAX_CODE_LEN);
    if !over {
        return;
    }
    for l in lengths.iter_mut() {
        if *l > MAX_CODE_LEN {
            *l = MAX_CODE_LEN;
        }
    }
    // Kraft sum in units of 2^-MAX_CODE_LEN.
    let unit = |l: u8| 1u64 << (MAX_CODE_LEN - l);
    let mut kraft: u64 = lengths.iter().filter(|&&l| l > 0).map(|&l| unit(l)).sum();
    let budget = 1u64 << MAX_CODE_LEN;
    // Demote (lengthen) the shortest offending codes until the sum fits.
    while kraft > budget {
        // Find a symbol with the smallest length > 0 that can grow.
        let mut best: Option<usize> = None;
        for (i, &l) in lengths.iter().enumerate() {
            if l > 0 && l < MAX_CODE_LEN {
                match best {
                    Some(b) if lengths[b] <= l => {}
                    _ => best = Some(i),
                }
            }
        }
        let i = best.expect("cannot satisfy Kraft inequality");
        kraft -= unit(lengths[i]);
        lengths[i] += 1;
        kraft += unit(lengths[i]);
    }
}

/// Assigns canonical codes (MSB-first values) from code lengths.
/// Returns (code, len) per symbol; absent symbols get (0, 0).
fn canonical_codes(lengths: &[u8]) -> Vec<(u64, u8)> {
    let mut by_len: Vec<(u8, usize)> = lengths
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l > 0)
        .map(|(i, &l)| (l, i))
        .collect();
    by_len.sort_unstable();
    let mut codes = vec![(0u64, 0u8); lengths.len()];
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for &(len, sym) in &by_len {
        code <<= (len - prev_len) as u32;
        codes[sym] = (code, len);
        code += 1;
        prev_len = len;
    }
    codes
}

/// Canonical decode table: for each length, the first code value and the base
/// index into the length-sorted symbol list.
struct DecodeTable {
    /// (first_code, base_index, count) per length 1..=MAX.
    levels: Vec<(u64, u32, u32)>,
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u32>,
    max_len: u8,
}

impl DecodeTable {
    fn from_lengths(lengths: &[u8]) -> Self {
        let mut by_len: Vec<(u8, u32)> = lengths
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l > 0)
            .map(|(i, &l)| (l, i as u32))
            .collect();
        by_len.sort_unstable();
        let max_len = by_len.last().map_or(0, |&(l, _)| l);
        let symbols: Vec<u32> = by_len.iter().map(|&(_, s)| s).collect();
        let mut levels = vec![(0u64, 0u32, 0u32); max_len as usize + 1];
        let mut code = 0u64;
        let mut idx = 0u32;
        let mut prev_len = 0u8;
        let mut i = 0usize;
        while i < by_len.len() {
            let len = by_len[i].0;
            code <<= (len - prev_len) as u32;
            let start = i;
            while i < by_len.len() && by_len[i].0 == len {
                i += 1;
            }
            let count = (i - start) as u32;
            levels[len as usize] = (code, idx, count);
            code += count as u64;
            idx += count;
            prev_len = len;
        }
        DecodeTable {
            levels,
            symbols,
            max_len,
        }
    }

    /// Decodes one symbol by reading MSB-first bits.
    fn decode(&self, reader: &mut BitReader<'_>) -> Option<u32> {
        let mut code = 0u64;
        for len in 1..=self.max_len {
            code = (code << 1) | reader.read_bit() as u64;
            let (first, base, count) = self.levels[len as usize];
            if count > 0 && code >= first && code < first + count as u64 {
                return Some(self.symbols[(base + (code - first) as u32) as usize]);
            }
        }
        None
    }
}

/// Encodes `symbols` into a self-contained Huffman block.
///
/// Layout: `uvarint n_symbols`, `uvarint alphabet_size`, RLE'd length table
/// (pairs of `uvarint run-length`, `u8 length`), `uvarint payload_bytes`,
/// payload bits.
pub fn huffman_encode(symbols: &[u32]) -> Vec<u8> {
    let alphabet = symbols.iter().map(|&s| s as usize + 1).max().unwrap_or(0);
    let mut freqs = vec![0u64; alphabet];
    for &s in symbols {
        freqs[s as usize] += 1;
    }
    let lengths = build_lengths(&freqs);
    let codes = canonical_codes(&lengths);

    let mut out = Vec::new();
    write_uvarint(&mut out, symbols.len() as u64);
    write_uvarint(&mut out, alphabet as u64);
    // RLE the length table: (run, value) pairs.
    let mut i = 0usize;
    while i < lengths.len() {
        let v = lengths[i];
        let mut j = i + 1;
        while j < lengths.len() && lengths[j] == v {
            j += 1;
        }
        write_uvarint(&mut out, (j - i) as u64);
        out.push(v);
        i = j;
    }

    let mut bits = BitWriter::with_capacity(symbols.len() / 2 + 16);
    for &s in symbols {
        let (code, len) = codes[s as usize];
        // MSB-first emission so canonical decode works bit by bit.
        for k in (0..len).rev() {
            bits.write_bit((code >> k) & 1 == 1);
        }
    }
    let payload = bits.finish();
    write_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Decodes a block produced by [`huffman_encode`]. Returns `None` on malformed
/// input.
pub fn huffman_decode(bytes: &[u8]) -> Option<Vec<u32>> {
    let mut pos = 0usize;
    let n_symbols = read_uvarint(bytes, &mut pos)? as usize;
    let alphabet = read_uvarint(bytes, &mut pos)? as usize;
    let mut lengths = vec![0u8; alphabet];
    let mut filled = 0usize;
    while filled < alphabet {
        let run = read_uvarint(bytes, &mut pos)? as usize;
        let v = *bytes.get(pos)?;
        pos += 1;
        if filled + run > alphabet {
            return None;
        }
        lengths[filled..filled + run].fill(v);
        filled += run;
    }
    let payload_len = read_uvarint(bytes, &mut pos)? as usize;
    let payload = bytes.get(pos..pos + payload_len)?;

    if n_symbols == 0 {
        return Some(Vec::new());
    }
    let table = DecodeTable::from_lengths(&lengths);
    let mut reader = BitReader::new(payload);
    let mut out = Vec::with_capacity(n_symbols);
    for _ in 0..n_symbols {
        out.push(table.decode(&mut reader)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        let enc = huffman_encode(&[]);
        assert_eq!(huffman_decode(&enc), Some(vec![]));
    }

    #[test]
    fn single_symbol_roundtrip() {
        let data = vec![7u32; 100];
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc), Some(data));
        // 100 identical symbols should cost ~1 bit each plus a tiny header.
        assert!(enc.len() < 40, "got {} bytes", enc.len());
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% zeros: entropy ≈ 0.47 bits/symbol.
        let mut data = Vec::new();
        for i in 0..10_000u32 {
            data.push(if i % 10 == 0 { 1 + i % 4 } else { 0 });
        }
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc), Some(data.clone()));
        let bits_per_symbol = enc.len() as f64 * 8.0 / data.len() as f64;
        assert!(bits_per_symbol < 1.6, "got {bits_per_symbol} bits/sym");
    }

    #[test]
    fn uniform_distribution_roundtrip() {
        let data: Vec<u32> = (0..4096).map(|i| i % 256).collect();
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc), Some(data));
    }

    #[test]
    fn two_symbols() {
        let data = vec![3u32, 9, 3, 3, 9, 3];
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc), Some(data));
    }

    #[test]
    fn truncated_input_fails_gracefully() {
        let data: Vec<u32> = (0..100).map(|i| i % 7).collect();
        let enc = huffman_encode(&data);
        for cut in [0, 1, 2, enc.len() / 2] {
            let r = huffman_decode(&enc[..cut]);
            // Either cleanly rejected or (for mid-payload cuts) wrong length —
            // never a panic.
            if let Some(v) = r {
                assert_ne!(v, data);
            }
        }
    }

    #[test]
    fn fibonacci_freqs_stress_depth() {
        // Fibonacci frequencies create maximally skewed (deep) trees.
        let mut data = Vec::new();
        let (mut a, mut b) = (1u64, 1u64);
        for sym in 0..40u32 {
            for _ in 0..a.min(10_000) {
                data.push(sym);
            }
            let c = a + b;
            a = b;
            b = c;
        }
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc), Some(data));
    }

    #[test]
    fn lengths_satisfy_kraft() {
        let freqs: Vec<u64> = (1..=64u64).map(|i| i * i * i).collect();
        let lengths = build_lengths(&freqs);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-12, "kraft = {kraft}");
    }
}
