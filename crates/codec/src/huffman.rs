//! Canonical Huffman coding for quantization-code streams.
//!
//! SZ2/SZ3 emit one `u32` quantization code per data point; the distribution
//! is sharply peaked at the zero-offset code, which is exactly where Huffman
//! earns the compression ratio. The encoded block is self-contained: it embeds
//! the code-length table (run-length compressed) followed by the bit payload.
//!
//! The coder is table-driven in both directions. Encoding emits each symbol
//! as one `write_bits` call from a precomputed per-symbol `(code, len)` table
//! (codes bit-reversed once so MSB-first canonical codes land correctly in
//! the LSB-first stream). Decoding peeks `TABLE_BITS` (11) bits into a flat
//! lookup table that yields `(symbol, length)` in one probe for every code of
//! length ≤ 11 — longer codes (rare by construction: canonical codes past 11
//! bits carry tiny probability mass) spill to the canonical
//! per-bit walk. The pre-overhaul per-bit coder survives as
//! [`huffman_encode_reference`] / [`huffman_decode_reference`]: differential
//! tests pin the two paths together and the `tables hotpath` bench measures
//! the gap.

use crate::bitio::{reference, BitReader, BitWriter};
use crate::codec::CodecError;
use crate::varint::{read_uvarint, write_uvarint};
use std::cell::RefCell;

/// Maximum admitted code length. Length-limiting keeps decode tables sane even
/// for adversarial frequency skews.
const MAX_CODE_LEN: u8 = 32;

/// Width of the primary decode lookup table. 2^11 entries × 4 bytes = 8 KiB —
/// resident in L1 — while covering every code the quantizer's peaked
/// distributions emit in practice.
const TABLE_BITS: u32 = 11;

/// Alphabet ceiling accepted by the decoder. The lookup table packs
/// `(symbol << 6) | len` into a `u32`, so symbols must fit in 26 bits; real
/// alphabets (quantizer radius 2·32768) sit orders of magnitude below, and an
/// encoder input beyond this would already have failed allocating its
/// frequency table.
const MAX_ALPHABET: usize = 1 << 26;

thread_local! {
    /// Reusable per-symbol frequency table for [`histogram`]. Sized to the
    /// largest alphabet this thread has seen (capped at [`SCRATCH_CAP`]) and
    /// re-zeroed entry-by-entry after each use, so per-block encodes pay
    /// O(distinct symbols), not O(alphabet) — the quantizer's 2·radius
    /// alphabet is ~64 K while a store chunk holds a few thousand points.
    static FREQ_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Reusable per-symbol `(reversed code, length)` encode table. Only the
    /// entries of symbols present in the current block are (re)written, and
    /// only those are ever read, so no clearing is needed.
    static ENC_SCRATCH: RefCell<Vec<(u64, u8)>> = const { RefCell::new(Vec::new()) };
}

/// Largest alphabet the thread-local scratch tables are allowed to retain:
/// 2^17 entries comfortably covers the quantizer's `2·radius` (~64 K)
/// alphabet at ~1 MiB (freq) + ~2 MiB (enc) per thread. A caller feeding a
/// pathologically large symbol (the encoder itself imposes no alphabet cap)
/// falls back to transient per-call tables — same behaviour the pre-sparse
/// encoder had — instead of pinning gigabytes in a worker thread for its
/// lifetime.
const SCRATCH_CAP: usize = 1 << 17;

/// Sorted `(symbol, code length)` pairs for the symbols present in a block.
type PresentLengths = Vec<(u32, u8)>;

/// Counts `symbols` into sorted `(symbol, frequency)` pairs plus the alphabet
/// size (`max symbol + 1`). `None` for empty input.
fn histogram(symbols: &[u32]) -> Option<(Vec<(u32, u64)>, usize)> {
    let alphabet = symbols.iter().map(|&s| s as usize + 1).max()?;
    let count = |freqs: &mut [u64]| {
        let mut present: Vec<u32> = Vec::new();
        for &s in symbols {
            let c = &mut freqs[s as usize];
            if *c == 0 {
                present.push(s);
            }
            *c += 1;
        }
        present.sort_unstable();
        // Harvest counts and leave the table all-zero behind us.
        let pairs: Vec<(u32, u64)> = present
            .iter()
            .map(|&s| {
                let c = &mut freqs[s as usize];
                let freq = *c;
                *c = 0;
                (s, freq)
            })
            .collect();
        pairs
    };
    if alphabet > SCRATCH_CAP {
        let mut freqs = vec![0u64; alphabet];
        return Some((count(&mut freqs), alphabet));
    }
    FREQ_SCRATCH.with(|f| {
        let mut freqs = f.borrow_mut();
        if freqs.len() < alphabet {
            freqs.resize(alphabet, 0);
        }
        Some((count(&mut freqs), alphabet))
    })
}

/// Builds Huffman code lengths for sorted `(symbol, frequency)` pairs.
/// Returns lengths aligned index-wise with `pairs` (every entry ≥ 1).
///
/// Equivalent to the historical dense-table construction: leaves sorted by
/// `(frequency, symbol)` feed the same two-queue merge, so ties break
/// identically and the emitted length table is byte-for-byte unchanged.
fn build_lengths(pairs: &[(u32, u64)]) -> Vec<u8> {
    let mut lengths = vec![0u8; pairs.len()];
    match pairs.len() {
        0 => return lengths,
        1 => {
            lengths[0] = 1;
            return lengths;
        }
        _ => {}
    }
    // Heap-free O(n log n) two-queue construction after sorting by frequency.
    // Pair indices rise with symbol ids, so sorting `(freq, pair index)`
    // reproduces the historical `(freq, symbol)` order exactly.
    let mut leaves: Vec<(u64, usize)> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(_, f))| (f, i))
        .collect();
    leaves.sort_unstable();
    // Internal nodes: (freq, left child, right child). Children index into a
    // combined id space: 0..n_leaves are leaves, n_leaves.. are internals.
    let n = leaves.len();
    let mut internal: Vec<(u64, usize, usize)> = Vec::with_capacity(n);
    let (mut li, mut ii) = (0usize, 0usize);
    let take = |li: &mut usize, ii: &mut usize, internal: &[(u64, usize, usize)]| -> (u64, usize) {
        let leaf_f = leaves.get(*li).map(|&(f, _)| f);
        let int_f = internal.get(*ii).map(|&(f, _, _)| f);
        match (leaf_f, int_f) {
            (Some(lf), Some(inf)) if lf <= inf => {
                *li += 1;
                (lf, *li - 1)
            }
            (Some(_), Some(_)) | (None, Some(_)) => {
                *ii += 1;
                (internal[*ii - 1].0, n + *ii - 1)
            }
            (Some(lf), None) => {
                *li += 1;
                (lf, *li - 1)
            }
            (None, None) => unreachable!("queues exhausted early"),
        }
    };
    for _ in 0..n - 1 {
        let (f1, a) = take(&mut li, &mut ii, &internal);
        let (f2, b) = take(&mut li, &mut ii, &internal);
        internal.push((f1 + f2, a, b));
    }
    // Depth-first depth assignment from the root (last internal node).
    let mut depth = vec![0u8; n + internal.len()];
    for idx in (0..internal.len()).rev() {
        let id = n + idx;
        let d = depth[id];
        let (_, a, b) = internal[idx];
        depth[a] = d + 1;
        depth[b] = d + 1;
    }
    for (leaf_idx, &(_, pair_idx)) in leaves.iter().enumerate() {
        lengths[pair_idx] = depth[leaf_idx].max(1);
    }
    limit_lengths(&mut lengths);
    lengths
}

/// Enforces `MAX_CODE_LEN` by the classic Kraft-sum fixup: overlong codes are
/// clamped, then lengths are increased greedily until Kraft ≤ 1, then shortened
/// where slack remains.
fn limit_lengths(lengths: &mut [u8]) {
    let over = lengths.iter().any(|&l| l > MAX_CODE_LEN);
    if !over {
        return;
    }
    for l in lengths.iter_mut() {
        if *l > MAX_CODE_LEN {
            *l = MAX_CODE_LEN;
        }
    }
    // Kraft sum in units of 2^-MAX_CODE_LEN.
    let unit = |l: u8| 1u64 << (MAX_CODE_LEN - l);
    let mut kraft: u64 = lengths.iter().filter(|&&l| l > 0).map(|&l| unit(l)).sum();
    let budget = 1u64 << MAX_CODE_LEN;
    // Demote (lengthen) the shortest offending codes until the sum fits.
    while kraft > budget {
        // Find a symbol with the smallest length > 0 that can grow.
        let mut best: Option<usize> = None;
        for (i, &l) in lengths.iter().enumerate() {
            if l > 0 && l < MAX_CODE_LEN {
                match best {
                    Some(b) if lengths[b] <= l => {}
                    _ => best = Some(i),
                }
            }
        }
        let i = best.expect("cannot satisfy Kraft inequality");
        kraft -= unit(lengths[i]);
        lengths[i] += 1;
        kraft += unit(lengths[i]);
    }
}

/// Assigns canonical codes (MSB-first values) from code lengths.
/// Returns (code, len) per symbol; absent symbols get (0, 0).
fn canonical_codes(lengths: &[u8]) -> Vec<(u64, u8)> {
    let mut by_len: Vec<(u8, usize)> = lengths
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l > 0)
        .map(|(i, &l)| (l, i))
        .collect();
    by_len.sort_unstable();
    let mut codes = vec![(0u64, 0u8); lengths.len()];
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for &(len, sym) in &by_len {
        code <<= (len - prev_len) as u32;
        codes[sym] = (code, len);
        code += 1;
        prev_len = len;
    }
    codes
}

/// Reverses the low `len` bits of a canonical (MSB-first) code value, i.e.
/// the order the LSB-first bit stream stores them in.
#[inline]
fn reverse_code(code: u64, len: u8) -> u64 {
    if len == 0 {
        0
    } else {
        code.reverse_bits() >> (64 - len as u32)
    }
}

/// Canonical decode table: a flat primary lookup over the next [`TABLE_BITS`]
/// stream bits, spilling to the per-length canonical walk for longer codes.
struct DecodeTable {
    /// (first_code, base_index, count) per length 1..=MAX — the canonical
    /// walk used for codes longer than the primary table.
    levels: Vec<(u64, u32, u32)>,
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u32>,
    max_len: u8,
    /// Primary table, indexed by the next `table_bits` stream bits (LSB
    /// first). Entry = `(symbol << 6) | code_len`; 0 ⇒ no code of length
    /// ≤ `table_bits` matches this prefix (spill or invalid).
    lut: Vec<u32>,
    table_bits: u32,
}

impl DecodeTable {
    fn from_lengths(lengths: &[u8]) -> Self {
        Self::build(lengths, true)
    }

    /// The walk-only variant: exactly the structure the pre-overhaul decoder
    /// built (no primary table). [`huffman_decode_reference`] uses this so
    /// the benched baseline pays only the costs the original code paid.
    fn from_lengths_walk_only(lengths: &[u8]) -> Self {
        Self::build(lengths, false)
    }

    fn build(lengths: &[u8], with_lut: bool) -> Self {
        let mut by_len: Vec<(u8, u32)> = lengths
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l > 0)
            .map(|(i, &l)| (l, i as u32))
            .collect();
        by_len.sort_unstable();
        let max_len = by_len.last().map_or(0, |&(l, _)| l);
        let symbols: Vec<u32> = by_len.iter().map(|&(_, s)| s).collect();
        let mut levels = vec![(0u64, 0u32, 0u32); max_len as usize + 1];
        let table_bits = TABLE_BITS.min(max_len as u32);
        let lut_len = if max_len == 0 || !with_lut {
            0
        } else {
            1 << table_bits
        };
        let mut lut = vec![0u32; lut_len];
        let mut code = 0u64;
        let mut idx = 0u32;
        let mut prev_len = 0u8;
        let mut i = 0usize;
        while i < by_len.len() {
            let len = by_len[i].0;
            code <<= (len - prev_len) as u32;
            let start = i;
            while i < by_len.len() && by_len[i].0 == len {
                i += 1;
            }
            let count = (i - start) as u32;
            levels[len as usize] = (code, idx, count);
            // Fill the primary table: every `table_bits`-wide stream prefix
            // that starts with this code (bit-reversed, since the stream is
            // LSB-first) resolves in one probe.
            if with_lut && (len as u32) <= table_bits {
                for k in 0..count {
                    let sym = by_len[start + k as usize].1;
                    let rev = reverse_code(code + k as u64, len) as usize;
                    let entry = (sym << 6) | len as u32;
                    let step = 1usize << len;
                    let mut at = rev;
                    while at < lut.len() {
                        lut[at] = entry;
                        at += step;
                    }
                }
            }
            code += count as u64;
            idx += count;
            prev_len = len;
        }
        DecodeTable {
            levels,
            symbols,
            max_len,
            lut,
            table_bits,
        }
    }

    /// Decodes one symbol: one table probe for codes of length
    /// ≤ `table_bits`, canonical walk continuation otherwise.
    #[inline]
    fn decode(&self, reader: &mut BitReader<'_>) -> Option<u32> {
        if self.lut.is_empty() {
            return None; // no codes at all — old decoder also never matched
        }
        let probe = reader.peek_bits(self.table_bits);
        let entry = self.lut[probe as usize];
        if entry != 0 {
            reader.consume(entry & 63);
            return Some(entry >> 6);
        }
        self.decode_spill(reader, probe)
    }

    /// Spill continuation: no code of length ≤ `table_bits` matches, so the
    /// peeked prefix is consumed wholesale (bit-reversed back into MSB-first
    /// code order) and the canonical walk continues from `table_bits + 1` —
    /// never re-reading the prefix bit by bit. Total bits consumed match the
    /// pre-overhaul decoder exactly, including on failure (`max_len` bits).
    #[cold]
    fn decode_spill(&self, reader: &mut BitReader<'_>, probe: u64) -> Option<u32> {
        let mut code = probe.reverse_bits() >> (64 - self.table_bits);
        reader.consume(self.table_bits);
        for len in (self.table_bits + 1)..=(self.max_len as u32) {
            code = (code << 1) | reader.read_bit() as u64;
            let (first, base, count) = self.levels[len as usize];
            if count > 0 && code >= first && code < first + count as u64 {
                return Some(self.symbols[(base + (code - first) as u32) as usize]);
            }
        }
        None
    }
}

/// Encodes `symbols` into a self-contained Huffman block.
///
/// Layout: `uvarint n_symbols`, `uvarint alphabet_size`, RLE'd length table
/// (pairs of `uvarint run-length`, `u8 length`), `uvarint payload_bytes`,
/// payload bits.
pub fn huffman_encode(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_append(symbols, &mut out);
    out
}

/// [`huffman_encode`] framed like `pack_maybe_rle(&huffman_encode(symbols))`
/// — byte-identical output — but encoding straight into the flagged buffer,
/// so the raw arm (the usual one: Huffman output rarely has byte runs) skips
/// the extra block-sized copy.
pub fn huffman_encode_packed(symbols: &[u32]) -> Vec<u8> {
    let mut out = vec![0u8]; // pack flag: raw
    encode_append(symbols, &mut out);
    let rle = crate::rle::rle_encode(&out[1..]);
    if rle.len() < out.len() - 1 {
        let mut packed = Vec::with_capacity(rle.len() + 1);
        packed.push(1);
        packed.extend_from_slice(&rle);
        return packed;
    }
    out
}

/// Encodes one Huffman block directly onto the end of `out`.
fn encode_append(symbols: &[u32], out: &mut Vec<u8>) {
    let Some((present, payload_bits)) = encode_header(symbols, out) else {
        empty_block(out);
        return;
    };
    // Canonical codes assigned in (length, symbol) order, bit-reversed once
    // and scattered into a per-symbol table — the thread-local scratch for
    // realistic alphabets, a transient table above the retention cap. Only
    // present entries are written and only present entries are read, so the
    // scratch needs no clearing between blocks.
    let mut by_len: Vec<(u8, u32)> = present.iter().map(|&(s, l)| (l, s)).collect();
    by_len.sort_unstable();
    let alphabet = present.last().map_or(0, |&(s, _)| s as usize + 1);
    // The payload byte count is fully determined by the histogram, so the
    // size prefix goes out *before* the bits and the payload streams straight
    // into the output buffer — no separate payload vector, no append copy.
    let payload_bytes = payload_bits.div_ceil(8);
    write_uvarint(out, payload_bytes);
    let emit = |enc: &mut [(u64, u8)], out: &mut Vec<u8>| {
        let mut code = 0u64;
        let mut prev_len = 0u8;
        for &(len, sym) in &by_len {
            code <<= (len - prev_len) as u32;
            enc[sym as usize] = (reverse_code(code, len), len);
            code += 1;
            prev_len = len;
        }
        out.reserve(payload_bytes as usize + 8);
        let prefix_bytes = out.len();
        let mut bits = BitWriter::from_vec(std::mem::take(out));
        // Emit four symbols per `write_bits` when they fit one word (codes
        // average a few bits, so they almost always do), two otherwise —
        // `MAX_CODE_LEN = 32` guarantees any *pair* fits 64 bits, and
        // LSB-first packing makes the fused call produce the identical
        // stream to one call per symbol.
        let mut quads = symbols.chunks_exact(4);
        for quad in &mut quads {
            let (r0, l0) = enc[quad[0] as usize];
            let (r1, l1) = enc[quad[1] as usize];
            let (r2, l2) = enc[quad[2] as usize];
            let (r3, l3) = enc[quad[3] as usize];
            let a = r0 | (r1 << l0);
            let la = l0 as u32 + l1 as u32;
            let b = r2 | (r3 << l2);
            let lb = l2 as u32 + l3 as u32;
            if la + lb <= 64 {
                // la ≤ 62 here (lb ≥ 2), so the shift is in range.
                bits.write_bits(a | (b << la), la + lb);
            } else {
                bits.write_bits(a, la);
                bits.write_bits(b, lb);
            }
        }
        for &s in quads.remainder() {
            let (rev, len) = enc[s as usize];
            bits.write_bits(rev, len as u32);
        }
        *out = bits.finish();
        debug_assert_eq!(out.len() - prefix_bytes, payload_bytes as usize);
    };
    if alphabet > SCRATCH_CAP {
        let mut enc = vec![(0u64, 0u8); alphabet];
        emit(&mut enc, out);
        return;
    }
    ENC_SCRATCH.with(|e| {
        let mut enc = e.borrow_mut();
        if enc.len() < alphabet {
            enc.resize(alphabet, (0, 0));
        }
        emit(&mut enc, out);
    });
}

/// Shared header construction (symbol count, alphabet, RLE'd length table),
/// appended to `out`. Returns the present `(symbol, code length)` pairs,
/// sorted by symbol, plus the total payload bit count (Σ count·length —
/// known before a single payload bit is written). `None` for the empty
/// input, which both encoders special-case identically (nothing is written).
///
/// All work is proportional to the number of *distinct* symbols, but the
/// emitted header is byte-identical to the historical dense-table scan: gaps
/// between present symbols become zero runs, adjacent equal lengths coalesce
/// — exactly the maximal runs a full-table RLE would find (the alphabet ends
/// at the largest present symbol, so there is never a trailing zero run).
fn encode_header(symbols: &[u32], out: &mut Vec<u8>) -> Option<(PresentLengths, u64)> {
    let (pairs, alphabet) = histogram(symbols)?;
    let lengths = build_lengths(&pairs);
    let payload_bits: u64 = pairs
        .iter()
        .zip(&lengths)
        .map(|(&(_, c), &l)| c * l as u64)
        .sum();

    write_uvarint(out, symbols.len() as u64);
    write_uvarint(out, alphabet as u64);
    // RLE over the (virtual) full-length table, emitted straight from the
    // present pairs. Present lengths are always ≥ 1, so they never merge
    // into a zero run.
    let mut pending: Option<(usize, u8)> = None; // (run, value)
    let mut push_run = |out: &mut Vec<u8>, v: u8, n: usize| {
        if n == 0 {
            return;
        }
        if let Some((run, pv)) = &mut pending {
            if *pv == v {
                *run += n;
                return;
            }
            let (run, pv) = (*run, *pv);
            write_uvarint(out, run as u64);
            out.push(pv);
        }
        pending = Some((n, v));
    };
    let mut pos = 0usize;
    for (i, &(sym, _)) in pairs.iter().enumerate() {
        push_run(out, 0, sym as usize - pos);
        push_run(out, lengths[i], 1);
        pos = sym as usize + 1;
    }
    if let Some((run, v)) = pending {
        write_uvarint(out, run as u64);
        out.push(v);
    }
    let present = pairs
        .iter()
        .zip(&lengths)
        .map(|(&(s, _), &l)| (s, l))
        .collect();
    Some((present, payload_bits))
}

/// The encoding of zero symbols: `n_symbols = 0`, `alphabet = 0`, empty
/// payload.
fn empty_block(out: &mut Vec<u8>) {
    write_uvarint(out, 0); // n_symbols
    write_uvarint(out, 0); // alphabet
    write_uvarint(out, 0); // payload bytes
}

/// Parsed block header: lengths table plus payload slice and symbol count.
fn decode_header(bytes: &[u8]) -> Result<(usize, Vec<u8>, &[u8]), CodecError> {
    let bad = |reason| CodecError::Entropy { reason };
    let mut pos = 0usize;
    let n_symbols = read_uvarint(bytes, &mut pos).ok_or(bad("truncated symbol count"))? as usize;
    let alphabet = read_uvarint(bytes, &mut pos).ok_or(bad("truncated alphabet size"))? as usize;
    if alphabet > MAX_ALPHABET {
        return Err(bad("alphabet too large"));
    }
    let mut lengths = vec![0u8; alphabet];
    let mut filled = 0usize;
    while filled < alphabet {
        let run = read_uvarint(bytes, &mut pos).ok_or(bad("truncated length table"))? as usize;
        let v = *bytes.get(pos).ok_or(bad("truncated length table"))?;
        pos += 1;
        if v > MAX_CODE_LEN {
            return Err(bad("code length exceeds limit"));
        }
        if filled + run > alphabet {
            return Err(bad("length-table run overflows alphabet"));
        }
        lengths[filled..filled + run].fill(v);
        filled += run;
    }
    // Kraft inequality: a table that over-subscribes the code space cannot
    // have come from the encoder, and a prefix-free guarantee is what makes
    // the primary-table and canonical-walk decoders provably agree.
    let kraft: u64 = lengths
        .iter()
        .filter(|&&l| l > 0)
        .map(|&l| 1u64 << (MAX_CODE_LEN - l))
        .sum();
    if kraft > 1u64 << MAX_CODE_LEN {
        return Err(bad("code lengths violate Kraft inequality"));
    }
    let payload_len = read_uvarint(bytes, &mut pos).ok_or(bad("truncated payload size"))? as usize;
    let payload = bytes
        .get(pos..pos.saturating_add(payload_len))
        .ok_or(bad("truncated payload"))?;
    Ok((n_symbols, lengths, payload))
}

/// Decodes a block produced by [`huffman_encode`].
pub fn huffman_decode(bytes: &[u8]) -> Result<Vec<u32>, CodecError> {
    let (n_symbols, lengths, payload) = decode_header(bytes)?;
    if n_symbols == 0 {
        return Ok(Vec::new());
    }
    let table = DecodeTable::from_lengths(&lengths);
    let mut reader = BitReader::new(payload);
    let mut out = Vec::with_capacity(n_symbols);
    for _ in 0..n_symbols {
        out.push(table.decode(&mut reader).ok_or(CodecError::Entropy {
            reason: "invalid code",
        })?);
    }
    Ok(out)
}

/// Pre-overhaul encoder (per-bit emission through the reference
/// [`reference::BitWriter`]). Produces byte-identical blocks to
/// [`huffman_encode`]; kept for differential tests and the hot-path bench.
pub fn huffman_encode_reference(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    match encode_header(symbols, &mut out) {
        None => {
            empty_block(&mut out);
            out
        }
        Some((present, _payload_bits)) => {
            // Rebuild the dense per-symbol length table the pre-overhaul
            // encoder worked from.
            let alphabet = present.last().map_or(0, |&(s, _)| s as usize + 1);
            let mut lengths = vec![0u8; alphabet];
            for &(s, l) in &present {
                lengths[s as usize] = l;
            }
            let codes = canonical_codes(&lengths);
            let mut bits = reference::BitWriter::new();
            for &s in symbols {
                let (code, len) = codes[s as usize];
                // MSB-first emission so canonical decode works bit by bit.
                for k in (0..len).rev() {
                    bits.write_bit((code >> k) & 1 == 1);
                }
            }
            let payload = bits.finish();
            write_uvarint(&mut out, payload.len() as u64);
            out.extend_from_slice(&payload);
            out
        }
    }
}

#[cfg(test)]
mod packed_tests {
    use super::*;
    use crate::rle::pack_maybe_rle;

    #[test]
    fn packed_matches_two_step_framing() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![7; 500],                          // single symbol => RLE-friendly
            (0..2000u32).map(|i| i % 3).collect(), // tiny alphabet
            (0..5000u32)
                .map(|i| i.wrapping_mul(2_654_435_761) % 4001)
                .collect(), // dense
        ];
        for symbols in cases {
            let two_step = pack_maybe_rle(&huffman_encode(&symbols));
            let fused = huffman_encode_packed(&symbols);
            assert_eq!(fused, two_step, "n={}", symbols.len());
        }
    }
}

/// Pre-overhaul decoder (per-bit canonical walk over the reference
/// [`reference::BitReader`]). Accepts exactly the blocks
/// [`huffman_decode`] accepts; kept for differential tests and the hot-path
/// bench.
pub fn huffman_decode_reference(bytes: &[u8]) -> Result<Vec<u32>, CodecError> {
    let (n_symbols, lengths, payload) = decode_header(bytes)?;
    if n_symbols == 0 {
        return Ok(Vec::new());
    }
    let table = DecodeTable::from_lengths_walk_only(&lengths);
    let mut reader = reference::BitReader::new(payload);
    let mut out = Vec::with_capacity(n_symbols);
    for _ in 0..n_symbols {
        let mut code = 0u64;
        let mut found = None;
        for len in 1..=table.max_len {
            code = (code << 1) | reader.read_bit() as u64;
            let (first, base, count) = table.levels[len as usize];
            if count > 0 && code >= first && code < first + count as u64 {
                found = Some(table.symbols[(base + (code - first) as u32) as usize]);
                break;
            }
        }
        out.push(found.ok_or(CodecError::Entropy {
            reason: "invalid code",
        })?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        let enc = huffman_encode(&[]);
        assert_eq!(huffman_decode(&enc).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn single_symbol_roundtrip() {
        let data = vec![7u32; 100];
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc).unwrap(), data);
        // 100 identical symbols should cost ~1 bit each plus a tiny header.
        assert!(enc.len() < 40, "got {} bytes", enc.len());
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% zeros: entropy ≈ 0.47 bits/symbol.
        let mut data = Vec::new();
        for i in 0..10_000u32 {
            data.push(if i % 10 == 0 { 1 + i % 4 } else { 0 });
        }
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc).unwrap(), data);
        let bits_per_symbol = enc.len() as f64 * 8.0 / data.len() as f64;
        assert!(bits_per_symbol < 1.6, "got {bits_per_symbol} bits/sym");
    }

    #[test]
    fn uniform_distribution_roundtrip() {
        let data: Vec<u32> = (0..4096).map(|i| i % 256).collect();
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc).unwrap(), data);
    }

    #[test]
    fn two_symbols() {
        let data = vec![3u32, 9, 3, 3, 9, 3];
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc).unwrap(), data);
    }

    #[test]
    fn truncated_input_fails_gracefully() {
        let data: Vec<u32> = (0..100).map(|i| i % 7).collect();
        let enc = huffman_encode(&data);
        for cut in [0, 1, 2, enc.len() / 2] {
            let r = huffman_decode(&enc[..cut]);
            // Either cleanly rejected or (for mid-payload cuts) wrong length —
            // never a panic.
            if let Ok(v) = r {
                assert_ne!(v, data);
            }
        }
    }

    #[test]
    fn corrupt_input_reports_entropy_stage() {
        assert!(matches!(
            huffman_decode(&[]),
            Err(CodecError::Entropy { .. })
        ));
        // A giant claimed alphabet is rejected before any allocation.
        let mut bytes = Vec::new();
        write_uvarint(&mut bytes, 10); // n_symbols
        write_uvarint(&mut bytes, 1 << 40); // absurd alphabet
        assert_eq!(
            huffman_decode(&bytes),
            Err(CodecError::Entropy {
                reason: "alphabet too large"
            })
        );
    }

    #[test]
    fn corrupt_length_table_is_rejected_not_panicking() {
        // Length byte beyond MAX_CODE_LEN: previously a debug shift-overflow
        // panic in table construction, now a typed rejection.
        let mut bytes = Vec::new();
        write_uvarint(&mut bytes, 1); // n_symbols
        write_uvarint(&mut bytes, 2); // alphabet
        write_uvarint(&mut bytes, 2); // run
        bytes.push(200); // absurd code length
        write_uvarint(&mut bytes, 0); // payload len
        assert_eq!(
            huffman_decode(&bytes),
            Err(CodecError::Entropy {
                reason: "code length exceeds limit"
            })
        );
        assert_eq!(huffman_decode_reference(&bytes), huffman_decode(&bytes));

        // Kraft-violating table (three symbols of length 1): the code space
        // is over-subscribed, so the canonical construction is meaningless —
        // typed rejection instead of garbage symbols.
        let mut bytes = Vec::new();
        write_uvarint(&mut bytes, 1); // n_symbols
        write_uvarint(&mut bytes, 3); // alphabet
        write_uvarint(&mut bytes, 3); // run
        bytes.push(1); // three 1-bit codes
        write_uvarint(&mut bytes, 1); // payload len
        bytes.push(0);
        assert_eq!(
            huffman_decode(&bytes),
            Err(CodecError::Entropy {
                reason: "code lengths violate Kraft inequality"
            })
        );
        assert_eq!(huffman_decode_reference(&bytes), huffman_decode(&bytes));
    }

    #[test]
    fn fibonacci_freqs_stress_depth() {
        // Fibonacci frequencies create maximally skewed (deep) trees.
        let mut data = Vec::new();
        let (mut a, mut b) = (1u64, 1u64);
        for sym in 0..40u32 {
            for _ in 0..a.min(10_000) {
                data.push(sym);
            }
            let c = a + b;
            a = b;
            b = c;
        }
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc).unwrap(), data);
    }

    #[test]
    fn lengths_satisfy_kraft() {
        let pairs: Vec<(u32, u64)> = (1..=64u64).map(|i| (i as u32 - 1, i * i * i)).collect();
        let lengths = build_lengths(&pairs);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-12, "kraft = {kraft}");
    }

    #[test]
    fn table_and_reference_paths_agree() {
        // Deep trees force the spill path; peaked ones stay in the table.
        let cases: Vec<Vec<u32>> = vec![
            Vec::new(),
            vec![5; 17],
            (0..4096u32).map(|i| i % 256).collect(),
            (0..10_000u32)
                .map(|i| if i % 11 == 0 { i % 90 } else { 0 })
                .collect(),
            {
                let mut v = Vec::new();
                let (mut a, mut b) = (1u64, 1u64);
                for sym in 0..40u32 {
                    for _ in 0..a.min(5_000) {
                        v.push(sym);
                    }
                    let c = a + b;
                    a = b;
                    b = c;
                }
                v
            },
        ];
        for data in cases {
            let fast = huffman_encode(&data);
            let slow = huffman_encode_reference(&data);
            assert_eq!(fast, slow, "encoders diverged ({} syms)", data.len());
            assert_eq!(
                huffman_decode(&fast).unwrap(),
                huffman_decode_reference(&fast).unwrap(),
                "decoders diverged ({} syms)",
                data.len()
            );
        }
    }

    #[test]
    fn long_codes_spill_past_primary_table() {
        // Fibonacci frequencies push max code length well past TABLE_BITS;
        // decode must route those through the canonical walk.
        let mut pairs = Vec::new();
        let (mut a, mut b) = (1u64, 1u64);
        for sym in 0..40u32 {
            pairs.push((sym, a));
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = build_lengths(&pairs);
        assert!(
            *lengths.iter().max().unwrap() > TABLE_BITS as u8,
            "test needs codes longer than the primary table"
        );
        let data: Vec<u32> = (0..40u32).flat_map(|s| std::iter::repeat_n(s, 3)).collect();
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc).unwrap(), data);
    }
}
