//! Bit-granular writer/reader over a byte buffer.
//!
//! Bits are packed LSB-first within each byte, which makes `write_bits` /
//! `read_bits` of up to 64 bits simple shifts. ZFP's bit-plane coder and the
//! Huffman coder both sit on top of this.

/// Append-only bit sink.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the last byte of `buf` (0 ⇒ byte boundary).
    used: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with reserved capacity (in bytes).
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            buf: Vec::with_capacity(bytes),
            used: 0,
        }
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.buf.push(0);
        }
        if bit {
            let last = self.buf.len() - 1;
            self.buf[last] |= 1 << self.used;
        }
        self.used = (self.used + 1) & 7;
    }

    /// Writes the low `n` bits of `value`, LSB first. `n ≤ 64`.
    #[inline]
    pub fn write_bits(&mut self, mut value: u64, mut n: u32) {
        debug_assert!(n <= 64);
        if n < 64 {
            value &= (1u64 << n) - 1;
        }
        while n > 0 {
            if self.used == 0 {
                self.buf.push(0);
            }
            let free = 8 - self.used;
            let take = free.min(n);
            let last = self.buf.len() - 1;
            self.buf[last] |= ((value & ((1u64 << take) - 1)) as u8) << self.used;
            value >>= take;
            self.used = (self.used + take) & 7;
            n -= take;
        }
    }

    /// Number of bits written so far.
    #[inline]
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.used as usize
        }
    }

    /// Finishes the stream, returning the packed bytes (final partial byte is
    /// zero-padded).
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Reader over bits produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize, // absolute bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Reads one bit. Returns `false` past the end (zero padding semantics,
    /// matching ZFP's stream behaviour).
    #[inline]
    pub fn read_bit(&mut self) -> bool {
        let byte = self.pos >> 3;
        let bit = self.pos & 7;
        self.pos += 1;
        if byte >= self.buf.len() {
            return false;
        }
        (self.buf[byte] >> bit) & 1 == 1
    }

    /// Reads `n ≤ 64` bits, LSB first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        let mut out = 0u64;
        let mut got = 0u32;
        while got < n {
            let byte = self.pos >> 3;
            if byte >= self.buf.len() {
                self.pos += (n - got) as usize;
                break;
            }
            let bit = (self.pos & 7) as u32;
            let avail = 8 - bit;
            let take = avail.min(n - got);
            let chunk = ((self.buf[byte] >> bit) as u64) & ((1u64 << take) - 1);
            out |= chunk << got;
            got += take;
            self.pos += take as usize;
        }
        out
    }

    /// Current bit position.
    #[inline]
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Remaining readable bits.
    #[inline]
    pub fn remaining(&self) -> usize {
        (self.buf.len() * 8).saturating_sub(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let pattern = [true, false, true, true, false, false, true, false, true];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), b);
        }
    }

    #[test]
    fn multi_bit_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0xDEAD_BEEF, 32);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 1);
        w.write_bits(0x3FF, 10);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4), 0b1011);
        assert_eq!(r.read_bits(32), 0xDEAD_BEEF);
        assert_eq!(r.read_bits(64), u64::MAX);
        assert_eq!(r.read_bits(1), 0);
        assert_eq!(r.read_bits(10), 0x3FF);
    }

    #[test]
    fn reading_past_end_yields_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit());
        // 7 padding zeros then synthetic zeros.
        for _ in 0..20 {
            assert!(!r.read_bit());
        }
    }

    #[test]
    fn write_bits_masks_high_bits() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 3); // only 0b111 should land
        w.write_bits(0, 5);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0000_0111]);
    }

    #[test]
    fn interleaved_sizes() {
        let mut w = BitWriter::new();
        let mut expected = Vec::new();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 1..=64u32 {
            x = x.rotate_left(7).wrapping_mul(0x2545_F491_4F6C_DD1D);
            let v = if i == 64 { x } else { x & ((1 << i) - 1) };
            expected.push((v, i));
            w.write_bits(v, i);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (v, i) in expected {
            assert_eq!(r.read_bits(i), v, "width {i}");
        }
    }
}
