//! Bit-granular writer/reader over a byte buffer.
//!
//! Bits are packed LSB-first within each byte, which makes `write_bits` /
//! `read_bits` of up to 64 bits simple shifts. ZFP's bit-plane coder and the
//! Huffman coder both sit on top of this.
//!
//! Both directions run word-at-a-time: the writer batches bits in a 64-bit
//! accumulator and flushes whole words, the reader refills a 64-bit
//! accumulator from the buffer (eight bytes per refill on the interior) so
//! `write_bits`/`read_bits` are one shift+mask plus a rare refill branch.
//! The reader additionally exposes [`BitReader::peek_bits`] /
//! [`BitReader::consume`], the primitive pair table-driven entropy decoders
//! are built on, and both ends have byte-aligned bulk fast paths
//! ([`BitWriter::write_bytes`], [`BitReader::read_bytes`]).
//!
//! The original byte-at-a-time implementation is preserved in
//! [`mod@reference`] — the differential property tests prove the two produce
//! and consume identical streams, and the hot-path bench reports both so the
//! speedup is measured, not assumed.

/// Append-only bit sink.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    /// Whole flushed bytes.
    buf: Vec<u8>,
    /// Pending bits, LSB-first (bit `i` of `acc` is stream bit
    /// `buf.len()*8 + i`). Bits at positions `>= used` are zero.
    acc: u64,
    /// Valid bit count in `acc`, kept `< 64`.
    used: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with reserved capacity (in bytes).
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            buf: Vec::with_capacity(bytes),
            acc: 0,
            used: 0,
        }
    }

    /// Creates a writer that appends to an existing buffer, starting
    /// byte-aligned after its current contents. [`BitWriter::finish`] returns
    /// the whole buffer (prefix included), and [`BitWriter::bit_len`] counts
    /// the seeded bytes — serializers use this to emit bit payloads directly
    /// behind an already-written header instead of packing into a fresh
    /// buffer and copying.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        BitWriter {
            buf,
            acc: 0,
            used: 0,
        }
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Writes the low `n` bits of `value`, LSB first. `n ≤ 64`.
    #[inline]
    pub fn write_bits(&mut self, mut value: u64, n: u32) {
        debug_assert!(n <= 64);
        if n < 64 {
            value &= (1u64 << n) - 1;
        }
        self.acc |= value << self.used;
        let total = self.used + n;
        if total >= 64 {
            self.buf.extend_from_slice(&self.acc.to_le_bytes());
            self.acc = if self.used == 0 {
                0
            } else {
                value >> (64 - self.used)
            };
            self.used = total - 64;
        } else {
            self.used = total;
        }
    }

    /// Appends whole bytes. On a byte-aligned boundary this is a straight
    /// copy; otherwise it degrades to word-sized `write_bits` calls. The
    /// resulting stream is identical to writing each byte with
    /// `write_bits(b, 8)`.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        if self.used.is_multiple_of(8) {
            let pending = (self.used / 8) as usize;
            for i in 0..pending {
                self.buf.push((self.acc >> (8 * i)) as u8);
            }
            self.acc = 0;
            self.used = 0;
            self.buf.extend_from_slice(bytes);
        } else {
            let mut chunks = bytes.chunks_exact(8);
            for c in &mut chunks {
                self.write_bits(u64::from_le_bytes(c.try_into().unwrap()), 64);
            }
            for &b in chunks.remainder() {
                self.write_bits(b as u64, 8);
            }
        }
    }

    /// Number of bits written so far.
    #[inline]
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.used as usize
    }

    /// Finishes the stream, returning the packed bytes (final partial byte is
    /// zero-padded).
    pub fn finish(mut self) -> Vec<u8> {
        let tail = self.used.div_ceil(8) as usize;
        for i in 0..tail {
            self.buf.push((self.acc >> (8 * i)) as u8);
        }
        self.buf
    }
}

/// Reader over bits produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Next buffer byte to load into `acc`.
    byte_pos: usize,
    /// Loaded-but-unconsumed bits, LSB-first (bit 0 = next stream bit).
    acc: u64,
    /// Valid bit count in `acc`, kept `< 64`.
    acc_bits: u32,
    /// Logical bit position; keeps advancing past the end (zero padding).
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader {
            buf,
            byte_pos: 0,
            acc: 0,
            acc_bits: 0,
            pos: 0,
        }
    }

    /// Tops the accumulator up to at least 56 bits (fewer only near the end
    /// of the buffer). Interior refills load eight bytes in one move.
    #[inline]
    fn refill(&mut self) {
        if self.acc_bits >= 56 {
            return;
        }
        if self.byte_pos + 8 <= self.buf.len() {
            let w = u64::from_le_bytes(
                self.buf[self.byte_pos..self.byte_pos + 8]
                    .try_into()
                    .unwrap(),
            );
            // Bits of `w` shifted past the top of `acc` belong to bytes we
            // do not count as consumed, so nothing is lost.
            self.acc |= w << self.acc_bits;
            let taken = (63 - self.acc_bits) >> 3;
            self.byte_pos += taken as usize;
            self.acc_bits += taken * 8;
        } else {
            while self.acc_bits < 56 && self.byte_pos < self.buf.len() {
                self.acc |= (self.buf[self.byte_pos] as u64) << self.acc_bits;
                self.byte_pos += 1;
                self.acc_bits += 8;
            }
        }
    }

    /// Reads one bit. Returns `false` past the end (zero padding semantics,
    /// matching ZFP's stream behaviour).
    #[inline]
    pub fn read_bit(&mut self) -> bool {
        self.pos += 1;
        if self.acc_bits == 0 {
            self.refill();
            if self.acc_bits == 0 {
                return false;
            }
        }
        let bit = self.acc & 1 == 1;
        self.acc >>= 1;
        self.acc_bits -= 1;
        bit
    }

    /// Reads `n ≤ 64` bits, LSB first. Bits past the end read as zero.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        self.pos += n as usize;
        if n <= self.acc_bits {
            // `acc_bits < 64`, so `n < 64` here and the shifts are in range.
            let out = self.acc & ((1u64 << n) - 1);
            self.acc >>= n;
            self.acc_bits -= n;
            return out;
        }
        self.read_bits_slow(n)
    }

    /// Refilling path of [`Self::read_bits`]: gathers across refills and
    /// zero-pads past the end. `acc_bits < 64` throughout, so every shift is
    /// in range.
    #[cold]
    fn read_bits_slow(&mut self, n: u32) -> u64 {
        let mut out = 0u64;
        let mut got = 0u32;
        while got < n {
            self.refill();
            if self.acc_bits == 0 {
                break; // past the end: remaining bits are zero
            }
            let take = (n - got).min(self.acc_bits);
            out |= (self.acc & ((1u64 << take) - 1)) << got;
            self.acc >>= take;
            self.acc_bits -= take;
            got += take;
        }
        out
    }

    /// Returns the next `n ≤ 56` bits without consuming them, LSB first,
    /// zero-padded past the end. Pair with [`Self::consume`].
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 56);
        self.refill();
        self.acc & ((1u64 << n) - 1)
    }

    /// Advances the stream by `n ≤ 64` bits (typically after
    /// [`Self::peek_bits`]).
    #[inline]
    pub fn consume(&mut self, n: u32) {
        if n <= self.acc_bits {
            self.pos += n as usize;
            self.acc >>= n;
            self.acc_bits -= n;
        } else {
            let _ = self.read_bits(n);
        }
    }

    /// Fills `out` with whole bytes. On a byte-aligned position this drains
    /// the accumulator then block-copies; otherwise it reads byte by byte.
    /// Bytes past the end read as zero, and the position advances either way
    /// (matching [`Self::read_bits`]).
    pub fn read_bytes(&mut self, out: &mut [u8]) {
        let mut i = 0;
        if self.pos.is_multiple_of(8) {
            // Aligned ⇒ the accumulator holds whole bytes.
            while self.acc_bits >= 8 && i < out.len() {
                out[i] = self.acc as u8;
                self.acc >>= 8;
                self.acc_bits -= 8;
                self.pos += 8;
                i += 1;
            }
            if self.acc_bits == 0 && i < out.len() {
                // Word refills may leave uncounted bits parked above
                // `acc_bits`; they alias the bytes at `byte_pos`, which this
                // branch is about to skip — drop them with the skip.
                self.acc = 0;
                let start = self.pos / 8;
                let n = (out.len() - i).min(self.buf.len().saturating_sub(start));
                out[i..i + n].copy_from_slice(&self.buf[start..start + n]);
                out[i + n..].fill(0);
                self.pos += (out.len() - i) * 8;
                self.byte_pos = (start + n).max(self.byte_pos);
                return;
            }
        }
        for b in &mut out[i..] {
            *b = self.read_bits(8) as u8;
        }
    }

    /// Current bit position.
    #[inline]
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Remaining readable bits.
    #[inline]
    pub fn remaining(&self) -> usize {
        (self.buf.len() * 8).saturating_sub(self.pos)
    }
}

/// The pre-overhaul byte-at-a-time bit-IO, kept verbatim.
///
/// These are the *reference* implementations: the differential property
/// tests assert the word-at-a-time structs above produce and consume
/// bit-identical streams, and the `tables hotpath` bench times both so
/// `BENCH_hotpath.json` carries measured before/after throughput.
pub mod reference {
    /// Byte-at-a-time [`super::BitWriter`] (reference implementation).
    #[derive(Debug, Default, Clone)]
    pub struct BitWriter {
        buf: Vec<u8>,
        /// Bits already used in the last byte of `buf` (0 ⇒ byte boundary).
        used: u32,
    }

    impl BitWriter {
        /// Creates an empty writer.
        pub fn new() -> Self {
            Self::default()
        }

        /// Writes a single bit.
        #[inline]
        pub fn write_bit(&mut self, bit: bool) {
            if self.used == 0 {
                self.buf.push(0);
            }
            if bit {
                let last = self.buf.len() - 1;
                self.buf[last] |= 1 << self.used;
            }
            self.used = (self.used + 1) & 7;
        }

        /// Writes the low `n` bits of `value`, LSB first. `n ≤ 64`.
        #[inline]
        pub fn write_bits(&mut self, mut value: u64, mut n: u32) {
            debug_assert!(n <= 64);
            if n < 64 {
                value &= (1u64 << n) - 1;
            }
            while n > 0 {
                if self.used == 0 {
                    self.buf.push(0);
                }
                let free = 8 - self.used;
                let take = free.min(n);
                let last = self.buf.len() - 1;
                self.buf[last] |= ((value & ((1u64 << take) - 1)) as u8) << self.used;
                value >>= take;
                self.used = (self.used + take) & 7;
                n -= take;
            }
        }

        /// Number of bits written so far.
        #[inline]
        pub fn bit_len(&self) -> usize {
            if self.used == 0 {
                self.buf.len() * 8
            } else {
                (self.buf.len() - 1) * 8 + self.used as usize
            }
        }

        /// Finishes the stream, returning the packed bytes.
        pub fn finish(self) -> Vec<u8> {
            self.buf
        }
    }

    /// Byte-at-a-time [`super::BitReader`] (reference implementation).
    #[derive(Debug, Clone)]
    pub struct BitReader<'a> {
        buf: &'a [u8],
        pos: usize, // absolute bit position
    }

    impl<'a> BitReader<'a> {
        /// Creates a reader over `buf`.
        pub fn new(buf: &'a [u8]) -> Self {
            BitReader { buf, pos: 0 }
        }

        /// Reads one bit; `false` past the end.
        #[inline]
        pub fn read_bit(&mut self) -> bool {
            let byte = self.pos >> 3;
            let bit = self.pos & 7;
            self.pos += 1;
            if byte >= self.buf.len() {
                return false;
            }
            (self.buf[byte] >> bit) & 1 == 1
        }

        /// Reads `n ≤ 64` bits, LSB first.
        #[inline]
        pub fn read_bits(&mut self, n: u32) -> u64 {
            debug_assert!(n <= 64);
            let mut out = 0u64;
            let mut got = 0u32;
            while got < n {
                let byte = self.pos >> 3;
                if byte >= self.buf.len() {
                    self.pos += (n - got) as usize;
                    break;
                }
                let bit = (self.pos & 7) as u32;
                let avail = 8 - bit;
                let take = avail.min(n - got);
                let chunk = ((self.buf[byte] >> bit) as u64) & ((1u64 << take) - 1);
                out |= chunk << got;
                got += take;
                self.pos += take as usize;
            }
            out
        }

        /// Current bit position.
        #[inline]
        pub fn bit_pos(&self) -> usize {
            self.pos
        }

        /// Remaining readable bits.
        #[inline]
        pub fn remaining(&self) -> usize {
            (self.buf.len() * 8).saturating_sub(self.pos)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let pattern = [true, false, true, true, false, false, true, false, true];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), b);
        }
    }

    #[test]
    fn multi_bit_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0xDEAD_BEEF, 32);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 1);
        w.write_bits(0x3FF, 10);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4), 0b1011);
        assert_eq!(r.read_bits(32), 0xDEAD_BEEF);
        assert_eq!(r.read_bits(64), u64::MAX);
        assert_eq!(r.read_bits(1), 0);
        assert_eq!(r.read_bits(10), 0x3FF);
    }

    #[test]
    fn reading_past_end_yields_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit());
        // 7 padding zeros then synthetic zeros.
        for _ in 0..20 {
            assert!(!r.read_bit());
        }
    }

    #[test]
    fn write_bits_masks_high_bits() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 3); // only 0b111 should land
        w.write_bits(0, 5);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0000_0111]);
    }

    #[test]
    fn interleaved_sizes() {
        let mut w = BitWriter::new();
        let mut expected = Vec::new();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 1..=64u32 {
            x = x.rotate_left(7).wrapping_mul(0x2545_F491_4F6C_DD1D);
            let v = if i == 64 { x } else { x & ((1 << i) - 1) };
            expected.push((v, i));
            w.write_bits(v, i);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (v, i) in expected {
            assert_eq!(r.read_bits(i), v, "width {i}");
        }
    }

    #[test]
    fn matches_reference_writer_bit_for_bit() {
        let mut fast = BitWriter::new();
        let mut slow = reference::BitWriter::new();
        let mut x: u64 = 0x0123_4567_89AB_CDEF;
        for i in 0..500u32 {
            x = x.rotate_left(11).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let n = 1 + (x % 64) as u32;
            fast.write_bits(x, n);
            slow.write_bits(x, n);
            if i % 7 == 0 {
                fast.write_bit(x & 2 != 0);
                slow.write_bit(x & 2 != 0);
            }
            assert_eq!(fast.bit_len(), slow.bit_len());
        }
        let fb = fast.finish();
        let sb = slow.finish();
        // The reference writer does not pad the tail byte count differently:
        // both zero-pad to the same whole-byte length.
        assert_eq!(fb, sb);
    }

    #[test]
    fn matches_reference_reader_on_every_split() {
        let mut w = BitWriter::new();
        let mut x: u64 = 0xDEAD_BEEF_CAFE_F00D;
        for _ in 0..200 {
            x = x.rotate_left(13).wrapping_mul(0x2545_F491_4F6C_DD1D);
            w.write_bits(x, 1 + (x % 64) as u32);
        }
        let bytes = w.finish();
        for &widths in &[[1u32, 3, 8, 13], [7, 64, 2, 31], [56, 1, 9, 17]] {
            let mut fast = BitReader::new(&bytes);
            let mut slow = reference::BitReader::new(&bytes);
            // Read past the end on purpose: zero-padding must agree too.
            for _ in 0..(bytes.len() * 8 / 20 + 4) {
                for &n in &widths {
                    assert_eq!(fast.read_bits(n), slow.read_bits(n));
                    assert_eq!(fast.bit_pos(), slow.bit_pos());
                    assert_eq!(fast.remaining(), slow.remaining());
                }
            }
        }
    }

    #[test]
    fn peek_consume_equals_read() {
        let mut w = BitWriter::new();
        for i in 0..100u64 {
            w.write_bits(i.wrapping_mul(0x9E37_79B9), 1 + (i % 30) as u32);
        }
        let bytes = w.finish();
        let mut a = BitReader::new(&bytes);
        let mut b = BitReader::new(&bytes);
        for i in 0..400u32 {
            let n = 1 + i % 24;
            let peeked = a.peek_bits(n);
            a.consume(n);
            assert_eq!(peeked, b.read_bits(n), "width {n}");
            assert_eq!(a.bit_pos(), b.bit_pos());
        }
    }

    #[test]
    fn byte_bulk_paths_match_bitwise() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        // Aligned: write_bytes == per-byte write_bits.
        let mut a = BitWriter::new();
        a.write_bits(0xAB, 8);
        a.write_bytes(&payload);
        let mut b = BitWriter::new();
        b.write_bits(0xAB, 8);
        for &x in &payload {
            b.write_bits(x as u64, 8);
        }
        assert_eq!(a.finish(), b.finish());

        // Unaligned: same equivalence through the slow path.
        let mut a = BitWriter::new();
        a.write_bits(0b101, 3);
        a.write_bytes(&payload);
        let mut b = BitWriter::new();
        b.write_bits(0b101, 3);
        for &x in &payload {
            b.write_bits(x as u64, 8);
        }
        let bytes = a.finish();
        assert_eq!(bytes, b.finish());

        // Aligned + unaligned reads, including past the end.
        for skip in [0u32, 3, 8, 11] {
            let mut fast = BitReader::new(&bytes);
            let mut slow = BitReader::new(&bytes);
            fast.consume(skip);
            slow.consume(skip);
            let mut out = vec![0u8; bytes.len() + 4];
            fast.read_bytes(&mut out);
            for &ob in &out {
                assert_eq!(ob, slow.read_bits(8) as u8, "skip {skip}");
            }
            assert_eq!(fast.bit_pos(), slow.bit_pos());
        }
    }

    #[test]
    fn reads_after_mid_buffer_read_bytes_stay_clean() {
        // The block-copy fast path skips bytes the word refill had already
        // parked (uncounted) in the accumulator; a stale accumulator here
        // corrupts every later read.
        let buf: Vec<u8> = (0u8..32).collect();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(8), 0x00);
        let mut mid = [0u8; 10];
        r.read_bytes(&mut mid);
        assert_eq!(mid, [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(r.read_bits(8), 0x0B, "stale accumulator bits leaked");
        assert_eq!(r.read_bits(16), 0x0D0C);
        // And the same through an unaligned tail.
        let mut r = BitReader::new(&buf);
        r.consume(8);
        let mut mid = [0u8; 4];
        r.read_bytes(&mut mid);
        assert_eq!(r.read_bits(4), 0x5);
        assert_eq!(r.read_bits(8), 0x60);
    }
}
