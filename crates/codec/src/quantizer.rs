//! Error-controlled linear quantizer (the SZ family's quantization stage).
//!
//! Given a prediction `pred` for a true value `actual`, the quantizer emits an
//! integer code such that the reconstructed value differs from `actual` by at
//! most the error bound `eb`. Code `0` is reserved for *unpredictable* points
//! whose residual overflows the code range; their original value is stored
//! verbatim in a side channel, so the bound holds unconditionally.

/// `x.round() as i64` — round half away from zero — for every input
/// (including NaN and ±∞, which saturate exactly like the `as` cast does),
/// without calling out to libm.
///
/// The baseline x86-64 target (SSE2) lowers `f64::round` to a library call,
/// which was the single largest per-point cost of the quantizer hot loop.
/// This version is an add plus the (intrinsic) int casts behind two guards
/// that *never fire on real data*, so the branch predictor retires them for
/// free regardless of the residual distribution — a select on the
/// data-dependent `|x| < 0.5` would mispredict on every other point of a
/// mixed-code stream.
///
/// Exactness of `trunc(x ± 0.5)` as round-half-away: for `0.5 ≤ |x| < 2^52`
/// the addition either is exact or correctly rounds across an integer
/// boundary only when the true sum reaches it (above 2^51 the spacing makes
/// it exact outright); for `|x| < 0.5` the truncation gives 0 for every
/// value except `nextbelow(0.5)`, whose sum ties to 1.0 — that lone
/// counterexample gets its own guard. At `|x| ≥ 2^52` every float is
/// already integral. NaN falls through both guards and casts to 0, matching
/// `NaN.round() as i64`.
#[inline]
pub fn round_ties_away_i64(x: f64) -> i64 {
    let a = x.abs();
    if a >= 4_503_599_627_370_496.0 {
        // |x| ≥ 2^52: already integral (±∞ saturates like the cast does).
        return x as i64;
    }
    if a == 0.499_999_999_999_999_94 {
        // nextbelow(0.5): x + 0.5 ties to 1.0, the one value trunc gets wrong.
        return 0;
    }
    (x + f64::copysign(0.5, x)) as i64
}

/// Outcome of quantizing one value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantOutcome {
    /// Residual fit in the code range: `code ≥ 1`, reconstruction satisfies
    /// `|recon − actual| ≤ eb`.
    Predicted {
        /// Entropy-coded symbol (`radius + q`, always ≥ 1 here).
        code: u32,
        /// Value the decompressor will reproduce.
        recon: f64,
    },
    /// Residual overflowed; caller must store the exact value out of band.
    Unpredictable,
}

/// Linear quantizer with absolute error bound `eb` and code radius `radius`.
#[derive(Debug, Clone, Copy)]
pub struct LinearQuantizer {
    eb: f64,
    radius: i64,
}

impl LinearQuantizer {
    /// Default code radius: codes span `[1, 2·radius]`, giving 16-bit-ish
    /// symbols that keep Huffman tables small (matches SZ's default 32768).
    pub const DEFAULT_RADIUS: i64 = 32_768;

    /// Creates a quantizer with the default radius.
    ///
    /// # Panics
    /// Panics if `eb` is not strictly positive and finite.
    pub fn new(eb: f64) -> Self {
        Self::with_radius(eb, Self::DEFAULT_RADIUS)
    }

    /// Creates a quantizer with an explicit radius.
    pub fn with_radius(eb: f64, radius: i64) -> Self {
        assert!(
            eb.is_finite() && eb > 0.0,
            "error bound must be positive, got {eb}"
        );
        assert!(radius > 1, "radius must exceed 1");
        LinearQuantizer { eb, radius }
    }

    /// The absolute error bound.
    #[inline]
    pub fn eb(&self) -> f64 {
        self.eb
    }

    /// Number of distinct entropy symbols (`2·radius`), i.e. the alphabet
    /// upper bound for the Huffman stage (code 0 = unpredictable included).
    #[inline]
    pub fn alphabet(&self) -> usize {
        (2 * self.radius) as usize
    }

    /// The code radius (codes are `radius + q`), needed by kernels that
    /// reproduce the quantization arithmetic lane-wise.
    #[inline]
    pub fn radius(&self) -> i64 {
        self.radius
    }

    /// Quantizes `actual` against `pred`.
    ///
    /// Outcome-identical to the historical
    /// `let q = (diff / (2·eb)).round(); q.abs() ≥ radius−1 || !q.is_finite()`
    /// formulation: with ties rounding away from zero,
    /// `round(t).abs() ≥ L ⇔ |t| ≥ L − 0.5`, and NaN/±∞ fail the negated
    /// comparison exactly like the `is_finite` test did. The reformulation
    /// exists so the hot loop needs no libm `round` call
    /// ([`round_ties_away_i64`]).
    #[inline]
    pub fn quantize(&self, actual: f64, pred: f64) -> QuantOutcome {
        let diff = actual - pred;
        let t = diff / (2.0 * self.eb);
        let limit = (self.radius - 1) as f64;
        // The negated comparison is load-bearing: NaN must fail it and land
        // here, exactly as `!q.is_finite()` used to send it.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(t.abs() < limit - 0.5) {
            return QuantOutcome::Unpredictable;
        }
        let qi = round_ties_away_i64(t);
        let recon = pred + 2.0 * self.eb * qi as f64;
        // Floating-point rounding can push the reconstruction just past the
        // bound; SZ handles this by demoting to unpredictable.
        if (recon - actual).abs() > self.eb {
            return QuantOutcome::Unpredictable;
        }
        QuantOutcome::Predicted {
            code: (qi + self.radius) as u32,
            recon,
        }
    }

    /// Recovers the reconstruction for a non-zero `code` produced by
    /// [`Self::quantize`].
    #[inline]
    pub fn recover(&self, code: u32, pred: f64) -> f64 {
        debug_assert!(code >= 1);
        let q = code as i64 - self.radius;
        pred + 2.0 * self.eb * q as f64
    }

    /// The reserved out-of-band code.
    pub const UNPREDICTABLE: u32 = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_error_bound() {
        let q = LinearQuantizer::new(0.01);
        for i in 0..1000 {
            let actual = (i as f64 * 0.137).sin() * 5.0;
            let pred = actual + (i as f64 * 0.71).cos() * 0.5;
            match q.quantize(actual, pred) {
                QuantOutcome::Predicted { code, recon } => {
                    assert!((recon - actual).abs() <= 0.01 + 1e-15);
                    assert_eq!(q.recover(code, pred), recon);
                }
                QuantOutcome::Unpredictable => panic!("residual 0.5 should fit"),
            }
        }
    }

    #[test]
    fn perfect_prediction_gives_center_code() {
        let q = LinearQuantizer::new(1.0);
        match q.quantize(5.0, 5.0) {
            QuantOutcome::Predicted { code, recon } => {
                assert_eq!(code as i64, LinearQuantizer::DEFAULT_RADIUS);
                assert_eq!(recon, 5.0);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn overflow_is_unpredictable() {
        let q = LinearQuantizer::with_radius(1e-6, 16);
        assert_eq!(q.quantize(100.0, 0.0), QuantOutcome::Unpredictable);
    }

    #[test]
    fn nan_and_inf_residuals_are_unpredictable() {
        let q = LinearQuantizer::new(1e-3);
        assert_eq!(q.quantize(f64::NAN, 0.0), QuantOutcome::Unpredictable);
        assert_eq!(q.quantize(f64::INFINITY, 0.0), QuantOutcome::Unpredictable);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_eb() {
        LinearQuantizer::new(0.0);
    }

    #[test]
    fn code_symmetry() {
        let q = LinearQuantizer::new(0.5);
        let up = q.quantize(3.0, 0.0);
        let down = q.quantize(-3.0, 0.0);
        match (up, down) {
            (
                QuantOutcome::Predicted { code: cu, .. },
                QuantOutcome::Predicted { code: cd, .. },
            ) => {
                let r = LinearQuantizer::DEFAULT_RADIUS;
                assert_eq!(cu as i64 - r, -(cd as i64 - r));
            }
            _ => panic!(),
        }
    }
}
