//! The codec boundary: one trait every error-bounded backend implements.
//!
//! The paper (§II-A, §IV) treats the compressor as a swappable stage — SZ3,
//! SZ2/AMRIC-style and ZFP/TAC-style backends are all evaluated against the
//! same multi-resolution arrangement. [`Codec`] is that boundary: a backend
//! turns a [`Field3`] into a self-describing byte stream under an absolute
//! error bound, and back. The multi-resolution engine (`hqmr-core::mrc`)
//! dispatches through `&dyn Codec`, records the backend's [`Codec::id`] in
//! its container, and routes decompression on the stored id — so adding a
//! backend is a one-file change that implements this trait.
//!
//! Every stream embeds its codec id in a `CDID` section (see
//! [`push_stream_id`] / [`check_stream_id`]), which turns "fed SZ2 bytes to
//! the SZ3 decoder" from a confusing missing-section failure into the typed
//! [`CodecError::WrongStreamId`].

use crate::container::{tag, Container, ContainerError};
use hqmr_grid::{Dims3, Field3};

/// Section tag carrying a stream's codec id.
pub const TAG_STREAM_ID: u32 = tag(b"CDID");

/// Errors shared by every codec backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Container-level failure (magic, CRC, truncation, missing section).
    Container(ContainerError),
    /// Structurally invalid payload for this codec.
    Malformed(&'static str),
    /// The entropy stage (Huffman block) rejected its input — distinguishes
    /// "the quantization-code payload is corrupt" from container-level or
    /// header failures, so a store's `CorruptChunk` diagnostics name the
    /// failing stage.
    Entropy {
        /// What the entropy decoder tripped over.
        reason: &'static str,
    },
    /// The stream names a codec nobody registered.
    UnknownCodec(u32),
    /// The stream belongs to a different codec.
    WrongStreamId {
        /// Id of the codec asked to decode.
        expected: u32,
        /// Id recorded in the stream.
        found: u32,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Container(e) => write!(f, "container: {e}"),
            CodecError::Malformed(m) => write!(f, "malformed stream: {m}"),
            CodecError::Entropy { reason } => write!(f, "entropy stage: {reason}"),
            CodecError::UnknownCodec(id) => {
                write!(
                    f,
                    "unknown codec id {:?}",
                    id.to_le_bytes().map(|b| b as char)
                )
            }
            CodecError::WrongStreamId { expected, found } => write!(
                f,
                "stream belongs to codec {:?}, not {:?}",
                found.to_le_bytes().map(|b| b as char),
                expected.to_le_bytes().map(|b| b as char)
            ),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<ContainerError> for CodecError {
    fn from(e: ContainerError) -> Self {
        CodecError::Container(e)
    }
}

/// An error-bounded compressor backend.
///
/// Contract:
/// * `decompress(compress(f, eb))` reconstructs a field of the same dims with
///   `|x − x̂|∞ ≤ eb` for every finite input value;
/// * the stream is self-describing — `decompress` needs no external
///   configuration;
/// * the stream carries [`Codec::id`] (via [`push_stream_id`]) and
///   `decompress` rejects foreign streams with
///   [`CodecError::WrongStreamId`] — never a panic.
///
/// The trait is dyn-safe: the MR engine dispatches through `&dyn Codec`.
pub trait Codec: Send + Sync {
    /// Four-byte stream id (e.g. `tag(b"SZ3S")`), unique per backend.
    fn id(&self) -> u32;

    /// Human-readable backend name (stable; used in reports and benches).
    fn name(&self) -> &'static str;

    /// Compresses `field` under the absolute error bound `eb`.
    fn compress(&self, field: &Field3, eb: f64) -> Vec<u8>;

    /// Decompresses a stream produced by this backend's [`Codec::compress`].
    fn decompress(&self, bytes: &[u8]) -> Result<Field3, CodecError>;

    /// Scratch-buffer variant of [`Codec::compress`]: clears `out` and
    /// writes the stream into it, so per-chunk writers reuse one allocation
    /// across chunks. The default delegates to the allocating version;
    /// backends override it to serialize straight into `out`.
    fn compress_into(&self, field: &Field3, eb: f64, out: &mut Vec<u8>) {
        out.clear();
        let bytes = self.compress(field, eb);
        out.extend_from_slice(&bytes);
    }

    /// Scratch-buffer variant of [`Codec::decompress`]: reshapes `out`
    /// (reusing its allocation) and decodes into it, so per-chunk readers —
    /// the store's ROI/progressive queries above all — reuse one field
    /// across chunks. The default delegates to the allocating version;
    /// backends override it to decode in place.
    fn decompress_into(&self, bytes: &[u8], out: &mut Field3) -> Result<(), CodecError> {
        *out = self.decompress(bytes)?;
        Ok(())
    }
}

/// Records `id` in `c` so decoders can verify stream ownership.
pub fn push_stream_id(c: &mut Container, id: u32) {
    c.push(TAG_STREAM_ID, id.to_le_bytes().to_vec());
}

/// Verifies that the container's recorded codec id is `expected`.
pub fn check_stream_id(c: &Container, expected: u32) -> Result<(), CodecError> {
    let bytes = c
        .get(TAG_STREAM_ID)
        .ok_or(CodecError::Malformed("missing stream id"))?;
    let found = u32::from_le_bytes(
        bytes
            .try_into()
            .map_err(|_| CodecError::Malformed("stream id width"))?,
    );
    if found != expected {
        return Err(CodecError::WrongStreamId { expected, found });
    }
    Ok(())
}

/// The passthrough backend: stores raw little-endian `f32`s, no loss, no
/// reduction. Exists to (a) debug arrangement/layout issues with the codec
/// stage taken out of the equation, and (b) demonstrate that a new backend is
/// exactly one `impl Codec` — it is registered with the MR engine like the
/// real compressors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullCodec;

/// [`NullCodec`]'s stream id.
pub const NULL_CODEC_ID: u32 = tag(b"RAWS");

const TAG_RAW_HEAD: u32 = tag(b"RWHD");
const TAG_RAW_DATA: u32 = tag(b"RWDT");

impl Codec for NullCodec {
    fn id(&self) -> u32 {
        NULL_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "null"
    }

    fn compress(&self, field: &Field3, eb: f64) -> Vec<u8> {
        let mut out = Vec::new();
        self.compress_into(field, eb, &mut out);
        out
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Field3, CodecError> {
        let mut out = Field3::zeros(Dims3::new(0, 0, 0));
        self.decompress_into(bytes, &mut out)?;
        Ok(out)
    }

    fn compress_into(&self, field: &Field3, _eb: f64, out: &mut Vec<u8>) {
        out.clear();
        let dims = field.dims();
        let mut c = Container::new();
        push_stream_id(&mut c, NULL_CODEC_ID);
        let mut head = Vec::new();
        crate::varint::write_uvarint(&mut head, dims.nx as u64);
        crate::varint::write_uvarint(&mut head, dims.ny as u64);
        crate::varint::write_uvarint(&mut head, dims.nz as u64);
        c.push(TAG_RAW_HEAD, head);
        let mut data = Vec::with_capacity(field.len() * 4);
        for v in field.data() {
            data.extend_from_slice(&v.to_le_bytes());
        }
        c.push(TAG_RAW_DATA, data);
        c.write_into(out);
    }

    fn decompress_into(&self, bytes: &[u8], out: &mut Field3) -> Result<(), CodecError> {
        let c = Container::from_bytes(bytes)?;
        check_stream_id(&c, NULL_CODEC_ID)?;
        let head = c.require(TAG_RAW_HEAD)?;
        let mut pos = 0usize;
        let mut rd = || {
            crate::varint::read_uvarint(head, &mut pos)
                .map(|v| v as usize)
                .ok_or(CodecError::Malformed("dims"))
        };
        let dims = Dims3::new(rd()?, rd()?, rd()?);
        let data = c.require(TAG_RAW_DATA)?;
        if data.len() != dims.len() * 4 {
            return Err(CodecError::Malformed("payload size"));
        }
        out.reshape(dims, 0.0);
        for (cell, b) in out.data_mut().iter_mut().zip(data.chunks_exact(4)) {
            *cell = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy() -> Field3 {
        Field3::from_fn(Dims3::new(5, 6, 7), |x, y, z| {
            (x as f32 * 0.3).sin() + (y as f32 * 0.2).cos() + z as f32 * 0.1
        })
    }

    #[test]
    fn null_codec_is_lossless() {
        let f = wavy();
        let bytes = NullCodec.compress(&f, 1e-3);
        let g = NullCodec.decompress(&bytes).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn stream_id_is_checked() {
        let mut c = Container::new();
        push_stream_id(&mut c, tag(b"AAAA"));
        assert!(check_stream_id(&c, tag(b"AAAA")).is_ok());
        assert_eq!(
            check_stream_id(&c, tag(b"BBBB")),
            Err(CodecError::WrongStreamId {
                expected: tag(b"BBBB"),
                found: tag(b"AAAA")
            })
        );
        let empty = Container::new();
        assert_eq!(
            check_stream_id(&empty, tag(b"BBBB")),
            Err(CodecError::Malformed("missing stream id"))
        );
    }

    #[test]
    fn null_codec_rejects_foreign_and_corrupt_streams() {
        let f = wavy();
        let bytes = NullCodec.compress(&f, 0.0);
        assert!(matches!(
            NullCodec.decompress(&bytes[..bytes.len() / 2]),
            Err(CodecError::Container(_))
        ));
        let mut foreign = Container::new();
        push_stream_id(&mut foreign, tag(b"SZ3S"));
        assert!(matches!(
            NullCodec.decompress(&foreign.to_bytes()),
            Err(CodecError::WrongStreamId { .. })
        ));
    }

    #[test]
    fn codec_is_dyn_safe() {
        let c: &dyn Codec = &NullCodec;
        let f = wavy();
        let g = c.decompress(&c.compress(&f, 0.0)).unwrap();
        assert_eq!(c.name(), "null");
        assert_eq!(f, g);
    }
}
