//! LEB128 unsigned varints and zigzag mapping for signed quantities.

/// Appends `value` to `out` as a LEB128 varint.
pub fn write_uvarint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `buf` starting at `*pos`, advancing `*pos`.
///
/// Returns `None` on truncated input or overlong (> 10 byte) encodings.
pub fn read_uvarint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflow
        }
        value |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Maps a signed integer to an unsigned one with small-magnitude values small.
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            write_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_uvarint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_truncation_detected() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [
            -1i64,
            0,
            1,
            -2,
            2,
            i64::MIN,
            i64::MAX,
            -1_000_000,
            1_000_000,
        ] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }
}
