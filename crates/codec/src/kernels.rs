//! Runtime kernel dispatch: SIMD level selection and parallelism toggles.
//!
//! The compressor crates carry hand-vectorized `core::arch` variants of their
//! stride-1 interior kernels (SSE2 baseline on x86-64, AVX2 when the CPU has
//! it) next to the scalar code, and pick an arm per call through
//! [`simd_level`]. Every arm produces bit-identical streams — the scalar path
//! is the oracle, the way `engine::reference` pins the algorithmic rewrites —
//! so the choice is pure throughput, never format.
//!
//! Two override channels exist so CI and the benches can pin an arm:
//!
//! * `HQMR_FORCE_SCALAR=1` in the environment forces the scalar arm for the
//!   whole process (the forced-scalar CI job runs the differential suites
//!   under it).
//! * [`set_force_scalar`] flips the same switch at runtime, letting
//!   `tables hotpath` time the SIMD and scalar arms in one process.
//!
//! The intra-chunk tile parallelism of the decode path (lines of an SZ3
//! sweep fanned across the rayon shim) has the same two channels:
//! `HQMR_TILE_PARALLEL=0` / [`set_tile_parallel`]. Tiling never changes
//! bytes either — it partitions writes over disjoint output positions.

use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set arm a kernel call should take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar code — the oracle arm, and the only arm off x86-64.
    Scalar,
    /// 128-bit SSE2 — the x86-64 baseline, always present there.
    Sse2,
    /// 256-bit AVX2 — runtime-detected.
    Avx2,
}

const UNSET: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

/// Tri-state flags: `UNSET` until first read (which consults the
/// environment), then pinned to `ON`/`OFF` unless a setter rewrites them.
static FORCE_SCALAR: AtomicU8 = AtomicU8::new(UNSET);
static TILE_PARALLEL: AtomicU8 = AtomicU8::new(UNSET);

fn read_flag(flag: &AtomicU8, env: &str, default: bool) -> bool {
    match flag.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => {
            let on = match std::env::var(env) {
                Ok(v) => !(v.is_empty() || v == "0"),
                Err(_) => default,
            };
            flag.store(if on { ON } else { OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// True when the scalar arm is pinned (`HQMR_FORCE_SCALAR=1` or
/// [`set_force_scalar`]).
pub fn force_scalar() -> bool {
    read_flag(&FORCE_SCALAR, "HQMR_FORCE_SCALAR", false)
}

/// Pins (or unpins) the scalar arm for the whole process, overriding the
/// environment. The benches use this to time both arms in one run.
pub fn set_force_scalar(on: bool) {
    FORCE_SCALAR.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// True when decode paths may fan intra-chunk tiles (SZ3 sweep lines, store
/// slab assembly) across the rayon shim. Default on; `HQMR_TILE_PARALLEL=0`
/// or [`set_tile_parallel`] turn it off (the benches' serial baseline arm).
pub fn tile_parallel() -> bool {
    read_flag(&TILE_PARALLEL, "HQMR_TILE_PARALLEL", true)
}

/// Enables/disables intra-chunk tile parallelism at runtime.
pub fn set_tile_parallel(on: bool) {
    TILE_PARALLEL.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

#[cfg(target_arch = "x86_64")]
fn detect() -> SimdLevel {
    if std::arch::is_x86_feature_detected!("avx2") {
        SimdLevel::Avx2
    } else {
        // SSE2 is part of the x86-64 baseline; no detection needed.
        SimdLevel::Sse2
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> SimdLevel {
    SimdLevel::Scalar
}

/// The arm kernels should dispatch to for this call.
///
/// Detection runs once per process; the force-scalar override is consulted
/// on every call (it is a relaxed atomic load — nanoseconds next to any
/// kernel body).
pub fn simd_level() -> SimdLevel {
    use std::sync::OnceLock;
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    if force_scalar() {
        return SimdLevel::Scalar;
    }
    *DETECTED.get_or_init(detect)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_round_trips() {
        // Whatever the environment says, the runtime setter wins.
        set_force_scalar(true);
        assert_eq!(simd_level(), SimdLevel::Scalar);
        assert!(force_scalar());
        set_force_scalar(false);
        assert!(!force_scalar());
        #[cfg(target_arch = "x86_64")]
        assert!(simd_level() >= SimdLevel::Sse2);
    }

    #[test]
    fn tile_parallel_round_trips() {
        set_tile_parallel(false);
        assert!(!tile_parallel());
        set_tile_parallel(true);
        assert!(tile_parallel());
    }
}
