//! Coding substrate and the codec boundary shared by the three compressors.
//!
//! SZ2, SZ3 and ZFP (the paper's three targets, §II-A) all bottom out in the
//! same machinery: a bit-granular stream, an entropy stage for quantization
//! codes (Huffman in SZ; raw bit planes in ZFP), and a framed container so a
//! decompressor can recover configuration, shapes and side channels. None of
//! that exists in the approved crate set, so it is implemented here.
//!
//! On top of the substrate sits the [`Codec`] trait — the workspace's unified
//! backend interface. Each compressor crate implements it ([`module@codec`]
//! documents the contract and the recipe for adding a backend), every stream
//! carries a self-describing codec id, and failures surface through the
//! shared [`CodecError`].

pub mod bitio;
pub mod codec;
pub mod container;
pub mod huffman;
pub mod quantizer;
pub mod rle;
pub mod varint;

pub use bitio::{BitReader, BitWriter};
pub use codec::{
    check_stream_id, push_stream_id, Codec, CodecError, NullCodec, NULL_CODEC_ID, TAG_STREAM_ID,
};
pub use container::{tag, Container, ContainerError, Section};
pub use huffman::{
    huffman_decode, huffman_decode_reference, huffman_encode, huffman_encode_reference,
};
pub use quantizer::{round_ties_away_i64, LinearQuantizer, QuantOutcome};
pub use rle::{pack_maybe_rle, rle_decode, rle_encode, unpack_maybe_rle};
pub use varint::{read_uvarint, write_uvarint, zigzag_decode, zigzag_encode};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to checksum
/// container sections.
pub fn crc32(bytes: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    // Small table built on the fly; sections are checksummed once per
    // (de)compression so a static table buys nothing measurable.
    let mut table = [0u32; 256];
    for (i, e) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
        }
        *e = c;
    }
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: "123456789" -> 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_detects_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
