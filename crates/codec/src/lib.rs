//! Coding substrate and the codec boundary shared by the three compressors.
//!
//! SZ2, SZ3 and ZFP (the paper's three targets, §II-A) all bottom out in the
//! same machinery: a bit-granular stream, an entropy stage for quantization
//! codes (Huffman in SZ; raw bit planes in ZFP), and a framed container so a
//! decompressor can recover configuration, shapes and side channels. None of
//! that exists in the approved crate set, so it is implemented here.
//!
//! On top of the substrate sits the [`Codec`] trait — the workspace's unified
//! backend interface. Each compressor crate implements it ([`module@codec`]
//! documents the contract and the recipe for adding a backend), every stream
//! carries a self-describing codec id, and failures surface through the
//! shared [`CodecError`].

pub mod bitio;
pub mod codec;
pub mod container;
pub mod huffman;
pub mod kernels;
pub mod quantizer;
pub mod rle;
pub mod varint;

pub use bitio::{BitReader, BitWriter};
pub use codec::{
    check_stream_id, push_stream_id, Codec, CodecError, NullCodec, NULL_CODEC_ID, TAG_STREAM_ID,
};
pub use container::{tag, Container, ContainerError, Section};
pub use huffman::{
    huffman_decode, huffman_decode_reference, huffman_encode, huffman_encode_packed,
    huffman_encode_reference,
};
pub use quantizer::{round_ties_away_i64, LinearQuantizer, QuantOutcome};
pub use rle::{pack_maybe_rle, rle_decode, rle_encode, unpack_maybe_rle};
pub use varint::{read_uvarint, write_uvarint, zigzag_decode, zigzag_encode};

/// Slicing-by-8 lookup tables for [`crc32`], built at compile time.
/// `CRC_TABLES[j][b]` is the CRC of byte `b` followed by `j` zero bytes.
static CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 8] {
    const POLY: u32 = 0xEDB8_8320;
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to checksum
/// container sections.
///
/// Slicing-by-8: eight bytes advance per step through eight independent
/// table lookups, so the carried dependency is one XOR tree per eight bytes
/// instead of one load-XOR chain per byte. Same polynomial, same values as
/// the classic per-byte loop (which survives on the remainder tail).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ crc;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: "123456789" -> 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_sliced_matches_per_byte() {
        // The slicing-by-8 loop must agree with the classic byte-at-a-time
        // formulation on every remainder length.
        let per_byte = |bytes: &[u8]| -> u32 {
            let mut crc = !0u32;
            for &b in bytes {
                crc = CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
            }
            !crc
        };
        let mut buf = Vec::new();
        let mut state = 0x1234_5678u32;
        for len in 0..64usize {
            buf.clear();
            for _ in 0..len {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                buf.push((state >> 24) as u8);
            }
            assert_eq!(crc32(&buf), per_byte(&buf), "len {len}");
        }
    }

    #[test]
    fn crc32_detects_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
