//! Micro-benchmarks for the codec hot path: bit-IO, Huffman, RLE, varint.
//!
//! Every bit-IO/Huffman bench runs both the word-at-a-time/table-driven
//! implementation and the per-bit reference it replaced, so the speedup is
//! visible in one run. `cargo bench -p hqmr-codec --bench hotpath`
//! (`-- --test` for the CI smoke run).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hqmr_codec::bitio::{reference, BitReader, BitWriter};
use hqmr_codec::{
    huffman_decode, huffman_decode_reference, huffman_encode, huffman_encode_reference,
    read_uvarint, rle_decode, rle_encode, write_uvarint,
};

/// Deterministic widths/values for bit-IO benches (no RNG dependency).
fn bit_pattern(n: usize) -> Vec<(u64, u32)> {
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    (0..n)
        .map(|_| {
            x = x.rotate_left(11).wrapping_mul(0x2545_F491_4F6C_DD1D);
            (x, 1 + (x % 24) as u32)
        })
        .collect()
}

/// Quantizer-like symbol stream: sharply peaked at one code, as SZ2/SZ3 emit.
fn quant_symbols(n: usize) -> Vec<u32> {
    let mut x: u64 = 0x0123_4567_89AB_CDEF;
    (0..n)
        .map(|_| {
            x = x.rotate_left(7).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let r = x % 100;
            if r < 80 {
                32768 // the zero-offset code dominates
            } else if r < 95 {
                32768 + (x % 9) as u32 - 4
            } else {
                (x % 65536) as u32
            }
        })
        .collect()
}

fn bench_bitio(c: &mut Criterion) {
    let pattern = bit_pattern(100_000);
    let total_bits: usize = pattern.iter().map(|&(_, n)| n as usize).sum();
    let bytes = (total_bits / 8) as u64;

    let mut g = c.benchmark_group("bitio_write");
    g.sample_size(20).throughput(Throughput::Bytes(bytes));
    g.bench_function("word", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for &(v, n) in &pattern {
                w.write_bits(v, n);
            }
            w.finish()
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            let mut w = reference::BitWriter::new();
            for &(v, n) in &pattern {
                w.write_bits(v, n);
            }
            w.finish()
        })
    });
    g.finish();

    let mut w = BitWriter::new();
    for &(v, n) in &pattern {
        w.write_bits(v, n);
    }
    let stream = w.finish();
    let mut g = c.benchmark_group("bitio_read");
    g.sample_size(20).throughput(Throughput::Bytes(bytes));
    g.bench_function("word", |b| {
        b.iter(|| {
            let mut r = BitReader::new(&stream);
            let mut acc = 0u64;
            for &(_, n) in &pattern {
                acc = acc.wrapping_add(r.read_bits(n));
            }
            acc
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            let mut r = reference::BitReader::new(&stream);
            let mut acc = 0u64;
            for &(_, n) in &pattern {
                acc = acc.wrapping_add(r.read_bits(n));
            }
            acc
        })
    });
    g.finish();
}

fn bench_huffman(c: &mut Criterion) {
    let symbols = quant_symbols(200_000);
    let bytes = (symbols.len() * 4) as u64;
    let block = huffman_encode(&symbols);

    let mut g = c.benchmark_group("huffman_encode");
    g.sample_size(10).throughput(Throughput::Bytes(bytes));
    g.bench_function("table", |b| b.iter(|| huffman_encode(&symbols)));
    g.bench_function("reference", |b| {
        b.iter(|| huffman_encode_reference(&symbols))
    });
    g.finish();

    let mut g = c.benchmark_group("huffman_decode");
    g.sample_size(10).throughput(Throughput::Bytes(bytes));
    g.bench_function("table", |b| b.iter(|| huffman_decode(&block).unwrap()));
    g.bench_function("reference", |b| {
        b.iter(|| huffman_decode_reference(&block).unwrap())
    });
    g.finish();
}

fn bench_rle_varint(c: &mut Criterion) {
    // Runs-of-bytes payload, the RLE case the side channels hit.
    let mut payload = Vec::with_capacity(1 << 18);
    for i in 0..(1 << 12) {
        payload.extend(std::iter::repeat_n((i % 7) as u8, 32 + i % 96));
    }
    let encoded = rle_encode(&payload);
    let mut g = c.benchmark_group("rle");
    g.sample_size(20)
        .throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("encode", |b| b.iter(|| rle_encode(&payload)));
    g.bench_function("decode", |b| b.iter(|| rle_decode(&encoded).unwrap()));
    g.finish();

    let values: Vec<u64> = (0..100_000u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9))
        .collect();
    let mut buf = Vec::new();
    for &v in &values {
        write_uvarint(&mut buf, v);
    }
    let mut g = c.benchmark_group("varint");
    g.sample_size(20)
        .throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("write", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            for &v in &values {
                write_uvarint(&mut out, v);
            }
            out
        })
    });
    g.bench_function("read", |b| {
        b.iter(|| {
            let mut pos = 0usize;
            let mut acc = 0u64;
            while pos < buf.len() {
                acc = acc.wrapping_add(read_uvarint(&buf, &mut pos).unwrap());
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bitio, bench_huffman, bench_rle_varint);
criterion_main!(benches);
