//! Threshold + connected-components halo finder.
//!
//! Stands in for Nyx's halo post-analysis (Fig. 4: the ROI keeps "almost all
//! the halos"). A halo is a 26-connected component of cells whose density
//! exceeds `threshold × mean`; we report its cell count, total mass and
//! centroid, and measure ROI/compression fidelity by halo *recall* with
//! centroid matching.

use hqmr_grid::Field3;

/// One detected halo.
#[derive(Debug, Clone, PartialEq)]
pub struct Halo {
    /// Number of member cells.
    pub cells: usize,
    /// Sum of member densities.
    pub mass: f64,
    /// Mass-weighted centroid (fine-grid coordinates).
    pub centroid: [f64; 3],
}

/// Finds halos: 26-connected components above `rel_threshold × mean(field)`,
/// keeping components with at least `min_cells` cells. Sorted by descending
/// mass.
pub fn find_halos(field: &Field3, rel_threshold: f64, min_cells: usize) -> Vec<Halo> {
    if field.is_empty() {
        return Vec::new();
    }
    let mean: f64 = field.data().iter().map(|&v| v as f64).sum::<f64>() / field.len() as f64;
    find_halos_abs(field, (rel_threshold * mean) as f32, min_cells)
}

/// [`find_halos`] with an absolute density threshold — required when
/// comparing fields whose means differ (e.g. an ROI-masked field against its
/// original, Fig. 4).
pub fn find_halos_abs(field: &Field3, threshold: f32, min_cells: usize) -> Vec<Halo> {
    let d = field.dims();
    let n = d.len();
    if n == 0 {
        return Vec::new();
    }
    let thr = threshold;
    let mut visited = vec![false; n];
    let mut halos = Vec::new();
    let mut stack: Vec<usize> = Vec::new();

    for start in 0..n {
        if visited[start] || field.data()[start] < thr {
            continue;
        }
        // BFS/DFS flood fill over the 26-neighbourhood.
        let mut cells = 0usize;
        let mut mass = 0.0f64;
        let mut cx = 0.0f64;
        let mut cy = 0.0f64;
        let mut cz = 0.0f64;
        visited[start] = true;
        stack.push(start);
        while let Some(i) = stack.pop() {
            let (x, y, z) = d.coords(i);
            let v = field.data()[i] as f64;
            cells += 1;
            mass += v;
            cx += v * x as f64;
            cy += v * y as f64;
            cz += v * z as f64;
            for dx in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dz in -1i64..=1 {
                        if dx == 0 && dy == 0 && dz == 0 {
                            continue;
                        }
                        let (nx2, ny2, nz2) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                        if nx2 < 0
                            || ny2 < 0
                            || nz2 < 0
                            || nx2 >= d.nx as i64
                            || ny2 >= d.ny as i64
                            || nz2 >= d.nz as i64
                        {
                            continue;
                        }
                        let j = d.idx(nx2 as usize, ny2 as usize, nz2 as usize);
                        if !visited[j] && field.data()[j] >= thr {
                            visited[j] = true;
                            stack.push(j);
                        }
                    }
                }
            }
        }
        if cells >= min_cells && mass > 0.0 {
            halos.push(Halo {
                cells,
                mass,
                centroid: [cx / mass, cy / mass, cz / mass],
            });
        }
    }
    halos.sort_by(|a, b| {
        b.mass
            .partial_cmp(&a.mass)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    halos
}

/// Fraction of `reference` halos that have a counterpart in `candidate`
/// within `match_dist` cells (centroid distance). The Fig. 4 fidelity metric.
pub fn halo_recall(reference: &[Halo], candidate: &[Halo], match_dist: f64) -> f64 {
    if reference.is_empty() {
        return 1.0;
    }
    let mut used = vec![false; candidate.len()];
    let mut hits = 0usize;
    for r in reference {
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in candidate.iter().enumerate() {
            if used[i] {
                continue;
            }
            let dist = (0..3)
                .map(|k| (r.centroid[k] - c.centroid[k]).powi(2))
                .sum::<f64>()
                .sqrt();
            if dist <= match_dist && best.is_none_or(|(_, bd)| dist < bd) {
                best = Some((i, dist));
            }
        }
        if let Some((i, _)) = best {
            used[i] = true;
            hits += 1;
        }
    }
    hits as f64 / reference.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::Dims3;

    /// A field with two Gaussian blobs over a low background.
    fn two_blob_field() -> Field3 {
        let blob = |x: usize, y: usize, z: usize, cx: f32, cy: f32, cz: f32, a: f32| {
            let r2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2) + (z as f32 - cz).powi(2);
            a * (-r2 / 4.0).exp()
        };
        Field3::from_fn(Dims3::cube(24), |x, y, z| {
            1.0 + blob(x, y, z, 6.0, 6.0, 6.0, 100.0) + blob(x, y, z, 17.0, 17.0, 17.0, 60.0)
        })
    }

    #[test]
    fn finds_both_blobs() {
        let f = two_blob_field();
        let halos = find_halos(&f, 5.0, 2);
        assert_eq!(halos.len(), 2);
        // Sorted by mass: the amplitude-100 blob first.
        assert!(halos[0].mass > halos[1].mass);
        assert!((halos[0].centroid[0] - 6.0).abs() < 0.5);
        assert!((halos[1].centroid[0] - 17.0).abs() < 0.5);
    }

    #[test]
    fn min_cells_filters_specks() {
        let mut f = Field3::new(Dims3::cube(8), 1.0);
        f.set(4, 4, 4, 1000.0); // single-cell speck
        let halos = find_halos(&f, 5.0, 2);
        assert!(halos.is_empty());
        let halos = find_halos(&f, 5.0, 1);
        assert_eq!(halos.len(), 1);
    }

    #[test]
    fn connectivity_merges_touching_cells() {
        let mut f = Field3::new(Dims3::cube(8), 0.001);
        // Diagonal pair: 26-connectivity must join them.
        f.set(2, 2, 2, 10.0);
        f.set(3, 3, 3, 10.0);
        let halos = find_halos(&f, 100.0, 1);
        assert_eq!(halos.len(), 1);
        assert_eq!(halos[0].cells, 2);
    }

    #[test]
    fn recall_full_and_partial() {
        let f = two_blob_field();
        let halos = find_halos(&f, 5.0, 2);
        assert_eq!(halo_recall(&halos, &halos, 1.0), 1.0);
        assert_eq!(halo_recall(&halos, &halos[..1], 1.0), 0.5);
        assert_eq!(halo_recall(&[], &halos, 1.0), 1.0);
    }

    #[test]
    fn recall_does_not_double_match() {
        let f = two_blob_field();
        let halos = find_halos(&f, 5.0, 2);
        // One candidate cannot satisfy two distinct references even with a
        // huge matching radius.
        let r = halo_recall(&halos, &halos[..1], 1e9);
        assert_eq!(r, 0.5);
    }
}
