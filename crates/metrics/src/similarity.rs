//! Structural Similarity (SSIM), 2-D windowed and 3-D volumetric.
//!
//! Standard SSIM with `k₁ = 0.01`, `k₂ = 0.03` and the dynamic range taken
//! from the reference data. The 2-D variant operates on row-major slices
//! (as produced by `Field3::slice_z`) with 8×8 windows at stride 4; the 3-D
//! variant uses 8³ windows at stride 4, matching how the paper reports SSIM
//! for rendered views and volumes.

use hqmr_grid::Field3;
use rayon::prelude::*;

const K1: f64 = 0.01;
const K2: f64 = 0.03;

/// Windowed statistics: means, variances, covariance.
#[derive(Default, Clone, Copy)]
struct WinStats {
    mean_a: f64,
    mean_b: f64,
    var_a: f64,
    var_b: f64,
    cov: f64,
}

fn window_ssim(s: &WinStats, c1: f64, c2: f64) -> f64 {
    ((2.0 * s.mean_a * s.mean_b + c1) * (2.0 * s.cov + c2))
        / ((s.mean_a * s.mean_a + s.mean_b * s.mean_b + c1) * (s.var_a + s.var_b + c2))
}

fn stats<'a>(pairs: impl Iterator<Item = (&'a f32, &'a f32)>) -> WinStats {
    let mut n = 0usize;
    let mut sa = 0.0f64;
    let mut sb = 0.0f64;
    let mut saa = 0.0f64;
    let mut sbb = 0.0f64;
    let mut sab = 0.0f64;
    for (&a, &b) in pairs {
        let (a, b) = (a as f64, b as f64);
        n += 1;
        sa += a;
        sb += b;
        saa += a * a;
        sbb += b * b;
        sab += a * b;
    }
    if n == 0 {
        return WinStats::default();
    }
    let nf = n as f64;
    let ma = sa / nf;
    let mb = sb / nf;
    WinStats {
        mean_a: ma,
        mean_b: mb,
        var_a: (saa / nf - ma * ma).max(0.0),
        var_b: (sbb / nf - mb * mb).max(0.0),
        cov: sab / nf - ma * mb,
    }
}

/// Mean SSIM between two row-major 2-D images of shape `(w, h)`.
///
/// # Panics
/// Panics if the buffers don't match `w·h`.
pub fn ssim(a: &[f32], b: &[f32], w: usize, h: usize) -> f64 {
    assert_eq!(a.len(), w * h, "image a shape mismatch");
    assert_eq!(b.len(), w * h, "image b shape mismatch");
    let range = a
        .iter()
        .fold((f32::INFINITY, f32::NEG_INFINITY), |(mn, mx), &v| {
            (mn.min(v), mx.max(v))
        });
    let l = (range.1 - range.0).max(f32::EPSILON) as f64;
    let c1 = (K1 * l).powi(2);
    let c2 = (K2 * l).powi(2);

    let win = 8usize.min(w).min(h).max(1);
    let stride = (win / 2).max(1);
    let mut total = 0.0f64;
    let mut count = 0usize;
    let mut x0 = 0usize;
    loop {
        let mut y0 = 0usize;
        loop {
            let s = stats((x0..x0 + win).flat_map(|x| {
                (y0..y0 + win).map(move |y| {
                    let i = x * h + y;
                    (&a[i], &b[i])
                })
            }));
            total += window_ssim(&s, c1, c2);
            count += 1;
            if y0 + win >= h {
                break;
            }
            y0 = (y0 + stride).min(h - win);
        }
        if x0 + win >= w {
            break;
        }
        x0 = (x0 + stride).min(w - win);
    }
    total / count as f64
}

/// Mean volumetric SSIM over 8³ windows at stride 4.
///
/// # Panics
/// Panics if dims differ.
pub fn ssim3d(a: &Field3, b: &Field3) -> f64 {
    assert_eq!(a.dims(), b.dims(), "field dims mismatch");
    let d = a.dims();
    let l = (a.range() as f64).max(f64::EPSILON);
    let c1 = (K1 * l).powi(2);
    let c2 = (K2 * l).powi(2);
    let win = 8usize.min(d.nx).min(d.ny).min(d.nz).max(1);
    let stride = (win / 2).max(1);

    let starts = |n: usize| -> Vec<usize> {
        let mut v = Vec::new();
        let mut p = 0usize;
        loop {
            v.push(p);
            if p + win >= n {
                break;
            }
            p = (p + stride).min(n - win);
        }
        v
    };
    let (xs, ys, zs) = (starts(d.nx), starts(d.ny), starts(d.nz));
    let sums: Vec<f64> = xs
        .par_iter()
        .map(|&x0| {
            let mut acc = 0.0f64;
            for &y0 in &ys {
                for &z0 in &zs {
                    let s = stats((x0..x0 + win).flat_map(|x| {
                        (y0..y0 + win).flat_map(move |y| {
                            (z0..z0 + win).map(move |z| {
                                let i = d.idx(x, y, z);
                                (&a.data()[i], &b.data()[i])
                            })
                        })
                    }));
                    acc += window_ssim(&s, c1, c2);
                }
            }
            acc
        })
        .collect();
    sums.iter().sum::<f64>() / (xs.len() * ys.len() * zs.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::Dims3;

    fn image(w: usize, h: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
        let mut v = Vec::with_capacity(w * h);
        for x in 0..w {
            for y in 0..h {
                v.push(f(x, y));
            }
        }
        v
    }

    #[test]
    fn identical_images_are_one() {
        let img = image(32, 32, |x, y| (x * y) as f32);
        let s = ssim(&img, &img, 32, 32);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_lowers_ssim_monotonically() {
        let a = image(32, 32, |x, y| {
            ((x as f32 * 0.3).sin() + (y as f32 * 0.2).cos()) * 10.0
        });
        let noisy = |amp: f32| {
            let mut b = a.clone();
            for (i, v) in b.iter_mut().enumerate() {
                *v += amp * (((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5);
            }
            b
        };
        let s1 = ssim(&a, &noisy(1.0), 32, 32);
        let s2 = ssim(&a, &noisy(5.0), 32, 32);
        assert!(s1 > s2, "{s1} vs {s2}");
        assert!(s1 < 1.0 && s1 > 0.5);
    }

    #[test]
    fn structural_break_hurts_more_than_offset() {
        // Constant offset barely affects SSIM (it is luminance-normalized);
        // scrambling structure destroys it.
        let a = image(32, 32, |x, y| {
            10.0 + ((x as f32 * 0.4).sin() + (y as f32 * 0.3).sin()) * 5.0
        });
        let offset: Vec<f32> = a.iter().map(|v| v + 0.5).collect();
        let mut scrambled = a.clone();
        scrambled.reverse();
        let s_off = ssim(&a, &offset, 32, 32);
        let s_scr = ssim(&a, &scrambled, 32, 32);
        assert!(s_off > 0.9, "offset ssim {s_off}");
        assert!(s_scr < 0.5, "scrambled ssim {s_scr}");
    }

    #[test]
    fn ssim3d_identity_and_degradation() {
        let f = Field3::from_fn(Dims3::cube(16), |x, y, z| {
            ((x as f32 * 0.5).sin() + (y as f32 * 0.4).cos()) * (z as f32 + 1.0)
        });
        assert!((ssim3d(&f, &f) - 1.0).abs() < 1e-12);
        let mut g = f.clone();
        for (i, v) in g.data_mut().iter_mut().enumerate() {
            *v += ((i % 7) as f32 - 3.0) * 0.8;
        }
        let s = ssim3d(&f, &g);
        assert!(s < 1.0 && s > 0.0);
    }

    #[test]
    fn small_images_dont_panic() {
        let a = image(3, 5, |x, y| (x + y) as f32);
        let s = ssim(&a, &a, 3, 5);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
