//! Quality metrics used throughout the evaluation (§IV).
//!
//! * [`psnr`] / [`mse`] / [`max_abs_err`] — rate-distortion metrics for every
//!   figure and table;
//! * [`ssim`] — Structural Similarity on 2-D slices (the paper reports SSIM of
//!   rendered views) and [`ssim3d`] volumetric SSIM;
//! * [`spectrum`] — the Nyx power-spectrum analysis of Table VI;
//! * [`halo`] — a threshold + connected-components halo finder standing in
//!   for Nyx's halo post-analysis (Fig. 4's "captures almost all the halos").

pub mod halo;
mod similarity;
pub mod spectrum;

pub use halo::{find_halos, find_halos_abs, halo_recall, Halo};
pub use similarity::{ssim, ssim3d};
pub use spectrum::{power_spectrum, spectrum_rel_errors};

use hqmr_grid::Field3;

/// Mean squared error (computed in `f64`).
pub fn mse(a: &Field3, b: &Field3) -> f64 {
    assert_eq!(a.dims(), b.dims(), "field dims mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    sum / a.len() as f64
}

/// Maximum absolute pointwise error.
pub fn max_abs_err(a: &Field3, b: &Field3) -> f64 {
    assert_eq!(a.dims(), b.dims(), "field dims mismatch");
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x as f64 - y as f64).abs())
        .fold(0.0, f64::max)
}

/// Peak signal-to-noise ratio in dB, using the *original* field's value range
/// as the peak (the convention of the SZ/ZFP literature):
/// `PSNR = 20·log₁₀(range) − 10·log₁₀(MSE)`.
///
/// Returns `f64::INFINITY` for identical fields.
pub fn psnr(original: &Field3, decompressed: &Field3) -> f64 {
    let e = mse(original, decompressed);
    if e == 0.0 {
        return f64::INFINITY;
    }
    let range = original.range() as f64;
    20.0 * range.log10() - 10.0 * e.log10()
}

/// Normalized root-mean-square error (`RMSE / range`).
pub fn nrmse(original: &Field3, decompressed: &Field3) -> f64 {
    let range = original.range() as f64;
    if range == 0.0 {
        return 0.0;
    }
    mse(original, decompressed).sqrt() / range
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::Dims3;

    fn ramp() -> Field3 {
        Field3::from_fn(Dims3::cube(8), |x, y, z| (x + y + z) as f32)
    }

    #[test]
    fn identical_fields() {
        let f = ramp();
        assert_eq!(mse(&f, &f), 0.0);
        assert_eq!(max_abs_err(&f, &f), 0.0);
        assert!(psnr(&f, &f).is_infinite());
        assert_eq!(nrmse(&f, &f), 0.0);
    }

    #[test]
    fn known_mse() {
        let a = Field3::new(Dims3::cube(4), 1.0);
        let b = Field3::new(Dims3::cube(4), 3.0);
        assert_eq!(mse(&a, &b), 4.0);
        assert_eq!(max_abs_err(&a, &b), 2.0);
    }

    #[test]
    fn psnr_known_value() {
        // range = 21 (ramp 0..21), uniform error 0.21 → PSNR = 20·log10(1/0.01) = 40 dB.
        let f = ramp();
        let mut g = f.clone();
        let range = f.range();
        for v in g.data_mut() {
            *v += range * 0.01;
        }
        let p = psnr(&f, &g);
        assert!((p - 40.0).abs() < 0.01, "psnr = {p}");
    }

    #[test]
    fn psnr_decreases_with_error() {
        let f = ramp();
        let mut g1 = f.clone();
        let mut g2 = f.clone();
        for v in g1.data_mut() {
            *v += 0.1;
        }
        for v in g2.data_mut() {
            *v += 1.0;
        }
        assert!(psnr(&f, &g1) > psnr(&f, &g2) + 19.0); // 10× error ⇒ 20 dB
    }

    #[test]
    #[should_panic(expected = "dims mismatch")]
    fn mismatched_dims_panic() {
        mse(
            &Field3::zeros(Dims3::cube(2)),
            &Field3::zeros(Dims3::cube(3)),
        );
    }
}
