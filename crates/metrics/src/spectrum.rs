//! Matter power spectrum `P(k)` (Table VI's Nyx post-analysis).
//!
//! Following the cosmology convention: the density contrast
//! `δ = ρ/ρ̄ − 1` is Fourier-transformed and `|δ̂(k)|²` is averaged in
//! spherical shells of integer `k = |k⃗|` (grid units). Table VI compares the
//! relative error of the decompressed spectrum for all `k < 10`, with 1%
//! as the usual acceptability threshold.

use hqmr_fft::{fft_3d, Complex, Direction};
use hqmr_grid::Field3;

/// Shell-averaged power spectrum. Returns `P(k)` for integer
/// `k = 0 … k_max` where `k_max = min_extent/2`; `P(0)` is excluded from
/// error comparisons (it is the mean).
///
/// # Panics
/// Panics if any extent is not a power of two.
pub fn power_spectrum(field: &Field3) -> Vec<f64> {
    let d = field.dims();
    let n = d.len();
    let mean: f64 = field.data().iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let denom = if mean.abs() > 0.0 { mean } else { 1.0 };
    let mut data: Vec<Complex> = field
        .data()
        .iter()
        .map(|&v| Complex::new(v as f64 / denom - 1.0, 0.0))
        .collect();
    fft_3d(&mut data, d.nx, d.ny, d.nz, Direction::Forward);

    let kmax = d.min_extent() / 2;
    let mut power = vec![0.0f64; kmax + 1];
    let mut counts = vec![0u64; kmax + 1];
    let signed = |i: usize, n: usize| -> f64 {
        if i <= n / 2 {
            i as f64
        } else {
            i as f64 - n as f64
        }
    };
    for x in 0..d.nx {
        let kx = signed(x, d.nx);
        for y in 0..d.ny {
            let ky = signed(y, d.ny);
            for z in 0..d.nz {
                let kz = signed(z, d.nz);
                let k = (kx * kx + ky * ky + kz * kz).sqrt().round() as usize;
                if k <= kmax {
                    power[k] += data[d.idx(x, y, z)].norm_sqr();
                    counts[k] += 1;
                }
            }
        }
    }
    for (p, &c) in power.iter_mut().zip(&counts) {
        if c > 0 {
            *p /= (c as f64) * (n as f64); // FFT normalization + shell average
        }
    }
    power
}

/// Relative spectrum errors `|P'(k) − P(k)| / P(k)` for `1 ≤ k < k_limit`.
/// Returns `(max, mean)` — the two rows of Table VI.
pub fn spectrum_rel_errors(original: &Field3, decompressed: &Field3, k_limit: usize) -> (f64, f64) {
    let p0 = power_spectrum(original);
    let p1 = power_spectrum(decompressed);
    let hi = k_limit.min(p0.len()).min(p1.len());
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    let mut n = 0usize;
    for k in 1..hi {
        if p0[k] <= 0.0 {
            continue;
        }
        let rel = (p1[k] - p0[k]).abs() / p0[k];
        max = max.max(rel);
        sum += rel;
        n += 1;
    }
    (max, if n > 0 { sum / n as f64 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::Dims3;

    #[test]
    fn single_mode_lands_in_one_shell() {
        let n = 32usize;
        let k0 = 4usize;
        // δ = cos(2π k0 x / n): power concentrated at k = k0.
        let f = Field3::from_fn(Dims3::cube(n), |x, _, _| {
            1.0 + 0.5 * ((2.0 * std::f32::consts::PI * k0 as f32 * x as f32) / n as f32).cos()
        });
        let p = power_spectrum(&f);
        let total: f64 = p[1..].iter().sum();
        assert!(p[k0] / total > 0.99, "P({k0}) fraction = {}", p[k0] / total);
    }

    #[test]
    fn constant_field_has_zero_power() {
        let f = Field3::new(Dims3::cube(16), 42.0);
        let p = power_spectrum(&f);
        assert!(p[1..].iter().all(|&v| v.abs() < 1e-20));
    }

    #[test]
    fn identical_fields_zero_error() {
        let f = Field3::from_fn(Dims3::cube(16), |x, y, z| {
            1.0 + 0.1 * ((x + 2 * y + 3 * z) as f32 * 0.4).sin()
        });
        let (max, avg) = spectrum_rel_errors(&f, &f, 10);
        assert_eq!(max, 0.0);
        assert_eq!(avg, 0.0);
    }

    #[test]
    fn small_perturbation_small_spectrum_error() {
        let f = Field3::from_fn(Dims3::cube(32), |x, y, z| {
            10.0 + ((x as f32 * 0.7).sin() + (y as f32 * 0.5).cos() + (z as f32 * 0.3).sin())
        });
        let mut g = f.clone();
        for (i, v) in g.data_mut().iter_mut().enumerate() {
            *v += (((i * 7919) % 100) as f32 / 100.0 - 0.5) * 1e-4;
        }
        let (max, avg) = spectrum_rel_errors(&f, &g, 10);
        assert!(max < 0.01, "max rel err {max}");
        assert!(avg <= max);
    }

    #[test]
    fn larger_error_larger_spectrum_deviation() {
        let f = Field3::from_fn(Dims3::cube(32), |x, y, z| {
            10.0 + ((x as f32 * 0.7).sin() + (y as f32 * 0.5).cos() + (z as f32 * 0.3).sin())
        });
        let perturb = |amp: f32| {
            let mut g = f.clone();
            for (i, v) in g.data_mut().iter_mut().enumerate() {
                *v += (((i * 7919) % 100) as f32 / 100.0 - 0.5) * amp;
            }
            g
        };
        let (_, avg_small) = spectrum_rel_errors(&f, &perturb(0.01), 10);
        let (_, avg_big) = spectrum_rel_errors(&f, &perturb(0.5), 10);
        assert!(avg_big > avg_small);
    }
}
