//! Compression-uncertainty modelling (§III-C).
//!
//! The workflow samples `(original, decompressed)` pairs during compression
//! (the same samples the post-process uses — "reusing the information"),
//! fits a Gaussian to the errors of points **near the isovalue** (the
//! isovalue-related variance of §III-C), and feeds the model into
//! probabilistic marching cubes to show where compression may have destroyed
//! or cracked isosurface features (Fig. 14).

use hqmr_grid::Field3;
use hqmr_vis::{components_of, crossing_probability_field, surface_features, PmcConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Gaussian error model fitted from sampled compression errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Mean error (≈ 0 for error-bounded compressors).
    pub mean: f64,
    /// Error standard deviation.
    pub sigma: f64,
    /// Number of samples behind the fit.
    pub samples: usize,
}

impl ErrorModel {
    /// Converts to a PMC configuration at `iso`.
    pub fn pmc(&self, iso: f32) -> PmcConfig {
        PmcConfig::independent(iso, self.mean, self.sigma.max(1e-12))
    }
}

/// Samples `(original value, error)` pairs at rate `frac` (deterministic in
/// `seed`).
pub fn sample_error_pairs(orig: &Field3, decomp: &Field3, frac: f64, seed: u64) -> Vec<(f32, f64)> {
    assert_eq!(orig.dims(), decomp.dims(), "field dims mismatch");
    let n = orig.len();
    let target = ((n as f64 * frac).ceil() as usize).clamp(1, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(target);
    for _ in 0..target {
        let i = rng.gen_range(0..n);
        out.push((
            orig.data()[i],
            decomp.data()[i] as f64 - orig.data()[i] as f64,
        ));
    }
    out
}

/// Fits the error Gaussian from samples whose original value lies within
/// `band` of `iso` (§III-C: "data points close to the isovalue are more
/// likely to be considered for the isosurface construction"). Falls back to
/// all samples when fewer than 16 land in the band.
pub fn model_near_isovalue(pairs: &[(f32, f64)], iso: f32, band: f32) -> ErrorModel {
    let near: Vec<f64> = pairs
        .iter()
        .filter(|(v, _)| (v - iso).abs() <= band)
        .map(|&(_, e)| e)
        .collect();
    let selected: Vec<f64> = if near.len() >= 16 {
        near
    } else {
        pairs.iter().map(|&(_, e)| e).collect()
    };
    if selected.is_empty() {
        return ErrorModel {
            mean: 0.0,
            sigma: 0.0,
            samples: 0,
        };
    }
    let n = selected.len() as f64;
    let mean = selected.iter().sum::<f64>() / n;
    let var = selected.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / n;
    ErrorModel {
        mean,
        sigma: var.sqrt(),
        samples: selected.len(),
    }
}

/// Fig. 14's quantitative summary: how many isosurface features of the
/// original survive deterministic extraction from the decompressed data, and
/// how many of the lost ones the uncertainty visualization recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureRecovery {
    /// Features in the original data.
    pub original: usize,
    /// Original features still present in the decompressed extraction.
    pub preserved: usize,
    /// Lost features flagged by PMC probability ≥ threshold.
    pub recovered: usize,
}

/// Matches features by bounding-box centre distance (≤ `match_dist` cells).
fn matched(
    a: &hqmr_vis::SurfaceFeature,
    candidates: &[hqmr_vis::SurfaceFeature],
    match_dist: f64,
) -> bool {
    let c = a.center();
    candidates.iter().any(|b| {
        let d = b.center();
        (0..3).map(|k| (c[k] - d[k]).powi(2)).sum::<f64>().sqrt() <= match_dist
    })
}

/// Runs the full Fig. 14 analysis.
pub fn analyze_feature_recovery(
    orig: &Field3,
    decomp: &Field3,
    iso: f32,
    model: &ErrorModel,
    prob_threshold: f32,
    min_cells: usize,
    match_dist: f64,
) -> FeatureRecovery {
    let ref_feats = surface_features(orig, iso, min_cells);
    let dec_feats = surface_features(decomp, iso, min_cells);
    let (cd, prob) = crossing_probability_field(decomp, &model.pmc(iso));
    let mask: Vec<bool> = prob.iter().map(|&p| p >= prob_threshold).collect();
    let pmc_feats = components_of(cd, &mask, min_cells);

    let mut preserved = 0usize;
    let mut recovered = 0usize;
    for f in &ref_feats {
        if matched(f, &dec_feats, match_dist) {
            preserved += 1;
        } else if matched(f, &pmc_feats, match_dist) {
            recovered += 1;
        }
    }
    FeatureRecovery {
        original: ref_feats.len(),
        preserved,
        recovered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::Dims3;

    #[test]
    fn error_model_recovers_known_distribution() {
        // Errors uniform in [-0.5, 0.5]: mean 0, sigma = 1/√12 ≈ 0.2887.
        let orig = Field3::from_fn(Dims3::cube(24), |x, y, z| (x + y + z) as f32);
        let mut dec = orig.clone();
        for (i, v) in dec.data_mut().iter_mut().enumerate() {
            *v += ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.4995;
        }
        let pairs = sample_error_pairs(&orig, &dec, 0.5, 3);
        let m = model_near_isovalue(&pairs, 30.0, 1e9); // band covers all
        assert!(m.mean.abs() < 0.02, "mean {}", m.mean);
        assert!((m.sigma - 0.2887).abs() < 0.02, "sigma {}", m.sigma);
    }

    #[test]
    fn isovalue_conditioning_selects_local_errors() {
        // Error magnitude depends on the value: small near 0, large near 100.
        let orig = Field3::from_fn(Dims3::new(8, 8, 128), |_, _, z| z as f32);
        let mut dec = orig.clone();
        for (i, v) in dec.data_mut().iter_mut().enumerate() {
            let magnitude = if *v > 64.0 { 2.0 } else { 0.01 };
            *v += magnitude * (((i * 7919) % 200) as f32 / 100.0 - 1.0);
        }
        let pairs = sample_error_pairs(&orig, &dec, 0.8, 5);
        let low = model_near_isovalue(&pairs, 10.0, 8.0);
        let high = model_near_isovalue(&pairs, 100.0, 8.0);
        assert!(
            high.sigma > 20.0 * low.sigma,
            "high {} vs low {}",
            high.sigma,
            low.sigma
        );
    }

    #[test]
    fn model_with_no_samples_is_degenerate_but_safe() {
        let m = model_near_isovalue(&[], 0.0, 1.0);
        assert_eq!(m.samples, 0);
        assert_eq!(m.sigma, 0.0);
        // PMC config must still be constructible.
        let _ = m.pmc(0.0);
    }

    #[test]
    fn recovery_analysis_flags_lost_feature() {
        // Original: two bumps above iso. "Compression" scales the smaller one
        // below the isovalue — deterministic extraction loses it; PMC with
        // the fitted sigma recovers it.
        let bump = |x: usize, y: usize, z: usize, c: [f32; 3], a: f32| {
            let r2 =
                (x as f32 - c[0]).powi(2) + (y as f32 - c[1]).powi(2) + (z as f32 - c[2]).powi(2);
            a * (-r2 / 8.0).exp()
        };
        let orig = Field3::from_fn(Dims3::cube(28), |x, y, z| {
            bump(x, y, z, [7.0, 7.0, 7.0], 2.0) + bump(x, y, z, [20.0, 20.0, 20.0], 1.1)
        });
        let mut dec = orig.clone();
        for v in dec.data_mut() {
            if *v > 0.9 && *v < 1.3 {
                *v -= 0.15; // push the small bump below iso = 1.0
            }
        }
        let model = ErrorModel {
            mean: 0.0,
            sigma: 0.1,
            samples: 100,
        };
        let r = analyze_feature_recovery(&orig, &dec, 1.0, &model, 0.15, 3, 6.0);
        assert_eq!(r.original, 2);
        assert_eq!(r.preserved, 1, "big bump survives");
        assert_eq!(r.recovered, 1, "small bump recovered by PMC");
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let orig = Field3::from_fn(Dims3::cube(8), |x, _, _| x as f32);
        let dec = orig.clone();
        let a = sample_error_pairs(&orig, &dec, 0.2, 42);
        let b = sample_error_pairs(&orig, &dec, 0.2, 42);
        assert_eq!(a, b);
        let c = sample_error_pairs(&orig, &dec, 0.2, 43);
        assert_ne!(a, c);
    }
}
