//! End-to-end workflow convenience API (Fig. 3).
//!
//! One call runs the full pipeline on a uniform field: ROI extraction →
//! multi-resolution conversion → MRC compression (any arrangement × codec
//! backend) → decompression → reconstruction → optional Bézier
//! post-processing → optional uncertainty model. Examples and integration
//! tests build on this; the individual stages remain available for finer
//! control.

use crate::mrc::{compress_mr, decompress_mr, Backend, MrStats, MrcConfig, MrcError};
use crate::post::{bezier_pass, select_intensity, PostConfig};
use crate::uncertainty::{model_near_isovalue, sample_error_pairs, ErrorModel};
use hqmr_grid::Field3;
use hqmr_mr::{to_adaptive, MergeStrategy, PadKind, RoiConfig, Upsample};
use hqmr_serve::StoreServer;
use hqmr_store::{write_store, StoreConfig, StoreError, StoreMeta, StoreReader};
use std::sync::Arc;

/// Workflow configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowConfig {
    /// ROI extraction parameters (uniform → adaptive conversion).
    pub roi: RoiConfig,
    /// Error bound, *relative to the field's value range*.
    pub rel_eb: f64,
    /// Compressor: arrangement × codec backend (defaults to the paper's full
    /// "ours" arrangement on SZ3).
    pub compressor: CompressorChoice,
    /// Apply the Bézier post-process to the reconstruction.
    pub post_process: bool,
    /// Fit an uncertainty model for this isovalue.
    pub uncertainty_iso: Option<f32>,
    /// Upsampling used for reconstruction.
    pub upsample: Upsample,
}

/// How unit blocks are arranged for compression — the paper's four curves,
/// independent of which codec backend runs afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrangement {
    /// The paper's full method: linear merge + single-layer padding.
    Ours,
    /// Linear merge only.
    Baseline,
    /// AMRIC-style cubic stacking.
    Amric,
    /// TAC-style adjacency-preserving boxes.
    Tac,
}

/// Which compressor the workflow runs: an [`Arrangement`] crossed with a
/// codec [`Backend`]. The two axes are orthogonal — any arrangement works
/// with any backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressorChoice {
    /// Unit-block arrangement.
    pub arrangement: Arrangement,
    /// Codec backend.
    pub backend: Backend,
}

impl CompressorChoice {
    /// Crosses an arrangement with a backend.
    pub const fn new(arrangement: Arrangement, backend: Backend) -> Self {
        CompressorChoice {
            arrangement,
            backend,
        }
    }

    /// The paper's full method: "ours" arrangement + SZ3 with adaptive
    /// per-level error bounds.
    pub const fn ours() -> Self {
        Self::new(Arrangement::Ours, Backend::SZ3_PAPER)
    }

    /// Baseline SZ3 (linear merge only).
    pub const fn baseline() -> Self {
        Self::new(Arrangement::Baseline, Backend::SZ3)
    }

    /// AMRIC-style stacking on SZ3.
    pub const fn amric() -> Self {
        Self::new(Arrangement::Amric, Backend::SZ3)
    }

    /// TAC-style boxes on SZ3.
    pub const fn tac() -> Self {
        Self::new(Arrangement::Tac, Backend::SZ3)
    }

    /// Same arrangement, different codec backend.
    pub const fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Lowers the choice to an engine configuration at absolute bound `eb`.
    pub fn mrc_config(&self, eb: f64) -> MrcConfig {
        let (merge, pad) = match self.arrangement {
            Arrangement::Ours => (MergeStrategy::Linear, Some(PadKind::Linear)),
            Arrangement::Baseline => (MergeStrategy::Linear, None),
            Arrangement::Amric => (MergeStrategy::Stack, None),
            Arrangement::Tac => (MergeStrategy::Tac, None),
        };
        MrcConfig {
            eb,
            merge,
            pad,
            backend: self.backend,
        }
    }

    /// Lowers the choice to a block-indexed store configuration at absolute
    /// bound `eb`, tiling levels every `chunk_blocks` unit blocks.
    pub fn store_config(&self, eb: f64, chunk_blocks: usize) -> StoreConfig {
        self.mrc_config(eb).store_config(chunk_blocks)
    }
}

impl WorkflowConfig {
    /// Paper defaults: b=16 blocks, top 50% ROI, full MRC on SZ3.
    pub fn new(rel_eb: f64) -> Self {
        WorkflowConfig {
            roi: RoiConfig::paper_default(),
            rel_eb,
            compressor: CompressorChoice::ours(),
            post_process: true,
            uncertainty_iso: None,
            upsample: Upsample::Nearest,
        }
    }
}

/// Everything the workflow produced.
#[derive(Debug, Clone)]
pub struct WorkflowResult {
    /// Serialized compressed stream.
    pub compressed: Vec<u8>,
    /// Dense reconstruction at the original resolution (post-processed when
    /// requested).
    pub reconstruction: Field3,
    /// Compression statistics (per-level arrays, ratio vs. stored cells).
    pub mr_stats: MrStats,
    /// End-to-end compression ratio: original uniform bytes / compressed.
    pub end_to_end_ratio: f64,
    /// Absolute error bound used.
    pub eb: f64,
    /// Fitted error model (when `uncertainty_iso` was set).
    pub error_model: Option<ErrorModel>,
}

/// Workflow failures.
#[derive(Debug)]
pub enum WorkflowError {
    /// The freshly produced stream failed to decompress — the engine and the
    /// codec disagree, which is a bug or corruption, but must surface as an
    /// error rather than a panic.
    Roundtrip(MrcError),
    /// The store-backed path failed to write or read back the container.
    Store(StoreError),
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::Roundtrip(e) => write!(f, "workflow round-trip failed: {e}"),
            WorkflowError::Store(e) => write!(f, "workflow store round-trip failed: {e}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

impl From<MrcError> for WorkflowError {
    fn from(e: MrcError) -> Self {
        WorkflowError::Roundtrip(e)
    }
}

impl From<StoreError> for WorkflowError {
    fn from(e: StoreError) -> Self {
        WorkflowError::Store(e)
    }
}

/// Runs the full workflow on a uniform field.
pub fn run_uniform_workflow(
    field: &Field3,
    cfg: &WorkflowConfig,
) -> Result<WorkflowResult, WorkflowError> {
    let eb = field.range() as f64 * cfg.rel_eb;
    let mr = to_adaptive(field, &cfg.roi);
    let mr_cfg = cfg.compressor.mrc_config(eb);
    let (compressed, mr_stats) = compress_mr(&mr, &mr_cfg);
    let decompressed = decompress_mr(&compressed)?;
    let mut reconstruction = decompressed.reconstruct(cfg.upsample);

    if cfg.post_process {
        // Boundaries along z with the fine unit period (the partition the
        // MRC pipeline introduced).
        let post_cfg = PostConfig::sz3_multires(cfg.roi.block);
        let choice = select_intensity(field, &reconstruction, eb, &post_cfg);
        reconstruction = bezier_pass(&reconstruction, eb, choice.a, &post_cfg);
    }

    let error_model = cfg.uncertainty_iso.map(|iso| {
        let pairs = sample_error_pairs(field, &reconstruction, 0.01, 0x5EED);
        let band = field.range() * 0.05;
        model_near_isovalue(&pairs, iso, band)
    });

    Ok(WorkflowResult {
        end_to_end_ratio: (field.len() * 4) as f64 / compressed.len() as f64,
        compressed,
        reconstruction,
        mr_stats,
        eb,
        error_model,
    })
}

/// Everything the store-backed workflow produced.
#[derive(Debug, Clone)]
pub struct StoreWorkflowResult {
    /// The complete serialized store (header + chunk table + data region) —
    /// ready to be written to disk or handed to [`StoreReader::from_bytes`]
    /// for ROI/progressive reads.
    pub store: Vec<u8>,
    /// The parsed directory: per-level chunk tables with byte ranges and
    /// value min/max.
    pub meta: StoreMeta,
    /// Dense reconstruction at the original resolution (post-processed when
    /// requested), obtained through a full store read-back.
    pub reconstruction: Field3,
    /// End-to-end compression ratio: original uniform bytes / store bytes
    /// (directory overhead included).
    pub end_to_end_ratio: f64,
    /// Absolute error bound used.
    pub eb: f64,
}

/// Runs the workflow with the block-indexed `hqmr-store` container instead
/// of the monolithic MRC stream: ROI extraction → MR conversion → per-chunk
/// compression into a store → full read-back → reconstruction → optional
/// Bézier post-process. The returned store supports level/ROI/progressive
/// reads without decoding anything else.
pub fn run_uniform_workflow_store(
    field: &Field3,
    cfg: &WorkflowConfig,
    chunk_blocks: usize,
) -> Result<StoreWorkflowResult, WorkflowError> {
    let eb = field.range() as f64 * cfg.rel_eb;
    let mr = to_adaptive(field, &cfg.roi);
    let store_cfg = cfg.compressor.store_config(eb, chunk_blocks);
    let codec = cfg.compressor.backend.codec();
    let store = write_store(&mr, &store_cfg, codec.as_ref());
    let reader = StoreReader::from_bytes(store)?;
    let back = reader.read_all()?;
    let mut reconstruction = back.reconstruct(cfg.upsample);

    if cfg.post_process {
        let post_cfg = PostConfig::sz3_multires(cfg.roi.block);
        let choice = select_intensity(field, &reconstruction, eb, &post_cfg);
        reconstruction = bezier_pass(&reconstruction, eb, choice.a, &post_cfg);
    }

    let meta = reader.meta().clone();
    // Recover the buffer the reader was opened over instead of cloning the
    // whole compressed container.
    let store = reader
        .into_buffer()
        .expect("from_bytes readers own a buffer");
    Ok(StoreWorkflowResult {
        meta,
        end_to_end_ratio: (field.len() * 4) as f64 / store.len() as f64,
        store,
        reconstruction,
        eb,
    })
}

/// Everything the serve-backed workflow produced: the compressed container
/// already wrapped in a concurrent, cache-backed query server.
pub struct ServeWorkflowResult {
    /// The serving layer over the freshly written store: `Send + Sync`,
    /// ready to be shared across client threads (wrap in an `Arc` or borrow
    /// through `std::thread::scope`) for cached level/ROI/iso/progressive
    /// and batched queries.
    pub server: StoreServer,
    /// The parsed directory: per-level chunk tables with byte ranges and
    /// value min/max.
    pub meta: StoreMeta,
    /// End-to-end compression ratio: original uniform bytes / store bytes.
    pub end_to_end_ratio: f64,
    /// Absolute error bound used.
    pub eb: f64,
}

/// Runs the reduction workflow and hands back a query *server* instead of a
/// raw container: ROI extraction → MR conversion → per-chunk compression
/// into a block-indexed store → [`StoreServer`] with a decoded-chunk cache
/// of at most `cache_budget` bytes. This is the entry point for the
/// many-clients scenario: every read the server answers is byte-identical
/// to a bare [`StoreReader`] over the same container, but hot chunks decode
/// once and are shared.
///
/// Of the [`WorkflowConfig`] fields, only `roi`, `rel_eb` and `compressor`
/// apply here. `post_process`, `uncertainty_iso` and `upsample` shape a
/// *dense reconstruction*, which this variant deliberately never builds —
/// the server answers level/ROI/iso/progressive queries straight from the
/// store, so those fields are ignored (unlike [`run_uniform_workflow`] /
/// [`run_uniform_workflow_store`], which produce the post-processed
/// reconstruction). Run a step of [`StoreServer::progressive`] and apply
/// `bezier_pass` yourself if a served client needs the post-processed view.
pub fn run_uniform_workflow_serve(
    field: &Field3,
    cfg: &WorkflowConfig,
    chunk_blocks: usize,
    cache_budget: usize,
) -> Result<ServeWorkflowResult, WorkflowError> {
    let eb = field.range() as f64 * cfg.rel_eb;
    let mr = to_adaptive(field, &cfg.roi);
    let store_cfg = cfg.compressor.store_config(eb, chunk_blocks);
    let codec = cfg.compressor.backend.codec();
    let store = write_store(&mr, &store_cfg, codec.as_ref());
    let store_bytes = store.len();
    let reader = Arc::new(StoreReader::from_bytes(store)?);
    let meta = reader.meta().clone();
    Ok(ServeWorkflowResult {
        server: StoreServer::new(reader, cache_budget),
        meta,
        end_to_end_ratio: (field.len() * 4) as f64 / store_bytes as f64,
        eb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::synth;
    use hqmr_metrics::psnr;

    #[test]
    fn full_workflow_runs_and_reduces() {
        let f = synth::nyx_like(64, 11);
        let cfg = WorkflowConfig {
            roi: RoiConfig::new(16, 0.3),
            ..WorkflowConfig::new(1e-3)
        };
        let r = run_uniform_workflow(&f, &cfg).unwrap();
        assert!(r.end_to_end_ratio > 4.0, "ratio {}", r.end_to_end_ratio);
        assert_eq!(r.reconstruction.dims(), f.dims());
        // ROI cells are error-bounded; non-ROI cells carry downsampling error,
        // so overall quality is judged by PSNR, not the bound.
        let p = psnr(&f, &r.reconstruction);
        assert!(p > 30.0, "psnr {p}");
    }

    #[test]
    fn uncertainty_model_is_produced_on_request() {
        let f = synth::hurricane_like(hqmr_grid::Dims3::new(32, 32, 8), 7);
        let mut cfg = WorkflowConfig::new(5e-3);
        cfg.roi = RoiConfig::new(8, 0.4);
        cfg.uncertainty_iso = Some(20.0);
        let r = run_uniform_workflow(&f, &cfg).unwrap();
        let m = r.error_model.expect("model requested");
        assert!(m.samples > 0);
        assert!(m.sigma >= 0.0);
    }

    #[test]
    fn better_compressor_choice_wins_on_ratio_at_equal_bound() {
        let f = synth::nyx_like(64, 13);
        let mk = |choice| {
            let mut cfg = WorkflowConfig::new(2e-3);
            cfg.roi = RoiConfig::new(16, 0.3);
            cfg.compressor = choice;
            cfg.post_process = false;
            run_uniform_workflow(&f, &cfg).unwrap()
        };
        let ours = mk(CompressorChoice::ours());
        let amric = mk(CompressorChoice::amric());
        // Same error bound: our stream should not be meaningfully larger.
        assert!(
            (ours.compressed.len() as f64) < (amric.compressed.len() as f64) * 1.1,
            "ours {} vs amric {}",
            ours.compressed.len(),
            amric.compressed.len()
        );
    }

    #[test]
    fn workflow_roundtrips_through_every_backend() {
        let f = synth::nyx_like(32, 17);
        for backend in Backend::ALL {
            let mut cfg = WorkflowConfig::new(2e-3);
            cfg.roi = RoiConfig::new(8, 0.4);
            cfg.compressor = CompressorChoice::ours().with_backend(backend);
            cfg.post_process = false;
            let r = run_uniform_workflow(&f, &cfg).unwrap();
            assert_eq!(r.reconstruction.dims(), f.dims(), "{backend:?}");
            assert_eq!(r.mr_stats.codec, backend.name());
            // The stream itself records the backend; decompression needs no
            // configuration.
            assert!(decompress_mr(&r.compressed).is_ok(), "{backend:?}");
        }
    }

    #[test]
    fn store_workflow_matches_monolithic_reconstruction() {
        // With one chunk per level, the store path feeds the codec
        // byte-identical arrays, so the reconstructions agree exactly.
        let f = synth::nyx_like(32, 23);
        let mut cfg = WorkflowConfig::new(2e-3);
        cfg.roi = RoiConfig::new(8, 0.4);
        let mono = run_uniform_workflow(&f, &cfg).unwrap();
        let store = run_uniform_workflow_store(&f, &cfg, usize::MAX).unwrap();
        assert_eq!(store.reconstruction, mono.reconstruction);
        assert!(store.end_to_end_ratio > 1.0);
        assert_eq!(store.meta.levels.len(), 2);
    }

    #[test]
    fn store_workflow_supports_roi_reads_per_backend() {
        let f = synth::nyx_like(32, 29);
        for backend in Backend::ALL {
            let mut cfg = WorkflowConfig::new(2e-3);
            cfg.roi = RoiConfig::new(8, 0.4);
            cfg.compressor = CompressorChoice::ours().with_backend(backend);
            cfg.post_process = false;
            let r = run_uniform_workflow_store(&f, &cfg, 2).unwrap();
            let reader = hqmr_store::StoreReader::from_bytes(r.store).unwrap();
            let d = reader.meta().levels[0].dims;
            let roi = reader
                .read_roi(0, [0, 0, 0], [d.nx, d.ny, d.nz.min(8)], 0.0)
                .unwrap();
            assert_eq!(roi.dims().nz, d.nz.min(8), "{backend:?}");
        }
    }

    #[test]
    fn serve_workflow_answers_cached_queries_identically() {
        let f = synth::nyx_like(32, 37);
        let mut cfg = WorkflowConfig::new(2e-3);
        cfg.roi = RoiConfig::new(8, 0.4);
        cfg.post_process = false;
        let store = run_uniform_workflow_store(&f, &cfg, 2).unwrap();
        let served = run_uniform_workflow_serve(&f, &cfg, 2, hqmr_serve::UNBOUNDED).unwrap();
        assert_eq!(served.meta, store.meta);
        assert!((served.end_to_end_ratio - store.end_to_end_ratio).abs() < 1e-12);
        // Cold read through the server == bare reader over the same bytes.
        let oracle = hqmr_store::StoreReader::from_bytes(store.store).unwrap();
        assert_eq!(
            served.server.read_all().unwrap(),
            oracle.read_all().unwrap()
        );
        // Warm read is answered from the cache, byte-identically.
        let before = served.server.reader().bytes_decoded();
        assert_eq!(
            served.server.read_all().unwrap(),
            oracle.read_all().unwrap()
        );
        assert_eq!(
            served.server.reader().bytes_decoded(),
            before,
            "warm pass decodes nothing"
        );
        let st = served.server.stats();
        assert_eq!(st.requests, st.hits + st.misses);
        assert!(st.hits >= st.misses, "second pass was all hits");
    }

    #[test]
    fn corrupt_stream_surfaces_as_error_not_panic() {
        let f = synth::nyx_like(32, 19);
        let cfg = WorkflowConfig {
            roi: RoiConfig::new(8, 0.4),
            ..WorkflowConfig::new(1e-3)
        };
        let r = run_uniform_workflow(&f, &cfg).unwrap();
        let mut bad = r.compressed.clone();
        let n = bad.len();
        bad[n / 2] ^= 0xFF;
        assert!(decompress_mr(&bad).is_err());
        assert!(decompress_mr(&bad[..n / 4]).is_err());
    }
}
