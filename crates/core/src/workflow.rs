//! End-to-end workflow convenience API (Fig. 3).
//!
//! One call runs the full pipeline on a uniform field: ROI extraction →
//! multi-resolution conversion → SZ3MR compression → decompression →
//! reconstruction → optional Bézier post-processing → optional uncertainty
//! model. Examples and integration tests build on this; the individual
//! stages remain available for finer control.

use crate::post::{bezier_pass, select_intensity, PostConfig};
use crate::sz3mr::{compress_mr, decompress_mr, MrStats, Sz3MrConfig};
use crate::uncertainty::{model_near_isovalue, sample_error_pairs, ErrorModel};
use hqmr_grid::Field3;
use hqmr_mr::{to_adaptive, RoiConfig, Upsample};

/// Workflow configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowConfig {
    /// ROI extraction parameters (uniform → adaptive conversion).
    pub roi: RoiConfig,
    /// Error bound, *relative to the field's value range*.
    pub rel_eb: f64,
    /// SZ3MR variant (defaults to the full "ours": pad + adaptive eb).
    pub compressor: CompressorChoice,
    /// Apply the Bézier post-process to the reconstruction.
    pub post_process: bool,
    /// Fit an uncertainty model for this isovalue.
    pub uncertainty_iso: Option<f32>,
    /// Upsampling used for reconstruction.
    pub upsample: Upsample,
}

/// Which SZ3MR variant the workflow runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressorChoice {
    /// The paper's full method (linear merge + pad + adaptive eb).
    Ours,
    /// Baseline SZ3 (linear merge only).
    Baseline,
    /// AMRIC-style stacking.
    Amric,
    /// TAC-style boxes.
    Tac,
}

impl WorkflowConfig {
    /// Paper defaults: b=16 blocks, top 50% ROI, full SZ3MR.
    pub fn new(rel_eb: f64) -> Self {
        WorkflowConfig {
            roi: RoiConfig::paper_default(),
            rel_eb,
            compressor: CompressorChoice::Ours,
            post_process: true,
            uncertainty_iso: None,
            upsample: Upsample::Nearest,
        }
    }
}

/// Everything the workflow produced.
#[derive(Debug, Clone)]
pub struct WorkflowResult {
    /// Serialized compressed stream.
    pub compressed: Vec<u8>,
    /// Dense reconstruction at the original resolution (post-processed when
    /// requested).
    pub reconstruction: Field3,
    /// Compression statistics (per-level arrays, ratio vs. stored cells).
    pub mr_stats: MrStats,
    /// End-to-end compression ratio: original uniform bytes / compressed.
    pub end_to_end_ratio: f64,
    /// Absolute error bound used.
    pub eb: f64,
    /// Fitted error model (when `uncertainty_iso` was set).
    pub error_model: Option<ErrorModel>,
}

/// Runs the full workflow on a uniform field.
pub fn run_uniform_workflow(field: &Field3, cfg: &WorkflowConfig) -> WorkflowResult {
    let eb = field.range() as f64 * cfg.rel_eb;
    let mr = to_adaptive(field, &cfg.roi);
    let mr_cfg = match cfg.compressor {
        CompressorChoice::Ours => Sz3MrConfig::ours(eb),
        CompressorChoice::Baseline => Sz3MrConfig::baseline(eb),
        CompressorChoice::Amric => Sz3MrConfig::amric(eb),
        CompressorChoice::Tac => Sz3MrConfig::tac(eb),
    };
    let (compressed, mr_stats) = compress_mr(&mr, &mr_cfg);
    let decompressed = decompress_mr(&compressed).expect("fresh stream must decompress");
    let mut reconstruction = decompressed.reconstruct(cfg.upsample);

    if cfg.post_process {
        // Boundaries along z with the fine unit period (the partition the
        // SZ3MR pipeline introduced).
        let post_cfg = PostConfig::sz3_multires(cfg.roi.block);
        let choice = select_intensity(field, &reconstruction, eb, &post_cfg);
        reconstruction = bezier_pass(&reconstruction, eb, choice.a, &post_cfg);
    }

    let error_model = cfg.uncertainty_iso.map(|iso| {
        let pairs = sample_error_pairs(field, &reconstruction, 0.01, 0x5EED);
        let band = field.range() * 0.05;
        model_near_isovalue(&pairs, iso, band)
    });

    WorkflowResult {
        end_to_end_ratio: (field.len() * 4) as f64 / compressed.len() as f64,
        compressed,
        reconstruction,
        mr_stats,
        eb,
        error_model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::synth;
    use hqmr_metrics::psnr;

    #[test]
    fn full_workflow_runs_and_reduces() {
        let f = synth::nyx_like(64, 11);
        let cfg = WorkflowConfig { roi: RoiConfig::new(16, 0.3), ..WorkflowConfig::new(1e-3) };
        let r = run_uniform_workflow(&f, &cfg);
        assert!(r.end_to_end_ratio > 4.0, "ratio {}", r.end_to_end_ratio);
        assert_eq!(r.reconstruction.dims(), f.dims());
        // ROI cells are error-bounded; non-ROI cells carry downsampling error,
        // so overall quality is judged by PSNR, not the bound.
        let p = psnr(&f, &r.reconstruction);
        assert!(p > 30.0, "psnr {p}");
    }

    #[test]
    fn uncertainty_model_is_produced_on_request() {
        let f = synth::hurricane_like(hqmr_grid::Dims3::new(32, 32, 8), 7);
        let mut cfg = WorkflowConfig::new(5e-3);
        cfg.roi = RoiConfig::new(8, 0.4);
        cfg.uncertainty_iso = Some(20.0);
        let r = run_uniform_workflow(&f, &cfg);
        let m = r.error_model.expect("model requested");
        assert!(m.samples > 0);
        assert!(m.sigma >= 0.0);
    }

    #[test]
    fn better_compressor_choice_wins_on_ratio_at_equal_bound() {
        let f = synth::nyx_like(64, 13);
        let mk = |choice| {
            let mut cfg = WorkflowConfig::new(2e-3);
            cfg.roi = RoiConfig::new(16, 0.3);
            cfg.compressor = choice;
            cfg.post_process = false;
            run_uniform_workflow(&f, &cfg)
        };
        let ours = mk(CompressorChoice::Ours);
        let amric = mk(CompressorChoice::Amric);
        // Same error bound: our stream should not be meaningfully larger.
        assert!(
            (ours.compressed.len() as f64) < (amric.compressed.len() as f64) * 1.1,
            "ours {} vs amric {}",
            ours.compressed.len(),
            amric.compressed.len()
        );
    }
}
