//! SZ3MR: the paper's multi-resolution SZ3 pipeline (§III-A).
//!
//! Per resolution level: arrange unit blocks into dense arrays
//! ([`MergeStrategy`]), optionally pad the two small dimensions
//! (Improvement 1, only for linear merges with `unit > 4`), then compress
//! each array with SZ3 under an optional adaptive per-level error bound
//! (Improvement 2). The serialized stream is self-describing and
//! [`decompress_mr`] reverses every step.

use hqmr_codec::{read_uvarint, tag, write_uvarint, Container, ContainerError};
use hqmr_grid::{Dims3, Field3};
use hqmr_mr::{
    merge_level, pad_small_dims, strip_padding, LevelData, MergeStrategy, MergedArray,
    MultiResData, PadKind,
};
use hqmr_sz3::{InterpKind, LevelEbPolicy, Sz3Config};

const TAG_HEAD: u32 = tag(b"MRHD");
const TAG_LEVEL: u32 = tag(b"LVHD");
const TAG_LAYOUT: u32 = tag(b"LAYT");
const TAG_STREAM: u32 = tag(b"SZ3S");

/// SZ3MR configuration: which arrangement, whether to pad, which error-bound
/// policy. The named constructors map to the paper's curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sz3MrConfig {
    /// Absolute error bound.
    pub eb: f64,
    /// Unit-block arrangement.
    pub merge: MergeStrategy,
    /// Padding for the small dims of linear merges (applied when `unit > 4`).
    pub pad: Option<PadKind>,
    /// Adaptive per-level error bound (Improvement 2).
    pub adaptive_eb: Option<LevelEbPolicy>,
    /// SZ3 interpolator.
    pub interp: InterpKind,
}

impl Sz3MrConfig {
    /// "Baseline-SZ3": linear merge, no padding, uniform error bound.
    pub fn baseline(eb: f64) -> Self {
        Sz3MrConfig {
            eb,
            merge: MergeStrategy::Linear,
            pad: None,
            adaptive_eb: None,
            interp: InterpKind::Cubic,
        }
    }

    /// "AMRIC-SZ3": cubic stacking arrangement.
    pub fn amric(eb: f64) -> Self {
        Sz3MrConfig { merge: MergeStrategy::Stack, ..Self::baseline(eb) }
    }

    /// "TAC-SZ3": adjacency-preserving boxes, compressed separately.
    pub fn tac(eb: f64) -> Self {
        Sz3MrConfig { merge: MergeStrategy::Tac, ..Self::baseline(eb) }
    }

    /// "Ours (pad)": linear merge + linear-extrapolation padding.
    pub fn ours_pad(eb: f64) -> Self {
        Sz3MrConfig { pad: Some(PadKind::Linear), ..Self::baseline(eb) }
    }

    /// "Ours (pad+eb)": padding + the paper's α=2.25, β=8 level bounds.
    pub fn ours(eb: f64) -> Self {
        Sz3MrConfig { adaptive_eb: Some(LevelEbPolicy::PAPER), ..Self::ours_pad(eb) }
    }

    fn sz3_config(&self) -> Sz3Config {
        Sz3Config { eb: self.eb, interp: self.interp, level_eb: self.adaptive_eb }
    }
}

/// Per-compression statistics.
#[derive(Debug, Clone, Default)]
pub struct MrStats {
    /// Stored cells across all levels (CR denominator × 4 bytes).
    pub stored_cells: usize,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
    /// Arrays compressed per level.
    pub arrays_per_level: Vec<usize>,
    /// Whether each level was padded.
    pub padded_levels: Vec<bool>,
}

impl MrStats {
    /// Compression ratio versus raw `f32` storage of the stored cells.
    pub fn ratio(&self) -> f64 {
        (self.stored_cells * 4) as f64 / self.compressed_bytes.max(1) as f64
    }
}

/// Whether this config pads a level with the given unit size.
fn pads(cfg: &Sz3MrConfig, unit: usize) -> bool {
    cfg.pad.is_some() && cfg.merge == MergeStrategy::Linear && unit > 4
}

/// Pre-processing stage: merge (and pad) one level into compression-ready
/// arrays. Split out so the in-situ writer can time it separately (Table IV).
pub(crate) fn prepare_level(
    level: &LevelData,
    cfg: &Sz3MrConfig,
) -> (Vec<MergedArray>, Vec<Field3>, bool) {
    let arrays = merge_level(level, cfg.merge);
    let padded = pads(cfg, level.unit);
    let fields = arrays
        .iter()
        .map(|m| {
            if padded {
                pad_small_dims(&m.field, cfg.pad.unwrap_or(PadKind::Linear))
            } else {
                m.field.clone()
            }
        })
        .collect();
    (arrays, fields, padded)
}

fn encode_layout(m: &MergedArray, padded: bool) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(padded as u8);
    write_uvarint(&mut out, m.unit as u64);
    write_uvarint(&mut out, m.slots.len() as u64);
    for (slot, origin) in &m.slots {
        for v in slot.iter().chain(origin.iter()) {
            write_uvarint(&mut out, *v as u64);
        }
    }
    out
}

fn decode_layout(bytes: &[u8]) -> Option<(bool, usize, Vec<([usize; 3], [usize; 3])>)> {
    let mut pos = 0usize;
    let padded = *bytes.first()? != 0;
    pos += 1;
    let unit = read_uvarint(bytes, &mut pos)? as usize;
    let n = read_uvarint(bytes, &mut pos)? as usize;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        let mut vals = [0usize; 6];
        for v in &mut vals {
            *v = read_uvarint(bytes, &mut pos)? as usize;
        }
        slots.push(([vals[0], vals[1], vals[2]], [vals[3], vals[4], vals[5]]));
    }
    Some((padded, unit, slots))
}

/// Compresses multi-resolution data under `cfg`.
pub fn compress_mr(mr: &MultiResData, cfg: &Sz3MrConfig) -> (Vec<u8>, MrStats) {
    let mut c = Container::new();
    let mut head = Vec::new();
    write_uvarint(&mut head, mr.domain.nx as u64);
    write_uvarint(&mut head, mr.domain.ny as u64);
    write_uvarint(&mut head, mr.domain.nz as u64);
    write_uvarint(&mut head, mr.levels.len() as u64);
    c.push(TAG_HEAD, head);

    let mut stats = MrStats { stored_cells: mr.total_cells(), ..Default::default() };
    let sz3_cfg = cfg.sz3_config();
    for level in &mr.levels {
        let (arrays, fields, padded) = prepare_level(level, cfg);
        let mut lv = Vec::new();
        write_uvarint(&mut lv, level.level as u64);
        write_uvarint(&mut lv, level.unit as u64);
        write_uvarint(&mut lv, level.dims.nx as u64);
        write_uvarint(&mut lv, level.dims.ny as u64);
        write_uvarint(&mut lv, level.dims.nz as u64);
        write_uvarint(&mut lv, arrays.len() as u64);
        c.push(TAG_LEVEL, lv);
        for (m, f) in arrays.iter().zip(&fields) {
            c.push(TAG_LAYOUT, encode_layout(m, padded));
            let r = hqmr_sz3::compress(f, &sz3_cfg);
            c.push(TAG_STREAM, r.bytes);
        }
        stats.arrays_per_level.push(arrays.len());
        stats.padded_levels.push(padded);
    }
    let bytes = c.to_bytes();
    stats.compressed_bytes = bytes.len();
    (bytes, stats)
}

/// SZ3MR decompression errors.
#[derive(Debug)]
pub enum MrError {
    /// Container-level failure.
    Container(ContainerError),
    /// Inner SZ3 stream failure.
    Sz3(hqmr_sz3::Sz3Error),
    /// Structural inconsistency.
    Malformed(&'static str),
}

impl std::fmt::Display for MrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrError::Container(e) => write!(f, "container: {e}"),
            MrError::Sz3(e) => write!(f, "sz3: {e}"),
            MrError::Malformed(m) => write!(f, "malformed sz3mr stream: {m}"),
        }
    }
}

impl std::error::Error for MrError {}

impl From<ContainerError> for MrError {
    fn from(e: ContainerError) -> Self {
        MrError::Container(e)
    }
}

impl From<hqmr_sz3::Sz3Error> for MrError {
    fn from(e: hqmr_sz3::Sz3Error) -> Self {
        MrError::Sz3(e)
    }
}

/// Decompresses a stream produced by [`compress_mr`].
pub fn decompress_mr(bytes: &[u8]) -> Result<MultiResData, MrError> {
    let c = Container::from_bytes(bytes)?;
    let head = c.require(TAG_HEAD)?;
    let mut pos = 0usize;
    let rd = |buf: &[u8], pos: &mut usize| -> Result<usize, MrError> {
        read_uvarint(buf, pos).map(|v| v as usize).ok_or(MrError::Malformed("varint"))
    };
    let nx = rd(head, &mut pos)?;
    let ny = rd(head, &mut pos)?;
    let nz = rd(head, &mut pos)?;
    let n_levels = rd(head, &mut pos)?;
    let domain = Dims3::new(nx, ny, nz);

    let level_heads: Vec<&[u8]> = c.get_all(TAG_LEVEL).collect();
    if level_heads.len() != n_levels {
        return Err(MrError::Malformed("level count"));
    }
    let mut layouts = c.get_all(TAG_LAYOUT);
    let mut streams = c.get_all(TAG_STREAM);

    let mut levels = Vec::with_capacity(n_levels);
    for lv in level_heads {
        let mut p = 0usize;
        let level = rd(lv, &mut p)?;
        let unit = rd(lv, &mut p)?;
        let dx = rd(lv, &mut p)?;
        let dy = rd(lv, &mut p)?;
        let dz = rd(lv, &mut p)?;
        let n_arrays = rd(lv, &mut p)?;
        let mut pairs: Vec<(MergedArray, Field3)> = Vec::with_capacity(n_arrays);
        for _ in 0..n_arrays {
            let layout = layouts.next().ok_or(MrError::Malformed("missing layout"))?;
            let stream = streams.next().ok_or(MrError::Malformed("missing stream"))?;
            let (padded, a_unit, slots) =
                decode_layout(layout).ok_or(MrError::Malformed("layout"))?;
            let mut field = hqmr_sz3::decompress(stream)?;
            if padded {
                field = strip_padding(&field);
            }
            let merged = MergedArray { field: Field3::zeros(field.dims()), unit: a_unit, slots };
            pairs.push((merged, field));
        }
        let refs: Vec<(&MergedArray, &Field3)> = pairs.iter().map(|(m, f)| (m, f)).collect();
        let blocks = hqmr_mr::unsplit_level(&refs);
        levels.push(LevelData { level, unit, dims: Dims3::new(dx, dy, dz), blocks });
    }
    Ok(MultiResData { domain, levels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::synth;
    use hqmr_mr::{to_adaptive, to_amr, AmrConfig, RoiConfig, Upsample};

    fn max_block_err(a: &MultiResData, b: &MultiResData) -> f64 {
        let mut worst = 0.0f64;
        for (la, lb) in a.levels.iter().zip(&b.levels) {
            assert_eq!(la.blocks.len(), lb.blocks.len());
            for (ba, bb) in la.blocks.iter().zip(&lb.blocks) {
                assert_eq!(ba.origin, bb.origin);
                for (&x, &y) in ba.data.iter().zip(&bb.data) {
                    worst = worst.max((x as f64 - y as f64).abs());
                }
            }
        }
        worst
    }

    fn test_mr() -> MultiResData {
        let f = synth::nyx_like(32, 9);
        to_amr(&f, &AmrConfig::new(8, vec![0.25, 0.75]))
    }

    #[test]
    fn roundtrip_all_strategies_respect_bound() {
        let mr = test_mr();
        let eb = 1e6; // nyx-scale values ~1e8
        for cfg in [
            Sz3MrConfig::baseline(eb),
            Sz3MrConfig::amric(eb),
            Sz3MrConfig::tac(eb),
            Sz3MrConfig::ours_pad(eb),
            Sz3MrConfig::ours(eb),
        ] {
            let (bytes, stats) = compress_mr(&mr, &cfg);
            let back = decompress_mr(&bytes).unwrap();
            assert_eq!(back.domain, mr.domain);
            let err = max_block_err(&mr, &back);
            assert!(err <= eb + 1e-3, "{cfg:?}: err {err}");
            assert!(stats.ratio() > 1.0);
        }
    }

    #[test]
    fn padding_flag_follows_unit_size() {
        let mr = test_mr(); // units 8 (fine) and 4 (coarse)
        let (_, stats) = compress_mr(&mr, &Sz3MrConfig::ours(1e6));
        assert_eq!(stats.padded_levels, vec![true, false], "pad only when unit > 4");
        let (_, stats) = compress_mr(&mr, &Sz3MrConfig::baseline(1e6));
        assert_eq!(stats.padded_levels, vec![false, false]);
    }

    #[test]
    fn tac_produces_multiple_arrays_on_sparse_levels() {
        let mr = test_mr();
        let (_, tac_stats) = compress_mr(&mr, &Sz3MrConfig::tac(1e6));
        let (_, lin_stats) = compress_mr(&mr, &Sz3MrConfig::baseline(1e6));
        assert_eq!(lin_stats.arrays_per_level, vec![1, 1]);
        assert!(tac_stats.arrays_per_level.iter().sum::<usize>() >= 2);
    }

    #[test]
    fn adaptive_data_roundtrip() {
        let f = synth::warpx_like(hqmr_grid::Dims3::new(16, 16, 128), 4);
        let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
        let eb = f.range() as f64 * 1e-3;
        let (bytes, _) = compress_mr(&mr, &Sz3MrConfig::ours(eb));
        let back = decompress_mr(&bytes).unwrap();
        assert!(max_block_err(&mr, &back) <= eb + 1e-9);
        // End-to-end: reconstruction of decompressed MR stays close to the
        // reconstruction of the uncompressed MR.
        let r0 = mr.reconstruct(Upsample::Nearest);
        let r1 = back.reconstruct(Upsample::Nearest);
        assert!(hqmr_metrics::max_abs_err(&r0, &r1) <= eb + 1e-9);
    }

    #[test]
    fn padding_wins_on_oscillatory_adaptive_data() {
        // The Fig. 17 regime: on WarpX-like data at a moderate bound, the
        // padded linear merge compresses better than the unpadded baseline
        // (extrapolation across the small dims is very costly on waves), and
        // the reconstruction is at least as accurate.
        let f = synth::warpx_like(hqmr_grid::Dims3::new(32, 32, 256), 4);
        let mr = to_adaptive(&f, &RoiConfig::new(16, 0.5));
        let eb = f.range() as f64 * 8e-3;
        let (bb, base) = compress_mr(&mr, &Sz3MrConfig::baseline(eb));
        let (pb, pad) = compress_mr(&mr, &Sz3MrConfig::ours_pad(eb));
        let rp = |bytes: &[u8]| {
            decompress_mr(bytes).unwrap().reconstruct(Upsample::Nearest)
        };
        let r0 = mr.reconstruct(Upsample::Nearest);
        let psnr_base = hqmr_metrics::psnr(&r0, &rp(&bb));
        let psnr_pad = hqmr_metrics::psnr(&r0, &rp(&pb));
        assert!(
            pad.compressed_bytes <= base.compressed_bytes,
            "pad {} vs base {} bytes",
            pad.compressed_bytes,
            base.compressed_bytes
        );
        assert!(psnr_pad >= psnr_base - 0.5, "pad {psnr_pad} vs base {psnr_base} dB");
    }

    #[test]
    fn corrupted_stream_rejected() {
        let mr = test_mr();
        let (bytes, _) = compress_mr(&mr, &Sz3MrConfig::ours(1e6));
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n / 3] ^= 0x80;
        assert!(decompress_mr(&bad).is_err());
        assert!(decompress_mr(&bytes[..20]).is_err());
    }

    #[test]
    fn empty_level_handled() {
        let mut mr = test_mr();
        mr.levels[0].blocks.clear();
        let (bytes, stats) = compress_mr(&mr, &Sz3MrConfig::ours(1e6));
        assert_eq!(stats.arrays_per_level[0], 0);
        let back = decompress_mr(&bytes).unwrap();
        assert!(back.levels[0].blocks.is_empty());
        assert_eq!(back.levels[1].blocks.len(), mr.levels[1].blocks.len());
    }
}
