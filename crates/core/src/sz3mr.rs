//! Deprecated: `sz3mr` was generalized into the backend-generic [`crate::mrc`]
//! engine when the codec axis (SZ3 / SZ2 / ZFP / passthrough) was introduced.
//!
//! This module keeps the old names alive for one release. The mapping:
//!
//! | old (`sz3mr`)            | new (`mrc`)                          |
//! |--------------------------|--------------------------------------|
//! | `Sz3MrConfig`            | [`MrcConfig`] (`adaptive_eb`/`interp` moved into [`crate::mrc::Backend::Sz3`]) |
//! | `MrError`                | [`MrcError`]                         |
//! | `compress_mr`            | [`compress_mr`] (unchanged signature) |
//! | `decompress_mr`          | [`decompress_mr`] (unchanged)        |
//! | `MrStats`                | [`MrStats`] (gains a `codec` field)  |

pub use crate::mrc::{compress_mr, decompress_mr, MrStats};

/// Deprecated name for [`crate::mrc::MrcConfig`].
#[deprecated(note = "renamed: use `mrc::MrcConfig` (codec knobs moved into `mrc::Backend`)")]
pub type Sz3MrConfig = crate::mrc::MrcConfig;

/// Deprecated name for [`crate::mrc::MrcError`].
#[deprecated(note = "renamed: use `mrc::MrcError`")]
pub type MrError = crate::mrc::MrcError;
